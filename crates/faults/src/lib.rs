//! # rai-faults — deterministic fault injection for the RAI pipeline
//!
//! A [`FaultPlan`] describes *what* can go wrong — per-operation fault
//! probabilities, a poison-job rule, and a schedule of instance deaths
//! — and a [`FaultInjector`] turns the plan into concrete, reproducible
//! decisions. Every decision is a pure function of the plan seed plus a
//! stable key (a per-kind draw counter, or a `(job_id, attempt)` pair
//! for crash decisions), so two runs with the same seed inject exactly
//! the same faults in exactly the same places regardless of wall-clock
//! timing.
//!
//! The injector is threaded through `ObjectStore`, `Database`,
//! `Broker`, and `Worker` the same way `Telemetry` is: a cheaply
//! cloneable handle sharing one set of counters, attached with a
//! `set_fault_injector` call and consulted at each instrumented
//! operation.
//!
//! [`RetryPolicy`] is the recovery half: bounded attempts with
//! exponential backoff measured in [`SimDuration`] and deterministic
//! seeded jitter, so retries cost virtual time instead of wall time.

use parking_lot::Mutex;
use rai_sim::SimDuration;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// SplitMix64 step — the single source of randomness in this crate.
fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mix an arbitrary list of key words into one draw value.
fn mix(words: &[u64]) -> u64 {
    let mut acc = 0x51_7C_C1_B7_27_22_0A_95u64;
    for &w in words {
        acc = splitmix64(acc ^ w);
    }
    acc
}

/// Map a draw to the unit interval `[0, 1)`.
fn to_unit(draw: u64) -> f64 {
    (draw >> 11) as f64 / (1u64 << 53) as f64
}

/// The operations a [`FaultInjector`] can make fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultKind {
    /// `ObjectStore::put` returns `Unavailable`.
    StorePut,
    /// `ObjectStore::get` returns `Unavailable`.
    StoreGet,
    /// A database operation returns `Unavailable`.
    DbOp,
    /// `Broker::publish` is rejected.
    BrokerPublish,
    /// A worker dies mid-job at a [`CrashPoint`] (claims released).
    WorkerCrash,
    /// A worker freezes mid-job (claims held until reclaim timeout).
    WorkerStall,
    /// A fleet instance dies.
    InstanceDeath,
}

impl FaultKind {
    /// Stable label used as the `kind` value of
    /// `rai_faults_injected_total{kind=...}`.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::StorePut => "store_put",
            FaultKind::StoreGet => "store_get",
            FaultKind::DbOp => "db_op",
            FaultKind::BrokerPublish => "broker_publish",
            FaultKind::WorkerCrash => "worker_crash",
            FaultKind::WorkerStall => "worker_stall",
            FaultKind::InstanceDeath => "instance_death",
        }
    }

    fn tag(self) -> u64 {
        match self {
            FaultKind::StorePut => 1,
            FaultKind::StoreGet => 2,
            FaultKind::DbOp => 3,
            FaultKind::BrokerPublish => 4,
            FaultKind::WorkerCrash => 5,
            FaultKind::WorkerStall => 6,
            FaultKind::InstanceDeath => 7,
        }
    }
}

/// Named points in a worker's job pipeline where a crash or stall can
/// be injected. Each sits at a boundary chosen to exercise a distinct
/// recovery path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashPoint {
    /// Before the project archive is fetched from the store.
    Fetch,
    /// After fetch, before the container runs.
    Build,
    /// After the run, before `/build` is uploaded.
    Upload,
    /// Internal: the database record could not be persisted even after
    /// retries; the worker gives up without acking so the message
    /// redelivers. Never chosen by the injector directly.
    Record,
    /// After upload and database record, before the broker ack — the
    /// idempotency stress case: redelivery reprocesses a job whose
    /// side effects already landed.
    Ack,
}

impl CrashPoint {
    /// Stable label for logs and metrics.
    pub fn label(self) -> &'static str {
        match self {
            CrashPoint::Fetch => "fetch",
            CrashPoint::Build => "build",
            CrashPoint::Upload => "upload",
            CrashPoint::Record => "record",
            CrashPoint::Ack => "ack",
        }
    }
}

/// How an injected worker fault manifests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashKind {
    /// Process death: the subscription drops, in-flight claims are
    /// requeued immediately, and a supervisor restarts the worker.
    Crash,
    /// Freeze: the process hangs without releasing its claims; the
    /// broker's message timeout (`reclaim_expired`) redelivers.
    Stall,
}

impl CrashKind {
    /// Stable label for logs and metrics.
    pub fn label(self) -> &'static str {
        match self {
            CrashKind::Crash => "crash",
            CrashKind::Stall => "stall",
        }
    }
}

/// A declarative, seeded description of the faults to inject over a
/// run. All probabilities are per-operation (or per job attempt for
/// crash/stall) in `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed from which every fault decision derives.
    pub seed: u64,
    /// Probability that an `ObjectStore::put` fails.
    pub store_put: f64,
    /// Probability that an `ObjectStore::get` fails.
    pub store_get: f64,
    /// Probability that a database operation fails.
    pub db_op: f64,
    /// Probability that a `Broker::publish` is rejected.
    pub broker_publish: f64,
    /// Probability that a job attempt dies at a crash point.
    pub worker_crash: f64,
    /// Probability that a job attempt stalls at a crash point.
    pub worker_stall: f64,
    /// Poison rule: job ids divisible by this crash on *every* attempt
    /// and can only leave the queue through the dead-letter topic.
    /// `None` disables poison jobs. A divisor of 0 is treated as
    /// `None`.
    pub poison_every: Option<u64>,
    /// Sim-time offsets (from run start) at which one fleet instance
    /// dies.
    pub instance_deaths: Vec<SimDuration>,
}

impl FaultPlan {
    /// A plan that injects nothing. Attaching it is equivalent to not
    /// attaching an injector at all.
    pub fn none(seed: u64) -> Self {
        FaultPlan {
            seed,
            store_put: 0.0,
            store_get: 0.0,
            db_op: 0.0,
            broker_publish: 0.0,
            worker_crash: 0.0,
            worker_stall: 0.0,
            poison_every: None,
            instance_deaths: Vec::new(),
        }
    }

    /// The chaos profile used by the acceptance scenario: ≥5% worker
    /// crash rate, ≥2% store/db fault rate, a poison job, and one
    /// instance death mid-run.
    pub fn chaos(seed: u64) -> Self {
        FaultPlan {
            seed,
            store_put: 0.03,
            store_get: 0.03,
            db_op: 0.02,
            broker_publish: 0.01,
            worker_crash: 0.05,
            worker_stall: 0.02,
            poison_every: Some(97),
            instance_deaths: vec![SimDuration::from_hours(6)],
        }
    }

    /// True when a job id matches the poison rule.
    pub fn is_poison(&self, job_id: u64) -> bool {
        match self.poison_every {
            Some(n) if n > 0 => job_id.is_multiple_of(n),
            _ => false,
        }
    }
}

struct InjectorInner {
    plan: FaultPlan,
    /// Per-kind draw counters: each `should_fail` consult consumes one
    /// draw, so the decision stream is stable for a given call order.
    draws: [AtomicU64; 4],
    /// Injected-fault counts by kind label, for the
    /// `faults_injected_total{kind}` collector.
    injected: Mutex<BTreeMap<&'static str, u64>>,
}

/// Cheaply cloneable handle making deterministic fault decisions from a
/// [`FaultPlan`]. All clones share draw counters and injection counts.
#[derive(Clone)]
pub struct FaultInjector {
    inner: Arc<InjectorInner>,
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("plan", &self.inner.plan)
            .finish_non_exhaustive()
    }
}

impl FaultInjector {
    /// An injector executing `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            inner: Arc::new(InjectorInner {
                plan,
                draws: [const { AtomicU64::new(0) }; 4],
                injected: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.inner.plan
    }

    /// Decide whether the next operation of `kind` fails. Only the four
    /// probability-driven kinds (`StorePut`, `StoreGet`, `DbOp`,
    /// `BrokerPublish`) consume draws; worker faults go through
    /// [`FaultInjector::crash_decision`].
    pub fn should_fail(&self, kind: FaultKind) -> bool {
        let (p, slot) = match kind {
            FaultKind::StorePut => (self.inner.plan.store_put, 0),
            FaultKind::StoreGet => (self.inner.plan.store_get, 1),
            FaultKind::DbOp => (self.inner.plan.db_op, 2),
            FaultKind::BrokerPublish => (self.inner.plan.broker_publish, 3),
            _ => return false,
        };
        if p <= 0.0 {
            return false;
        }
        let n = self.inner.draws[slot].fetch_add(1, Ordering::Relaxed);
        let fail = to_unit(mix(&[self.inner.plan.seed, kind.tag(), n])) < p;
        if fail {
            self.note(kind.label());
        }
        fail
    }

    /// Decide whether attempt `attempt` of job `job_id` dies at
    /// `point`. The decision is a pure function of
    /// `(seed, job_id, attempt)` — it does not consume shared draws —
    /// so a job crashes at the same point on the same attempt no matter
    /// which worker picks it up. Poison jobs crash at `Build` on every
    /// attempt; for everything else a fresh attempt re-rolls, so a
    /// crashed job eventually completes (or hits the broker's attempt
    /// cap and dead-letters).
    pub fn crash_decision(
        &self,
        job_id: u64,
        attempt: u64,
        point: CrashPoint,
    ) -> Option<CrashKind> {
        let plan = &self.inner.plan;
        if plan.is_poison(job_id) {
            if point == CrashPoint::Build {
                self.note(FaultKind::WorkerCrash.label());
                return Some(CrashKind::Crash);
            }
            return None;
        }
        let p_crash = plan.worker_crash;
        let p_stall = plan.worker_stall;
        if p_crash <= 0.0 && p_stall <= 0.0 {
            return None;
        }
        let roll = to_unit(mix(&[plan.seed, 0xFA11, job_id, attempt]));
        let kind = if roll < p_crash {
            CrashKind::Crash
        } else if roll < p_crash + p_stall {
            CrashKind::Stall
        } else {
            return None;
        };
        // Pick which pipeline point the fault lands on (Record is
        // internal and never selected).
        let points = [CrashPoint::Fetch, CrashPoint::Build, CrashPoint::Upload, CrashPoint::Ack];
        let pick = mix(&[plan.seed, 0xBEEF, job_id, attempt]) as usize % points.len();
        if points[pick] == point {
            self.note(
                match kind {
                    CrashKind::Crash => FaultKind::WorkerCrash,
                    CrashKind::Stall => FaultKind::WorkerStall,
                }
                .label(),
            );
            Some(kind)
        } else {
            None
        }
    }

    /// Record an externally injected fault (e.g. an instance death
    /// applied by the scenario driver) so it shows up in
    /// [`FaultInjector::injected_counts`].
    pub fn note_injected(&self, kind: FaultKind) {
        self.note(kind.label());
    }

    /// Cumulative injected-fault counts by kind label, sorted by label.
    pub fn injected_counts(&self) -> Vec<(&'static str, u64)> {
        self.inner.injected.lock().iter().map(|(k, v)| (*k, *v)).collect()
    }

    fn note(&self, label: &'static str) {
        *self.inner.injected.lock().entry(label).or_insert(0) += 1;
    }
}

/// A single corruption applied to the unsynced tail of a log segment
/// when a process dies mid-write. Produced by [`DiskFaultProfile`];
/// consumed by the WAL's simulated disk, which mutates the crashed
/// segment before recovery replays it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFault {
    /// The final `drop_bytes` of the segment never hit the platter.
    TornTail {
        /// Bytes cut from the end of the segment.
        drop_bytes: u64,
    },
    /// One bit of the segment is flipped (a misdirected or decayed
    /// write). Recovery must detect this via the record CRC.
    BitFlip {
        /// Byte offset of the flipped bit, modulo the segment length.
        offset: u64,
        /// Which bit (0–7) within that byte flips.
        bit: u8,
    },
    /// A short read: only the first `keep` bytes of the segment are
    /// returned to the recovering process.
    ShortRead {
        /// Bytes visible to the reader.
        keep: u64,
    },
}

/// Seeded profile deciding which [`DiskFault`]s a crash leaves behind.
///
/// Decisions are pure functions of `(seed, crash_index, tail_len)` —
/// they draw from their own key space and never touch the four shared
/// [`FaultInjector`] draw counters, so enabling disk faults does not
/// perturb the store/db/broker fault streams.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskFaultProfile {
    /// Seed from which every disk-fault decision derives.
    pub seed: u64,
    /// Probability that a crash tears the unsynced tail.
    pub torn_tail: f64,
    /// Probability that a crash flips one bit somewhere in the segment.
    pub bit_flip: f64,
    /// Probability that recovery sees a short read of the segment.
    pub short_read: f64,
}

impl DiskFaultProfile {
    /// A profile that corrupts nothing: crashes lose only bytes that
    /// were never synced.
    pub fn none(seed: u64) -> Self {
        DiskFaultProfile { seed, torn_tail: 0.0, bit_flip: 0.0, short_read: 0.0 }
    }

    /// The chaos profile: most crashes tear the tail, a meaningful
    /// fraction flip a bit or short-read on top.
    pub fn chaos(seed: u64) -> Self {
        DiskFaultProfile { seed, torn_tail: 0.6, bit_flip: 0.25, short_read: 0.15 }
    }

    /// The faults left behind by crash number `crash_index` on a
    /// segment whose unsynced tail is `tail_len` bytes long (the synced
    /// prefix is durable by contract and never corrupted). Pure in
    /// `(self, crash_index, tail_len)`.
    pub fn faults_for_crash(&self, crash_index: u64, tail_len: u64) -> Vec<DiskFault> {
        let mut faults = Vec::new();
        if tail_len == 0 {
            return faults;
        }
        let s = self.seed;
        if to_unit(mix(&[s, 0xD15C_0001, crash_index])) < self.torn_tail {
            let drop_bytes = 1 + mix(&[s, 0xD15C_0002, crash_index]) % tail_len;
            faults.push(DiskFault::TornTail { drop_bytes });
        }
        if to_unit(mix(&[s, 0xD15C_0003, crash_index])) < self.bit_flip {
            let offset = mix(&[s, 0xD15C_0004, crash_index]);
            let bit = (mix(&[s, 0xD15C_0005, crash_index]) % 8) as u8;
            faults.push(DiskFault::BitFlip { offset, bit });
        }
        if to_unit(mix(&[s, 0xD15C_0006, crash_index])) < self.short_read {
            let keep = mix(&[s, 0xD15C_0007, crash_index]) % tail_len;
            faults.push(DiskFault::ShortRead { keep });
        }
        faults
    }
}

/// Bounded-retry policy with exponential backoff in sim time.
///
/// `max_attempts` counts the first try: a policy with `max_attempts: 4`
/// makes at most 4 calls. Backoff before attempt `n` (n ≥ 2) is
/// `base * 2^(n-2)` capped at `cap`, with up to `jitter` of the value
/// replaced by a deterministic seeded draw.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts, including the first. 0 is treated as 1.
    pub max_attempts: u32,
    /// Backoff before the second attempt.
    pub base: SimDuration,
    /// Ceiling on any single backoff.
    pub cap: SimDuration,
    /// Fraction of each backoff randomized, in `[0, 1]`.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base: SimDuration::from_millis(500),
            cap: SimDuration::from_secs(30),
            jitter: 0.5,
        }
    }
}

/// Outcome of [`RetryPolicy::run`]: the final result plus what the
/// retrying cost.
#[derive(Debug)]
pub struct Retried<T, E> {
    /// Result of the last attempt.
    pub result: Result<T, E>,
    /// Attempts actually made (≥ 1).
    pub attempts: u32,
    /// Total backoff accrued between attempts, in sim time.
    pub backoff: SimDuration,
}

impl RetryPolicy {
    /// The deterministic backoff before attempt `attempt` (2-based:
    /// attempt 2 is the first retry). `seed` keys the jitter so
    /// different call sites decorrelate.
    pub fn backoff(&self, seed: u64, attempt: u32) -> SimDuration {
        if attempt < 2 {
            return SimDuration::ZERO;
        }
        let exp = (attempt - 2).min(32);
        let raw = self.base.as_millis().saturating_mul(1u64 << exp);
        let capped = raw.min(self.cap.as_millis());
        let jitter = self.jitter.clamp(0.0, 1.0);
        if jitter == 0.0 || capped == 0 {
            return SimDuration::from_millis(capped);
        }
        let fixed = (capped as f64 * (1.0 - jitter)) as u64;
        let spread = capped - fixed;
        let draw = mix(&[seed, 0x08AC_C0FF, attempt as u64]);
        SimDuration::from_millis(fixed + draw % (spread + 1))
    }

    /// Run `op` under this policy. `op` receives the 1-based attempt
    /// number. Backoff is *accrued* in the returned [`Retried`], not
    /// slept — callers fold it into their virtual service time.
    pub fn run<T, E>(&self, seed: u64, mut op: impl FnMut(u32) -> Result<T, E>) -> Retried<T, E> {
        let max = self.max_attempts.max(1);
        let mut backoff = SimDuration::ZERO;
        let mut attempt = 1;
        loop {
            match op(attempt) {
                Ok(value) => {
                    return Retried { result: Ok(value), attempts: attempt, backoff };
                }
                Err(err) => {
                    if attempt >= max {
                        return Retried { result: Err(err), attempts: attempt, backoff };
                    }
                    attempt += 1;
                    backoff += self.backoff(seed, attempt);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_never_fires() {
        let injector = FaultInjector::new(FaultPlan::none(1));
        for _ in 0..1000 {
            assert!(!injector.should_fail(FaultKind::StorePut));
            assert!(!injector.should_fail(FaultKind::DbOp));
        }
        assert!(injector.crash_decision(42, 1, CrashPoint::Build).is_none());
        assert!(injector.injected_counts().is_empty());
    }

    #[test]
    fn fault_stream_is_deterministic() {
        let a = FaultInjector::new(FaultPlan::chaos(7));
        let b = FaultInjector::new(FaultPlan::chaos(7));
        let seq_a: Vec<bool> =
            (0..500).map(|_| a.should_fail(FaultKind::StoreGet)).collect();
        let seq_b: Vec<bool> =
            (0..500).map(|_| b.should_fail(FaultKind::StoreGet)).collect();
        assert_eq!(seq_a, seq_b);
        assert!(seq_a.iter().any(|&f| f), "3% over 500 draws should fire");
        assert_eq!(a.injected_counts(), b.injected_counts());
    }

    #[test]
    fn different_seeds_decorrelate() {
        let a = FaultInjector::new(FaultPlan::chaos(1));
        let b = FaultInjector::new(FaultPlan::chaos(2));
        let seq_a: Vec<bool> =
            (0..2000).map(|_| a.should_fail(FaultKind::StorePut)).collect();
        let seq_b: Vec<bool> =
            (0..2000).map(|_| b.should_fail(FaultKind::StorePut)).collect();
        assert_ne!(seq_a, seq_b);
    }

    #[test]
    fn fault_rate_tracks_probability() {
        let injector = FaultInjector::new(FaultPlan {
            store_get: 0.10,
            ..FaultPlan::none(3)
        });
        let fails = (0..10_000).filter(|_| injector.should_fail(FaultKind::StoreGet)).count();
        assert!((800..1200).contains(&fails), "got {fails} failures at p=0.10");
    }

    #[test]
    fn crash_decision_is_stable_per_attempt_and_rerolls_across_attempts() {
        let injector = FaultInjector::new(FaultPlan {
            worker_crash: 0.5,
            worker_stall: 0.2,
            ..FaultPlan::none(11)
        });
        let points =
            [CrashPoint::Fetch, CrashPoint::Build, CrashPoint::Upload, CrashPoint::Ack];
        for job in 0..200u64 {
            // At most one point fires per (job, attempt), and repeat
            // queries agree.
            for attempt in 1..=3u64 {
                let hits: Vec<_> = points
                    .iter()
                    .filter(|&&p| injector.crash_decision(job, attempt, p).is_some())
                    .collect();
                assert!(hits.len() <= 1);
                for &p in &points {
                    assert_eq!(
                        injector.crash_decision(job, attempt, p).is_some(),
                        injector.crash_decision(job, attempt, p).is_some()
                    );
                }
            }
        }
        // With p=0.7 some job must eventually draw a clean attempt.
        let survives = |job: u64| {
            (1..=40u64).any(|attempt| {
                points.iter().all(|&p| injector.crash_decision(job, attempt, p).is_none())
            })
        };
        assert!((0..50).all(survives));
    }

    #[test]
    fn poison_jobs_crash_every_attempt() {
        let injector = FaultInjector::new(FaultPlan {
            poison_every: Some(10),
            ..FaultPlan::none(5)
        });
        for attempt in 1..=50 {
            assert_eq!(
                injector.crash_decision(40, attempt, CrashPoint::Build),
                Some(CrashKind::Crash)
            );
        }
        assert!(injector.crash_decision(41, 1, CrashPoint::Build).is_none());
        assert!(injector.plan().is_poison(40));
        assert!(!injector.plan().is_poison(41));
    }

    #[test]
    fn disk_faults_are_pure_and_disabled_profile_is_clean() {
        let profile = DiskFaultProfile::chaos(77);
        for crash in 0..50u64 {
            assert_eq!(
                profile.faults_for_crash(crash, 4096),
                profile.faults_for_crash(crash, 4096)
            );
        }
        let fired = (0..200u64).filter(|&c| !profile.faults_for_crash(c, 4096).is_empty()).count();
        assert!(fired > 100, "chaos profile should corrupt most crashes, got {fired}");
        let clean = DiskFaultProfile::none(77);
        assert!((0..200u64).all(|c| clean.faults_for_crash(c, 4096).is_empty()));
        // A zero-length tail has nothing to corrupt.
        assert!(profile.faults_for_crash(0, 0).is_empty());
        // Torn tails never drop more than the unsynced tail.
        for crash in 0..200u64 {
            for fault in profile.faults_for_crash(crash, 100) {
                if let DiskFault::TornTail { drop_bytes } = fault {
                    assert!((1..=100).contains(&drop_bytes));
                }
            }
        }
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let policy = RetryPolicy {
            max_attempts: 10,
            base: SimDuration::from_millis(100),
            cap: SimDuration::from_secs(2),
            jitter: 0.0,
        };
        assert_eq!(policy.backoff(0, 1), SimDuration::ZERO);
        assert_eq!(policy.backoff(0, 2), SimDuration::from_millis(100));
        assert_eq!(policy.backoff(0, 3), SimDuration::from_millis(200));
        assert_eq!(policy.backoff(0, 4), SimDuration::from_millis(400));
        assert_eq!(policy.backoff(0, 9), SimDuration::from_secs(2));
    }

    #[test]
    fn jittered_backoff_is_deterministic_and_bounded() {
        let policy = RetryPolicy::default();
        for attempt in 2..8 {
            let a = policy.backoff(99, attempt);
            let b = policy.backoff(99, attempt);
            assert_eq!(a, b);
            let nominal = policy.backoff(99, attempt).as_millis();
            let cap = policy.cap.as_millis();
            assert!(nominal <= cap);
        }
        assert_ne!(policy.backoff(1, 4), policy.backoff(2, 4));
    }

    #[test]
    fn run_retries_until_success() {
        let policy = RetryPolicy::default();
        let mut calls = 0;
        let out = policy.run::<_, ()>(7, |attempt| {
            calls += 1;
            if attempt < 3 {
                Err(())
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(calls, 3);
        assert_eq!(out.attempts, 3);
        assert_eq!(out.result, Ok(3));
        assert!(out.backoff > SimDuration::ZERO);
    }

    #[test]
    fn run_gives_up_after_max_attempts() {
        let policy = RetryPolicy { max_attempts: 3, ..RetryPolicy::default() };
        let out = policy.run::<(), _>(7, |_| Err("down"));
        assert_eq!(out.attempts, 3);
        assert_eq!(out.result, Err("down"));
    }
}
