//! Property tests for the document database: the query planner must be
//! invisible (index results ≡ scan results), updates must do what they
//! say, and sorting must respect the value order.

use proptest::prelude::*;
use rai_db::{doc, Collection, Document, FindOptions, Value};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-1000i64..1000).prop_map(Value::Int),
        (-100.0f64..100.0).prop_map(Value::Float),
        "[a-z]{0,6}".prop_map(Value::Str),
    ]
}

fn arb_doc() -> impl Strategy<Value = Document> {
    // Fixed small field universe so queries actually hit.
    prop::collection::vec(
        (prop_oneof![Just("a"), Just("b"), Just("c"), Just("d")], arb_value()),
        0..5,
    )
    .prop_map(|fields| {
        let mut d = Document::new();
        for (k, v) in fields {
            d.insert(k, v);
        }
        d
    })
}

/// A random query over the same field universe: literal equality or a
/// single range operator.
fn arb_query() -> impl Strategy<Value = Document> {
    (
        prop_oneof![Just("a"), Just("b"), Just("c")],
        prop_oneof![
            Just("$eq"),
            Just("$ne"),
            Just("$lt"),
            Just("$lte"),
            Just("$gt"),
            Just("$gte")
        ],
        arb_value(),
    )
        .prop_map(|(field, op, operand)| doc! { field => doc!{ op => operand } })
}

/// A single-field condition: bare literal, a comparison operator, or a
/// `$in` list — everything the planner routes through an index.
fn arb_condition() -> impl Strategy<Value = Value> {
    prop_oneof![
        arb_value(),
        (
            prop_oneof![
                Just("$eq"),
                Just("$ne"),
                Just("$lt"),
                Just("$lte"),
                Just("$gt"),
                Just("$gte")
            ],
            arb_value(),
        )
            .prop_map(|(op, operand)| Value::Doc(doc! { op => operand })),
        prop::collection::vec(arb_value(), 0..4)
            .prop_map(|elems| Value::Doc(doc! { "$in" => elems })),
    ]
}

/// A conjunction over 1–3 fields (duplicate fields collapse; the last
/// condition wins, same as any literal query document).
fn arb_multi_query() -> impl Strategy<Value = Document> {
    prop::collection::vec(
        (
            prop_oneof![Just("a"), Just("b"), Just("c"), Just("d")],
            arb_condition(),
        ),
        1..4,
    )
    .prop_map(|conds| {
        let mut q = Document::new();
        for (field, cond) in conds {
            q.insert(field, cond);
        }
        q
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn index_and_scan_agree(docs in prop::collection::vec(arb_doc(), 0..40), query in arb_query()) {
        let mut plain = Collection::new();
        let mut indexed = Collection::new();
        for d in &docs {
            plain.insert_one(d.clone());
            indexed.insert_one(d.clone());
        }
        for field in ["a", "b", "c"] {
            indexed.create_index(field);
        }
        prop_assert_eq!(plain.find(&query), indexed.find(&query));
        prop_assert_eq!(plain.count(&query), indexed.count(&query));
        prop_assert_eq!(plain.find_one(&query), indexed.find_one(&query));
    }

    /// The planner must stay invisible under conjunctions too: any mix
    /// of literal, operator, and `$in` conditions across partially
    /// indexed fields returns the same docs in the same order as a
    /// full scan.
    #[test]
    fn multi_field_planner_and_scan_agree(
        docs in prop::collection::vec(arb_doc(), 0..40),
        query in arb_multi_query(),
    ) {
        let mut plain = Collection::new();
        let mut indexed = Collection::new();
        for d in &docs {
            plain.insert_one(d.clone());
            indexed.insert_one(d.clone());
        }
        // "d" stays unindexed on purpose: residual predicates must
        // still be applied by the post-candidate match.
        for field in ["a", "b", "c"] {
            indexed.create_index(field);
        }
        prop_assert_eq!(plain.find(&query), indexed.find(&query));
        prop_assert_eq!(plain.count(&query), indexed.count(&query));
        prop_assert_eq!(plain.find_one(&query), indexed.find_one(&query));
    }

    /// `find_with` must return the same docs in the same order whether
    /// the sort runs through the index fast path or materialise+sort —
    /// across filters, both directions, and skip/limit windows.
    #[test]
    fn find_with_indexed_sort_matches_scan(
        docs in prop::collection::vec(arb_doc(), 0..40),
        query in arb_multi_query(),
        sort_field in prop_oneof![Just("a"), Just("b"), Just("d")],
        desc in any::<bool>(),
        skip in 0usize..8,
        limit in prop_oneof![Just(None), (0usize..12).prop_map(Some)],
    ) {
        let mut plain = Collection::new();
        let mut indexed = Collection::new();
        for d in &docs {
            plain.insert_one(d.clone());
            indexed.insert_one(d.clone());
        }
        for field in ["a", "b", "c"] {
            indexed.create_index(field);
        }
        let mut opts = if desc {
            FindOptions::sort_desc(sort_field)
        } else {
            FindOptions::sort_asc(sort_field)
        };
        opts = opts.skip(skip);
        if let Some(n) = limit {
            opts = opts.limit(n);
        }
        prop_assert_eq!(plain.find_with(&query, &opts), indexed.find_with(&query, &opts));
    }

    #[test]
    fn index_stays_consistent_under_updates(
        docs in prop::collection::vec(arb_doc(), 1..25),
        new_val in arb_value(),
        query in arb_query(),
    ) {
        let mut plain = Collection::new();
        let mut indexed = Collection::new();
        for d in &docs {
            plain.insert_one(d.clone());
            indexed.insert_one(d.clone());
        }
        indexed.create_index("a");
        let update = doc! { "$set" => doc!{ "a" => new_val } };
        let r1 = plain.update_many(&query, &update);
        let r2 = indexed.update_many(&query, &update);
        prop_assert_eq!(r1, r2);
        // After mutation, queries still agree.
        let probe = doc! { "a" => doc!{ "$exists" => true } };
        prop_assert_eq!(plain.find(&probe), indexed.find(&probe));
    }

    #[test]
    fn set_then_get_returns_value(mut d in arb_doc(), v in arb_value()) {
        rai_db::apply_update(&doc! { "$set" => doc!{ "probe" => v.clone() } }, &mut d);
        prop_assert_eq!(d.get("probe"), Some(&v));
    }

    #[test]
    fn sort_is_ordered_and_complete(docs in prop::collection::vec(arb_doc(), 0..30)) {
        let mut c = Collection::new();
        let n = docs.len();
        for d in docs {
            c.insert_one(d);
        }
        let sorted = c.find_with(&Document::new(), &FindOptions::sort_asc("a"));
        prop_assert_eq!(sorted.len(), n);
        let null = Value::Null;
        for w in sorted.windows(2) {
            let x = w[0].get("a").unwrap_or(&null);
            let y = w[1].get("a").unwrap_or(&null);
            prop_assert_ne!(x.cmp_order(y), std::cmp::Ordering::Greater);
        }
    }

    #[test]
    fn delete_then_count_zero(docs in prop::collection::vec(arb_doc(), 0..30), query in arb_query()) {
        let mut c = Collection::new();
        for d in docs {
            c.insert_one(d);
        }
        let before = c.count(&query);
        let removed = c.delete_many(&query);
        prop_assert_eq!(before, removed);
        prop_assert_eq!(c.count(&query), 0);
    }

    #[test]
    fn matches_never_panics(d in arb_doc(), q in arb_doc()) {
        let _ = rai_db::matches(&q, &d);
    }
}
