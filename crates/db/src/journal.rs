//! Durability for the document database: logical mutation records
//! appended to a [`rai_wal::Wal`] and replayed by
//! [`Database::recover`](crate::Database::recover).
//!
//! Records journal the *arguments* of a mutation, not its effects:
//! replay re-executes each mutation through the normal collection
//! methods (with journaling detached), so `_id` assignment, upsert
//! seeding, and index maintenance reproduce byte-identical state from
//! the same deterministic code paths that built it the first time.
//! Compaction snapshots ([`DbRecord::SnapshotCollection`]) are the one
//! exception: they capture docs *with* their `_id`s and are restored
//! verbatim.

use crate::value::{Document, Value};
use rai_wal::Wal;
use std::sync::Arc;

// ---- value codec -----------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.bytes.len() {
            return None;
        }
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Some(out)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(0),
        Value::Bool(b) => {
            out.push(1);
            out.push(u8::from(*b));
        }
        Value::Int(i) => {
            out.push(2);
            put_u64(out, *i as u64);
        }
        Value::Float(f) => {
            out.push(3);
            put_u64(out, f.to_bits());
        }
        Value::Str(s) => {
            out.push(4);
            put_str(out, s);
        }
        Value::Array(items) => {
            out.push(5);
            put_u32(out, items.len() as u32);
            for item in items {
                encode_value(item, out);
            }
        }
        Value::Doc(doc) => {
            out.push(6);
            encode_doc(doc, out);
        }
    }
}

fn decode_value(r: &mut Reader<'_>) -> Option<Value> {
    Some(match r.u8()? {
        0 => Value::Null,
        1 => Value::Bool(r.u8()? != 0),
        2 => Value::Int(r.u64()? as i64),
        3 => Value::Float(f64::from_bits(r.u64()?)),
        4 => Value::Str(r.str()?),
        5 => {
            let n = r.u32()? as usize;
            let mut items = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                items.push(decode_value(r)?);
            }
            Value::Array(items)
        }
        6 => Value::Doc(decode_doc(r)?),
        _ => return None,
    })
}

fn encode_doc(doc: &Document, out: &mut Vec<u8>) {
    put_u32(out, doc.0.len() as u32);
    for (k, v) in &doc.0 {
        put_str(out, k);
        encode_value(v, out);
    }
}

fn decode_doc(r: &mut Reader<'_>) -> Option<Document> {
    let n = r.u32()? as usize;
    let mut doc = Document::new();
    for _ in 0..n {
        let k = r.str()?;
        let v = decode_value(r)?;
        doc.0.insert(k, v);
    }
    Some(doc)
}

fn encode_docs(docs: &[Document], out: &mut Vec<u8>) {
    put_u32(out, docs.len() as u32);
    for d in docs {
        encode_doc(d, out);
    }
}

fn decode_docs(r: &mut Reader<'_>) -> Option<Vec<Document>> {
    let n = r.u32()? as usize;
    let mut docs = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        docs.push(decode_doc(r)?);
    }
    Some(docs)
}

// ---- logical records -------------------------------------------------

/// One committed database mutation, as journaled to the WAL.
#[derive(Debug, Clone, PartialEq)]
pub enum DbRecord {
    /// `insert_one` — `doc` is the document *before* `_id` assignment.
    InsertOne {
        /// Target collection.
        coll: String,
        /// Document as the caller passed it.
        doc: Document,
    },
    /// `insert_many`, same pre-`_id` convention.
    InsertMany {
        /// Target collection.
        coll: String,
        /// Documents as the caller passed them.
        docs: Vec<Document>,
    },
    /// `update_many(query, update)`.
    UpdateMany {
        /// Target collection.
        coll: String,
        /// Match predicate.
        query: Document,
        /// Update operators.
        update: Document,
    },
    /// `update_one(query, update, upsert)`.
    UpdateOne {
        /// Target collection.
        coll: String,
        /// Match predicate.
        query: Document,
        /// Update operators.
        update: Document,
        /// Insert when nothing matches.
        upsert: bool,
    },
    /// `delete_many(query)`.
    DeleteMany {
        /// Target collection.
        coll: String,
        /// Match predicate.
        query: Document,
    },
    /// `create_index(field)`.
    CreateIndex {
        /// Target collection.
        coll: String,
        /// Indexed dotted path.
        field: String,
    },
    /// `drop_collection(name)`.
    DropCollection {
        /// Dropped collection.
        coll: String,
    },
    /// Compaction snapshot of one whole collection: docs carry their
    /// `_id`s and are restored verbatim (indexes rebuilt).
    SnapshotCollection {
        /// Collection name.
        coll: String,
        /// `_id` allocator position.
        next_id: u64,
        /// Indexed dotted paths.
        indexes: Vec<String>,
        /// Every document, `_id` included.
        docs: Vec<Document>,
    },
}

impl DbRecord {
    /// Serialize to a WAL payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            DbRecord::InsertOne { coll, doc } => {
                out.push(1);
                put_str(&mut out, coll);
                encode_doc(doc, &mut out);
            }
            DbRecord::InsertMany { coll, docs } => {
                out.push(2);
                put_str(&mut out, coll);
                encode_docs(docs, &mut out);
            }
            DbRecord::UpdateMany { coll, query, update } => {
                out.push(3);
                put_str(&mut out, coll);
                encode_doc(query, &mut out);
                encode_doc(update, &mut out);
            }
            DbRecord::UpdateOne { coll, query, update, upsert } => {
                out.push(4);
                put_str(&mut out, coll);
                encode_doc(query, &mut out);
                encode_doc(update, &mut out);
                out.push(u8::from(*upsert));
            }
            DbRecord::DeleteMany { coll, query } => {
                out.push(5);
                put_str(&mut out, coll);
                encode_doc(query, &mut out);
            }
            DbRecord::CreateIndex { coll, field } => {
                out.push(6);
                put_str(&mut out, coll);
                put_str(&mut out, field);
            }
            DbRecord::DropCollection { coll } => {
                out.push(7);
                put_str(&mut out, coll);
            }
            DbRecord::SnapshotCollection { coll, next_id, indexes, docs } => {
                out.push(8);
                put_str(&mut out, coll);
                put_u64(&mut out, *next_id);
                put_u32(&mut out, indexes.len() as u32);
                for f in indexes {
                    put_str(&mut out, f);
                }
                encode_docs(docs, &mut out);
            }
        }
        out
    }

    /// Deserialize a WAL payload. `None` on malformed input (a record
    /// that passed its CRC but doesn't parse — dropped, never panics).
    pub fn decode(bytes: &[u8]) -> Option<DbRecord> {
        let mut r = Reader::new(bytes);
        let rec = match r.u8()? {
            1 => DbRecord::InsertOne { coll: r.str()?, doc: decode_doc(&mut r)? },
            2 => DbRecord::InsertMany { coll: r.str()?, docs: decode_docs(&mut r)? },
            3 => DbRecord::UpdateMany {
                coll: r.str()?,
                query: decode_doc(&mut r)?,
                update: decode_doc(&mut r)?,
            },
            4 => DbRecord::UpdateOne {
                coll: r.str()?,
                query: decode_doc(&mut r)?,
                update: decode_doc(&mut r)?,
                upsert: r.u8()? != 0,
            },
            5 => DbRecord::DeleteMany { coll: r.str()?, query: decode_doc(&mut r)? },
            6 => DbRecord::CreateIndex { coll: r.str()?, field: r.str()? },
            7 => DbRecord::DropCollection { coll: r.str()? },
            8 => {
                let coll = r.str()?;
                let next_id = r.u64()?;
                let n = r.u32()? as usize;
                let mut indexes = Vec::with_capacity(n.min(1 << 10));
                for _ in 0..n {
                    indexes.push(r.str()?);
                }
                DbRecord::SnapshotCollection { coll, next_id, indexes, docs: decode_docs(&mut r)? }
            }
            _ => return None,
        };
        r.done().then_some(rec)
    }
}

/// A collection's journaling hook: knows the collection's name and the
/// database's shared WAL. Held by [`Collection`](crate::Collection) as
/// `Option<Arc<JournalSink>>` — `None` (the default) is the preserved
/// zero-overhead in-memory configuration.
pub struct JournalSink {
    wal: Wal,
    coll: String,
}

impl JournalSink {
    /// Sink journaling `coll`'s mutations to `wal`.
    pub fn new(wal: Wal, coll: &str) -> Arc<Self> {
        Arc::new(JournalSink { wal, coll: coll.to_string() })
    }

    /// The collection this sink journals for.
    pub fn coll(&self) -> &str {
        &self.coll
    }

    /// Append one record for this sink's collection.
    pub fn append(&self, record: &DbRecord) {
        self.wal.append(&record.encode());
    }

    /// Force the journal durable (used at commit points).
    pub fn sync(&self) {
        self.wal.sync();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc;

    #[test]
    fn records_round_trip() {
        let records = vec![
            DbRecord::InsertOne {
                coll: "submissions".into(),
                doc: doc! { "job_id" => 7, "ok" => true, "secs" => 1.25 },
            },
            DbRecord::InsertMany {
                coll: "teams".into(),
                docs: vec![doc! { "team" => "a" }, doc! { "nested" => doc!{ "x" => 1 } }],
            },
            DbRecord::UpdateMany {
                coll: "rankings".into(),
                query: doc! { "team" => "a" },
                update: doc! { "$set" => doc!{ "secs" => 0.5 } },
            },
            DbRecord::UpdateOne {
                coll: "rankings".into(),
                query: doc! { "team" => "b" },
                update: doc! { "$inc" => doc!{ "n" => 1 } },
                upsert: true,
            },
            DbRecord::DeleteMany { coll: "tmp".into(), query: doc! {} },
            DbRecord::CreateIndex { coll: "submissions".into(), field: "job_id".into() },
            DbRecord::DropCollection { coll: "tmp".into() },
            DbRecord::SnapshotCollection {
                coll: "submissions".into(),
                next_id: 42,
                indexes: vec!["job_id".into()],
                docs: vec![doc! { "_id" => 1, "job_id" => 7 }],
            },
        ];
        for rec in records {
            let bytes = rec.encode();
            assert_eq!(DbRecord::decode(&bytes), Some(rec));
        }
    }

    #[test]
    fn all_value_shapes_round_trip() {
        let doc = doc! {
            "null" => Value::Null,
            "bool" => false,
            "int" => -17,
            "float" => -0.0,
            "str" => "héllo wörld",
            "arr" => Value::Array(vec![Value::Int(1), Value::Str("x".into()), Value::Null]),
            "doc" => doc!{ "inner" => doc!{ "deep" => 3.5 } },
        };
        let rec = DbRecord::InsertOne { coll: "c".into(), doc };
        assert_eq!(DbRecord::decode(&rec.encode()), Some(rec));
    }

    #[test]
    fn malformed_payloads_decode_to_none() {
        assert_eq!(DbRecord::decode(&[]), None);
        assert_eq!(DbRecord::decode(&[99]), None);
        assert_eq!(DbRecord::decode(&[1, 5, 0, 0, 0, b'x']), None);
        // Trailing garbage after a valid record is rejected too.
        let mut bytes =
            DbRecord::DropCollection { coll: "c".into() }.encode();
        bytes.push(0);
        assert_eq!(DbRecord::decode(&bytes), None);
    }
}
