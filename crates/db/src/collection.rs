//! Collections: document storage, CRUD, cursors, and the (small) query
//! planner that routes eligible predicates through secondary indexes.
//!
//! ## Sharding
//!
//! A collection is hash-partitioned into `N` shards by primary key:
//! document `id` lives in shard `id % N`, a pure function of the key,
//! so a given document lands in the same shard on every run and every
//! replay. Each shard owns its slice of the document map *and* its own
//! secondary indexes, which keeps index maintenance for concurrent
//! writers on independent cache lines and lets the store-level lock
//! domains shrink with the shard count.
//!
//! Every read path merges per-shard results canonically so results are
//! byte-identical to a single-shard collection:
//!
//! * id-ordered paths (find/distinct/scans) concatenate per-shard id
//!   sets and sort ascending — shards partition the keyspace, so the
//!   sorted union is exactly the unsharded ascending walk;
//! * the index-order `find_with` fast path k-way merges each shard's
//!   `(key, id)` stream with ties broken by ascending id, reproducing
//!   the exact global key order one big index would have produced;
//! * planner candidate sets are per-shard supersets combined by sorted
//!   union, and a predicate any shard's index cannot serve (array keys,
//!   bare `Null`) falls back to a scan for the whole collection — the
//!   same superset invariant as before, shard count invisible.
//!
//! `N = 1` (the default) is the preserved reference configuration.

use crate::index::Index;
use crate::journal::{DbRecord, JournalSink};
use crate::query::matches;
use crate::update::apply_update;
use crate::value::{Document, Value};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::ops::Bound;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Document identifier (stored in the document as `_id`).
pub type DocId = u64;

/// Sort direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SortOrder {
    /// Ascending (smallest first) — ranking by runtime.
    Asc,
    /// Descending.
    Desc,
}

/// Cursor options for [`Collection::find_with`].
#[derive(Clone, Debug, Default)]
pub struct FindOptions {
    /// Sort by this dotted path.
    pub sort_by: Option<(String, SortOrder)>,
    /// Skip this many results (after sort).
    pub skip: usize,
    /// Return at most this many results.
    pub limit: Option<usize>,
}

impl FindOptions {
    /// Sort ascending by `field`.
    pub fn sort_asc(field: &str) -> Self {
        FindOptions {
            sort_by: Some((field.to_string(), SortOrder::Asc)),
            ..Default::default()
        }
    }

    /// Sort descending by `field`.
    pub fn sort_desc(field: &str) -> Self {
        FindOptions {
            sort_by: Some((field.to_string(), SortOrder::Desc)),
            ..Default::default()
        }
    }

    /// Set a limit.
    pub fn limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }

    /// Set a skip.
    pub fn skip(mut self, n: usize) -> Self {
        self.skip = n;
        self
    }
}

/// Result of an update call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UpdateResult {
    /// Documents matching the query.
    pub matched: usize,
    /// Documents actually changed.
    pub modified: usize,
    /// Id of a document inserted by upsert, if any.
    pub upserted: Option<DocId>,
}

/// Cumulative operation counters for one collection.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CollectionStats {
    /// Documents inserted (including upsert inserts).
    pub inserts: u64,
    /// Read operations (find/find_one/find_with/count/distinct).
    pub queries: u64,
    /// Write operations other than inserts (updates and deletes).
    pub updates: u64,
}

impl CollectionStats {
    /// Element-wise sum, for whole-database aggregation.
    pub fn merge(&mut self, other: CollectionStats) {
        self.inserts += other.inserts;
        self.queries += other.queries;
        self.updates += other.updates;
    }
}

/// One hash partition of a collection: its slice of the document map
/// plus its own secondary indexes over exactly those documents.
#[derive(Default)]
struct Shard {
    docs: BTreeMap<DocId, Document>,
    indexes: HashMap<String, Index>,
}

impl Shard {
    fn index_doc(&mut self, id: DocId, doc: &Document) {
        for (field, idx) in self.indexes.iter_mut() {
            if let Some(v) = doc.get_path(field) {
                idx.insert(v, id);
            }
        }
    }

    fn unindex_doc(&mut self, id: DocId, doc: &Document) {
        for (field, idx) in self.indexes.iter_mut() {
            if let Some(v) = doc.get_path(field) {
                idx.remove(v, id);
            }
        }
    }

    fn reindex(&mut self, id: DocId, before: &Document, after: &Document) {
        for (field, idx) in self.indexes.iter_mut() {
            let old = before.get_path(field);
            let new = after.get_path(field);
            if old != new {
                if let Some(v) = old {
                    idx.remove(v, id);
                }
                if let Some(v) = new {
                    idx.insert(v, id);
                }
            }
        }
    }
}

/// An in-memory document collection.
pub struct Collection {
    shards: Vec<Shard>,
    next_id: DocId,
    /// Indexed dotted paths; every shard carries an index for each.
    index_fields: BTreeSet<String>,
    // Atomics so read-path methods (&self) can count themselves.
    inserts: AtomicU64,
    queries: AtomicU64,
    updates: AtomicU64,
    /// Durability hook: when attached, every committed mutation appends
    /// a logical [`DbRecord`] before applying. `None` (the default) is
    /// the preserved zero-overhead in-memory configuration.
    journal: Option<Arc<JournalSink>>,
}

impl Default for Collection {
    fn default() -> Self {
        Self::with_shards(1)
    }
}

impl Collection {
    /// An empty single-shard collection (the reference configuration).
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty collection hash-partitioned into `shards` partitions
    /// (clamped to at least 1). Shard assignment is `id % shards` — a
    /// pure function of the primary key.
    pub fn with_shards(shards: usize) -> Self {
        let shards = shards.max(1);
        Collection {
            shards: (0..shards).map(|_| Shard::default()).collect(),
            next_id: 0,
            index_fields: BTreeSet::new(),
            inserts: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            updates: AtomicU64::new(0),
            journal: None,
        }
    }

    /// Number of hash partitions.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Documents resident in each shard, by shard index — the
    /// occupancy gauge surfaced in telemetry.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.docs.len()).collect()
    }

    fn shard_of(&self, id: DocId) -> usize {
        (id % self.shards.len() as u64) as usize
    }

    fn doc(&self, id: DocId) -> Option<&Document> {
        self.shards[self.shard_of(id)].docs.get(&id)
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.docs.len()).sum()
    }

    /// Whether the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.docs.is_empty())
    }

    /// Cumulative operation counters.
    pub fn stats(&self) -> CollectionStats {
        CollectionStats {
            inserts: self.inserts.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            updates: self.updates.load(Ordering::Relaxed),
        }
    }

    /// Attach (or detach) the durability sink. Set by
    /// [`Database`](crate::Database) when a WAL is configured; replay
    /// runs with the sink detached so recovery never re-journals.
    pub(crate) fn set_journal(&mut self, journal: Option<Arc<JournalSink>>) {
        self.journal = journal;
    }

    /// Insert a document, assigning and returning its `_id`.
    pub fn insert_one(&mut self, doc: Document) -> DocId {
        if let Some(j) = &self.journal {
            j.append(&DbRecord::InsertOne { coll: j.coll().to_string(), doc: doc.clone() });
        }
        self.insert_one_inner(doc)
    }

    /// The journal-free insert path: shared by [`Collection::insert_one`],
    /// upsert (whose enclosing update is journaled as one record), and
    /// replay.
    pub(crate) fn insert_one_inner(&mut self, mut doc: Document) -> DocId {
        self.inserts.fetch_add(1, Ordering::Relaxed);
        self.next_id += 1;
        let id = self.next_id;
        doc.insert("_id", id);
        let s = self.shard_of(id);
        let shard = &mut self.shards[s];
        shard.index_doc(id, &doc);
        shard.docs.insert(id, doc);
        id
    }

    /// Insert many documents. Index maintenance is batched: documents
    /// land first, then each shard updates its indexes in one pass over
    /// its new rows (one cache-warm walk per index instead of an index
    /// round per document).
    pub fn insert_many(&mut self, docs: impl IntoIterator<Item = Document>) -> Vec<DocId> {
        let docs: Vec<Document> = docs.into_iter().collect();
        if let Some(j) = &self.journal {
            j.append(&DbRecord::InsertMany { coll: j.coll().to_string(), docs: docs.clone() });
        }
        self.insert_many_inner(docs)
    }

    pub(crate) fn insert_many_inner(&mut self, docs: Vec<Document>) -> Vec<DocId> {
        let mut ids = Vec::new();
        for mut doc in docs {
            self.inserts.fetch_add(1, Ordering::Relaxed);
            self.next_id += 1;
            let id = self.next_id;
            doc.insert("_id", id);
            let s = self.shard_of(id);
            self.shards[s].docs.insert(id, doc);
            ids.push(id);
        }
        for id in &ids {
            let s = self.shard_of(*id);
            let shard = &mut self.shards[s];
            let doc = shard.docs.get(id).cloned().expect("inserted above");
            shard.index_doc(*id, &doc);
        }
        ids
    }

    /// Build a secondary index on a dotted path (also indexes existing
    /// documents). Re-creating an existing index is a no-op.
    pub fn create_index(&mut self, field: &str) {
        if !self.index_fields.contains(field) {
            if let Some(j) = &self.journal {
                j.append(&DbRecord::CreateIndex {
                    coll: j.coll().to_string(),
                    field: field.to_string(),
                });
            }
        }
        self.create_index_inner(field);
    }

    pub(crate) fn create_index_inner(&mut self, field: &str) {
        if !self.index_fields.insert(field.to_string()) {
            return;
        }
        for shard in &mut self.shards {
            let mut idx = Index::new();
            for (id, doc) in &shard.docs {
                if let Some(v) = doc.get_path(field) {
                    idx.insert(v, *id);
                }
            }
            shard.indexes.insert(field.to_string(), idx);
        }
    }

    /// Compaction snapshot: `_id` allocator, indexed paths (sorted),
    /// and every document with its `_id`, in id order.
    pub(crate) fn snapshot(&self) -> (u64, Vec<String>, Vec<Document>) {
        let indexes: Vec<String> = self.index_fields.iter().cloned().collect();
        let mut docs: Vec<(DocId, &Document)> = self
            .shards
            .iter()
            .flat_map(|s| s.docs.iter().map(|(id, d)| (*id, d)))
            .collect();
        docs.sort_unstable_by_key(|(id, _)| *id);
        (self.next_id, indexes, docs.into_iter().map(|(_, d)| d.clone()).collect())
    }

    /// Restore from a compaction snapshot: documents land under their
    /// recorded `_id`s (in their key-hash shard) and every index is
    /// rebuilt. Journaling stays whatever it was (recovery runs
    /// detached); the shard count is whatever this collection was
    /// created with — snapshots are shard-count independent.
    pub(crate) fn restore(&mut self, next_id: u64, indexes: Vec<String>, docs: Vec<Document>) {
        for shard in &mut self.shards {
            shard.docs.clear();
            shard.indexes.clear();
        }
        self.index_fields.clear();
        self.next_id = next_id;
        for doc in docs {
            let id = match doc.get("_id") {
                Some(Value::Int(id)) => *id as DocId,
                // A snapshot doc without a valid _id cannot be placed;
                // skip it rather than corrupt the keyspace.
                _ => continue,
            };
            let s = self.shard_of(id);
            self.shards[s].docs.insert(id, doc);
        }
        for field in indexes {
            self.create_index_inner(&field);
        }
    }

    /// Whether `field` has an index.
    pub fn has_index(&self, field: &str) -> bool {
        self.index_fields.contains(field)
    }

    /// Candidate doc ids one indexed predicate admits, sorted
    /// ascending, or `None` when the predicate can't use the index.
    /// Every returned set is a superset of the documents the predicate
    /// matches — callers always re-verify with [`matches`].
    fn index_candidates(idx: &Index, cond: &Value) -> Option<Vec<DocId>> {
        match cond {
            Value::Doc(ops) if ops.iter().all(|(k, _)| k.starts_with('$')) && !ops.is_empty() => {
                // $eq dominates: any other operator can only shrink the
                // set further, and matches() applies it anyway.
                if let Some(eq) = ops.get("$eq") {
                    return Some(idx.lookup_eq(eq));
                }
                // $in: the union of one point lookup per element
                // (eq_loose and the index key order agree exactly).
                if let Some(Value::Array(elems)) = ops.get("$in") {
                    let mut ids: Vec<DocId> = elems
                        .iter()
                        .flat_map(|e| idx.lookup_eq(e))
                        .collect();
                    ids.sort_unstable();
                    ids.dedup();
                    return Some(ids);
                }
                let mut lo: Bound<&Value> = Bound::Unbounded;
                let mut hi: Bound<&Value> = Bound::Unbounded;
                let mut usable = false;
                for (op, operand) in ops.iter() {
                    match op.as_str() {
                        "$gt" => {
                            lo = Bound::Excluded(operand);
                            usable = true;
                        }
                        "$gte" => {
                            lo = Bound::Included(operand);
                            usable = true;
                        }
                        "$lt" => {
                            hi = Bound::Excluded(operand);
                            usable = true;
                        }
                        "$lte" => {
                            hi = Bound::Included(operand);
                            usable = true;
                        }
                        _ => {}
                    }
                }
                if usable {
                    // Range ids come out in key order, not id order.
                    let mut ids = idx.lookup_range(lo, hi);
                    ids.sort_unstable();
                    return Some(ids);
                }
                None
            }
            // Implicit equality on a literal. Unusable for Null (a
            // missing field also matches, and missing fields are not
            // indexed) and while any indexed value is an array (bare
            // literals have containment semantics a whole-value key
            // lookup cannot serve). `$eq`/`$in`/ranges need neither
            // guard: they only match documents carrying the field.
            Value::Null => None,
            _ if idx.has_array_keys() => None,
            literal => Some(idx.lookup_eq(literal)),
        }
    }

    /// Sharded candidate lookup for one indexed field: the sorted union
    /// of every shard's candidate set. Shards partition the keyspace,
    /// so the union is disjoint and the sorted result is exactly what a
    /// single global index would return. If *any* shard cannot serve
    /// the predicate (its index holds an array key, say), the whole
    /// field is unusable — matching the global fallback rule, since the
    /// disqualifying key would have lived in the one big index too.
    fn field_candidates(&self, field: &str, cond: &Value) -> Option<Vec<DocId>> {
        if !self.index_fields.contains(field) {
            return None;
        }
        let mut ids = Vec::new();
        for shard in &self.shards {
            let idx = shard.indexes.get(field).expect("index exists in every shard");
            ids.extend(Self::index_candidates(idx, cond)?);
        }
        if self.shards.len() > 1 {
            ids.sort_unstable();
        }
        Some(ids)
    }

    /// Ids of candidate documents for `query`, via indexes when any
    /// apply; `None` means "no usable index — scan everything". When
    /// several top-level predicates are indexed, their candidate sets
    /// are intersected in ascending-selectivity order (smallest set
    /// first), so the result is never larger than the most selective
    /// index's set. The returned ids are sorted ascending.
    fn candidates(&self, query: &Document) -> Option<Vec<DocId>> {
        let mut sets: Vec<Vec<DocId>> = Vec::new();
        for (field, cond) in query.iter() {
            if field.starts_with('$') {
                continue;
            }
            if let Some(ids) = self.field_candidates(field, cond) {
                sets.push(ids);
            }
        }
        if sets.is_empty() {
            return None;
        }
        sets.sort_by_key(Vec::len);
        let mut iter = sets.into_iter();
        let mut acc = iter.next().expect("non-empty checked");
        for other in iter {
            if acc.is_empty() {
                break;
            }
            acc.retain(|id| other.binary_search(id).is_ok());
        }
        Some(acc)
    }

    /// Planner introspection: how many candidate ids the planner would
    /// examine for `query` (`None` = full scan). Exposed for tests and
    /// benches; the number is an upper bound on documents touched.
    pub fn candidate_count(&self, query: &Document) -> Option<usize> {
        self.candidates(query).map(|ids| ids.len())
    }

    /// Full-scan matching ids, ascending: per-shard scans whose sorted
    /// union is the global ascending id walk.
    fn scan_matching_ids(&self, query: &Document) -> Vec<DocId> {
        let mut out: Vec<DocId> = self
            .shards
            .iter()
            .flat_map(|s| s.docs.iter().filter(|(_, d)| matches(query, d)).map(|(id, _)| *id))
            .collect();
        if self.shards.len() > 1 {
            out.sort_unstable();
        }
        out
    }

    /// Ids of documents matching `query`, ascending — the shared scan
    /// core of the read path. No document is cloned here.
    fn matching_ids(&self, query: &Document) -> Vec<DocId> {
        match self.candidates(query) {
            Some(ids) => ids
                .into_iter()
                .filter(|id| self.doc(*id).is_some_and(|d| matches(query, d)))
                .collect(),
            None => self.scan_matching_ids(query),
        }
    }

    /// The lowest-id matching document's id, if any (the scan-path
    /// `find_one`): each shard early-exits at its first match, and the
    /// global winner is the minimum across shards.
    fn first_matching_id(&self, query: &Document) -> Option<DocId> {
        match self.candidates(query) {
            Some(ids) => ids
                .into_iter()
                .find(|id| self.doc(*id).is_some_and(|d| matches(query, d))),
            None => self
                .shards
                .iter()
                .filter_map(|s| s.docs.iter().find(|(_, d)| matches(query, d)).map(|(id, _)| *id))
                .min(),
        }
    }

    /// All documents matching `query`, in `_id` order.
    pub fn find(&self, query: &Document) -> Vec<Document> {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.matching_ids(query)
            .iter()
            .filter_map(|id| self.doc(*id))
            .cloned()
            .collect()
    }

    /// First matching document.
    pub fn find_one(&self, query: &Document) -> Option<Document> {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.first_matching_id(query).and_then(|id| self.doc(id)).cloned()
    }

    /// Find with sort/skip/limit. Missing sort fields order first
    /// (as `Null`).
    ///
    /// Runs as a cursor: matching ids are collected and ordered first,
    /// and only the documents that survive skip/limit are cloned. When
    /// the sort field has an index covering every document, the rows
    /// stream straight out of the per-shard indexes in merged key order
    /// and the scan stops as soon as `skip + limit` rows matched —
    /// `sort+limit` over a big collection never materialises it.
    pub fn find_with(&self, query: &Document, opts: &FindOptions) -> Vec<Document> {
        self.queries.fetch_add(1, Ordering::Relaxed);
        let limit = opts.limit.unwrap_or(usize::MAX);
        if let Some((field, order)) = &opts.sort_by {
            // Index-order fast path. The covering condition (every doc
            // in every shard carries the field) guarantees no row would
            // sort as a missing-field Null outside the indexes.
            let covering = self.index_fields.contains(field)
                && self.shards.iter().all(|s| {
                    s.indexes.get(field).is_some_and(|idx| idx.len() == s.docs.len())
                });
            if covering {
                let desc = *order == SortOrder::Desc;
                let mut out = Vec::new();
                let mut to_skip = opts.skip;
                // K-way merge of the shards' (key, id) streams. The
                // pick rule — best key first, ties by ascending id —
                // reproduces the exact order of one global index, so
                // the output is byte-identical at any shard count.
                let mut streams: Vec<_> = self
                    .shards
                    .iter()
                    .map(|s| {
                        s.indexes.get(field).expect("covering checked").entries_in_key_order(desc).peekable()
                    })
                    .collect();
                loop {
                    if out.len() >= limit {
                        break;
                    }
                    let mut best: Option<(usize, &Value, DocId)> = None;
                    for (si, stream) in streams.iter_mut().enumerate() {
                        if let Some(&(key, id)) = stream.peek() {
                            let beats = match best {
                                None => true,
                                Some((_, bkey, bid)) => {
                                    let ord = key.cmp_order(bkey);
                                    let ord = if desc { ord.reverse() } else { ord };
                                    ord.then(id.cmp(&bid)) == std::cmp::Ordering::Less
                                }
                            };
                            if beats {
                                best = Some((si, key, id));
                            }
                        }
                    }
                    let Some((si, _, id)) = best else { break };
                    streams[si].next();
                    let doc = self.doc(id).expect("index entry has a doc");
                    if !matches(query, doc) {
                        continue;
                    }
                    if to_skip > 0 {
                        to_skip -= 1;
                        continue;
                    }
                    out.push(doc.clone());
                }
                return out;
            }
            // General path: order ids by the sort key (stable, so ties
            // keep `_id` order), then clone only the surviving window.
            let mut ids = self.matching_ids(query);
            let null = Value::Null;
            let key = |id: &DocId| {
                self.doc(*id)
                    .and_then(|d| d.get_path(field))
                    .unwrap_or(&null)
            };
            ids.sort_by(|a, b| {
                let ord = key(a).cmp_order(key(b));
                match order {
                    SortOrder::Asc => ord,
                    SortOrder::Desc => ord.reverse(),
                }
            });
            return ids
                .into_iter()
                .skip(opts.skip)
                .take(limit)
                .filter_map(|id| self.doc(id))
                .cloned()
                .collect();
        }
        self.matching_ids(query)
            .into_iter()
            .skip(opts.skip)
            .take(limit)
            .filter_map(|id| self.doc(id))
            .cloned()
            .collect()
    }

    /// Count matching documents.
    pub fn count(&self, query: &Document) -> usize {
        self.queries.fetch_add(1, Ordering::Relaxed);
        match self.candidates(query) {
            Some(ids) => ids
                .iter()
                .filter_map(|id| self.doc(*id))
                .filter(|d| matches(query, d))
                .count(),
            // A count needs no ordering: per-shard totals just sum.
            None => self
                .shards
                .iter()
                .map(|s| s.docs.values().filter(|d| matches(query, d)).count())
                .sum(),
        }
    }

    /// Distinct values of `field` among matching documents.
    ///
    /// Uses the same index-driven candidate planning as `find`/`count`
    /// (both paths visit ids in `_id` order, so the surviving
    /// loose-equality representative is identical either way), and
    /// clones only the distinct values — never a document.
    pub fn distinct(&self, field: &str, query: &Document) -> Vec<Value> {
        self.queries.fetch_add(1, Ordering::Relaxed);
        let mut out: Vec<Value> = Vec::new();
        for id in self.matching_ids(query) {
            let d = self.doc(id).expect("matching id has a doc");
            if let Some(v) = d.get_path(field) {
                if !out.iter().any(|x| x.eq_loose(v)) {
                    out.push(v.clone());
                }
            }
        }
        out.sort_by(|a, b| a.cmp_order(b));
        out
    }

    /// Update every matching document.
    pub fn update_many(&mut self, query: &Document, update: &Document) -> UpdateResult {
        if let Some(j) = &self.journal {
            j.append(&DbRecord::UpdateMany {
                coll: j.coll().to_string(),
                query: query.clone(),
                update: update.clone(),
            });
        }
        self.updates.fetch_add(1, Ordering::Relaxed);
        let ids = self.matching_ids(query);
        let mut res = UpdateResult {
            matched: ids.len(),
            ..Default::default()
        };
        for id in ids {
            let s = self.shard_of(id);
            let shard = &mut self.shards[s];
            let doc = shard.docs.get_mut(&id).expect("id listed above");
            let before = doc.clone();
            if apply_update(update, doc) {
                res.modified += 1;
                let after = doc.clone();
                shard.reindex(id, &before, &after);
            }
        }
        res
    }

    /// Update the first matching document; optionally insert when
    /// nothing matches (upsert). On upsert the query's literal equality
    /// fields seed the new document — this is how RAI's ranking table
    /// does "overwrite existing timing records" per team.
    pub fn update_one(&mut self, query: &Document, update: &Document, upsert: bool) -> UpdateResult {
        if let Some(j) = &self.journal {
            j.append(&DbRecord::UpdateOne {
                coll: j.coll().to_string(),
                query: query.clone(),
                update: update.clone(),
                upsert,
            });
        }
        self.updates.fetch_add(1, Ordering::Relaxed);
        match self.first_matching_id(query) {
            Some(id) => {
                let s = self.shard_of(id);
                let shard = &mut self.shards[s];
                let doc = shard.docs.get_mut(&id).expect("id found above");
                let before = doc.clone();
                let modified = apply_update(update, doc);
                if modified {
                    let after = doc.clone();
                    shard.reindex(id, &before, &after);
                }
                UpdateResult {
                    matched: 1,
                    modified: usize::from(modified),
                    upserted: None,
                }
            }
            None if upsert => {
                let mut seed = Document::new();
                for (k, v) in query.iter() {
                    if !k.starts_with('$') && !matches!(v, Value::Doc(_)) {
                        seed.insert(k.clone(), v.clone());
                    }
                }
                apply_update(update, &mut seed);
                // The enclosing update_one was already journaled as one
                // record; the upsert insert must not journal again.
                let id = self.insert_one_inner(seed);
                UpdateResult {
                    matched: 0,
                    modified: 0,
                    upserted: Some(id),
                }
            }
            None => UpdateResult::default(),
        }
    }

    /// Delete every matching document; returns how many were removed.
    pub fn delete_many(&mut self, query: &Document) -> usize {
        if let Some(j) = &self.journal {
            j.append(&DbRecord::DeleteMany { coll: j.coll().to_string(), query: query.clone() });
        }
        self.updates.fetch_add(1, Ordering::Relaxed);
        let ids = self.matching_ids(query);
        for id in &ids {
            let s = self.shard_of(*id);
            let shard = &mut self.shards[s];
            if let Some(doc) = shard.docs.remove(id) {
                shard.unindex_doc(*id, &doc);
            }
        }
        ids.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc;

    fn rankings() -> Collection {
        rankings_sharded(1)
    }

    fn rankings_sharded(shards: usize) -> Collection {
        let mut c = Collection::with_shards(shards);
        c.insert_many([
            doc! { "team" => "a", "runtime" => 0.45, "final" => true },
            doc! { "team" => "b", "runtime" => 0.91, "final" => true },
            doc! { "team" => "c", "runtime" => 0.48, "final" => false },
            doc! { "team" => "d", "runtime" => 120.0, "final" => true },
        ]);
        c
    }

    #[test]
    fn insert_assigns_ids() {
        let mut c = Collection::new();
        let id1 = c.insert_one(doc! { "x" => 1 });
        let id2 = c.insert_one(doc! { "x" => 2 });
        assert_ne!(id1, id2);
        assert_eq!(c.len(), 2);
        let d = c.find_one(&doc! { "x" => 1 }).unwrap();
        assert_eq!(d.get("_id"), Some(&Value::Int(id1 as i64)));
    }

    #[test]
    fn find_and_count() {
        let c = rankings();
        assert_eq!(c.find(&doc! { "final" => true }).len(), 3);
        assert_eq!(c.count(&doc! { "runtime" => doc!{ "$lt" => 1.0 } }), 3);
        assert_eq!(c.count(&Document::new()), 4);
    }

    #[test]
    fn sorted_ranking_query() {
        let c = rankings();
        let top: Vec<String> = c
            .find_with(
                &doc! { "final" => true },
                &FindOptions::sort_asc("runtime").limit(2),
            )
            .into_iter()
            .map(|d| d.get("team").unwrap().as_str().unwrap().to_string())
            .collect();
        assert_eq!(top, vec!["a", "b"]);
    }

    #[test]
    fn skip_and_desc() {
        let c = rankings();
        let second_slowest = c.find_with(&Document::new(), &FindOptions::sort_desc("runtime").skip(1).limit(1));
        assert_eq!(second_slowest[0].get("team").unwrap().as_str(), Some("b"));
    }

    #[test]
    fn update_many_and_modified_counts() {
        let mut c = rankings();
        let res = c.update_many(
            &doc! { "final" => true },
            &doc! { "$set" => doc!{ "graded" => false } },
        );
        assert_eq!(res.matched, 3);
        assert_eq!(res.modified, 3);
        // Second time: matched but nothing changes.
        let res2 = c.update_many(
            &doc! { "final" => true },
            &doc! { "$set" => doc!{ "graded" => false } },
        );
        assert_eq!(res2.matched, 3);
        assert_eq!(res2.modified, 0);
    }

    #[test]
    fn upsert_ranking_overwrite() {
        let mut c = Collection::new();
        // First final submission creates the row…
        let r1 = c.update_one(
            &doc! { "team" => "x" },
            &doc! { "$set" => doc!{ "runtime" => 1.9 } },
            true,
        );
        assert!(r1.upserted.is_some());
        // …later submissions overwrite it (paper: "overwrites existing
        // timing records").
        let r2 = c.update_one(
            &doc! { "team" => "x" },
            &doc! { "$set" => doc!{ "runtime" => 0.7 } },
            true,
        );
        assert_eq!(r2.matched, 1);
        assert_eq!(c.len(), 1);
        assert_eq!(
            c.find_one(&doc! { "team" => "x" }).unwrap().get("runtime"),
            Some(&Value::Float(0.7))
        );
    }

    #[test]
    fn delete_many() {
        let mut c = rankings();
        assert_eq!(c.delete_many(&doc! { "final" => false }), 1);
        assert_eq!(c.len(), 3);
        assert_eq!(c.delete_many(&Document::new()), 3);
        assert!(c.is_empty());
    }

    #[test]
    fn distinct_values() {
        let c = rankings();
        let finals = c.distinct("final", &Document::new());
        assert_eq!(finals, vec![Value::Bool(false), Value::Bool(true)]);
    }

    #[test]
    fn distinct_uses_the_planner_and_matches_the_scan() {
        let mut with_idx = rankings();
        with_idx.create_index("final");
        let without_idx = rankings();
        for q in [
            doc! { "final" => true },
            doc! { "final" => false },
            doc! { "final" => doc!{ "$gt" => 200.0 } },
        ] {
            assert_eq!(
                with_idx.distinct("team", &q),
                without_idx.distinct("team", &q),
                "indexed vs scan distinct mismatch for {q}"
            );
        }
    }

    #[test]
    fn index_results_equal_scan_results() {
        let mut with_idx = rankings();
        with_idx.create_index("runtime");
        let without_idx = rankings();
        for q in [
            doc! { "runtime" => doc!{ "$lt" => 1.0 } },
            doc! { "runtime" => doc!{ "$gte" => 0.48, "$lte" => 130.0 } },
            doc! { "runtime" => 0.45 },
            doc! { "runtime" => doc!{ "$gt" => 200.0 } },
        ] {
            let a = with_idx.find(&q);
            let b = without_idx.find(&q);
            assert_eq!(a, b, "index vs scan mismatch for {q}");
        }
    }

    #[test]
    fn multi_index_intersection_starts_from_smallest_set() {
        // 200 docs: "kind" is half-and-half (100-doc candidate sets),
        // "job" is unique (1-doc sets). The planner must intersect in
        // ascending-selectivity order so the query touches 1 candidate,
        // not 100 — regression test for the old first-index-wins walk,
        // whose HashMap iteration order could pick either.
        let mut c = Collection::new();
        for i in 0..200i64 {
            c.insert_one(doc! { "kind" => if i % 2 == 0 { "run" } else { "submit" }, "job" => i });
        }
        c.create_index("kind");
        c.create_index("job");
        let q = doc! { "kind" => "run", "job" => 42 };
        assert_eq!(c.candidate_count(&q), Some(1));
        let hit = c.find(&q);
        assert_eq!(hit.len(), 1);
        assert_eq!(hit[0].get("job"), Some(&Value::Int(42)));
        // Contradictory predicates intersect to nothing.
        assert_eq!(c.candidate_count(&doc! { "kind" => "submit", "job" => 42 }), Some(0));
        assert!(c.find(&doc! { "kind" => "submit", "job" => 42 }).is_empty());
        // A range plus an equality still intersects smallest-first.
        let q = doc! { "job" => doc!{ "$gte" => 40, "$lt" => 60 }, "kind" => "run" };
        assert!(c.candidate_count(&q).unwrap() <= 20);
        assert_eq!(c.find(&q).len(), 10);
    }

    #[test]
    fn in_predicate_uses_point_lookups() {
        let mut c = rankings();
        c.create_index("team");
        let q = doc! { "team" => doc!{ "$in" => vec!["a", "d", "zz"] } };
        assert_eq!(c.candidate_count(&q), Some(2));
        let teams: Vec<_> = c
            .find(&q)
            .into_iter()
            .map(|d| d.get("team").unwrap().as_str().unwrap().to_string())
            .collect();
        assert_eq!(teams, vec!["a", "d"]);
        // Empty $in list: zero candidates, zero results.
        assert_eq!(c.candidate_count(&doc! { "team" => doc!{ "$in" => Vec::<&str>::new() } }), Some(0));
    }

    #[test]
    fn null_literal_query_falls_back_to_scan() {
        let mut c = Collection::new();
        c.create_index("b");
        c.insert_one(doc! { "a" => 1 }); // no "b": matches the bare Null literal
        c.insert_one(doc! { "b" => Value::Null });
        c.insert_one(doc! { "b" => 5 });
        // A bare Null literal also matches docs missing the field, which
        // are not in the index — the planner must not use it.
        assert_eq!(c.candidate_count(&doc! { "b" => Value::Null }), None);
        assert_eq!(c.find(&doc! { "b" => Value::Null }).len(), 2);
        // $eq Null requires the field present, so the index is usable.
        assert_eq!(c.candidate_count(&doc! { "b" => doc!{ "$eq" => Value::Null } }), Some(1));
        assert_eq!(c.find(&doc! { "b" => doc!{ "$eq" => Value::Null } }).len(), 1);
        // Once an array value is indexed, bare-literal containment
        // semantics force non-Null literals back to a scan too.
        c.insert_one(doc! { "b" => vec![5, 6] });
        assert_eq!(c.candidate_count(&doc! { "b" => 5 }), None);
        assert_eq!(c.find(&doc! { "b" => 5 }).len(), 2, "scalar and containing array");
        // Operator equality keeps whole-value semantics and the index.
        assert_eq!(c.candidate_count(&doc! { "b" => doc!{ "$eq" => 5 } }), Some(1));
    }

    #[test]
    fn indexed_sort_matches_materialised_sort() {
        let mut indexed = Collection::new();
        let mut plain = Collection::new();
        for i in 0..50i64 {
            // Duplicate runtimes exercise tie-breaking by `_id`.
            let d = doc! { "team" => format!("t{i:02}"), "runtime" => (i % 7) as f64, "final" => i % 3 == 0 };
            indexed.insert_one(d.clone());
            plain.insert_one(d);
        }
        indexed.create_index("runtime");
        for opts in [
            FindOptions::sort_asc("runtime"),
            FindOptions::sort_desc("runtime"),
            FindOptions::sort_asc("runtime").skip(3).limit(5),
            FindOptions::sort_desc("runtime").skip(10).limit(40),
        ] {
            let a = indexed.find_with(&doc! { "final" => true }, &opts);
            let b = plain.find_with(&doc! { "final" => true }, &opts);
            assert_eq!(a, b, "index-order sort diverged for {opts:?}");
        }
        // A doc missing the sort field disables the fast path but keeps
        // results identical (missing sorts first, as Null).
        indexed.insert_one(doc! { "team" => "no-runtime", "final" => true });
        plain.insert_one(doc! { "team" => "no-runtime", "final" => true });
        let a = indexed.find_with(&doc! { "final" => true }, &FindOptions::sort_asc("runtime"));
        let b = plain.find_with(&doc! { "final" => true }, &FindOptions::sort_asc("runtime"));
        assert_eq!(a, b);
        assert_eq!(a[0].get("team").unwrap().as_str(), Some("no-runtime"));
    }

    #[test]
    fn index_maintained_through_updates_and_deletes() {
        let mut c = rankings();
        c.create_index("runtime");
        c.update_one(
            &doc! { "team" => "a" },
            &doc! { "$set" => doc!{ "runtime" => 5.0 } },
            false,
        );
        assert_eq!(c.count(&doc! { "runtime" => doc!{ "$lt" => 1.0 } }), 2);
        assert_eq!(c.count(&doc! { "runtime" => 5.0 }), 1);
        c.delete_many(&doc! { "team" => "a" });
        assert_eq!(c.count(&doc! { "runtime" => 5.0 }), 0);
    }

    #[test]
    fn create_index_on_existing_data() {
        let mut c = rankings();
        c.create_index("team");
        assert!(c.has_index("team"));
        assert_eq!(c.find(&doc! { "team" => "b" }).len(), 1);
        // Recreating is a no-op.
        c.create_index("team");
    }

    #[test]
    fn update_one_without_upsert_misses() {
        let mut c = Collection::new();
        let r = c.update_one(&doc! { "team" => "ghost" }, &doc! { "$set" => doc!{ "x" => 1 } }, false);
        assert_eq!(r, UpdateResult::default());
        assert!(c.is_empty());
    }

    // ---- sharding ----------------------------------------------------

    #[test]
    fn shard_assignment_is_pure_key_hash() {
        let mut c = Collection::with_shards(4);
        assert_eq!(c.shard_count(), 4);
        for i in 0..20i64 {
            c.insert_one(doc! { "n" => i });
        }
        // Ids are 1..=20; id % 4 spreads 5 per shard.
        assert_eq!(c.shard_sizes(), vec![5, 5, 5, 5]);
        assert_eq!(c.len(), 20);
    }

    /// Drives an identical mixed workload through shard counts 1/4/16
    /// and asserts every read path returns byte-identical results —
    /// the tentpole determinism contract at the collection level.
    #[test]
    fn sharded_collections_are_observationally_identical() {
        let build = |shards: usize| {
            let mut c = Collection::with_shards(shards);
            c.create_index("runtime");
            c.create_index("team");
            for i in 0..120i64 {
                c.insert_one(doc! {
                    "team" => format!("t{:02}", i % 17),
                    "runtime" => ((i * 7) % 23) as f64 / 4.0,
                    "kind" => if i % 3 == 0 { "submit" } else { "run" },
                    "final" => i % 5 == 0,
                });
            }
            c.update_many(
                &doc! { "kind" => "submit" },
                &doc! { "$set" => doc!{ "graded" => true } },
            );
            c.update_one(
                &doc! { "team" => "t99" },
                &doc! { "$set" => doc!{ "runtime" => 9.5 } },
                true,
            );
            c.delete_many(&doc! { "runtime" => doc!{ "$gt" => 5.0, "$lt" => 5.3 } });
            c
        };
        let reference = build(1);
        for shards in [4usize, 16] {
            let sharded = build(shards);
            assert_eq!(sharded.len(), reference.len());
            for q in [
                doc! {},
                doc! { "kind" => "run" },
                doc! { "team" => "t03" },
                doc! { "runtime" => doc!{ "$gte" => 1.0, "$lt" => 4.0 } },
                doc! { "team" => doc!{ "$in" => vec!["t01", "t05", "none"] } },
                doc! { "kind" => "submit", "final" => true },
            ] {
                assert_eq!(sharded.find(&q), reference.find(&q), "find diverged for {q}");
                assert_eq!(sharded.count(&q), reference.count(&q));
                assert_eq!(sharded.find_one(&q), reference.find_one(&q));
                assert_eq!(
                    sharded.distinct("team", &q),
                    reference.distinct("team", &q),
                    "distinct diverged for {q}"
                );
                for opts in [
                    FindOptions::sort_asc("runtime"),
                    FindOptions::sort_desc("runtime"),
                    FindOptions::sort_asc("runtime").skip(5).limit(10),
                    FindOptions::sort_desc("team").limit(7),
                    FindOptions::default().skip(3).limit(11),
                ] {
                    assert_eq!(
                        sharded.find_with(&q, &opts),
                        reference.find_with(&q, &opts),
                        "find_with diverged for {q} {opts:?} at {shards} shards"
                    );
                }
            }
            // Snapshots are shard-count independent: restoring a
            // 16-shard snapshot into a 1-shard collection round-trips.
            let (next_id, indexes, docs) = sharded.snapshot();
            assert_eq!((next_id, &indexes, &docs), {
                let (n, i, d) = reference.snapshot();
                (n, &i.clone(), &d.clone())
            });
            let mut restored = Collection::with_shards(1);
            restored.restore(next_id, indexes, docs);
            assert_eq!(restored.find(&doc! {}), reference.find(&doc! {}));
        }
    }

    #[test]
    fn sharded_covering_sort_merges_key_streams() {
        let mut c = Collection::with_shards(4);
        for i in 0..40i64 {
            // Heavy duplicate keys force cross-shard ties everywhere.
            c.insert_one(doc! { "runtime" => (i % 3) as f64, "n" => i });
        }
        c.create_index("runtime");
        // Covering: every doc carries the field in every shard.
        let asc = c.find_with(&doc! {}, &FindOptions::sort_asc("runtime"));
        let mut prev: Option<(f64, i64)> = None;
        for d in &asc {
            let rt = match d.get("runtime") {
                Some(Value::Float(f)) => *f,
                other => panic!("runtime missing: {other:?}"),
            };
            let id = match d.get("_id") {
                Some(Value::Int(i)) => *i,
                _ => unreachable!(),
            };
            if let Some((prt, pid)) = prev {
                assert!(rt > prt || (rt == prt && id > pid), "merged order broken");
            }
            prev = Some((rt, id));
        }
        assert_eq!(asc.len(), 40);
        // Limit stops the merge early without disturbing order.
        let top3 = c.find_with(&doc! {}, &FindOptions::sort_desc("runtime").limit(3));
        assert_eq!(top3, c.find_with(&doc! {}, &FindOptions::sort_desc("runtime"))[..3].to_vec());
    }
}
