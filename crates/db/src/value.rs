//! The dynamic value/document model, with a total order matching the
//! BSON comparison spirit (type rank first, then value).

use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;

/// A dynamically typed value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Absent/None.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Ordered array.
    Array(Vec<Value>),
    /// Nested document.
    Doc(Document),
}

/// A document: field → value. Fields are kept sorted (BTreeMap), and
/// dotted paths (`"meta.team"`) address nested documents.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Document(pub BTreeMap<String, Value>);

impl Value {
    /// Type rank for cross-type ordering: Null < Bool < numbers <
    /// strings < arrays < documents.
    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Str(_) => 3,
            Value::Array(_) => 4,
            Value::Doc(_) => 5,
        }
    }

    /// Numeric view (ints widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Bool view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Document view.
    pub fn as_doc(&self) -> Option<&Document> {
        match self {
            Value::Doc(d) => Some(d),
            _ => None,
        }
    }

    /// Total order used by queries and sorts. Numeric values compare
    /// numerically across Int/Float; NaN sorts below all other floats.
    pub fn cmp_order(&self, other: &Value) -> Ordering {
        let (ra, rb) = (self.rank(), other.rank());
        if ra != rb {
            return ra.cmp(&rb);
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (a @ (Value::Int(_) | Value::Float(_)), b @ (Value::Int(_) | Value::Float(_))) => {
                let (x, y) = (
                    a.as_f64().expect("numeric rank"),
                    b.as_f64().expect("numeric rank"),
                );
                x.partial_cmp(&y).unwrap_or_else(|| {
                    // Order NaN consistently: NaN < everything, NaN == NaN.
                    match (x.is_nan(), y.is_nan()) {
                        (true, true) => Ordering::Equal,
                        (true, false) => Ordering::Less,
                        _ => Ordering::Greater,
                    }
                })
            }
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Array(a), Value::Array(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    match x.cmp_order(y) {
                        Ordering::Equal => continue,
                        other => return other,
                    }
                }
                a.len().cmp(&b.len())
            }
            (Value::Doc(a), Value::Doc(b)) => {
                for ((ka, va), (kb, vb)) in a.0.iter().zip(b.0.iter()) {
                    match ka.cmp(kb).then_with(|| va.cmp_order(vb)) {
                        Ordering::Equal => continue,
                        other => return other,
                    }
                }
                a.0.len().cmp(&b.0.len())
            }
            _ => unreachable!("rank equality covers all same-rank pairs"),
        }
    }

    /// Semantic equality used by `$eq`: `Int(1) == Float(1.0)`.
    pub fn eq_loose(&self, other: &Value) -> bool {
        self.cmp_order(other) == Ordering::Equal
    }
}

impl Document {
    /// An empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a field (replacing any existing value).
    pub fn insert(&mut self, key: impl Into<String>, value: impl Into<Value>) -> &mut Self {
        self.0.insert(key.into(), value.into());
        self
    }

    /// Direct (non-dotted) field access.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.0.get(key)
    }

    /// Dotted-path access: `get_path("meta.team")` descends into nested
    /// documents. A path segment that is not a document yields `None`.
    pub fn get_path(&self, path: &str) -> Option<&Value> {
        let mut parts = path.split('.');
        let first = parts.next()?;
        let mut cur = self.0.get(first)?;
        for p in parts {
            cur = cur.as_doc()?.0.get(p)?;
        }
        Some(cur)
    }

    /// Dotted-path mutable access, creating intermediate documents.
    pub fn entry_path(&mut self, path: &str) -> &mut Value {
        let mut parts: Vec<&str> = path.split('.').collect();
        let last = parts.pop().expect("path is non-empty");
        let mut cur = &mut self.0;
        for p in parts {
            let slot = cur
                .entry(p.to_string())
                .or_insert_with(|| Value::Doc(Document::new()));
            if !matches!(slot, Value::Doc(_)) {
                *slot = Value::Doc(Document::new());
            }
            match slot {
                Value::Doc(d) => cur = &mut d.0,
                _ => unreachable!("coerced to Doc above"),
            }
        }
        cur.entry(last.to_string()).or_insert(Value::Null)
    }

    /// Remove a dotted path; returns the removed value.
    pub fn remove_path(&mut self, path: &str) -> Option<Value> {
        let mut parts: Vec<&str> = path.split('.').collect();
        let last = parts.pop()?;
        let mut cur = &mut self.0;
        for p in parts {
            match cur.get_mut(p) {
                Some(Value::Doc(d)) => cur = &mut d.0,
                _ => return None,
            }
        }
        cur.remove(last)
    }

    /// Number of top-level fields.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the document has no fields.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterate fields in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.0.iter()
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Array(a) => {
                write!(f, "[")?;
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Doc(d) => write!(f, "{d}"),
        }
    }
}

impl fmt::Display for Document {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}: {v}")?;
        }
        write!(f, "}}")
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i as i64)
    }
}
impl From<u64> for Value {
    fn from(i: u64) -> Self {
        Value::Int(i as i64)
    }
}
impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i as i64)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl From<Document> for Value {
    fn from(d: Document) -> Self {
        Value::Doc(d)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map(Into::into).unwrap_or(Value::Null)
    }
}

/// Construct a [`Document`] literal:
/// `doc! { "team" => "x", "runtime" => 0.5 }`.
#[macro_export]
macro_rules! doc {
    () => { $crate::Document::new() };
    ( $( $k:expr => $v:expr ),+ $(,)? ) => {{
        let mut d = $crate::Document::new();
        $( d.insert($k, $v); )+
        d
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doc_macro_and_access() {
        let d = doc! { "a" => 1, "nested" => doc!{ "x" => "y" }, "arr" => vec![1, 2] };
        assert_eq!(d.get("a"), Some(&Value::Int(1)));
        assert_eq!(d.get_path("nested.x"), Some(&Value::from("y")));
        assert_eq!(d.get_path("arr"), Some(&Value::from(vec![1i64, 2])));
        assert_eq!(d.get_path("nested.missing"), None);
        assert_eq!(d.get_path("a.b"), None, "descending through a scalar");
    }

    #[test]
    fn entry_path_creates_intermediates() {
        let mut d = Document::new();
        *d.entry_path("meta.team.name") = Value::from("x");
        assert_eq!(d.get_path("meta.team.name"), Some(&Value::from("x")));
        // Coerces a scalar in the way of the path into a document.
        let mut d2 = doc! { "a" => 1 };
        *d2.entry_path("a.b") = Value::from(2);
        assert_eq!(d2.get_path("a.b"), Some(&Value::Int(2)));
    }

    #[test]
    fn remove_path() {
        let mut d = doc! { "m" => doc!{ "x" => 1, "y" => 2 } };
        assert_eq!(d.remove_path("m.x"), Some(Value::Int(1)));
        assert_eq!(d.remove_path("m.x"), None);
        assert_eq!(d.get_path("m.y"), Some(&Value::Int(2)));
    }

    #[test]
    fn ordering_across_types() {
        let mut vals = vec![
            Value::Str("a".into()),
            Value::Int(5),
            Value::Null,
            Value::Bool(true),
            Value::Float(2.5),
            Value::Array(vec![Value::Int(1)]),
        ];
        vals.sort_by(|a, b| a.cmp_order(b));
        assert_eq!(
            vals,
            vec![
                Value::Null,
                Value::Bool(true),
                Value::Float(2.5),
                Value::Int(5),
                Value::Str("a".into()),
                Value::Array(vec![Value::Int(1)]),
            ]
        );
    }

    #[test]
    fn numeric_cross_type_equality() {
        assert!(Value::Int(1).eq_loose(&Value::Float(1.0)));
        assert!(!Value::Int(1).eq_loose(&Value::Float(1.5)));
        assert_eq!(Value::Int(2).cmp_order(&Value::Float(1.5)), Ordering::Greater);
    }

    #[test]
    fn nan_ordering_is_total() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.cmp_order(&nan), Ordering::Equal);
        assert_eq!(nan.cmp_order(&Value::Float(0.0)), Ordering::Less);
        assert_eq!(Value::Float(0.0).cmp_order(&nan), Ordering::Greater);
    }

    #[test]
    fn array_lexicographic_order() {
        let a = Value::from(vec![1i64, 2]);
        let b = Value::from(vec![1i64, 3]);
        let c = Value::from(vec![1i64, 2, 0]);
        assert_eq!(a.cmp_order(&b), Ordering::Less);
        assert_eq!(a.cmp_order(&c), Ordering::Less);
    }

    #[test]
    fn display_renders() {
        let d = doc! { "t" => "a", "n" => 1 };
        assert_eq!(d.to_string(), "{n: 1, t: \"a\"}");
        assert_eq!(Value::Null.to_string(), "null");
    }

    #[test]
    fn option_conversion() {
        assert_eq!(Value::from(Some(3i64)), Value::Int(3));
        assert_eq!(Value::from(None::<i64>), Value::Null);
    }
}
