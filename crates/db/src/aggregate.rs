//! Aggregation pipelines — the audit/reporting queries the paper's §IV
//! database exists for ("useful for grading or any other coursework
//! auditing process"): per-team submission counts, success rates, mean
//! runtimes per worker, and so on.
//!
//! A pipeline is a list of [`Stage`]s applied in order, Mongo-style:
//! `$match → $group → $sort → $skip/$limit → $project`.

use crate::collection::{Collection, SortOrder};
use crate::query::matches;
use crate::value::{Document, Value};

/// One accumulator inside a `$group`.
#[derive(Clone, Debug, PartialEq)]
pub enum Accumulator {
    /// Count of documents in the group.
    Count,
    /// Sum of a numeric field (non-numeric values ignored).
    Sum(String),
    /// Mean of a numeric field (groups with no numeric values get Null).
    Avg(String),
    /// Minimum by the database value order.
    Min(String),
    /// Maximum by the database value order.
    Max(String),
    /// First value encountered (insertion order).
    First(String),
    /// All values collected into an array.
    Push(String),
}

/// A pipeline stage.
#[derive(Clone, Debug, PartialEq)]
pub enum Stage {
    /// Filter with the standard query engine.
    Match(Document),
    /// Group by a dotted path (`None` groups everything into one
    /// bucket); each output document carries `_id` (the group key) and
    /// one field per accumulator.
    Group {
        /// Dotted path of the grouping key.
        by: Option<String>,
        /// `(output field, accumulator)` pairs.
        fields: Vec<(String, Accumulator)>,
    },
    /// Sort by a dotted path.
    Sort(String, SortOrder),
    /// Drop the first N documents.
    Skip(usize),
    /// Keep at most N documents.
    Limit(usize),
    /// Keep only the listed top-level fields.
    Project(Vec<String>),
}

/// Run a pipeline over a collection snapshot.
pub fn aggregate(collection: &Collection, pipeline: &[Stage]) -> Vec<Document> {
    let mut docs = collection.find(&Document::new());
    for stage in pipeline {
        docs = apply_stage(docs, stage);
    }
    docs
}

/// Run a pipeline over an already-materialized document set (lets
/// callers chain custom sources).
pub fn aggregate_docs(docs: Vec<Document>, pipeline: &[Stage]) -> Vec<Document> {
    let mut docs = docs;
    for stage in pipeline {
        docs = apply_stage(docs, stage);
    }
    docs
}

fn apply_stage(docs: Vec<Document>, stage: &Stage) -> Vec<Document> {
    match stage {
        Stage::Match(query) => docs.into_iter().filter(|d| matches(query, d)).collect(),
        Stage::Sort(field, order) => {
            let mut docs = docs;
            let null = Value::Null;
            docs.sort_by(|a, b| {
                let x = a.get_path(field).unwrap_or(&null);
                let y = b.get_path(field).unwrap_or(&null);
                match order {
                    SortOrder::Asc => x.cmp_order(y),
                    SortOrder::Desc => x.cmp_order(y).reverse(),
                }
            });
            docs
        }
        Stage::Skip(n) => docs.into_iter().skip(*n).collect(),
        Stage::Limit(n) => docs.into_iter().take(*n).collect(),
        Stage::Project(fields) => docs
            .into_iter()
            .map(|d| {
                let mut out = Document::new();
                for f in fields {
                    if let Some(v) = d.get(f) {
                        out.insert(f.clone(), v.clone());
                    }
                }
                out
            })
            .collect(),
        Stage::Group { by, fields } => group(docs, by.as_deref(), fields),
    }
}

fn group(docs: Vec<Document>, by: Option<&str>, fields: &[(String, Accumulator)]) -> Vec<Document> {
    // Group keys keep first-seen order, then output is sorted by key for
    // determinism.
    let mut keys: Vec<Value> = Vec::new();
    let mut buckets: Vec<Vec<Document>> = Vec::new();
    for d in docs {
        let key = match by {
            Some(path) => d.get_path(path).cloned().unwrap_or(Value::Null),
            None => Value::Null,
        };
        match keys.iter().position(|k| k.eq_loose(&key)) {
            Some(i) => buckets[i].push(d),
            None => {
                keys.push(key);
                buckets.push(vec![d]);
            }
        }
    }
    let mut out: Vec<(Value, Document)> = keys
        .into_iter()
        .zip(buckets)
        .map(|(key, bucket)| {
            let mut doc = Document::new();
            doc.insert("_id", key.clone());
            for (name, acc) in fields {
                doc.insert(name.clone(), run_accumulator(acc, &bucket));
            }
            (key, doc)
        })
        .collect();
    out.sort_by(|(a, _), (b, _)| a.cmp_order(b));
    out.into_iter().map(|(_, d)| d).collect()
}

fn run_accumulator(acc: &Accumulator, bucket: &[Document]) -> Value {
    let values = |path: &str| {
        bucket
            .iter()
            .filter_map(move |d| d.get_path(path))
            .cloned()
            .collect::<Vec<Value>>()
    };
    match acc {
        Accumulator::Count => Value::Int(bucket.len() as i64),
        Accumulator::Sum(path) => {
            let total: f64 = values(path).iter().filter_map(Value::as_f64).sum();
            // Keep integer sums integral when every input was an Int.
            if values(path).iter().all(|v| matches!(v, Value::Int(_))) {
                Value::Int(total as i64)
            } else {
                Value::Float(total)
            }
        }
        Accumulator::Avg(path) => {
            let nums: Vec<f64> = values(path).iter().filter_map(Value::as_f64).collect();
            if nums.is_empty() {
                Value::Null
            } else {
                Value::Float(nums.iter().sum::<f64>() / nums.len() as f64)
            }
        }
        // Min/Max skip explicit nulls: a failed submission records
        // `internal_secs: null` and must not become the "best" runtime.
        Accumulator::Min(path) => values(path)
            .into_iter()
            .filter(|v| !matches!(v, Value::Null))
            .min_by(|a, b| a.cmp_order(b))
            .unwrap_or(Value::Null),
        Accumulator::Max(path) => values(path)
            .into_iter()
            .filter(|v| !matches!(v, Value::Null))
            .max_by(|a, b| a.cmp_order(b))
            .unwrap_or(Value::Null),
        Accumulator::First(path) => values(path).into_iter().next().unwrap_or(Value::Null),
        Accumulator::Push(path) => Value::Array(values(path)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc;

    /// The submissions table the worker writes (§V step ⑦).
    fn submissions() -> Collection {
        let mut c = Collection::new();
        c.insert_many([
            doc! { "team" => "a", "success" => true,  "secs" => 0.5, "worker" => "w0" },
            doc! { "team" => "a", "success" => true,  "secs" => 0.4, "worker" => "w1" },
            doc! { "team" => "a", "success" => false, "worker" => "w0" },
            doc! { "team" => "b", "success" => true,  "secs" => 1.5, "worker" => "w0" },
            doc! { "team" => "b", "success" => true,  "secs" => 1.1, "worker" => "w1" },
            doc! { "team" => "c", "success" => false, "worker" => "w1" },
        ]);
        c
    }

    #[test]
    fn per_team_submission_counts() {
        let rows = aggregate(
            &submissions(),
            &[Stage::Group {
                by: Some("team".into()),
                fields: vec![("n".into(), Accumulator::Count)],
            }],
        );
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].get("_id"), Some(&Value::from("a")));
        assert_eq!(rows[0].get("n"), Some(&Value::Int(3)));
        assert_eq!(rows[2].get("n"), Some(&Value::Int(1)));
    }

    #[test]
    fn match_then_group_mean_runtime() {
        let rows = aggregate(
            &submissions(),
            &[
                Stage::Match(doc! { "success" => true }),
                Stage::Group {
                    by: Some("team".into()),
                    fields: vec![
                        ("avg".into(), Accumulator::Avg("secs".into())),
                        ("best".into(), Accumulator::Min("secs".into())),
                        ("worst".into(), Accumulator::Max("secs".into())),
                    ],
                },
            ],
        );
        assert_eq!(rows.len(), 2, "team c has no successes");
        let a = &rows[0];
        assert!((a.get("avg").unwrap().as_f64().unwrap() - 0.45).abs() < 1e-9);
        assert_eq!(a.get("best"), Some(&Value::Float(0.4)));
        assert_eq!(a.get("worst"), Some(&Value::Float(0.5)));
    }

    #[test]
    fn global_group_and_sum() {
        let rows = aggregate(
            &submissions(),
            &[Stage::Group {
                by: None,
                fields: vec![
                    ("total".into(), Accumulator::Count),
                    ("time".into(), Accumulator::Sum("secs".into())),
                ],
            }],
        );
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("total"), Some(&Value::Int(6)));
        assert!((rows[0].get("time").unwrap().as_f64().unwrap() - 3.5).abs() < 1e-9);
    }

    #[test]
    fn integer_sum_stays_integer() {
        let mut c = Collection::new();
        c.insert_many([doc! { "n" => 2 }, doc! { "n" => 3 }]);
        let rows = aggregate(
            &c,
            &[Stage::Group {
                by: None,
                fields: vec![("s".into(), Accumulator::Sum("n".into()))],
            }],
        );
        assert_eq!(rows[0].get("s"), Some(&Value::Int(5)));
    }

    #[test]
    fn sort_skip_limit_project() {
        let rows = aggregate(
            &submissions(),
            &[
                Stage::Match(doc! { "success" => true }),
                Stage::Sort("secs".into(), SortOrder::Desc),
                Stage::Skip(1),
                Stage::Limit(2),
                Stage::Project(vec!["team".into(), "secs".into()]),
            ],
        );
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("secs"), Some(&Value::Float(1.1)));
        assert_eq!(rows[0].len(), 2, "projection dropped other fields");
    }

    #[test]
    fn push_and_first() {
        let rows = aggregate(
            &submissions(),
            &[Stage::Group {
                by: Some("worker".into()),
                fields: vec![
                    ("teams".into(), Accumulator::Push("team".into())),
                    ("first_team".into(), Accumulator::First("team".into())),
                ],
            }],
        );
        assert_eq!(rows.len(), 2);
        let w0 = &rows[0];
        assert_eq!(w0.get("_id"), Some(&Value::from("w0")));
        assert_eq!(
            w0.get("teams"),
            Some(&Value::Array(vec!["a".into(), "a".into(), "b".into()]))
        );
        assert_eq!(w0.get("first_team"), Some(&Value::from("a")));
    }

    #[test]
    fn missing_fields_and_empty_inputs() {
        let rows = aggregate(
            &submissions(),
            &[
                Stage::Match(doc! { "team" => "c" }),
                Stage::Group {
                    by: Some("team".into()),
                    fields: vec![("avg".into(), Accumulator::Avg("secs".into()))],
                },
            ],
        );
        assert_eq!(rows[0].get("avg"), Some(&Value::Null), "no numeric inputs");
        // Empty collection → empty output, no panics.
        assert!(aggregate(&Collection::new(), &[Stage::Limit(5)]).is_empty());
    }

    #[test]
    fn numeric_keys_unify_across_types() {
        let mut c = Collection::new();
        c.insert_many([doc! { "k" => 1, "v" => 1 }, doc! { "k" => 1.0, "v" => 2 }]);
        let rows = aggregate_docs(
            c.find(&Document::new()),
            &[Stage::Group {
                by: Some("k".into()),
                fields: vec![("n".into(), Accumulator::Count)],
            }],
        );
        assert_eq!(rows.len(), 1, "Int(1) and Float(1.0) share a bucket");
        assert_eq!(rows[0].get("n"), Some(&Value::Int(2)));
    }
}
