//! The thread-safe database handle: named collections behind RwLocks.

use crate::collection::{Collection, CollectionStats};
use crate::journal::{DbRecord, JournalSink};
use parking_lot::RwLock;
use rai_wal::Wal;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Database-level failure. The in-memory engine itself cannot fail;
/// this models the *connection* to a real MongoDB deployment, which
/// can — and is produced by an attached fault injector.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DbError {
    /// Transient connection failure; the operation did not happen.
    /// Retryable.
    Unavailable,
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbError::Unavailable => write!(f, "database temporarily unavailable"),
        }
    }
}

impl std::error::Error for DbError {}

/// What [`Database::recover`] rebuilt and what it discarded.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DbRecovery {
    /// Raw WAL replay accounting (CRC drops, torn bytes).
    pub stats: rai_wal::ReplayStats,
    /// Logical records applied.
    pub applied: u64,
    /// Records whose CRC passed but whose payload didn't parse —
    /// dropped and counted, never a panic.
    pub malformed_dropped: u64,
}

/// A handle to a database of named collections. Cloning shares state.
#[derive(Clone, Default)]
pub struct Database {
    collections: Arc<RwLock<BTreeMap<String, Arc<RwLock<Collection>>>>>,
    injector: Arc<RwLock<Option<rai_faults::FaultInjector>>>,
    wal: Arc<RwLock<Option<Wal>>>,
    /// Hash-partition count for collections created after
    /// [`Database::set_shards`]; 0 (the `Default`) reads as 1.
    shards: Arc<std::sync::atomic::AtomicUsize>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the hash-partition count used for collections created from
    /// now on (existing collections keep theirs — call at boot, before
    /// first use). Shard assignment is `_id % shards`, a pure function
    /// of the primary key, and every read path merges canonically, so
    /// the knob is invisible to results; 1 is the reference config.
    pub fn set_shards(&self, shards: usize) {
        self.shards
            .store(shards.max(1), std::sync::atomic::Ordering::Relaxed);
    }

    /// The configured hash-partition count.
    pub fn shards(&self) -> usize {
        self.shards.load(std::sync::atomic::Ordering::Relaxed).max(1)
    }

    /// Documents resident per shard index, summed across collections —
    /// the occupancy gauge surfaced as `rai_db_shard_docs`.
    pub fn shard_doc_counts(&self) -> Vec<u64> {
        let mut out: Vec<u64> = Vec::new();
        for coll in self.collections.read().values() {
            for (i, n) in coll.read().shard_sizes().into_iter().enumerate() {
                if out.len() <= i {
                    out.resize(i + 1, 0);
                }
                out[i] += n as u64;
            }
        }
        out
    }

    /// Attach a seeded fault injector. The engine stays infallible;
    /// [`Database::guard`] consults the injector so callers can model
    /// connection failures at their transaction boundaries.
    pub fn set_fault_injector(&self, injector: rai_faults::FaultInjector) {
        *self.injector.write() = Some(injector);
    }

    /// Fail-fast check run at the start of a logical database
    /// operation: returns [`DbError::Unavailable`] when the attached
    /// injector (if any) decides this op's connection drops. Callers
    /// wrap `guard` + collection access in a retry policy.
    pub fn guard(&self, _op: &str) -> Result<(), DbError> {
        match self.injector.read().as_ref() {
            Some(inj) if inj.should_fail(rai_faults::FaultKind::DbOp) => {
                Err(DbError::Unavailable)
            }
            _ => Ok(()),
        }
    }

    /// Attach a write-ahead log: every committed mutation on every
    /// collection (present and future) is journaled to it. Called by
    /// the system boot path when durability is enabled; without it the
    /// database keeps its original zero-overhead in-memory behavior.
    pub fn attach_wal(&self, wal: Wal) {
        *self.wal.write() = Some(wal.clone());
        for (name, coll) in self.collections.read().iter() {
            coll.write().set_journal(Some(JournalSink::new(wal.clone(), name)));
        }
    }

    /// The attached WAL, if any.
    pub fn wal(&self) -> Option<Wal> {
        self.wal.read().clone()
    }

    /// Force the journal durable. A no-op without an attached WAL.
    pub fn sync_wal(&self) {
        if let Some(wal) = self.wal.read().as_ref() {
            wal.sync();
        }
    }

    /// Rebuild a database from `wal`'s segments: replay every intact
    /// record through the normal (journal-detached) mutation paths, so
    /// `_id` assignment, upserts, and secondary indexes reproduce the
    /// exact pre-crash state; then attach the WAL for new mutations.
    /// Corrupt or malformed records are dropped and counted — recovery
    /// never panics on a damaged log.
    pub fn recover(wal: Wal) -> (Database, DbRecovery) {
        Self::recover_sharded(wal, 1)
    }

    /// [`Database::recover`] into a hash-partitioned database. Replay
    /// is logical (records re-run through the normal mutation paths),
    /// so the log is shard-count independent: a log written at any
    /// shard count recovers identically at any other.
    pub fn recover_sharded(wal: Wal, shards: usize) -> (Database, DbRecovery) {
        let db = Database::new();
        db.set_shards(shards);
        let replay = wal.replay();
        let mut recovery = DbRecovery { stats: replay.stats, ..DbRecovery::default() };
        for payload in &replay.records {
            match DbRecord::decode(payload) {
                Some(record) => {
                    db.apply(record);
                    recovery.applied += 1;
                }
                None => recovery.malformed_dropped += 1,
            }
        }
        db.attach_wal(wal);
        (db, recovery)
    }

    fn apply(&self, record: DbRecord) {
        match record {
            DbRecord::InsertOne { coll, doc } => {
                self.collection(&coll).write().insert_one_inner(doc);
            }
            DbRecord::InsertMany { coll, docs } => {
                self.collection(&coll).write().insert_many_inner(docs);
            }
            DbRecord::UpdateMany { coll, query, update } => {
                self.collection(&coll).write().update_many(&query, &update);
            }
            DbRecord::UpdateOne { coll, query, update, upsert } => {
                self.collection(&coll).write().update_one(&query, &update, upsert);
            }
            DbRecord::DeleteMany { coll, query } => {
                self.collection(&coll).write().delete_many(&query);
            }
            DbRecord::CreateIndex { coll, field } => {
                self.collection(&coll).write().create_index_inner(&field);
            }
            DbRecord::DropCollection { coll } => {
                self.collections.write().remove(&coll);
            }
            DbRecord::SnapshotCollection { coll, next_id, indexes, docs } => {
                self.collection(&coll).write().restore(next_id, indexes, docs);
            }
        }
    }

    /// Compact the WAL when it has outgrown the last snapshot: every
    /// collection is snapshotted (name order) into fresh segments and
    /// the old segments are deleted. Call at quiesced points only.
    /// Returns whether a compaction ran.
    pub fn maybe_compact(&self) -> bool {
        let Some(wal) = self.wal.read().clone() else {
            return false;
        };
        if !wal.should_compact() {
            return false;
        }
        let mut records = Vec::new();
        for name in self.collection_names() {
            let coll = self.collection(&name);
            let guard = coll.read();
            let (next_id, indexes, docs) = guard.snapshot();
            records.push(
                DbRecord::SnapshotCollection { coll: name, next_id, indexes, docs }.encode(),
            );
        }
        wal.compact(records);
        true
    }

    /// Get (creating on first use) a collection handle. Lock it with
    /// `.read()` / `.write()` for queries and mutations.
    pub fn collection(&self, name: &str) -> Arc<RwLock<Collection>> {
        if let Some(c) = self.collections.read().get(name) {
            return c.clone();
        }
        let wal = self.wal.read().clone();
        self.collections
            .write()
            .entry(name.to_string())
            .or_insert_with(|| {
                let mut coll = Collection::with_shards(self.shards());
                if let Some(wal) = wal {
                    coll.set_journal(Some(JournalSink::new(wal, name)));
                }
                Arc::new(RwLock::new(coll))
            })
            .clone()
    }

    /// Collection names, sorted.
    pub fn collection_names(&self) -> Vec<String> {
        self.collections.read().keys().cloned().collect()
    }

    /// Drop a collection; returns whether it existed.
    pub fn drop_collection(&self, name: &str) -> bool {
        let existed = self.collections.write().remove(name).is_some();
        if existed {
            if let Some(wal) = self.wal.read().as_ref() {
                wal.append(&DbRecord::DropCollection { coll: name.to_string() }.encode());
            }
        }
        existed
    }

    /// Per-collection operation counters, sorted by collection name.
    pub fn stats(&self) -> Vec<(String, CollectionStats)> {
        self.collections
            .read()
            .iter()
            .map(|(name, coll)| (name.clone(), coll.read().stats()))
            .collect()
    }

    /// Whole-database operation counters.
    pub fn total_stats(&self) -> CollectionStats {
        let mut total = CollectionStats::default();
        for (_, stats) in self.stats() {
            total.merge(stats);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{doc, Value};

    #[test]
    fn collections_auto_create_and_share() {
        let db = Database::new();
        db.collection("submissions").write().insert_one(doc! { "n" => 1 });
        let db2 = db.clone();
        assert_eq!(db2.collection("submissions").read().len(), 1);
        assert_eq!(db.collection_names(), vec!["submissions"]);
    }

    #[test]
    fn guard_fails_per_injector_plan() {
        let db = Database::new();
        assert_eq!(db.guard("insert"), Ok(()), "no injector: infallible");
        db.set_fault_injector(rai_faults::FaultInjector::new(rai_faults::FaultPlan {
            db_op: 1.0,
            ..rai_faults::FaultPlan::none(9)
        }));
        assert_eq!(db.guard("insert"), Err(DbError::Unavailable));
        let clone = db.clone();
        assert_eq!(clone.guard("query"), Err(DbError::Unavailable), "clones share the injector");
    }

    #[test]
    fn drop_collection() {
        let db = Database::new();
        db.collection("tmp");
        assert!(db.drop_collection("tmp"));
        assert!(!db.drop_collection("tmp"));
        assert!(db.collection_names().is_empty());
    }

    #[test]
    fn concurrent_writers_distinct_collections() {
        let db = Database::new();
        let mut handles = Vec::new();
        for t in 0..8 {
            let db = db.clone();
            handles.push(std::thread::spawn(move || {
                let coll = db.collection(&format!("c{}", t % 2));
                for i in 0..100 {
                    coll.write().insert_one(doc! { "t" => t, "i" => i });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let total: usize = db
            .collection_names()
            .iter()
            .map(|n| db.collection(n).read().len())
            .sum();
        assert_eq!(total, 800);
    }

    #[test]
    fn operation_counters_accumulate() {
        let db = Database::new();
        let coll = db.collection("submissions");
        coll.write().insert_one(doc! { "n" => 1 });
        coll.write().insert_one(doc! { "n" => 2 });
        coll.read().find(&doc! { "n" => 1 });
        coll.read().find_one(&doc! { "n" => 2 });
        coll.write().update_many(&doc! { "n" => 1 }, &doc! { "$set" => doc!{ "n" => 3 } });
        let stats = db.total_stats();
        assert_eq!(stats.inserts, 2);
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.updates, 1);
        let per = db.stats();
        assert_eq!(per.len(), 1);
        assert_eq!(per[0].0, "submissions");
        assert_eq!(per[0].1, stats);
    }

    fn fingerprint(db: &Database) -> Vec<(String, Vec<String>)> {
        db.collection_names()
            .into_iter()
            .map(|name| {
                let coll = db.collection(&name);
                let docs =
                    coll.read().find(&doc! {}).iter().map(|d| format!("{d:?}")).collect();
                (name, docs)
            })
            .collect()
    }

    fn durable_db() -> (Database, rai_wal::MemDisk) {
        let disk = rai_wal::MemDisk::new();
        let wal = rai_wal::Wal::open(
            Arc::new(disk.clone()),
            rai_wal::DurabilityConfig::durable(),
        );
        let db = Database::new();
        db.attach_wal(wal);
        (db, disk)
    }

    fn reopen(disk: &rai_wal::MemDisk) -> (Database, DbRecovery) {
        let wal = rai_wal::Wal::open(
            Arc::new(disk.clone()),
            rai_wal::DurabilityConfig::durable(),
        );
        Database::recover(wal)
    }

    #[test]
    fn recover_replays_to_identical_state() {
        let (db, disk) = durable_db();
        let coll = db.collection("submissions");
        coll.write().create_index("job_id");
        for i in 0..20i64 {
            coll.write().insert_one(doc! { "job_id" => i, "ok" => i % 3 == 0 });
        }
        coll.write().update_many(
            &doc! { "ok" => true },
            &doc! { "$set" => doc!{ "graded" => true } },
        );
        coll.write().update_one(
            &doc! { "team" => "x" },
            &doc! { "$set" => doc!{ "secs" => 0.5 } },
            true,
        );
        coll.write().delete_many(&doc! { "job_id" => doc!{ "$gte" => 18 } });
        db.collection("tmp").write().insert_one(doc! { "z" => 1 });
        db.drop_collection("tmp");
        db.sync_wal();

        let (recovered, recovery) = reopen(&disk);
        assert_eq!(recovery.stats.corrupt_dropped, 0);
        assert_eq!(recovery.malformed_dropped, 0);
        assert!(recovery.applied > 20);
        assert_eq!(fingerprint(&db), fingerprint(&recovered));
        // Secondary indexes are rebuilt, not just documents.
        assert!(recovered.collection("submissions").read().has_index("job_id"));
        // Upsert inside update_one journaled as ONE record: no
        // duplicate row after replay.
        assert_eq!(recovered.collection("submissions").read().count(&doc! { "team" => "x" }), 1);
        // And the recovered handle keeps journaling: further mutations
        // survive another crash.
        recovered.collection("submissions").write().insert_one(doc! { "job_id" => 99 });
        recovered.sync_wal();
        let (again, _) = reopen(&disk);
        assert_eq!(fingerprint(&recovered), fingerprint(&again));
    }

    #[test]
    fn compaction_preserves_state_and_shrinks_log() {
        let disk = rai_wal::MemDisk::new();
        let wal = rai_wal::Wal::open(
            Arc::new(disk.clone()),
            rai_wal::DurabilityConfig {
                compact_min_bytes: 1,
                compact_factor: 2,
                ..rai_wal::DurabilityConfig::durable()
            },
        );
        let db = Database::new();
        db.attach_wal(wal);
        let coll = db.collection("rankings");
        coll.write().create_index("team");
        for round in 0..200i64 {
            coll.write().update_one(
                &doc! { "team" => format!("team-{}", round % 5) },
                &doc! { "$set" => doc!{ "secs" => round } },
                true,
            );
        }
        db.sync_wal();
        let before = disk.total_bytes();
        assert!(db.maybe_compact(), "log should have outgrown the (empty) snapshot");
        assert!(disk.total_bytes() < before / 4, "compaction should shrink the log");
        let (recovered, recovery) = reopen(&disk);
        assert_eq!(recovery.stats.corrupt_dropped, 0);
        assert_eq!(fingerprint(&db), fingerprint(&recovered));
        assert!(recovered.collection("rankings").read().has_index("team"));
    }

    #[test]
    fn torn_tail_drops_only_unsynced_mutations() {
        let (db, disk) = durable_db();
        let coll = db.collection("events");
        for i in 0..10i64 {
            coll.write().insert_one(doc! { "n" => i });
        }
        db.sync_wal(); // first 10 durable
        for i in 10..15i64 {
            coll.write().insert_one(doc! { "n" => i });
        }
        // Dirty crash: the profile tears the unsynced tail.
        let profile = rai_faults::DiskFaultProfile { torn_tail: 1.0, ..rai_faults::DiskFaultProfile::none(3) };
        disk.crash_with(&profile, 0);
        let (recovered, recovery) = reopen(&disk);
        let n = recovered.collection("events").read().len();
        assert!((10..15).contains(&n), "synced rows survive, torn tail lost: {n}");
        assert!(recovery.stats.torn_bytes > 0);
    }

    #[test]
    fn sharded_recovery_is_shard_count_independent() {
        // Write the log from a 4-shard database…
        let disk = rai_wal::MemDisk::new();
        let wal = rai_wal::Wal::open(
            Arc::new(disk.clone()),
            rai_wal::DurabilityConfig::durable(),
        );
        let db = Database::new();
        db.set_shards(4);
        db.attach_wal(wal);
        let coll = db.collection("submissions");
        assert_eq!(coll.read().shard_count(), 4);
        coll.write().create_index("team");
        for i in 0..30i64 {
            coll.write().insert_one(doc! { "team" => format!("t{}", i % 7), "n" => i });
        }
        coll.write().delete_many(&doc! { "n" => doc!{ "$gte" => 25 } });
        db.sync_wal();
        assert_eq!(db.shard_doc_counts().iter().sum::<u64>(), 25);

        // …and recover it at 1, 4, and 16 shards: identical state.
        let reference = fingerprint(&db);
        for shards in [1usize, 4, 16] {
            let wal = rai_wal::Wal::open(
                Arc::new(disk.clone()),
                rai_wal::DurabilityConfig::durable(),
            );
            let (recovered, recovery) = Database::recover_sharded(wal, shards);
            assert_eq!(recovery.stats.corrupt_dropped, 0);
            assert_eq!(fingerprint(&recovered), reference, "diverged at {shards} shards");
            assert_eq!(recovered.collection("submissions").read().shard_count(), shards);
        }
    }

    #[test]
    fn readers_see_writer_results() {
        let db = Database::new();
        let coll = db.collection("rankings");
        coll.write().insert_one(doc! { "team" => "x", "runtime" => 0.5 });
        let found = coll.read().find_one(&doc! { "team" => "x" }).unwrap();
        assert_eq!(found.get("runtime"), Some(&Value::Float(0.5)));
    }
}
