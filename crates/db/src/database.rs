//! The thread-safe database handle: named collections behind RwLocks.

use crate::collection::{Collection, CollectionStats};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Database-level failure. The in-memory engine itself cannot fail;
/// this models the *connection* to a real MongoDB deployment, which
/// can — and is produced by an attached fault injector.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DbError {
    /// Transient connection failure; the operation did not happen.
    /// Retryable.
    Unavailable,
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbError::Unavailable => write!(f, "database temporarily unavailable"),
        }
    }
}

impl std::error::Error for DbError {}

/// A handle to a database of named collections. Cloning shares state.
#[derive(Clone, Default)]
pub struct Database {
    collections: Arc<RwLock<BTreeMap<String, Arc<RwLock<Collection>>>>>,
    injector: Arc<RwLock<Option<rai_faults::FaultInjector>>>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach a seeded fault injector. The engine stays infallible;
    /// [`Database::guard`] consults the injector so callers can model
    /// connection failures at their transaction boundaries.
    pub fn set_fault_injector(&self, injector: rai_faults::FaultInjector) {
        *self.injector.write() = Some(injector);
    }

    /// Fail-fast check run at the start of a logical database
    /// operation: returns [`DbError::Unavailable`] when the attached
    /// injector (if any) decides this op's connection drops. Callers
    /// wrap `guard` + collection access in a retry policy.
    pub fn guard(&self, _op: &str) -> Result<(), DbError> {
        match self.injector.read().as_ref() {
            Some(inj) if inj.should_fail(rai_faults::FaultKind::DbOp) => {
                Err(DbError::Unavailable)
            }
            _ => Ok(()),
        }
    }

    /// Get (creating on first use) a collection handle. Lock it with
    /// `.read()` / `.write()` for queries and mutations.
    pub fn collection(&self, name: &str) -> Arc<RwLock<Collection>> {
        if let Some(c) = self.collections.read().get(name) {
            return c.clone();
        }
        self.collections
            .write()
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(RwLock::new(Collection::new())))
            .clone()
    }

    /// Collection names, sorted.
    pub fn collection_names(&self) -> Vec<String> {
        self.collections.read().keys().cloned().collect()
    }

    /// Drop a collection; returns whether it existed.
    pub fn drop_collection(&self, name: &str) -> bool {
        self.collections.write().remove(name).is_some()
    }

    /// Per-collection operation counters, sorted by collection name.
    pub fn stats(&self) -> Vec<(String, CollectionStats)> {
        self.collections
            .read()
            .iter()
            .map(|(name, coll)| (name.clone(), coll.read().stats()))
            .collect()
    }

    /// Whole-database operation counters.
    pub fn total_stats(&self) -> CollectionStats {
        let mut total = CollectionStats::default();
        for (_, stats) in self.stats() {
            total.merge(stats);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{doc, Value};

    #[test]
    fn collections_auto_create_and_share() {
        let db = Database::new();
        db.collection("submissions").write().insert_one(doc! { "n" => 1 });
        let db2 = db.clone();
        assert_eq!(db2.collection("submissions").read().len(), 1);
        assert_eq!(db.collection_names(), vec!["submissions"]);
    }

    #[test]
    fn guard_fails_per_injector_plan() {
        let db = Database::new();
        assert_eq!(db.guard("insert"), Ok(()), "no injector: infallible");
        db.set_fault_injector(rai_faults::FaultInjector::new(rai_faults::FaultPlan {
            db_op: 1.0,
            ..rai_faults::FaultPlan::none(9)
        }));
        assert_eq!(db.guard("insert"), Err(DbError::Unavailable));
        let clone = db.clone();
        assert_eq!(clone.guard("query"), Err(DbError::Unavailable), "clones share the injector");
    }

    #[test]
    fn drop_collection() {
        let db = Database::new();
        db.collection("tmp");
        assert!(db.drop_collection("tmp"));
        assert!(!db.drop_collection("tmp"));
        assert!(db.collection_names().is_empty());
    }

    #[test]
    fn concurrent_writers_distinct_collections() {
        let db = Database::new();
        let mut handles = Vec::new();
        for t in 0..8 {
            let db = db.clone();
            handles.push(std::thread::spawn(move || {
                let coll = db.collection(&format!("c{}", t % 2));
                for i in 0..100 {
                    coll.write().insert_one(doc! { "t" => t, "i" => i });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let total: usize = db
            .collection_names()
            .iter()
            .map(|n| db.collection(n).read().len())
            .sum();
        assert_eq!(total, 800);
    }

    #[test]
    fn operation_counters_accumulate() {
        let db = Database::new();
        let coll = db.collection("submissions");
        coll.write().insert_one(doc! { "n" => 1 });
        coll.write().insert_one(doc! { "n" => 2 });
        coll.read().find(&doc! { "n" => 1 });
        coll.read().find_one(&doc! { "n" => 2 });
        coll.write().update_many(&doc! { "n" => 1 }, &doc! { "$set" => doc!{ "n" => 3 } });
        let stats = db.total_stats();
        assert_eq!(stats.inserts, 2);
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.updates, 1);
        let per = db.stats();
        assert_eq!(per.len(), 1);
        assert_eq!(per[0].0, "submissions");
        assert_eq!(per[0].1, stats);
    }

    #[test]
    fn readers_see_writer_results() {
        let db = Database::new();
        let coll = db.collection("rankings");
        coll.write().insert_one(doc! { "team" => "x", "runtime" => 0.5 });
        let found = coll.read().find_one(&doc! { "team" => "x" }).unwrap();
        assert_eq!(found.get("runtime"), Some(&Value::Float(0.5)));
    }
}
