//! The update engine: Mongo-style update operators.
//!
//! An update document either contains only `$`-operators (field updates)
//! or no operators at all (whole-document replacement, `_id` preserved).

use crate::value::{Document, Value};

/// Apply `update` to `doc`. Returns `true` if the document changed.
pub fn apply_update(update: &Document, doc: &mut Document) -> bool {
    let is_operator_update = update.iter().any(|(k, _)| k.starts_with('$'));
    if !is_operator_update {
        // Replacement: keep _id, swap everything else.
        let id = doc.get("_id").cloned();
        let before = doc.clone();
        *doc = update.clone();
        if let Some(id) = id {
            doc.insert("_id", id);
        }
        return *doc != before;
    }

    let mut changed = false;
    for (op, spec) in update.iter() {
        let Some(fields) = spec.as_doc() else { continue };
        for (path, operand) in fields.iter() {
            changed |= apply_op(op, path, operand, doc);
        }
    }
    changed
}

fn apply_op(op: &str, path: &str, operand: &Value, doc: &mut Document) -> bool {
    match op {
        "$set" => {
            let slot = doc.entry_path(path);
            if slot != operand {
                *slot = operand.clone();
                true
            } else {
                false
            }
        }
        "$unset" => doc.remove_path(path).is_some(),
        "$inc" => {
            let delta = operand.as_f64().unwrap_or(0.0);
            let slot = doc.entry_path(path);
            let new = match &*slot {
                Value::Int(i) if operand.as_i64().is_some() => {
                    Value::Int(i + operand.as_i64().expect("checked"))
                }
                Value::Int(i) => Value::Float(*i as f64 + delta),
                Value::Float(f) => Value::Float(f + delta),
                Value::Null => operand.clone(),
                other => other.clone(), // non-numeric: no-op
            };
            if *slot != new {
                *slot = new;
                true
            } else {
                false
            }
        }
        "$min" => {
            let slot = doc.entry_path(path);
            let replace = match &*slot {
                Value::Null => true,
                cur => operand.cmp_order(cur) == std::cmp::Ordering::Less,
            };
            if replace {
                *slot = operand.clone();
            }
            replace
        }
        "$max" => {
            let slot = doc.entry_path(path);
            let replace = match &*slot {
                Value::Null => true,
                cur => operand.cmp_order(cur) == std::cmp::Ordering::Greater,
            };
            if replace {
                *slot = operand.clone();
            }
            replace
        }
        "$push" => {
            let slot = doc.entry_path(path);
            match slot {
                Value::Array(a) => {
                    a.push(operand.clone());
                    true
                }
                Value::Null => {
                    *slot = Value::Array(vec![operand.clone()]);
                    true
                }
                _ => false, // pushing onto a non-array: no-op
            }
        }
        "$pull" => {
            let slot = doc.entry_path(path);
            match slot {
                Value::Array(a) => {
                    let before = a.len();
                    a.retain(|v| !v.eq_loose(operand));
                    a.len() != before
                }
                _ => false,
            }
        }
        "$rename" => {
            let Some(new_name) = operand.as_str() else {
                return false;
            };
            match doc.remove_path(path) {
                Some(v) => {
                    *doc.entry_path(new_name) = v;
                    true
                }
                None => false,
            }
        }
        _ => false, // unknown operator: no-op
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc;

    #[test]
    fn set_and_unset() {
        let mut d = doc! { "a" => 1 };
        assert!(apply_update(&doc! { "$set" => doc!{ "b" => 2, "m.x" => 3 } }, &mut d));
        assert_eq!(d.get("b"), Some(&Value::Int(2)));
        assert_eq!(d.get_path("m.x"), Some(&Value::Int(3)));
        // Setting to the same value reports no change.
        assert!(!apply_update(&doc! { "$set" => doc!{ "b" => 2 } }, &mut d));
        assert!(apply_update(&doc! { "$unset" => doc!{ "a" => 1 } }, &mut d));
        assert_eq!(d.get("a"), None);
        assert!(!apply_update(&doc! { "$unset" => doc!{ "a" => 1 } }, &mut d));
    }

    #[test]
    fn inc_int_and_float() {
        let mut d = doc! { "n" => 1, "f" => 0.5 };
        apply_update(&doc! { "$inc" => doc!{ "n" => 2, "f" => 0.25 } }, &mut d);
        assert_eq!(d.get("n"), Some(&Value::Int(3)));
        assert_eq!(d.get("f"), Some(&Value::Float(0.75)));
        // Incrementing a missing field seeds it.
        apply_update(&doc! { "$inc" => doc!{ "new" => 5 } }, &mut d);
        assert_eq!(d.get("new"), Some(&Value::Int(5)));
        // Int += float widens.
        apply_update(&doc! { "$inc" => doc!{ "n" => 0.5 } }, &mut d);
        assert_eq!(d.get("n"), Some(&Value::Float(3.5)));
    }

    #[test]
    fn min_max_for_best_runtime() {
        // RAI's re-run grading keeps the best (minimum) observed runtime.
        let mut d = doc! { "best" => 1.4 };
        assert!(apply_update(&doc! { "$min" => doc!{ "best" => 0.9 } }, &mut d));
        assert!(!apply_update(&doc! { "$min" => doc!{ "best" => 1.2 } }, &mut d));
        assert_eq!(d.get("best"), Some(&Value::Float(0.9)));
        assert!(apply_update(&doc! { "$max" => doc!{ "worst" => 2.0 } }, &mut d));
        assert!(apply_update(&doc! { "$max" => doc!{ "worst" => 3.0 } }, &mut d));
        assert!(!apply_update(&doc! { "$max" => doc!{ "worst" => 2.5 } }, &mut d));
    }

    #[test]
    fn push_and_pull() {
        let mut d = doc! { "log" => Vec::<i64>::new() };
        apply_update(&doc! { "$push" => doc!{ "log" => 1 } }, &mut d);
        apply_update(&doc! { "$push" => doc!{ "log" => 2 } }, &mut d);
        apply_update(&doc! { "$push" => doc!{ "times" => 0.5 } }, &mut d);
        assert_eq!(d.get("log"), Some(&Value::from(vec![1i64, 2])));
        assert_eq!(d.get("times"), Some(&Value::from(vec![0.5])));
        assert!(apply_update(&doc! { "$pull" => doc!{ "log" => 1 } }, &mut d));
        assert_eq!(d.get("log"), Some(&Value::from(vec![2i64])));
        assert!(!apply_update(&doc! { "$pull" => doc!{ "log" => 99 } }, &mut d));
    }

    #[test]
    fn rename() {
        let mut d = doc! { "old" => 7 };
        assert!(apply_update(&doc! { "$rename" => doc!{ "old" => "new" } }, &mut d));
        assert_eq!(d.get("new"), Some(&Value::Int(7)));
        assert_eq!(d.get("old"), None);
        assert!(!apply_update(&doc! { "$rename" => doc!{ "old" => "new" } }, &mut d));
    }

    #[test]
    fn replacement_preserves_id() {
        let mut d = doc! { "_id" => 42, "a" => 1 };
        assert!(apply_update(&doc! { "b" => 2 }, &mut d));
        assert_eq!(d.get("_id"), Some(&Value::Int(42)));
        assert_eq!(d.get("a"), None);
        assert_eq!(d.get("b"), Some(&Value::Int(2)));
    }

    #[test]
    fn unknown_operator_is_noop() {
        let mut d = doc! { "a" => 1 };
        assert!(!apply_update(&doc! { "$frobnicate" => doc!{ "a" => 2 } }, &mut d));
        assert_eq!(d.get("a"), Some(&Value::Int(1)));
    }
}
