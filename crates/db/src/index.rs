//! Secondary indexes: ordered field-value → doc-id maps consulted by the
//! collection's query planner for equality and range predicates. The
//! paper's ranking queries ("checking the student ranking within the
//! competition") sort and filter on `runtime`; the index ablation bench
//! measures what this buys.

use crate::value::Value;
use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Bound;

/// Wrapper giving [`Value`] the `Ord` required by `BTreeMap`, using the
/// database's total order.
#[derive(Clone, Debug, PartialEq)]
pub struct IndexKey(pub Value);

impl Eq for IndexKey {}

impl PartialOrd for IndexKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for IndexKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.cmp_order(&other.0)
    }
}

/// A single-field secondary index.
#[derive(Clone, Debug, Default)]
pub struct Index {
    map: BTreeMap<IndexKey, BTreeSet<u64>>,
}

impl Index {
    /// Empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `doc_id` under `value` (the document's field value).
    pub fn insert(&mut self, value: &Value, doc_id: u64) {
        self.map
            .entry(IndexKey(value.clone()))
            .or_default()
            .insert(doc_id);
    }

    /// Remove `doc_id` from under `value`.
    pub fn remove(&mut self, value: &Value, doc_id: u64) {
        if let Some(set) = self.map.get_mut(&IndexKey(value.clone())) {
            set.remove(&doc_id);
            if set.is_empty() {
                self.map.remove(&IndexKey(value.clone()));
            }
        }
    }

    /// Doc ids with field exactly `value`.
    pub fn lookup_eq(&self, value: &Value) -> Vec<u64> {
        self.map
            .get(&IndexKey(value.clone()))
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Doc ids with field in the given range.
    pub fn lookup_range(&self, lo: Bound<&Value>, hi: Bound<&Value>) -> Vec<u64> {
        let conv = |b: Bound<&Value>| match b {
            Bound::Included(v) => Bound::Included(IndexKey(v.clone())),
            Bound::Excluded(v) => Bound::Excluded(IndexKey(v.clone())),
            Bound::Unbounded => Bound::Unbounded,
        };
        let mut out = Vec::new();
        for (_, ids) in self.map.range((conv(lo), conv(hi))) {
            out.extend(ids.iter().copied());
        }
        out
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_remove() {
        let mut idx = Index::new();
        idx.insert(&Value::from(0.5), 1);
        idx.insert(&Value::from(0.5), 2);
        idx.insert(&Value::from(1.5), 3);
        assert_eq!(idx.lookup_eq(&Value::from(0.5)), vec![1, 2]);
        idx.remove(&Value::from(0.5), 1);
        assert_eq!(idx.lookup_eq(&Value::from(0.5)), vec![2]);
        idx.remove(&Value::from(0.5), 2);
        assert_eq!(idx.distinct_keys(), 1);
    }

    #[test]
    fn range_scan() {
        let mut idx = Index::new();
        for (i, v) in [0.1, 0.4, 0.45, 0.9, 2.0].iter().enumerate() {
            idx.insert(&Value::from(*v), i as u64);
        }
        let ids = idx.lookup_range(
            Bound::Included(&Value::from(0.4)),
            Bound::Excluded(&Value::from(1.0)),
        );
        assert_eq!(ids, vec![1, 2, 3]);
        let all = idx.lookup_range(Bound::Unbounded, Bound::Unbounded);
        assert_eq!(all.len(), 5);
    }

    #[test]
    fn cross_numeric_type_keys_unify() {
        let mut idx = Index::new();
        idx.insert(&Value::Int(1), 1);
        idx.insert(&Value::Float(1.0), 2);
        // Int(1) and Float(1.0) are the same key in the index order.
        assert_eq!(idx.lookup_eq(&Value::Int(1)).len(), 2);
        assert_eq!(idx.distinct_keys(), 1);
    }
}
