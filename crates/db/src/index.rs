//! Secondary indexes: ordered field-value → doc-id maps consulted by the
//! collection's query planner for equality and range predicates. The
//! paper's ranking queries ("checking the student ranking within the
//! competition") sort and filter on `runtime`; the index ablation bench
//! measures what this buys.

use crate::value::Value;
use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Bound;

/// Wrapper giving [`Value`] the `Ord` required by `BTreeMap`, using the
/// database's total order.
#[derive(Clone, Debug, PartialEq)]
pub struct IndexKey(pub Value);

impl Eq for IndexKey {}

impl PartialOrd for IndexKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for IndexKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.cmp_order(&other.0)
    }
}

/// A single-field secondary index.
#[derive(Clone, Debug, Default)]
pub struct Index {
    map: BTreeMap<IndexKey, BTreeSet<u64>>,
    entries: usize,
    array_keys: usize,
}

impl Index {
    /// Empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `doc_id` under `value` (the document's field value).
    pub fn insert(&mut self, value: &Value, doc_id: u64) {
        if self
            .map
            .entry(IndexKey(value.clone()))
            .or_default()
            .insert(doc_id)
        {
            self.entries += 1;
            if matches!(value, Value::Array(_)) {
                self.array_keys += 1;
            }
        }
    }

    /// Remove `doc_id` from under `value`.
    pub fn remove(&mut self, value: &Value, doc_id: u64) {
        if let Some(set) = self.map.get_mut(&IndexKey(value.clone())) {
            if set.remove(&doc_id) {
                self.entries -= 1;
                if matches!(value, Value::Array(_)) {
                    self.array_keys -= 1;
                }
            }
            if set.is_empty() {
                self.map.remove(&IndexKey(value.clone()));
            }
        }
    }

    /// Total `(value, doc)` entries. Because each document contributes
    /// at most one entry, `len() == collection.len()` means every
    /// document carries the indexed field — the planner's condition for
    /// serving a sort straight off the index.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Whether the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Whether any indexed value is an array. Bare-literal equality has
    /// array-containment semantics (`{"f": x}` matches a doc whose `f`
    /// is an array containing `x`) that a whole-value key lookup cannot
    /// serve, so the planner falls back to a scan while any are present.
    pub fn has_array_keys(&self) -> bool {
        self.array_keys > 0
    }

    /// Doc ids in index-key order (ascending or descending). Ties
    /// within one key come out in ascending id order either way,
    /// matching what a stable sort over `_id`-ordered rows produces.
    pub fn ids_in_key_order(&self, desc: bool) -> impl Iterator<Item = u64> + '_ {
        let fwd = (!desc).then(|| self.map.values().flat_map(|s| s.iter().copied()));
        let rev = desc.then(|| self.map.values().rev().flat_map(|s| s.iter().copied()));
        fwd.into_iter().flatten().chain(rev.into_iter().flatten())
    }

    /// `(key, id)` pairs in the same order as
    /// [`Index::ids_in_key_order`]. Sharded collections k-way merge one
    /// of these streams per shard; exposing the key lets the merge
    /// reproduce the exact global `(key, id)` order a single index
    /// would have produced.
    pub fn entries_in_key_order(&self, desc: bool) -> impl Iterator<Item = (&Value, u64)> + '_ {
        fn pairs<'a>((k, s): (&'a IndexKey, &'a BTreeSet<u64>)) -> impl Iterator<Item = (&'a Value, u64)> {
            s.iter().map(move |&id| (&k.0, id))
        }
        let fwd = (!desc).then(|| self.map.iter().flat_map(pairs));
        let rev = desc.then(|| self.map.iter().rev().flat_map(pairs));
        fwd.into_iter().flatten().chain(rev.into_iter().flatten())
    }

    /// Doc ids with field exactly `value`.
    pub fn lookup_eq(&self, value: &Value) -> Vec<u64> {
        self.map
            .get(&IndexKey(value.clone()))
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Doc ids with field in the given range.
    pub fn lookup_range(&self, lo: Bound<&Value>, hi: Bound<&Value>) -> Vec<u64> {
        let conv = |b: Bound<&Value>| match b {
            Bound::Included(v) => Bound::Included(IndexKey(v.clone())),
            Bound::Excluded(v) => Bound::Excluded(IndexKey(v.clone())),
            Bound::Unbounded => Bound::Unbounded,
        };
        let mut out = Vec::new();
        for (_, ids) in self.map.range((conv(lo), conv(hi))) {
            out.extend(ids.iter().copied());
        }
        out
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_remove() {
        let mut idx = Index::new();
        idx.insert(&Value::from(0.5), 1);
        idx.insert(&Value::from(0.5), 2);
        idx.insert(&Value::from(1.5), 3);
        assert_eq!(idx.lookup_eq(&Value::from(0.5)), vec![1, 2]);
        idx.remove(&Value::from(0.5), 1);
        assert_eq!(idx.lookup_eq(&Value::from(0.5)), vec![2]);
        idx.remove(&Value::from(0.5), 2);
        assert_eq!(idx.distinct_keys(), 1);
    }

    #[test]
    fn range_scan() {
        let mut idx = Index::new();
        for (i, v) in [0.1, 0.4, 0.45, 0.9, 2.0].iter().enumerate() {
            idx.insert(&Value::from(*v), i as u64);
        }
        let ids = idx.lookup_range(
            Bound::Included(&Value::from(0.4)),
            Bound::Excluded(&Value::from(1.0)),
        );
        assert_eq!(ids, vec![1, 2, 3]);
        let all = idx.lookup_range(Bound::Unbounded, Bound::Unbounded);
        assert_eq!(all.len(), 5);
    }

    #[test]
    fn key_order_iteration_and_entry_count() {
        let mut idx = Index::new();
        idx.insert(&Value::from(2.0), 5);
        idx.insert(&Value::from(0.5), 9);
        idx.insert(&Value::from(0.5), 3);
        idx.insert(&Value::from(1.0), 7);
        assert_eq!(idx.len(), 4);
        let asc: Vec<u64> = idx.ids_in_key_order(false).collect();
        assert_eq!(asc, vec![3, 9, 7, 5]);
        let desc: Vec<u64> = idx.ids_in_key_order(true).collect();
        // Keys reverse; ids within a key stay ascending (stable-sort ties).
        assert_eq!(desc, vec![5, 7, 3, 9]);
        // Double-insert is not double-counted; removal decrements.
        idx.insert(&Value::from(0.5), 3);
        assert_eq!(idx.len(), 4);
        idx.remove(&Value::from(0.5), 3);
        assert_eq!(idx.len(), 3);
        assert!(!idx.is_empty());
    }

    #[test]
    fn cross_numeric_type_keys_unify() {
        let mut idx = Index::new();
        idx.insert(&Value::Int(1), 1);
        idx.insert(&Value::Float(1.0), 2);
        // Int(1) and Float(1.0) are the same key in the index order.
        assert_eq!(idx.lookup_eq(&Value::Int(1)).len(), 2);
        assert_eq!(idx.distinct_keys(), 1);
    }
}
