//! # rai-db — the metadata database (paper §IV "MongoDB Database")
//!
//! RAI stores "meta-information about submissions, including execution
//! times, run-times, and logs … useful for grading or any other
//! coursework auditing process", plus the competition ranking, in
//! MongoDB. This crate is a from-scratch document database covering the
//! query surface RAI needs:
//!
//! * dynamic [`Value`]/[`Document`] model with dotted-path access;
//! * Mongo-style query operators (`$eq`, `$ne`, `$gt(e)`, `$lt(e)`,
//!   `$in`, `$nin`, `$exists`, `$contains`, `$and`, `$or`, `$not`);
//! * update operators (`$set`, `$unset`, `$inc`, `$min`, `$max`,
//!   `$push`, `$pull`, `$rename`) with upsert;
//! * sort / skip / limit cursors;
//! * aggregation pipelines (`$match → $group → $sort → $limit`) for the
//!   auditing/reporting queries;
//! * secondary indexes consulted automatically for equality and range
//!   predicates (measured in the index-ablation bench);
//! * a thread-safe [`Database`] of named [`Collection`]s.
//!
//! ```
//! use rai_db::{doc, Database, Value};
//!
//! let db = Database::new();
//! db.collection("rankings").write().insert_one(doc! {
//!     "team" => "gpu-gophers", "runtime_s" => 0.47, "final" => true,
//! });
//! let top = db.collection("rankings").read()
//!     .find(&doc! { "runtime_s" => doc!{ "$lt" => 1.0 } });
//! assert_eq!(top.len(), 1);
//! assert_eq!(top[0].get_path("team"), Some(&Value::from("gpu-gophers")));
//! ```

pub mod aggregate;
pub mod collection;
pub mod database;
pub mod index;
pub mod journal;
pub mod query;
pub mod update;
pub mod value;

pub use aggregate::{aggregate, Accumulator, Stage};
pub use collection::{Collection, CollectionStats, DocId, FindOptions, SortOrder};
pub use database::{Database, DbError, DbRecovery};
pub use journal::DbRecord;
pub use query::matches;
pub use update::apply_update;
pub use value::{Document, Value};
