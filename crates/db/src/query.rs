//! The query engine: Mongo-style declarative filters.
//!
//! A query is itself a [`Document`]. Each field is either
//!
//! * a literal → implicit `$eq` (`{"team": "x"}`), or
//! * a nested document of operators (`{"runtime": {"$lt": 1.0}}`).
//!
//! Top-level logical operators `$and`, `$or`, `$not` take arrays of (or
//! a single) sub-queries.

use crate::value::{Document, Value};
use std::cmp::Ordering;

/// Whether `doc` satisfies `query`.
pub fn matches(query: &Document, doc: &Document) -> bool {
    query.iter().all(|(field, cond)| match field.as_str() {
        "$and" => match cond {
            Value::Array(subs) => subs
                .iter()
                .all(|s| s.as_doc().is_some_and(|q| matches(q, doc))),
            Value::Doc(q) => matches(q, doc),
            _ => false,
        },
        "$or" => match cond {
            Value::Array(subs) => subs
                .iter()
                .any(|s| s.as_doc().is_some_and(|q| matches(q, doc))),
            Value::Doc(q) => matches(q, doc),
            _ => false,
        },
        "$not" => match cond {
            Value::Doc(q) => !matches(q, doc),
            _ => false,
        },
        _ => field_matches(field, cond, doc),
    })
}

fn field_matches(field: &str, cond: &Value, doc: &Document) -> bool {
    let actual = doc.get_path(field);
    match cond {
        Value::Doc(ops) if is_operator_doc(ops) => ops.iter().all(|(op, operand)| {
            op_matches(op, operand, actual)
        }),
        literal => match actual {
            Some(v) => {
                v.eq_loose(literal)
                    // Mongo semantics: a literal also matches if the field
                    // is an array containing it.
                    || v.as_array()
                        .is_some_and(|arr| arr.iter().any(|x| x.eq_loose(literal)))
            }
            None => matches!(literal, Value::Null),
        },
    }
}

fn is_operator_doc(d: &Document) -> bool {
    !d.is_empty() && d.iter().all(|(k, _)| k.starts_with('$'))
}

fn op_matches(op: &str, operand: &Value, actual: Option<&Value>) -> bool {
    match op {
        "$exists" => {
            let want = operand.as_bool().unwrap_or(true);
            actual.is_some() == want
        }
        "$eq" => actual.is_some_and(|v| v.eq_loose(operand)),
        "$ne" => !actual.is_some_and(|v| v.eq_loose(operand)),
        "$gt" => cmp_ok(actual, operand, |o| o == Ordering::Greater),
        "$gte" => cmp_ok(actual, operand, |o| o != Ordering::Less),
        "$lt" => cmp_ok(actual, operand, |o| o == Ordering::Less),
        "$lte" => cmp_ok(actual, operand, |o| o != Ordering::Greater),
        "$in" => match (actual, operand.as_array()) {
            (Some(v), Some(set)) => set.iter().any(|x| x.eq_loose(v)),
            _ => false,
        },
        "$nin" => match operand.as_array() {
            Some(set) => match actual {
                Some(v) => !set.iter().any(|x| x.eq_loose(v)),
                None => true,
            },
            None => false,
        },
        "$contains" => match (actual, operand) {
            // Substring match on strings, membership on arrays. Stands in
            // for Mongo's `$regex` in RAI's queries (prefix/substring
            // filters over team names and keys).
            (Some(Value::Str(s)), Value::Str(needle)) => s.contains(needle.as_str()),
            (Some(Value::Array(a)), x) => a.iter().any(|v| v.eq_loose(x)),
            _ => false,
        },
        "$size" => match (actual, operand.as_i64()) {
            (Some(Value::Array(a)), Some(n)) => a.len() as i64 == n,
            _ => false,
        },
        _ => false, // unknown operator matches nothing
    }
}

fn cmp_ok(actual: Option<&Value>, operand: &Value, pred: impl Fn(Ordering) -> bool) -> bool {
    match actual {
        // Range comparisons only apply within the same type rank, as in
        // Mongo (comparing a string to a number matches nothing).
        Some(v) if same_rank(v, operand) => pred(v.cmp_order(operand)),
        _ => false,
    }
}

fn same_rank(a: &Value, b: &Value) -> bool {
    use Value::*;
    matches!(
        (a, b),
        (Bool(_), Bool(_))
            | (Int(_) | Float(_), Int(_) | Float(_))
            | (Str(_), Str(_))
            | (Array(_), Array(_))
            | (Doc(_), Doc(_))
            | (Null, Null)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc;

    fn submission() -> Document {
        doc! {
            "team" => "gpu-gophers",
            "runtime_s" => 0.47,
            "attempts" => 3,
            "final" => true,
            "tags" => vec!["cuda", "fast"],
            "meta" => doc!{ "worker" => "p2-07", "gpu" => "K80" },
        }
    }

    #[test]
    fn literal_equality() {
        let d = submission();
        assert!(matches(&doc! { "team" => "gpu-gophers" }, &d));
        assert!(!matches(&doc! { "team" => "other" }, &d));
        assert!(matches(&doc! { "final" => true, "attempts" => 3 }, &d));
    }

    #[test]
    fn dotted_path_queries() {
        let d = submission();
        assert!(matches(&doc! { "meta.gpu" => "K80" }, &d));
        assert!(!matches(&doc! { "meta.gpu" => "K40" }, &d));
    }

    #[test]
    fn numeric_ranges() {
        let d = submission();
        assert!(matches(&doc! { "runtime_s" => doc!{ "$lt" => 1.0 } }, &d));
        assert!(matches(&doc! { "runtime_s" => doc!{ "$gte" => 0.47 } }, &d));
        assert!(!matches(&doc! { "runtime_s" => doc!{ "$gt" => 0.47 } }, &d));
        assert!(matches(
            &doc! { "attempts" => doc!{ "$gt" => 1, "$lte" => 3 } },
            &d
        ));
        // Int/Float cross-type comparisons work.
        assert!(matches(&doc! { "attempts" => doc!{ "$lt" => 3.5 } }, &d));
    }

    #[test]
    fn range_across_types_matches_nothing() {
        let d = submission();
        assert!(!matches(&doc! { "team" => doc!{ "$lt" => 99 } }, &d));
    }

    #[test]
    fn in_nin() {
        let d = submission();
        assert!(matches(
            &doc! { "team" => doc!{ "$in" => vec!["a", "gpu-gophers"] } },
            &d
        ));
        assert!(matches(
            &doc! { "team" => doc!{ "$nin" => vec!["a", "b"] } },
            &d
        ));
        assert!(matches(
            &doc! { "missing" => doc!{ "$nin" => vec!["a"] } },
            &d
        ));
    }

    #[test]
    fn exists() {
        let d = submission();
        assert!(matches(&doc! { "meta" => doc!{ "$exists" => true } }, &d));
        assert!(matches(&doc! { "nope" => doc!{ "$exists" => false } }, &d));
        assert!(!matches(&doc! { "nope" => doc!{ "$exists" => true } }, &d));
    }

    #[test]
    fn ne_and_null_semantics() {
        let d = submission();
        assert!(matches(&doc! { "team" => doc!{ "$ne" => "x" } }, &d));
        // $ne matches when the field is missing (Mongo behaviour).
        assert!(matches(&doc! { "missing" => doc!{ "$ne" => "x" } }, &d));
        // Literal null matches a missing field.
        assert!(matches(&doc! { "missing" => Value::Null }, &d));
    }

    #[test]
    fn array_membership_via_literal() {
        let d = submission();
        assert!(matches(&doc! { "tags" => "cuda" }, &d));
        assert!(!matches(&doc! { "tags" => "slow" }, &d));
    }

    #[test]
    fn contains_and_size() {
        let d = submission();
        assert!(matches(&doc! { "team" => doc!{ "$contains" => "gopher" } }, &d));
        assert!(matches(&doc! { "tags" => doc!{ "$contains" => "fast" } }, &d));
        assert!(matches(&doc! { "tags" => doc!{ "$size" => 2 } }, &d));
        assert!(!matches(&doc! { "tags" => doc!{ "$size" => 1 } }, &d));
    }

    #[test]
    fn logical_operators() {
        let d = submission();
        assert!(matches(
            &doc! { "$or" => vec![
                Value::Doc(doc!{ "team" => "x" }),
                Value::Doc(doc!{ "final" => true }),
            ] },
            &d
        ));
        assert!(matches(
            &doc! { "$and" => vec![
                Value::Doc(doc!{ "final" => true }),
                Value::Doc(doc!{ "runtime_s" => doc!{ "$lt" => 1.0 } }),
            ] },
            &d
        ));
        assert!(matches(&doc! { "$not" => doc!{ "team" => "x" } }, &d));
        assert!(!matches(&doc! { "$not" => doc!{ "team" => "gpu-gophers" } }, &d));
    }

    #[test]
    fn empty_query_matches_everything() {
        assert!(matches(&Document::new(), &submission()));
        assert!(matches(&Document::new(), &Document::new()));
    }

    #[test]
    fn unknown_operator_matches_nothing() {
        assert!(!matches(&doc! { "team" => doc!{ "$frob" => 1 } }, &submission()));
    }

    #[test]
    fn non_operator_nested_doc_is_literal_equality() {
        let d = doc! { "meta" => doc!{ "gpu" => "K80" } };
        assert!(matches(&doc! { "meta" => doc!{ "gpu" => "K80" } }, &d));
        assert!(!matches(&doc! { "meta" => doc!{ "gpu" => "K40" } }, &d));
    }
}
