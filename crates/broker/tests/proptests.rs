//! Model-based property tests for the broker: a single
//! topic/channel/consumer must behave exactly like a FIFO queue with an
//! in-flight set, under any interleaving of operations.

use proptest::prelude::*;
use rai_broker::{Broker, MessageId};
use std::collections::VecDeque;

#[derive(Clone, Debug)]
enum Op {
    Publish(u8),
    Recv,
    AckOldest,
    RequeueOldest,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            any::<u8>().prop_map(Op::Publish),
            Just(Op::Recv),
            Just(Op::AckOldest),
            Just(Op::RequeueOldest),
        ],
        0..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Reference model: `ready` is a FIFO of bodies, `in_flight` a FIFO
    /// of (id, body). The broker must match it op for op.
    #[test]
    fn single_channel_matches_fifo_model(ops in arb_ops()) {
        let broker = Broker::default();
        let sub = broker.subscribe("t", "ch");
        let mut model_ready: VecDeque<u8> = VecDeque::new();
        let mut model_in_flight: VecDeque<(MessageId, u8)> = VecDeque::new();

        for op in ops {
            match op {
                Op::Publish(body) => {
                    broker.publish("t", vec![body]).expect("publish");
                    model_ready.push_back(body);
                }
                Op::Recv => {
                    let got = sub.try_recv();
                    match model_ready.pop_front() {
                        Some(expected) => {
                            let m = got.expect("model says a message is ready");
                            prop_assert_eq!(m.body.as_ref(), &[expected][..]);
                            model_in_flight.push_back((m.id, expected));
                        }
                        None => prop_assert!(got.is_none(), "broker had a surprise message"),
                    }
                }
                Op::AckOldest => match model_in_flight.pop_front() {
                    Some((id, _)) => prop_assert!(sub.ack(id)),
                    None => prop_assert!(!sub.ack(MessageId(u64::MAX))),
                },
                Op::RequeueOldest => {
                    if let Some((id, body)) = model_in_flight.pop_front() {
                        prop_assert!(sub.requeue(id));
                        model_ready.push_back(body);
                    }
                }
            }
            // Depth invariants hold after every operation.
            prop_assert_eq!(sub.depth(), model_ready.len());
            let stats = broker.topic_stats("t").expect("topic exists");
            prop_assert_eq!(stats.in_flight, model_in_flight.len());
        }
    }

    /// Conservation: every published message is eventually delivered
    /// exactly once per channel when fully drained.
    #[test]
    fn fanout_conserves_messages(
        bodies in prop::collection::vec(any::<u8>(), 0..60),
        channels in 1usize..5,
    ) {
        let broker = Broker::default();
        let subs: Vec<_> = (0..channels)
            .map(|i| broker.subscribe("t", &format!("ch{i}")))
            .collect();
        for b in &bodies {
            broker.publish("t", vec![*b]).expect("publish");
        }
        for sub in &subs {
            let mut seen = Vec::new();
            while let Some(m) = sub.try_recv() {
                prop_assert!(sub.ack(m.id));
                seen.push(m.body[0]);
            }
            prop_assert_eq!(&seen, &bodies, "each channel sees every message in order");
        }
        let stats = broker.topic_stats("t").expect("topic exists");
        prop_assert_eq!(stats.depth, 0);
        prop_assert_eq!(stats.in_flight, 0);
        prop_assert_eq!(stats.acked, (bodies.len() * channels) as u64);
    }

    /// Attempt counters increment exactly once per delivery.
    #[test]
    fn attempts_track_deliveries(requeues in 0u32..6) {
        let broker = Broker::default();
        let sub = broker.subscribe("t", "ch");
        broker.publish("t", &b"x"[..]).expect("publish");
        for expected in 1..=requeues + 1 {
            let m = sub.try_recv().expect("redelivered");
            prop_assert_eq!(m.attempts, expected);
            if expected == requeues + 1 {
                sub.ack(m.id);
            } else {
                sub.requeue(m.id);
            }
        }
        prop_assert!(sub.try_recv().is_none());
    }
}
