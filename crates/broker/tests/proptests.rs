//! Model-based property tests for the broker: a single
//! topic/channel/consumer must behave exactly like a FIFO queue with an
//! in-flight set, under any interleaving of operations.

use proptest::prelude::*;
use rai_broker::{dead_letter_topic, Broker, BrokerConfig, MessageId};
use rai_sim::{SimDuration, VirtualClock};
use std::collections::{HashMap, VecDeque};

#[derive(Clone, Debug)]
enum Op {
    Publish(u8),
    Recv,
    AckOldest,
    RequeueOldest,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            any::<u8>().prop_map(Op::Publish),
            Just(Op::Recv),
            Just(Op::AckOldest),
            Just(Op::RequeueOldest),
        ],
        0..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Reference model: `ready` is a FIFO of bodies, `in_flight` a FIFO
    /// of (id, body). The broker must match it op for op.
    #[test]
    fn single_channel_matches_fifo_model(ops in arb_ops()) {
        let broker = Broker::default();
        let sub = broker.subscribe("t", "ch");
        let mut model_ready: VecDeque<u8> = VecDeque::new();
        let mut model_in_flight: VecDeque<(MessageId, u8)> = VecDeque::new();

        for op in ops {
            match op {
                Op::Publish(body) => {
                    broker.publish("t", vec![body]).expect("publish");
                    model_ready.push_back(body);
                }
                Op::Recv => {
                    let got = sub.try_recv();
                    match model_ready.pop_front() {
                        Some(expected) => {
                            let m = got.expect("model says a message is ready");
                            prop_assert_eq!(m.body.as_ref(), &[expected][..]);
                            model_in_flight.push_back((m.id, expected));
                        }
                        None => prop_assert!(got.is_none(), "broker had a surprise message"),
                    }
                }
                Op::AckOldest => match model_in_flight.pop_front() {
                    Some((id, _)) => prop_assert!(sub.ack(id)),
                    None => prop_assert!(!sub.ack(MessageId(u64::MAX))),
                },
                Op::RequeueOldest => {
                    if let Some((id, body)) = model_in_flight.pop_front() {
                        prop_assert!(sub.requeue(id));
                        model_ready.push_back(body);
                    }
                }
            }
            // Depth invariants hold after every operation.
            prop_assert_eq!(sub.depth(), model_ready.len());
            let stats = broker.topic_stats("t").expect("topic exists");
            prop_assert_eq!(stats.in_flight, model_in_flight.len());
        }
    }

    /// Conservation: every published message is eventually delivered
    /// exactly once per channel when fully drained.
    #[test]
    fn fanout_conserves_messages(
        bodies in prop::collection::vec(any::<u8>(), 0..60),
        channels in 1usize..5,
    ) {
        let broker = Broker::default();
        let subs: Vec<_> = (0..channels)
            .map(|i| broker.subscribe("t", &format!("ch{i}")))
            .collect();
        for b in &bodies {
            broker.publish("t", vec![*b]).expect("publish");
        }
        for sub in &subs {
            let mut seen = Vec::new();
            while let Some(m) = sub.try_recv() {
                prop_assert!(sub.ack(m.id));
                seen.push(m.body[0]);
            }
            prop_assert_eq!(&seen, &bodies, "each channel sees every message in order");
        }
        let stats = broker.topic_stats("t").expect("topic exists");
        prop_assert_eq!(stats.depth, 0);
        prop_assert_eq!(stats.in_flight, 0);
        prop_assert_eq!(stats.acked, (bodies.len() * channels) as u64);
    }

    /// Attempt counters increment exactly once per delivery.
    #[test]
    fn attempts_track_deliveries(requeues in 0u32..6) {
        let broker = Broker::default();
        let sub = broker.subscribe("t", "ch");
        broker.publish("t", &b"x"[..]).expect("publish");
        for expected in 1..=requeues + 1 {
            let m = sub.try_recv().expect("redelivered");
            prop_assert_eq!(m.attempts, expected);
            if expected == requeues + 1 {
                sub.ack(m.id);
            } else {
                sub.requeue(m.id);
            }
        }
        prop_assert!(sub.try_recv().is_none());
    }

    /// Attempt cap: a message that is always requeued is delivered
    /// exactly `cap` times and then routed to the dead-letter topic —
    /// and exhaustion order is publish order, so the dead-letter
    /// channel replays the poison stream faithfully.
    #[test]
    fn attempt_cap_dead_letters_in_publish_order(
        bodies in prop::collection::vec(any::<u8>(), 1..40),
        cap in 1u32..5,
    ) {
        let broker = Broker::new(BrokerConfig { max_attempts: cap, ..Default::default() });
        let sub = broker.subscribe("t", "ch");
        let audit = broker.subscribe(&dead_letter_topic("t", "ch"), "audit");
        for b in &bodies {
            broker.publish("t", vec![*b]).expect("publish");
        }

        let mut deliveries: HashMap<MessageId, u32> = HashMap::new();
        while let Some(m) = sub.try_recv() {
            let d = deliveries.entry(m.id).or_insert(0);
            *d += 1;
            prop_assert_eq!(m.attempts, *d, "attempts counts deliveries");
            prop_assert!(sub.requeue(m.id));
        }

        prop_assert_eq!(deliveries.len(), bodies.len());
        for d in deliveries.values() {
            prop_assert_eq!(*d, cap, "every message gets its full budget, no more");
        }
        let t = broker.topic_stats("t").expect("topic exists");
        prop_assert_eq!(t.depth, 0);
        prop_assert_eq!(t.in_flight, 0);
        prop_assert_eq!(t.dead_lettered, bodies.len() as u64);

        let mut dead = Vec::new();
        while let Some(m) = audit.try_recv() {
            prop_assert!(audit.ack(m.id));
            dead.push(m.body[0]);
        }
        prop_assert_eq!(&dead, &bodies, "dead letters arrive in publish order");
    }

    /// `reclaim_expired` is a pure function of sim time: two brokers
    /// driven through the same schedule reclaim the same messages and
    /// redeliver them in the same order, and a claim expires iff the
    /// clock advanced past the timeout.
    #[test]
    fn reclaim_expired_is_deterministic(
        bodies in prop::collection::vec(any::<u8>(), 1..30),
        claim in 0usize..30,
        advance_secs in 0u64..200,
    ) {
        let timeout = SimDuration::from_secs(60);
        let run = || {
            let clock = VirtualClock::new();
            let broker = Broker::with_clock(BrokerConfig::default(), clock.clone());
            let sub = broker.subscribe("t", "ch");
            for b in &bodies {
                broker.publish("t", vec![*b]).expect("publish");
            }
            let mut claimed_ids = Vec::new();
            for _ in 0..claim.min(bodies.len()) {
                claimed_ids.push(sub.try_recv().expect("ready").id);
            }
            clock.advance(SimDuration::from_secs(advance_secs));
            let reclaimed = broker.reclaim_expired(timeout);
            let mut trace = Vec::new();
            while let Some(m) = sub.try_recv() {
                trace.push((m.id, m.body[0], m.attempts));
                sub.ack(m.id);
            }
            (claimed_ids, reclaimed, trace)
        };
        let a = run();
        let b = run();
        prop_assert_eq!(&a, &b, "same schedule, same observable history");

        let claimed = claim.min(bodies.len());
        let expired = advance_secs >= 60;
        prop_assert_eq!(a.1, if expired { claimed } else { 0 });
        if expired {
            // Unclaimed backlog first (attempt 1), then the reclaimed
            // messages re-enqueued in id order (attempt 2).
            prop_assert_eq!(a.2.len(), bodies.len());
            let fresh = bodies.len() - claimed;
            for (i, (id, _, attempts)) in a.2.iter().enumerate() {
                prop_assert_eq!(*attempts, if i < fresh { 1 } else { 2 });
                if i >= fresh {
                    prop_assert_eq!(*id, a.0[i - fresh], "id order");
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Fan-out shares one body allocation: every channel must see the
    /// exact bytes published, in publish order, and every delivered
    /// body must point at the same backing buffer (shallow `Bytes`
    /// clones, no deep copies).
    #[test]
    fn fanout_delivers_identical_shared_bytes(
        bodies in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 1..20),
        channels in 1usize..6,
    ) {
        let broker = Broker::default();
        let subs: Vec<_> = (0..channels)
            .map(|i| broker.subscribe("t", &format!("ch{i}")))
            .collect();
        for body in &bodies {
            broker.publish("t", body.clone()).expect("publish");
        }
        // per_channel_ptrs[i][j]: backing-buffer pointer of message j as
        // seen by channel i.
        let mut per_channel_ptrs: Vec<Vec<*const u8>> = Vec::new();
        for sub in &subs {
            let mut ptrs = Vec::new();
            for body in &bodies {
                let m = sub.try_recv().expect("one copy per channel");
                prop_assert_eq!(m.body.as_ref(), &body[..], "bytes must match the publish");
                ptrs.push(m.body.as_ref().as_ptr());
                prop_assert!(sub.ack(m.id));
            }
            prop_assert!(sub.try_recv().is_none(), "no extra messages");
            per_channel_ptrs.push(ptrs);
        }
        for ptrs in &per_channel_ptrs[1..] {
            prop_assert_eq!(
                ptrs, &per_channel_ptrs[0],
                "each message must share one buffer across all channels"
            );
        }
    }
}
