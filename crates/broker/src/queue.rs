//! Per-channel queue state: a ready queue, an in-flight table keyed by
//! subscriber, and a condvar for blocking consumers.
//!
//! Delivery claims are stamped with [`SimTime`] from the broker's
//! shared [`VirtualClock`], so message-timeout redelivery
//! (`ChannelState::reclaim_expired`) is driven by the discrete-event
//! scheduler and fully deterministic — wall-clock `Instant`s never
//! enter the picture. Blocking receive timeouts remain wall-clock
//! (they bound how long a *thread* parks, not when a *message*
//! expires).

use crate::message::{Message, MessageId};
use parking_lot::{Condvar, Mutex};
use rai_sim::{SimDuration, SimTime, VirtualClock};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// Error from a blocking receive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecvError {
    /// No message arrived within the timeout.
    Timeout,
    /// The channel (or its topic) was deleted.
    Closed,
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Timeout => write!(f, "recv timed out"),
            RecvError::Closed => write!(f, "channel closed"),
        }
    }
}

impl std::error::Error for RecvError {}

/// Result of an operation that may both requeue messages and push some
/// over the attempt cap. Dead messages are handed back to the caller
/// (the broker), which owns routing them to the dead-letter topic.
#[derive(Debug, Default)]
pub(crate) struct Requeued {
    /// Messages returned to the ready queue.
    pub requeued: usize,
    /// Messages that exhausted their attempt cap.
    pub dead: Vec<Message>,
}

pub(crate) struct ChannelQueue {
    pub ready: VecDeque<Message>,
    /// message id → (subscriber id, message, delivery sim-time) awaiting
    /// ack. The timestamp drives NSQ-style message-timeout redelivery.
    pub in_flight: HashMap<MessageId, (u64, Message, SimTime)>,
    pub closed: bool,
}

pub(crate) struct ChannelState {
    pub name: String,
    pub queue: Mutex<ChannelQueue>,
    pub available: Condvar,
    pub subscribers: AtomicUsize,
    /// Clock stamping delivery claims (shared with the broker).
    pub clock: VirtualClock,
    /// Redeliveries allowed per message before it dead-letters;
    /// 0 disables the cap.
    pub max_attempts: u32,
    // Counters for stats.
    pub enqueued: AtomicU64,
    pub acked: AtomicU64,
    pub requeued: AtomicU64,
    pub dead_lettered: AtomicU64,
}

impl ChannelState {
    pub fn new(name: &str, clock: VirtualClock, max_attempts: u32) -> Self {
        ChannelState {
            name: name.to_string(),
            queue: Mutex::new(ChannelQueue {
                ready: VecDeque::new(),
                in_flight: HashMap::new(),
                closed: false,
            }),
            available: Condvar::new(),
            subscribers: AtomicUsize::new(0),
            clock,
            max_attempts,
            enqueued: AtomicU64::new(0),
            acked: AtomicU64::new(0),
            requeued: AtomicU64::new(0),
            dead_lettered: AtomicU64::new(0),
        }
    }

    /// Push a message to the ready queue and wake one consumer.
    pub fn enqueue(&self, msg: Message) {
        {
            let mut q = self.queue.lock();
            q.ready.push_back(msg);
        }
        self.enqueued.fetch_add(1, Ordering::Relaxed);
        self.available.notify_one();
    }

    /// Blocking pop with timeout; the popped message moves to the
    /// in-flight table under `subscriber`. The timeout bounds the
    /// wall-clock wait; the claim itself is stamped in sim time.
    pub fn recv_timeout(&self, subscriber: u64, timeout: Duration) -> Result<Message, RecvError> {
        let mut q = self.queue.lock();
        loop {
            if q.closed {
                return Err(RecvError::Closed);
            }
            if let Some(mut msg) = q.ready.pop_front() {
                msg.attempts += 1;
                q.in_flight.insert(msg.id, (subscriber, msg.clone(), self.clock.now()));
                return Ok(msg);
            }
            if self.available.wait_for(&mut q, timeout).timed_out() {
                return Err(RecvError::Timeout);
            }
        }
    }

    /// Non-blocking pop.
    pub fn try_recv(&self, subscriber: u64) -> Option<Message> {
        let mut q = self.queue.lock();
        if q.closed {
            return None;
        }
        let mut msg = q.ready.pop_front()?;
        msg.attempts += 1;
        q.in_flight.insert(msg.id, (subscriber, msg.clone(), self.clock.now()));
        Some(msg)
    }

    /// Acknowledge an in-flight message. Returns `false` if it was not
    /// in flight for this subscriber.
    pub fn ack(&self, subscriber: u64, id: MessageId) -> bool {
        let mut q = self.queue.lock();
        match q.in_flight.get(&id) {
            Some((owner, _, _)) if *owner == subscriber => {
                q.in_flight.remove(&id);
                self.acked.fetch_add(1, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// Whether a message at `attempts` deliveries has exhausted its
    /// redelivery budget.
    fn over_cap(&self, attempts: u32) -> bool {
        self.max_attempts > 0 && attempts >= self.max_attempts
    }

    /// Return an in-flight message to the back of the ready queue (a
    /// worker declining a job it has no capacity for), or dead-letter
    /// it if it has hit the attempt cap. Returns `None` if it was not
    /// in flight for this subscriber.
    pub fn requeue(&self, subscriber: u64, id: MessageId) -> Option<Requeued> {
        let mut q = self.queue.lock();
        match q.in_flight.get(&id) {
            Some((owner, _, _)) if *owner == subscriber => {
                let (_, msg, _) = q.in_flight.remove(&id).expect("checked above");
                let mut out = Requeued::default();
                if self.over_cap(msg.attempts) {
                    out.dead.push(msg);
                    drop(q);
                } else {
                    q.ready.push_back(msg);
                    out.requeued = 1;
                    drop(q);
                    self.requeued.fetch_add(1, Ordering::Relaxed);
                    self.available.notify_one();
                }
                Some(out)
            }
            _ => None,
        }
    }

    /// Requeue everything a dropped subscriber still had in flight, so a
    /// crashed worker's jobs are redelivered to surviving workers.
    /// Messages over the attempt cap come back in `dead` instead.
    /// Messages move in id order, so redelivery order is deterministic
    /// regardless of `HashMap` iteration order.
    pub fn requeue_all_for(&self, subscriber: u64) -> Requeued {
        let mut q = self.queue.lock();
        let mut ids: Vec<MessageId> = q
            .in_flight
            .iter()
            .filter(|(_, (owner, _, _))| *owner == subscriber)
            .map(|(id, _)| *id)
            .collect();
        ids.sort();
        self.requeue_ids(&mut q, &ids)
    }

    /// Requeue in-flight messages claimed at or before `now - timeout`
    /// (NSQ's message-timeout behaviour: a worker that stalls without
    /// crashing loses its claim). Expired messages over the attempt cap
    /// come back in `dead`. Deterministic: driven by sim time and
    /// processed in message-id order.
    pub fn reclaim_expired(&self, timeout: SimDuration) -> Requeued {
        let now = self.clock.now();
        let mut q = self.queue.lock();
        let mut ids: Vec<MessageId> = q
            .in_flight
            .iter()
            .filter(|(_, (_, _, taken))| now.duration_since(*taken) >= timeout)
            .map(|(id, _)| *id)
            .collect();
        ids.sort();
        self.requeue_ids(&mut q, &ids)
    }

    fn requeue_ids(&self, q: &mut ChannelQueue, ids: &[MessageId]) -> Requeued {
        let mut out = Requeued::default();
        for id in ids {
            let (_, msg, _) = q.in_flight.remove(id).expect("listed by caller");
            if self.over_cap(msg.attempts) {
                out.dead.push(msg);
            } else {
                q.ready.push_back(msg);
                out.requeued += 1;
            }
        }
        if out.requeued > 0 {
            self.requeued.fetch_add(out.requeued as u64, Ordering::Relaxed);
            self.available.notify_all();
        }
        out
    }

    /// Close the channel, waking all blocked consumers with `Closed`.
    pub fn close(&self) {
        let mut q = self.queue.lock();
        q.closed = true;
        drop(q);
        self.available.notify_all();
    }

    /// Ready-queue depth.
    pub fn depth(&self) -> usize {
        self.queue.lock().ready.len()
    }

    /// In-flight count.
    pub fn in_flight_count(&self) -> usize {
        self.queue.lock().in_flight.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(id: u64) -> Message {
        Message {
            id: MessageId(id),
            body: bytes::Bytes::from_static(b"x"),
            attempts: 0,
        }
    }

    fn chan(max_attempts: u32) -> (ChannelState, VirtualClock) {
        let clock = VirtualClock::new();
        (ChannelState::new("ch", clock.clone(), max_attempts), clock)
    }

    #[test]
    fn enqueue_recv_ack() {
        let (ch, _clock) = chan(0);
        ch.enqueue(msg(1));
        let m = ch.recv_timeout(7, Duration::from_millis(10)).unwrap();
        assert_eq!(m.id, MessageId(1));
        assert_eq!(m.attempts, 1);
        assert_eq!(ch.in_flight_count(), 1);
        assert!(ch.ack(7, m.id));
        assert!(!ch.ack(7, m.id), "double ack fails");
        assert_eq!(ch.in_flight_count(), 0);
    }

    #[test]
    fn ack_wrong_subscriber_rejected() {
        let (ch, _clock) = chan(0);
        ch.enqueue(msg(1));
        let m = ch.try_recv(1).unwrap();
        assert!(!ch.ack(2, m.id));
        assert!(ch.ack(1, m.id));
    }

    #[test]
    fn requeue_increments_attempts() {
        let (ch, _clock) = chan(0);
        ch.enqueue(msg(1));
        let m = ch.try_recv(1).unwrap();
        assert_eq!(m.attempts, 1);
        let r = ch.requeue(1, m.id).expect("owned");
        assert_eq!(r.requeued, 1);
        let m2 = ch.try_recv(1).unwrap();
        assert_eq!(m2.attempts, 2);
    }

    #[test]
    fn recv_times_out() {
        let (ch, _clock) = chan(0);
        assert_eq!(
            ch.recv_timeout(1, Duration::from_millis(5)),
            Err(RecvError::Timeout)
        );
    }

    #[test]
    fn close_wakes_blocked_consumer() {
        let (ch, _clock) = chan(0);
        let ch = std::sync::Arc::new(ch);
        let ch2 = ch.clone();
        let t = std::thread::spawn(move || ch2.recv_timeout(1, Duration::from_secs(10)));
        std::thread::sleep(Duration::from_millis(20));
        ch.close();
        assert_eq!(t.join().unwrap(), Err(RecvError::Closed));
    }

    #[test]
    fn reclaim_expired_requeues_stalled_deliveries() {
        let (ch, clock) = chan(0);
        ch.enqueue(msg(1));
        let taken = ch.try_recv(1).unwrap();
        let r = ch.reclaim_expired(SimDuration::from_secs(60));
        assert_eq!(r.requeued, 0, "fresh claim kept");
        clock.advance(SimDuration::from_secs(61));
        let r = ch.reclaim_expired(SimDuration::from_secs(60));
        assert_eq!(r.requeued, 1);
        assert!(r.dead.is_empty());
        let again = ch.try_recv(2).unwrap();
        assert_eq!(again.id, taken.id);
        assert_eq!(again.attempts, 2);
    }

    #[test]
    fn reclaim_is_sim_time_not_wall_time() {
        let (ch, _clock) = chan(0);
        ch.enqueue(msg(1));
        let _taken = ch.try_recv(1).unwrap();
        // Wall-clock time passes but sim time does not: no reclaim.
        std::thread::sleep(Duration::from_millis(15));
        let r = ch.reclaim_expired(SimDuration::from_millis(1));
        assert_eq!(r.requeued, 0);
        assert_eq!(ch.in_flight_count(), 1);
    }

    #[test]
    fn dropped_subscriber_requeues_its_messages_only() {
        let (ch, _clock) = chan(0);
        ch.enqueue(msg(1));
        ch.enqueue(msg(2));
        ch.enqueue(msg(3));
        let _a = ch.try_recv(1).unwrap();
        let _b = ch.try_recv(1).unwrap();
        let _c = ch.try_recv(2).unwrap();
        let r = ch.requeue_all_for(1);
        assert_eq!(r.requeued, 2);
        assert_eq!(ch.depth(), 2);
        assert_eq!(ch.in_flight_count(), 1);
    }

    #[test]
    fn attempt_cap_dead_letters_on_requeue() {
        let (ch, _clock) = chan(2);
        ch.enqueue(msg(1));
        let m = ch.try_recv(1).unwrap(); // attempt 1
        assert_eq!(ch.requeue(1, m.id).unwrap().requeued, 1);
        let m = ch.try_recv(1).unwrap(); // attempt 2 == cap
        let r = ch.requeue(1, m.id).unwrap();
        assert_eq!(r.requeued, 0);
        assert_eq!(r.dead.len(), 1);
        assert_eq!(r.dead[0].attempts, 2);
        assert_eq!(ch.depth(), 0);
        assert_eq!(ch.in_flight_count(), 0);
    }

    #[test]
    fn attempt_cap_applies_to_reclaim_and_drop_requeue() {
        let (ch, clock) = chan(1);
        ch.enqueue(msg(1));
        ch.enqueue(msg(2));
        let _a = ch.try_recv(1).unwrap();
        let _b = ch.try_recv(2).unwrap();
        clock.advance(SimDuration::from_secs(10));
        let r = ch.reclaim_expired(SimDuration::from_secs(5));
        assert_eq!(r.requeued, 0);
        assert_eq!(r.dead.len(), 2, "cap of 1 dead-letters on first expiry");
        assert_eq!(r.dead[0].id, MessageId(1), "dead letters in id order");
        assert_eq!(r.dead[1].id, MessageId(2));
    }
}
