//! Per-channel queue state: a ready queue, an in-flight table keyed by
//! subscriber, and a condvar for blocking consumers.

use crate::message::{Message, MessageId};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// Error from a blocking receive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecvError {
    /// No message arrived within the timeout.
    Timeout,
    /// The channel (or its topic) was deleted.
    Closed,
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Timeout => write!(f, "recv timed out"),
            RecvError::Closed => write!(f, "channel closed"),
        }
    }
}

impl std::error::Error for RecvError {}

pub(crate) struct ChannelQueue {
    pub ready: VecDeque<Message>,
    /// message id → (subscriber id, message, delivery instant) awaiting
    /// ack. The instant drives NSQ-style message-timeout redelivery.
    pub in_flight: HashMap<MessageId, (u64, Message, std::time::Instant)>,
    pub closed: bool,
}

pub(crate) struct ChannelState {
    pub name: String,
    pub queue: Mutex<ChannelQueue>,
    pub available: Condvar,
    pub subscribers: AtomicUsize,
    // Counters for stats.
    pub enqueued: AtomicU64,
    pub acked: AtomicU64,
    pub requeued: AtomicU64,
}

impl ChannelState {
    pub fn new(name: &str) -> Self {
        ChannelState {
            name: name.to_string(),
            queue: Mutex::new(ChannelQueue {
                ready: VecDeque::new(),
                in_flight: HashMap::new(),
                closed: false,
            }),
            available: Condvar::new(),
            subscribers: AtomicUsize::new(0),
            enqueued: AtomicU64::new(0),
            acked: AtomicU64::new(0),
            requeued: AtomicU64::new(0),
        }
    }

    /// Push a message to the ready queue and wake one consumer.
    pub fn enqueue(&self, msg: Message) {
        {
            let mut q = self.queue.lock();
            q.ready.push_back(msg);
        }
        self.enqueued.fetch_add(1, Ordering::Relaxed);
        self.available.notify_one();
    }

    /// Blocking pop with timeout; the popped message moves to the
    /// in-flight table under `subscriber`.
    pub fn recv_timeout(&self, subscriber: u64, timeout: Duration) -> Result<Message, RecvError> {
        let mut q = self.queue.lock();
        loop {
            if q.closed {
                return Err(RecvError::Closed);
            }
            if let Some(mut msg) = q.ready.pop_front() {
                msg.attempts += 1;
                q.in_flight
                    .insert(msg.id, (subscriber, msg.clone(), std::time::Instant::now()));
                return Ok(msg);
            }
            if self.available.wait_for(&mut q, timeout).timed_out() {
                return Err(RecvError::Timeout);
            }
        }
    }

    /// Non-blocking pop.
    pub fn try_recv(&self, subscriber: u64) -> Option<Message> {
        let mut q = self.queue.lock();
        if q.closed {
            return None;
        }
        let mut msg = q.ready.pop_front()?;
        msg.attempts += 1;
        q.in_flight
            .insert(msg.id, (subscriber, msg.clone(), std::time::Instant::now()));
        Some(msg)
    }

    /// Acknowledge an in-flight message. Returns `false` if it was not
    /// in flight for this subscriber.
    pub fn ack(&self, subscriber: u64, id: MessageId) -> bool {
        let mut q = self.queue.lock();
        match q.in_flight.get(&id) {
            Some((owner, _, _)) if *owner == subscriber => {
                q.in_flight.remove(&id);
                self.acked.fetch_add(1, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// Return an in-flight message to the back of the ready queue (a
    /// worker declining a job it has no capacity for). Returns `false`
    /// if it was not in flight for this subscriber.
    pub fn requeue(&self, subscriber: u64, id: MessageId) -> bool {
        let mut q = self.queue.lock();
        match q.in_flight.get(&id) {
            Some((owner, _, _)) if *owner == subscriber => {
                let (_, msg, _) = q.in_flight.remove(&id).expect("checked above");
                q.ready.push_back(msg);
                drop(q);
                self.requeued.fetch_add(1, Ordering::Relaxed);
                self.available.notify_one();
                true
            }
            _ => false,
        }
    }

    /// Requeue everything a dropped subscriber still had in flight, so a
    /// crashed worker's jobs are redelivered to surviving workers.
    pub fn requeue_all_for(&self, subscriber: u64) -> usize {
        let mut q = self.queue.lock();
        let ids: Vec<MessageId> = q
            .in_flight
            .iter()
            .filter(|(_, (owner, _, _))| *owner == subscriber)
            .map(|(id, _)| *id)
            .collect();
        let n = ids.len();
        for id in &ids {
            let (_, msg, _) = q.in_flight.remove(id).expect("listed above");
            q.ready.push_back(msg);
        }
        drop(q);
        if n > 0 {
            self.requeued.fetch_add(n as u64, Ordering::Relaxed);
            self.available.notify_all();
        }
        n
    }

    /// Requeue in-flight messages that have been unacked longer than
    /// `timeout` (NSQ's message-timeout behaviour: a worker that stalls
    /// without crashing loses its claim). Returns how many moved.
    pub fn reclaim_expired(&self, timeout: Duration) -> usize {
        let now = std::time::Instant::now();
        let mut q = self.queue.lock();
        let ids: Vec<MessageId> = q
            .in_flight
            .iter()
            .filter(|(_, (_, _, taken))| now.duration_since(*taken) >= timeout)
            .map(|(id, _)| *id)
            .collect();
        let n = ids.len();
        for id in &ids {
            let (_, msg, _) = q.in_flight.remove(id).expect("listed above");
            q.ready.push_back(msg);
        }
        drop(q);
        if n > 0 {
            self.requeued.fetch_add(n as u64, Ordering::Relaxed);
            self.available.notify_all();
        }
        n
    }

    /// Close the channel, waking all blocked consumers with `Closed`.
    pub fn close(&self) {
        let mut q = self.queue.lock();
        q.closed = true;
        drop(q);
        self.available.notify_all();
    }

    /// Ready-queue depth.
    pub fn depth(&self) -> usize {
        self.queue.lock().ready.len()
    }

    /// In-flight count.
    pub fn in_flight_count(&self) -> usize {
        self.queue.lock().in_flight.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn msg(id: u64) -> Message {
        Message {
            id: MessageId(id),
            body: Bytes::from_static(b"x"),
            attempts: 0,
        }
    }

    #[test]
    fn enqueue_recv_ack() {
        let ch = ChannelState::new("ch");
        ch.enqueue(msg(1));
        let m = ch.recv_timeout(7, Duration::from_millis(10)).unwrap();
        assert_eq!(m.id, MessageId(1));
        assert_eq!(m.attempts, 1);
        assert_eq!(ch.in_flight_count(), 1);
        assert!(ch.ack(7, m.id));
        assert!(!ch.ack(7, m.id), "double ack fails");
        assert_eq!(ch.in_flight_count(), 0);
    }

    #[test]
    fn ack_wrong_subscriber_rejected() {
        let ch = ChannelState::new("ch");
        ch.enqueue(msg(1));
        let m = ch.try_recv(1).unwrap();
        assert!(!ch.ack(2, m.id));
        assert!(ch.ack(1, m.id));
    }

    #[test]
    fn requeue_increments_attempts() {
        let ch = ChannelState::new("ch");
        ch.enqueue(msg(1));
        let m = ch.try_recv(1).unwrap();
        assert_eq!(m.attempts, 1);
        assert!(ch.requeue(1, m.id));
        let m2 = ch.try_recv(1).unwrap();
        assert_eq!(m2.attempts, 2);
    }

    #[test]
    fn recv_times_out() {
        let ch = ChannelState::new("ch");
        assert_eq!(
            ch.recv_timeout(1, Duration::from_millis(5)),
            Err(RecvError::Timeout)
        );
    }

    #[test]
    fn close_wakes_blocked_consumer() {
        let ch = std::sync::Arc::new(ChannelState::new("ch"));
        let ch2 = ch.clone();
        let t = std::thread::spawn(move || ch2.recv_timeout(1, Duration::from_secs(10)));
        std::thread::sleep(Duration::from_millis(20));
        ch.close();
        assert_eq!(t.join().unwrap(), Err(RecvError::Closed));
    }

    #[test]
    fn reclaim_expired_requeues_stalled_deliveries() {
        let ch = ChannelState::new("ch");
        ch.enqueue(msg(1));
        let taken = ch.try_recv(1).unwrap();
        assert_eq!(ch.reclaim_expired(Duration::from_secs(60)), 0, "fresh claim kept");
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(ch.reclaim_expired(Duration::from_millis(10)), 1);
        let again = ch.try_recv(2).unwrap();
        assert_eq!(again.id, taken.id);
        assert_eq!(again.attempts, 2);
    }

    #[test]
    fn dropped_subscriber_requeues_its_messages_only() {
        let ch = ChannelState::new("ch");
        ch.enqueue(msg(1));
        ch.enqueue(msg(2));
        ch.enqueue(msg(3));
        let _a = ch.try_recv(1).unwrap();
        let _b = ch.try_recv(1).unwrap();
        let _c = ch.try_recv(2).unwrap();
        assert_eq!(ch.requeue_all_for(1), 2);
        assert_eq!(ch.depth(), 2);
        assert_eq!(ch.in_flight_count(), 1);
    }
}
