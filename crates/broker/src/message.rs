//! Message model.

use bytes::Bytes;

/// Broker-assigned unique message identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MessageId(pub u64);

impl std::fmt::Display for MessageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "msg-{:08x}", self.0)
    }
}

/// A message as delivered to a consumer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Message {
    /// Unique id (per broker).
    pub id: MessageId,
    /// Opaque payload. RAI serializes job requests and log lines here.
    pub body: Bytes,
    /// Delivery attempt count: 1 on first delivery, incremented on each
    /// requeue. Consumers use this to drop poison messages.
    pub attempts: u32,
}

impl Message {
    /// Body as UTF-8, lossily. Log-stream messages are plain text.
    pub fn body_str(&self) -> std::borrow::Cow<'_, str> {
        String::from_utf8_lossy(&self.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_text() {
        let m = Message {
            id: MessageId(0xAB),
            body: Bytes::from_static(b"Building project"),
            attempts: 1,
        };
        assert_eq!(m.id.to_string(), "msg-000000ab");
        assert_eq!(m.body_str(), "Building project");
    }
}
