//! # rai-broker — the message broker (paper §IV, §V)
//!
//! RAI's clients and workers communicate exclusively through a message
//! broker "composed of multiple topics, each of which has multiple
//! channels", addressed as `topic_name/channel_name` (the *queue
//! route*). Publishing copies a message into every channel of the topic;
//! consumers subscribed to the *same* channel load-balance, consumers on
//! *different* channels each see every message — exactly NSQ's model,
//! which the original RAI deployment used.
//!
//! Reproduced semantics:
//!
//! * `rai/tasks` — job submissions; all workers subscribe to one shared
//!   channel and messages are load-balanced among them;
//! * `log_${job_id}` — per-job ephemeral topics for streaming
//!   stdout/stderr back to the client; "both the topic and channel are
//!   deleted if there are no producers and consumers";
//! * conditional consumption — a worker may *requeue* a message it
//!   cannot accept (resource constraints), which redelivers it with an
//!   incremented attempt counter;
//! * messages published before any channel exists are held in a topic
//!   backlog and drained into the first channel created (so log lines
//!   emitted before the client finishes subscribing are not lost).
//!
//! The broker is a live, thread-safe component (parking_lot mutexes +
//! condvars), exercised with real threads in its tests and benches, and
//! driven single-threaded from the discrete-event simulation.

pub mod broker;
pub mod message;
pub mod queue;

pub use broker::{
    dead_letter_topic, Broker, BrokerConfig, BrokerStats, PublishError, Subscription, TopicStats,
};
pub use message::{Message, MessageId};
pub use queue::RecvError;
