//! The broker proper: topic table, publish fan-out, subscriptions,
//! ephemeral-topic garbage collection, dead-letter routing, and
//! statistics.

use crate::message::{Message, MessageId};
use crate::queue::{ChannelState, RecvError, Requeued};
use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use rai_faults::{FaultInjector, FaultKind};
use rai_sim::{SimDuration, VirtualClock};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Broker configuration.
#[derive(Clone, Debug)]
pub struct BrokerConfig {
    /// Maximum ready-queue depth per channel; publishing beyond this
    /// returns [`PublishError::ChannelFull`]. RAI uses this as crude
    /// back-pressure so a melting-down worker fleet surfaces as client
    /// errors instead of unbounded broker memory.
    pub max_channel_depth: usize,
    /// Maximum number of messages retained in a topic backlog while the
    /// topic has no channels yet.
    pub max_backlog: usize,
    /// Per-message delivery-attempt cap. A message requeued after its
    /// `max_attempts`-th delivery is routed to the channel's dead-letter
    /// topic ([`dead_letter_topic`]) instead of redelivered forever.
    /// 0 (the default) disables the cap.
    pub max_attempts: u32,
}

impl Default for BrokerConfig {
    fn default() -> Self {
        BrokerConfig {
            max_channel_depth: 100_000,
            max_backlog: 10_000,
            max_attempts: 0,
        }
    }
}

/// The dead-letter topic for `topic/channel`: the route reads
/// `topic/channel#dead` (so `rai/tasks` dead-letters to the topic named
/// `rai/tasks#dead`). It is an ordinary durable topic; subscribe to it
/// to audit poison messages.
pub fn dead_letter_topic(topic: &str, channel: &str) -> String {
    format!("{topic}/{channel}#dead")
}

/// Publish failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PublishError {
    /// A channel of the topic is at `max_channel_depth`.
    ChannelFull { topic: String, channel: String },
    /// The topic's no-channel backlog is full.
    BacklogFull { topic: String },
    /// The broker refused the publish (injected fault: connection
    /// dropped, node flapping). Retryable.
    Unavailable { topic: String },
}

impl std::fmt::Display for PublishError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PublishError::ChannelFull { topic, channel } => {
                write!(f, "channel {topic}/{channel} is full")
            }
            PublishError::BacklogFull { topic } => write!(f, "topic {topic} backlog is full"),
            PublishError::Unavailable { topic } => {
                write!(f, "broker unavailable publishing to {topic}")
            }
        }
    }
}

impl std::error::Error for PublishError {}

/// Number of dirty-list stripes. Topics hash onto a stripe at
/// creation; concurrent claim lanes working distinct topics then mark
/// dirtiness on distinct stripe locks and never contend unless their
/// topics happen to share a stripe.
const DIRTY_STRIPES: usize = 16;

/// FNV-1a over a topic name — the stripe key. Stable across runs, so
/// stripe assignment (like arena shard assignment) is a pure function
/// of the name.
fn stripe_of(name: &str) -> usize {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    (h as usize) % DIRTY_STRIPES
}

struct TopicState {
    name: String,
    ephemeral: bool,
    /// Which dirty-list stripe this topic registers on (fixed at
    /// creation; pure function of the name).
    stripe: usize,
    channels: Mutex<HashMap<String, Arc<ChannelState>>>,
    /// Messages published before the first channel existed.
    backlog: Mutex<VecDeque<Message>>,
    published: AtomicU64,
    /// Set while the topic sits on the broker's dirty list (it has had
    /// a message claimed since the last `reclaim_expired` pass).
    dirty: AtomicBool,
}

struct BrokerInner {
    config: BrokerConfig,
    clock: VirtualClock,
    /// Topic table. A `RwLock` so the hot paths — publish and
    /// subscription receives — share a read lock and contend only on
    /// the per-topic/per-channel locks; the write lock is taken once
    /// per topic lifetime (creation and GC).
    topics: RwLock<HashMap<String, Arc<TopicState>>>,
    /// Topics with messages claimed since the last reclaim pass, so
    /// `reclaim_expired` visits O(touched topics) instead of rescanning
    /// the whole table (which is mostly short-lived `log_*` topics that
    /// never hold a claim long). Striped by topic-name hash so claim
    /// lanes popping distinct topics dirty-mark without contending on
    /// one global list lock; `reclaim_expired` drains every stripe and
    /// merges, so the pass itself is unchanged.
    dirty: Vec<Mutex<Vec<Arc<TopicState>>>>,
    /// Cumulative microseconds spent waiting on contended dirty-stripe
    /// locks. A host fact: surfaced via `rai_lock_wait_micros_total`,
    /// never in fingerprints.
    lock_wait_micros: AtomicU64,
    next_message_id: AtomicU64,
    next_subscriber_id: AtomicU64,
    injector: Mutex<Option<FaultInjector>>,
    dead_lettered: AtomicU64,
}

impl BrokerInner {
    fn topic(&self, name: &str, ephemeral: bool) -> Arc<TopicState> {
        if let Some(t) = self.topics.read().get(name) {
            return t.clone();
        }
        let mut topics = self.topics.write();
        topics
            .entry(name.to_string())
            .or_insert_with(|| {
                Arc::new(TopicState {
                    name: name.to_string(),
                    ephemeral,
                    stripe: stripe_of(name),
                    channels: Mutex::new(HashMap::new()),
                    backlog: Mutex::new(VecDeque::new()),
                    published: AtomicU64::new(0),
                    dirty: AtomicBool::new(false),
                })
            })
            .clone()
    }

    /// Lock one dirty stripe, charging contended waits to the
    /// lock-wait counter. Uncontended cost is one `try_lock`.
    fn dirty_stripe(&self, stripe: usize) -> parking_lot::MutexGuard<'_, Vec<Arc<TopicState>>> {
        if let Some(g) = self.dirty[stripe].try_lock() {
            return g;
        }
        let start = std::time::Instant::now();
        let g = self.dirty[stripe].lock();
        self.lock_wait_micros
            .fetch_add(start.elapsed().as_micros() as u64, Ordering::Relaxed);
        g
    }

    /// Note that `topic` just had a message claimed: it must be visited
    /// by the next `reclaim_expired` pass. The flag swap happens under
    /// the topic's stripe lock so a concurrent
    /// [`BrokerInner::clean_if_quiescent`] can never observe the flag
    /// set without the list entry (or vice versa).
    fn mark_dirty(&self, topic: &Arc<TopicState>) {
        let mut dirty = self.dirty_stripe(topic.stripe);
        if !topic.dirty.swap(true, Ordering::AcqRel) {
            dirty.push(topic.clone());
        }
    }

    /// Drop `topic` from its dirty stripe if it no longer holds any
    /// in-flight claim — the one-pass cleanup a fully-acked batch runs
    /// so `reclaim_expired` doesn't visit a topic that settled between
    /// passes. Safe against a racing claim: the claim increments its
    /// channel's in-flight count *before* calling `mark_dirty`, so
    /// either this check sees the claim (topic stays dirty) or the
    /// claim's `mark_dirty` runs after the flag clears here and
    /// re-registers the topic.
    fn clean_if_quiescent(&self, topic: &Arc<TopicState>) {
        let mut dirty = self.dirty_stripe(topic.stripe);
        if !topic.dirty.load(Ordering::Acquire) {
            return;
        }
        let quiescent = topic
            .channels
            .lock()
            .values()
            .all(|ch| ch.in_flight_count() == 0);
        if quiescent {
            topic.dirty.store(false, Ordering::Release);
            dirty.retain(|t| !Arc::ptr_eq(t, topic));
        }
    }

    fn publish_raw(
        &self,
        topic: &str,
        body: Bytes,
        ephemeral: bool,
        faultable: bool,
    ) -> Result<MessageId, PublishError> {
        if faultable {
            let injector = self.injector.lock().clone();
            if let Some(inj) = injector {
                if inj.should_fail(FaultKind::BrokerPublish) {
                    return Err(PublishError::Unavailable { topic: topic.to_string() });
                }
            }
        }
        let t = self.topic(topic, ephemeral);
        let id = MessageId(self.next_message_id.fetch_add(1, Ordering::Relaxed));
        let msg = Message {
            id,
            body,
            attempts: 0,
        };
        let channels = t.channels.lock();
        if channels.is_empty() {
            // Hold in the backlog until the first channel appears.
            let mut backlog = t.backlog.lock();
            if backlog.len() >= self.config.max_backlog {
                return Err(PublishError::BacklogFull {
                    topic: topic.to_string(),
                });
            }
            backlog.push_back(msg);
        } else {
            // NSQ semantics: every channel receives a copy — but the
            // "copy" is a shallow `Bytes` handle on one shared
            // allocation, so fan-out cost is per-channel bookkeeping,
            // never a payload memcpy (dead-letter republish rides the
            // same handle). Depth is checked across all channels first
            // so a publish is all-or-nothing.
            for ch in channels.values() {
                if ch.depth() >= self.config.max_channel_depth {
                    return Err(PublishError::ChannelFull {
                        topic: topic.to_string(),
                        channel: ch.name.clone(),
                    });
                }
            }
            for ch in channels.values() {
                ch.enqueue(msg.clone());
            }
        }
        t.published.fetch_add(1, Ordering::Relaxed);
        Ok(id)
    }

    /// Route messages that exhausted their attempt cap on
    /// `topic/channel` to the dead-letter topic. Internal publishes are
    /// never fault-injected and ignore back-pressure errors: losing a
    /// dead letter to a full queue is strictly worse than exceeding a
    /// depth limit.
    fn route_dead(&self, topic: &str, channel: &Arc<ChannelState>, requeued: &Requeued) {
        if requeued.dead.is_empty() {
            return;
        }
        let dead_topic = dead_letter_topic(topic, &channel.name);
        for msg in &requeued.dead {
            let _ = self.publish_raw(&dead_topic, msg.body.clone(), false, false);
        }
        let n = requeued.dead.len() as u64;
        channel.dead_lettered.fetch_add(n, Ordering::Relaxed);
        self.dead_lettered.fetch_add(n, Ordering::Relaxed);
    }
}

/// The message broker. Cheap to clone; clones share state.
#[derive(Clone)]
pub struct Broker {
    inner: Arc<BrokerInner>,
}

impl Default for Broker {
    fn default() -> Self {
        Self::new(BrokerConfig::default())
    }
}

impl Broker {
    /// Create a broker with a private clock (sim drivers should prefer
    /// [`Broker::with_clock`] so message timeouts advance with the
    /// simulation).
    pub fn new(config: BrokerConfig) -> Self {
        Self::with_clock(config, VirtualClock::new())
    }

    /// Create a broker whose delivery claims are stamped by `clock`.
    pub fn with_clock(config: BrokerConfig, clock: VirtualClock) -> Self {
        Broker {
            inner: Arc::new(BrokerInner {
                config,
                clock,
                topics: RwLock::new(HashMap::new()),
                dirty: (0..DIRTY_STRIPES).map(|_| Mutex::new(Vec::new())).collect(),
                lock_wait_micros: AtomicU64::new(0),
                next_message_id: AtomicU64::new(1),
                next_subscriber_id: AtomicU64::new(1),
                injector: Mutex::new(None),
                dead_lettered: AtomicU64::new(0),
            }),
        }
    }

    /// The clock stamping delivery claims.
    pub fn clock(&self) -> &VirtualClock {
        &self.inner.clock
    }

    /// Attach a fault injector: subsequent external publishes may be
    /// rejected with [`PublishError::Unavailable`] per the injector's
    /// plan. Internal dead-letter routing is exempt.
    pub fn set_fault_injector(&self, injector: FaultInjector) {
        *self.inner.injector.lock() = Some(injector);
    }

    /// Publish to a durable topic (created on first use).
    pub fn publish(&self, topic: &str, body: impl Into<Bytes>) -> Result<MessageId, PublishError> {
        self.inner.publish_raw(topic, body.into(), false, true)
    }

    /// Publish to a durable topic bypassing fault injection. This is
    /// the crash-recovery path: re-publishing a journaled submission
    /// intent that already survived its fault roll when it was first
    /// accepted must not roll again (it would skew the deterministic
    /// draw sequence and could drop an accepted job).
    pub fn publish_durable(
        &self,
        topic: &str,
        body: impl Into<Bytes>,
    ) -> Result<MessageId, PublishError> {
        self.inner.publish_raw(topic, body.into(), false, false)
    }

    /// Publish to an ephemeral topic (created on first use; garbage
    /// collected once the last subscription drops). RAI's per-job
    /// `log_${job_id}` topics use this.
    pub fn publish_ephemeral(
        &self,
        topic: &str,
        body: impl Into<Bytes>,
    ) -> Result<MessageId, PublishError> {
        self.inner.publish_raw(topic, body.into(), true, true)
    }

    /// Subscribe to `topic/channel`, creating both as needed. Multiple
    /// subscriptions on the same channel load-balance; subscriptions on
    /// different channels of one topic each see every message.
    pub fn subscribe(&self, topic: &str, channel: &str) -> Subscription {
        self.subscribe_inner(topic, channel, false)
    }

    /// Subscribe to an ephemeral topic (see [`Broker::publish_ephemeral`]).
    pub fn subscribe_ephemeral(&self, topic: &str, channel: &str) -> Subscription {
        self.subscribe_inner(topic, channel, true)
    }

    fn subscribe_inner(&self, topic: &str, channel: &str, ephemeral: bool) -> Subscription {
        let t = self.inner.topic(topic, ephemeral);
        let ch = {
            let mut channels = t.channels.lock();
            let is_new_first_channel = channels.is_empty();
            let ch = channels
                .entry(channel.to_string())
                .or_insert_with(|| {
                    Arc::new(ChannelState::new(
                        channel,
                        self.inner.clock.clone(),
                        self.inner.config.max_attempts,
                    ))
                })
                .clone();
            if is_new_first_channel {
                // Drain the topic backlog into the first channel.
                let mut backlog = t.backlog.lock();
                while let Some(m) = backlog.pop_front() {
                    ch.enqueue(m);
                }
            }
            ch
        };
        ch.subscribers.fetch_add(1, Ordering::SeqCst);
        let id = self.inner.next_subscriber_id.fetch_add(1, Ordering::Relaxed);
        Subscription {
            broker: self.inner.clone(),
            topic: t,
            channel: ch,
            subscriber_id: id,
        }
    }

    /// Delete a topic outright, closing all its channels.
    pub fn delete_topic(&self, name: &str) -> bool {
        let Some(t) = self.inner.topics.write().remove(name) else {
            return false;
        };
        for ch in t.channels.lock().values() {
            ch.close();
        }
        true
    }

    /// Names of live topics.
    pub fn topic_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.topics.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Whether a topic currently exists.
    pub fn has_topic(&self, name: &str) -> bool {
        self.inner.topics.read().contains_key(name)
    }

    /// Per-topic statistics snapshot.
    pub fn topic_stats(&self, name: &str) -> Option<TopicStats> {
        let t = self.inner.topics.read().get(name)?.clone();
        let mut depth = 0;
        let mut in_flight = 0;
        let mut acked = 0;
        let mut requeued = 0;
        let mut dead_lettered = 0;
        let channel_count;
        {
            let channels = t.channels.lock();
            channel_count = channels.len();
            for ch in channels.values() {
                depth += ch.depth();
                in_flight += ch.in_flight_count();
                acked += ch.acked.load(Ordering::Relaxed);
                requeued += ch.requeued.load(Ordering::Relaxed);
                dead_lettered += ch.dead_lettered.load(Ordering::Relaxed);
            }
        }
        let backlog_len = t.backlog.lock().len();
        Some(TopicStats {
            name: name.to_string(),
            channels: channel_count,
            published: t.published.load(Ordering::Relaxed),
            depth: depth + backlog_len,
            in_flight,
            acked,
            requeued,
            dead_lettered,
        })
    }

    /// Requeue every in-flight message claimed more than `timeout` of
    /// sim time ago (run periodically, like nsqd's message timeout).
    /// Messages over the attempt cap are routed to their dead-letter
    /// topic instead. Only topics on the dirty list — those with a
    /// message claimed since the last pass — are visited; everything
    /// else cannot hold an expired claim, so the pass is O(touched
    /// topics), not O(all topics). Dirty topics are processed in name
    /// order and messages in id order, so redelivery is deterministic.
    /// Returns how many messages went back to ready queues.
    pub fn reclaim_expired(&self, timeout: SimDuration) -> usize {
        // Drain every stripe and merge: the name sort below restores
        // one deterministic visit order regardless of how topics were
        // scattered across stripes.
        let mut dirty: Vec<Arc<TopicState>> = Vec::new();
        for stripe in 0..DIRTY_STRIPES {
            dirty.append(&mut *self.inner.dirty_stripe(stripe));
        }
        dirty.sort_by(|a, b| a.name.cmp(&b.name));
        let mut n = 0;
        for t in dirty {
            t.dirty.store(false, Ordering::Release);
            let mut channels: Vec<Arc<ChannelState>> =
                t.channels.lock().values().cloned().collect();
            channels.sort_by(|a, b| a.name.cmp(&b.name));
            let mut still_in_flight = false;
            for ch in channels {
                let r = ch.reclaim_expired(timeout);
                self.inner.route_dead(&t.name, &ch, &r);
                n += r.requeued;
                still_in_flight |= ch.in_flight_count() > 0;
            }
            if still_in_flight {
                // Unexpired claims survive this pass; the next one must
                // look at this topic again even if nothing new is
                // claimed in between.
                self.inner.mark_dirty(&t);
            }
        }
        n
    }

    /// Topics awaiting a `reclaim_expired` visit (they had a message
    /// claimed since the last pass). Exposed for tests and benches.
    /// Stripes partition the dirty set, so the sum is exact.
    pub fn dirty_topics(&self) -> usize {
        (0..DIRTY_STRIPES).map(|s| self.inner.dirty_stripe(s).len()).sum()
    }

    /// Cumulative microseconds spent waiting on contended dirty-stripe
    /// locks — a host fact folded into `rai_lock_wait_micros_total`,
    /// never into fingerprints.
    pub fn lock_wait_micros(&self) -> u64 {
        self.inner.lock_wait_micros.load(Ordering::Relaxed)
    }

    /// Whole-broker statistics snapshot.
    pub fn stats(&self) -> BrokerStats {
        let names = self.topic_names();
        let mut s = BrokerStats {
            topics: names.len(),
            ..Default::default()
        };
        for n in names {
            if let Some(t) = self.topic_stats(&n) {
                s.channels += t.channels;
                s.published += t.published;
                s.depth += t.depth;
                s.in_flight += t.in_flight;
                s.acked += t.acked;
                s.requeued += t.requeued;
            }
        }
        // Count from the broker-wide counter, not the per-channel sums:
        // dead letters outlive their source channel (e.g. a dropped
        // ephemeral topic).
        s.dead_lettered = self.inner.dead_lettered.load(Ordering::Relaxed);
        s
    }
}

/// Statistics for a single topic.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TopicStats {
    /// Topic name.
    pub name: String,
    /// Channel count.
    pub channels: usize,
    /// Messages published to the topic.
    pub published: u64,
    /// Ready messages across channels (plus any backlog).
    pub depth: usize,
    /// Unacknowledged deliveries.
    pub in_flight: usize,
    /// Acknowledged messages.
    pub acked: u64,
    /// Requeue events.
    pub requeued: u64,
    /// Messages routed to this topic's dead-letter topics.
    pub dead_lettered: u64,
}

/// Whole-broker statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BrokerStats {
    /// Live topic count.
    pub topics: usize,
    /// Total channels.
    pub channels: usize,
    /// Total published messages.
    pub published: u64,
    /// Total ready depth.
    pub depth: usize,
    /// Total in flight.
    pub in_flight: usize,
    /// Total acked.
    pub acked: u64,
    /// Total requeue events.
    pub requeued: u64,
    /// Total messages routed to dead-letter topics.
    pub dead_lettered: u64,
}

/// A consumer's handle on `topic/channel`.
///
/// Dropping the subscription requeues its in-flight messages (crash
/// semantics) and garbage-collects ephemeral topics left without
/// subscribers — the paper's "deleted if there are no producers and
/// consumers".
pub struct Subscription {
    broker: Arc<BrokerInner>,
    topic: Arc<TopicState>,
    channel: Arc<ChannelState>,
    subscriber_id: u64,
}

impl Subscription {
    /// Blocking receive with timeout. The returned message is in flight
    /// until [`Subscription::ack`] or [`Subscription::requeue`].
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Message, RecvError> {
        let msg = self.channel.recv_timeout(self.subscriber_id, timeout)?;
        self.broker.mark_dirty(&self.topic);
        Ok(msg)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Message> {
        let msg = self.channel.try_recv(self.subscriber_id)?;
        self.broker.mark_dirty(&self.topic);
        Some(msg)
    }

    /// Claim up to `max` ready messages in one call, in queue order.
    /// Every returned message is in flight until individually
    /// [`Subscription::ack`]ed (or [`Subscription::ack_batch`]ed) —
    /// a crash drops the whole batch back to the queue at once, which
    /// is exactly the at-least-once story of a single claim, repeated.
    /// Returns fewer than `max` (possibly zero) when the queue drains.
    pub fn try_recv_batch(&self, max: usize) -> Vec<Message> {
        let mut batch = Vec::new();
        while batch.len() < max {
            let Some(msg) = self.channel.try_recv(self.subscriber_id) else {
                break;
            };
            batch.push(msg);
        }
        if !batch.is_empty() {
            self.broker.mark_dirty(&self.topic);
        }
        batch
    }

    /// Acknowledge (complete) an in-flight message.
    pub fn ack(&self, id: MessageId) -> bool {
        self.channel.ack(self.subscriber_id, id)
    }

    /// Acknowledge a batch of in-flight messages. Returns how many were
    /// actually in flight for this subscription. When the batch settles
    /// the topic's last claim, the topic also leaves the broker's dirty
    /// list in the same call — one pass, instead of parking it until
    /// the next `reclaim_expired` scan discovers there is nothing to
    /// reclaim.
    pub fn ack_batch(&self, ids: &[MessageId]) -> usize {
        let n = ids
            .iter()
            .filter(|id| self.channel.ack(self.subscriber_id, **id))
            .count();
        if n > 0 {
            self.broker.clean_if_quiescent(&self.topic);
        }
        n
    }

    /// Decline an in-flight message, returning it to the queue for
    /// another consumer (attempt counter increments on redelivery). A
    /// message that has hit the broker's attempt cap is routed to the
    /// dead-letter topic instead. Returns `false` if the message was
    /// not in flight for this subscription.
    pub fn requeue(&self, id: MessageId) -> bool {
        match self.channel.requeue(self.subscriber_id, id) {
            Some(r) => {
                self.broker.route_dead(&self.topic.name, &self.channel, &r);
                true
            }
            None => false,
        }
    }

    /// Ready depth of this subscription's channel.
    pub fn depth(&self) -> usize {
        self.channel.depth()
    }

    /// The queue route (`topic/channel`) this subscription consumes.
    pub fn route(&self) -> String {
        format!("{}/{}", self.topic.name, self.channel.name)
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        let r = self.channel.requeue_all_for(self.subscriber_id);
        self.broker.route_dead(&self.topic.name, &self.channel, &r);
        let remaining = self.channel.subscribers.fetch_sub(1, Ordering::SeqCst) - 1;
        if remaining == 0 && self.topic.ephemeral {
            // GC the ephemeral topic if *no channel* has subscribers.
            let any_subscribed = self
                .topic
                .channels
                .lock()
                .values()
                .any(|ch| ch.subscribers.load(Ordering::SeqCst) > 0);
            if !any_subscribed {
                let mut topics = self.broker.topics.write();
                // Re-check under the topics lock: a new subscriber may
                // have raced in via a fresh `subscribe` call.
                let still_unused = self
                    .topic
                    .channels
                    .lock()
                    .values()
                    .all(|ch| ch.subscribers.load(Ordering::SeqCst) == 0);
                if still_unused {
                    if let Some(t) = topics.get(&self.topic.name) {
                        if Arc::ptr_eq(t, &self.topic) {
                            topics.remove(&self.topic.name);
                            for ch in self.topic.channels.lock().values() {
                                ch.close();
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rai_faults::FaultPlan;

    #[test]
    fn single_publisher_single_consumer() {
        let b = Broker::default();
        let sub = b.subscribe("rai", "tasks");
        b.publish("rai", &b"job-1"[..]).unwrap();
        let m = sub.recv_timeout(Duration::from_millis(100)).unwrap();
        assert_eq!(m.body_str(), "job-1");
        assert!(sub.ack(m.id));
        let s = b.topic_stats("rai").unwrap();
        assert_eq!(s.published, 1);
        assert_eq!(s.acked, 1);
        assert_eq!(s.depth, 0);
    }

    #[test]
    fn batch_claim_preserves_queue_order_and_batch_ack_completes() {
        let b = Broker::default();
        let sub = b.subscribe("rai", "tasks");
        for i in 0..5 {
            b.publish("rai", format!("job-{i}").into_bytes()).unwrap();
        }
        let batch = sub.try_recv_batch(3);
        assert_eq!(
            batch.iter().map(|m| m.body_str().into_owned()).collect::<Vec<_>>(),
            ["job-0", "job-1", "job-2"]
        );
        let s = b.topic_stats("rai").unwrap();
        assert_eq!((s.depth, s.in_flight), (2, 3));
        let ids: Vec<MessageId> = batch.iter().map(|m| m.id).collect();
        assert_eq!(sub.ack_batch(&ids), 3);
        // Re-acking is a no-op, and the tail drains below `max`.
        assert_eq!(sub.ack_batch(&ids), 0);
        let rest = sub.try_recv_batch(10);
        assert_eq!(rest.len(), 2);
        assert_eq!(sub.try_recv_batch(10).len(), 0);
    }

    #[test]
    fn dropping_subscription_requeues_unacked_batch() {
        let b = Broker::default();
        let sub = b.subscribe("rai", "tasks");
        for i in 0..3 {
            b.publish("rai", format!("job-{i}").into_bytes()).unwrap();
        }
        let batch = sub.try_recv_batch(3);
        assert_eq!(batch.len(), 3);
        sub.ack(batch[1].id);
        drop(sub); // crash: the two unacked claims return to the queue
        let sub2 = b.subscribe("rai", "tasks");
        let redelivered = sub2.try_recv_batch(10);
        let mut bodies: Vec<String> =
            redelivered.iter().map(|m| m.body_str().into_owned()).collect();
        bodies.sort();
        assert_eq!(bodies, ["job-0", "job-2"]);
        assert!(redelivered.iter().all(|m| m.attempts == 2), "redelivery bumps attempts");
    }

    #[test]
    fn channel_fanout_and_load_balance() {
        let b = Broker::default();
        // Two channels: both see every message.
        let cha = b.subscribe("t", "a");
        let chb = b.subscribe("t", "b");
        // Second consumer on channel a: load-balances with the first.
        let cha2 = b.subscribe("t", "a");
        for i in 0..10 {
            b.publish("t", format!("m{i}")).unwrap();
        }
        // Channel b alone sees all 10.
        let mut b_count = 0;
        while let Some(m) = chb.try_recv() {
            chb.ack(m.id);
            b_count += 1;
        }
        assert_eq!(b_count, 10);
        // Channel a's two consumers split 10 between them.
        let mut a_count = 0;
        while let Some(m) = cha.try_recv() {
            cha.ack(m.id);
            a_count += 1;
        }
        let mut a2_count = 0;
        while let Some(m) = cha2.try_recv() {
            cha2.ack(m.id);
            a2_count += 1;
        }
        assert_eq!(a_count + a2_count, 10);
    }

    #[test]
    fn backlog_drains_to_first_channel() {
        let b = Broker::default();
        // Worker publishes log lines before the client subscribes.
        b.publish_ephemeral("log_job1", &b"line 1"[..]).unwrap();
        b.publish_ephemeral("log_job1", &b"line 2"[..]).unwrap();
        let sub = b.subscribe_ephemeral("log_job1", "ch");
        let m1 = sub.recv_timeout(Duration::from_millis(100)).unwrap();
        let m2 = sub.recv_timeout(Duration::from_millis(100)).unwrap();
        assert_eq!(m1.body_str(), "line 1");
        assert_eq!(m2.body_str(), "line 2");
    }

    #[test]
    fn ephemeral_topic_gc_on_last_unsubscribe() {
        let b = Broker::default();
        let sub = b.subscribe_ephemeral("log_j", "ch");
        assert!(b.has_topic("log_j"));
        drop(sub);
        assert!(!b.has_topic("log_j"), "ephemeral topic should be GC'd");
    }

    #[test]
    fn durable_topic_survives_unsubscribe() {
        let b = Broker::default();
        let sub = b.subscribe("rai", "tasks");
        drop(sub);
        assert!(b.has_topic("rai"));
    }

    #[test]
    fn requeue_redelivers_to_other_consumer() {
        let b = Broker::default();
        let w1 = b.subscribe("rai", "tasks");
        let w2 = b.subscribe("rai", "tasks");
        b.publish("rai", &b"big-job"[..]).unwrap();
        // Worker 1 takes it but has no free capacity.
        let m = w1.try_recv().or_else(|| w2.try_recv()).expect("someone gets it");
        let (taker, other) = if w1.requeue(m.id) { (&w1, &w2) } else { (&w2, &w1) };
        let _ = taker;
        let m2 = other.recv_timeout(Duration::from_millis(100)).unwrap();
        assert_eq!(m2.attempts, 2);
        assert!(other.ack(m2.id));
    }

    #[test]
    fn dropped_subscription_requeues_in_flight() {
        let b = Broker::default();
        let w1 = b.subscribe("rai", "tasks");
        b.publish("rai", &b"job"[..]).unwrap();
        let _taken = w1.try_recv().unwrap();
        drop(w1); // crash before ack
        let w2 = b.subscribe("rai", "tasks");
        let m = w2.recv_timeout(Duration::from_millis(100)).unwrap();
        assert_eq!(m.body_str(), "job");
        assert_eq!(m.attempts, 2);
    }

    #[test]
    fn backpressure_channel_full() {
        let b = Broker::new(BrokerConfig {
            max_channel_depth: 2,
            max_backlog: 2,
            ..Default::default()
        });
        let _sub = b.subscribe("t", "ch");
        b.publish("t", &b"1"[..]).unwrap();
        b.publish("t", &b"2"[..]).unwrap();
        assert!(matches!(
            b.publish("t", &b"3"[..]),
            Err(PublishError::ChannelFull { .. })
        ));
    }

    #[test]
    fn backpressure_backlog_full() {
        let b = Broker::new(BrokerConfig {
            max_channel_depth: 10,
            max_backlog: 1,
            ..Default::default()
        });
        b.publish("t", &b"1"[..]).unwrap();
        assert!(matches!(
            b.publish("t", &b"2"[..]),
            Err(PublishError::BacklogFull { .. })
        ));
    }

    #[test]
    fn delete_topic_closes_consumers() {
        let b = Broker::default();
        let sub = b.subscribe("t", "ch");
        let b2 = b.clone();
        let t = std::thread::spawn(move || sub.recv_timeout(Duration::from_secs(10)));
        std::thread::sleep(Duration::from_millis(20));
        assert!(b2.delete_topic("t"));
        assert_eq!(t.join().unwrap(), Err(RecvError::Closed));
        assert!(!b.delete_topic("t"), "second delete is a no-op");
    }

    #[test]
    fn stats_aggregate() {
        let b = Broker::default();
        let s1 = b.subscribe("rai", "tasks");
        let _s2 = b.subscribe("log_1", "ch");
        b.publish("rai", &b"a"[..]).unwrap();
        b.publish("rai", &b"b"[..]).unwrap();
        b.publish("log_1", &b"l"[..]).unwrap();
        let m = s1.try_recv().unwrap();
        s1.ack(m.id);
        let s = b.stats();
        assert_eq!(s.topics, 2);
        assert_eq!(s.published, 3);
        assert_eq!(s.acked, 1);
        assert_eq!(s.depth, 2);
    }

    #[test]
    fn route_formatting() {
        let b = Broker::default();
        let sub = b.subscribe("rai", "tasks");
        assert_eq!(sub.route(), "rai/tasks");
        assert_eq!(dead_letter_topic("rai", "tasks"), "rai/tasks#dead");
    }

    #[test]
    fn broker_wide_reclaim_is_sim_time_driven() {
        let clock = VirtualClock::new();
        let b = Broker::with_clock(BrokerConfig::default(), clock.clone());
        let sub = b.subscribe("t", "ch");
        b.publish("t", &b"stalls"[..]).unwrap();
        let _taken = sub.try_recv().unwrap();
        assert_eq!(b.reclaim_expired(SimDuration::from_secs(5)), 0, "no sim time elapsed");
        clock.advance(SimDuration::from_secs(6));
        assert_eq!(b.reclaim_expired(SimDuration::from_secs(5)), 1);
        let again = sub.recv_timeout(Duration::from_millis(100)).unwrap();
        assert_eq!(again.attempts, 2);
        sub.ack(again.id);
    }

    #[test]
    fn attempt_cap_routes_to_dead_letter_topic() {
        let b = Broker::new(BrokerConfig {
            max_attempts: 3,
            ..Default::default()
        });
        let dead = b.subscribe(&dead_letter_topic("rai", "tasks"), "audit");
        let sub = b.subscribe("rai", "tasks");
        b.publish("rai", &b"poison"[..]).unwrap();
        for _ in 0..2 {
            let m = sub.try_recv().unwrap();
            assert!(sub.requeue(m.id));
            assert!(dead.try_recv().is_none(), "under cap: stays in the queue");
        }
        let m = sub.try_recv().unwrap();
        assert_eq!(m.attempts, 3);
        assert!(sub.requeue(m.id));
        assert!(sub.try_recv().is_none(), "message left the work queue");
        let d = dead.try_recv().expect("dead letter delivered");
        assert_eq!(d.body_str(), "poison");
        assert!(dead.ack(d.id));
        let s = b.topic_stats("rai").unwrap();
        assert_eq!(s.dead_lettered, 1);
        assert_eq!(b.stats().dead_lettered, 1);
    }

    #[test]
    fn attempt_cap_applies_on_subscriber_crash() {
        let clock = VirtualClock::new();
        let b = Broker::with_clock(
            BrokerConfig {
                max_attempts: 1,
                ..Default::default()
            },
            clock,
        );
        let sub = b.subscribe("rai", "tasks");
        b.publish("rai", &b"one-shot"[..]).unwrap();
        let _taken = sub.try_recv().unwrap();
        drop(sub); // crash after the only allowed delivery
        assert!(b.has_topic(&dead_letter_topic("rai", "tasks")));
        let audit = b.subscribe(&dead_letter_topic("rai", "tasks"), "audit");
        let d = audit.recv_timeout(Duration::from_millis(100)).unwrap();
        assert_eq!(d.body_str(), "one-shot");
    }

    #[test]
    fn reclaim_visits_only_dirty_topics() {
        let clock = VirtualClock::new();
        let b = Broker::with_clock(BrokerConfig::default(), clock.clone());
        // 50 topics with traffic but no claims: publish-only log streams.
        let subs: Vec<Subscription> = (0..50)
            .map(|i| {
                let name = format!("log_{i:03}");
                let sub = b.subscribe_ephemeral(&name, "ch");
                b.publish_ephemeral(&name, &b"line"[..]).unwrap();
                sub
            })
            .collect();
        assert_eq!(b.dirty_topics(), 0, "ready messages never dirty a topic");
        // One topic takes a claim.
        let work = b.subscribe("rai", "tasks");
        b.publish("rai", &b"job"[..]).unwrap();
        let _held = work.try_recv().unwrap();
        assert_eq!(b.dirty_topics(), 1, "only the claimed topic is dirty");
        // An unexpired claim survives the pass and keeps the topic dirty.
        assert_eq!(b.reclaim_expired(SimDuration::from_secs(5)), 0);
        assert_eq!(b.dirty_topics(), 1);
        // Once expired, the claim is requeued and the list empties.
        clock.advance(SimDuration::from_secs(6));
        assert_eq!(b.reclaim_expired(SimDuration::from_secs(5)), 1);
        assert_eq!(b.dirty_topics(), 0);
        let again = work.recv_timeout(Duration::from_millis(100)).unwrap();
        assert_eq!(again.attempts, 2);
        work.ack(again.id);
        drop(subs);
    }

    #[test]
    fn dirty_stripes_partition_the_dirty_set() {
        let clock = VirtualClock::new();
        let b = Broker::with_clock(BrokerConfig::default(), clock.clone());
        // Claims on many topics land on many distinct stripes; the
        // dirty count is the exact sum over stripes, and one reclaim
        // pass drains every stripe in a single deterministic sweep.
        let subs: Vec<Subscription> = (0..24)
            .map(|i| {
                let name = format!("rai_{i:02}");
                let sub = b.subscribe(&name, "tasks");
                b.publish(&name, &b"job"[..]).unwrap();
                let _held = sub.try_recv().unwrap();
                sub
            })
            .collect();
        assert_eq!(b.dirty_topics(), 24);
        clock.advance(SimDuration::from_secs(6));
        assert_eq!(b.reclaim_expired(SimDuration::from_secs(5)), 24);
        assert_eq!(b.dirty_topics(), 0);
        // Settling a batch cleans only the topic's own stripe entry.
        let again = subs[7].recv_timeout(Duration::from_millis(100)).unwrap();
        assert_eq!(b.dirty_topics(), 1);
        assert_eq!(subs[7].ack_batch(&[again.id]), 1);
        assert_eq!(b.dirty_topics(), 0);
        assert_eq!(b.lock_wait_micros(), 0, "uncontended run never charges lock wait");
        drop(subs);
    }

    #[test]
    fn ack_batch_cleans_dirty_mark_in_one_pass() {
        let b = Broker::default();
        let work = b.subscribe("rai", "tasks");
        for i in 0..6 {
            b.publish("rai", format!("job-{i}")).unwrap();
        }
        let batch = work.try_recv_batch(6);
        assert_eq!(batch.len(), 6);
        assert_eq!(b.dirty_topics(), 1, "batch claim dirties the topic");
        // A partial ack leaves claims in flight: the topic must stay
        // queued for the reclaim pass.
        let (head, tail) = batch.split_at(2);
        assert_eq!(work.ack_batch(&head.iter().map(|m| m.id).collect::<Vec<_>>()), 2);
        assert_eq!(b.dirty_topics(), 1, "partial batch keeps the dirty mark");
        // Settling the batch clears the mark immediately — no
        // reclaim_expired pass needed to discover the topic is idle.
        assert_eq!(work.ack_batch(&tail.iter().map(|m| m.id).collect::<Vec<_>>()), 4);
        assert_eq!(b.dirty_topics(), 0, "fully-acked batch self-cleans");
        // And an empty/no-op batch on a clean topic stays a no-op.
        assert_eq!(work.ack_batch(&[head[0].id]), 0);
        assert_eq!(b.dirty_topics(), 0);
    }

    #[test]
    fn fanout_shares_one_body_allocation() {
        // NSQ semantics hand every channel "a copy"; ours is a shallow
        // `Bytes` handle, so all channels must see the same bytes at
        // the same address — fan-out never deep-copies the payload.
        let b = Broker::default();
        let subs: Vec<Subscription> = (0..3).map(|i| b.subscribe("t", &format!("ch{i}"))).collect();
        let payload: Vec<u8> = (0..4096u32).map(|i| i as u8).collect();
        b.publish("t", payload.clone()).unwrap();
        let bodies: Vec<Bytes> = subs
            .iter()
            .map(|s| {
                let m = s.try_recv().expect("every channel sees the message");
                s.ack(m.id);
                m.body
            })
            .collect();
        for body in &bodies {
            assert_eq!(body.as_ref(), &payload[..], "identical bytes on every channel");
            assert_eq!(
                body.as_ref().as_ptr(),
                bodies[0].as_ref().as_ptr(),
                "same allocation on every channel"
            );
        }
    }

    #[test]
    fn injected_publish_faults_reject_deterministically() {
        let mk = || {
            let b = Broker::default();
            b.set_fault_injector(FaultInjector::new(FaultPlan {
                broker_publish: 0.2,
                ..FaultPlan::none(21)
            }));
            let _keep = Box::leak(Box::new(b.subscribe("t", "ch")));
            (0..200)
                .map(|i| b.publish("t", format!("{i}")).is_err())
                .collect::<Vec<bool>>()
        };
        let a = mk();
        let c = mk();
        assert_eq!(a, c, "same plan, same rejections");
        let rejected = a.iter().filter(|&&e| e).count();
        assert!((20..60).contains(&rejected), "got {rejected} rejections at p=0.2");
    }

    #[test]
    fn concurrent_producers_consumers() {
        // 4 producers × 250 msgs, 4 consumers on one channel: every
        // message is consumed exactly once.
        let b = Broker::default();
        let total = std::sync::Arc::new(AtomicU64::new(0));
        let subs: Vec<Subscription> = (0..4).map(|_| b.subscribe("t", "work")).collect();
        let mut handles = Vec::new();
        for p in 0..4 {
            let b = b.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..250 {
                    b.publish("t", format!("{p}-{i}")).unwrap();
                }
            }));
        }
        for sub in subs {
            let total = total.clone();
            handles.push(std::thread::spawn(move || loop {
                match sub.recv_timeout(Duration::from_millis(200)) {
                    Ok(m) => {
                        assert!(sub.ack(m.id));
                        total.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(RecvError::Timeout) => break,
                    Err(RecvError::Closed) => break,
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(total.load(Ordering::Relaxed), 1000);
        let s = b.topic_stats("t").unwrap();
        assert_eq!(s.acked, 1000);
        assert_eq!(s.depth, 0);
        assert_eq!(s.in_flight, 0);
    }
}
