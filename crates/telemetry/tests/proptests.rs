//! Property tests for the metrics registry and the statistics toolkit.

use proptest::prelude::*;
use rai_sim::{SimDuration, SimTime};
use rai_telemetry::{Histogram, MetricsRegistry, OnlineStats, TimeSeries};
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// TimeSeries conserves events: total == number of in-range records.
    #[test]
    fn time_series_conserves(
        events in prop::collection::vec(0u64..1_000_000, 0..100),
        bucket_ms in 1u64..10_000,
        start in 0u64..500_000,
    ) {
        let mut ts = TimeSeries::new(SimTime::from_millis(start), SimDuration::from_millis(bucket_ms));
        let mut expected = 0u64;
        for &e in &events {
            ts.record(SimTime::from_millis(e));
            if e >= start {
                expected += 1;
            }
        }
        prop_assert_eq!(ts.total(), expected);
        prop_assert_eq!(ts.counts().iter().sum::<u64>(), expected);
    }

    /// Histogram conserves observations across bins + underflow + overflow.
    #[test]
    fn histogram_conserves(xs in prop::collection::vec(-50.0f64..500.0, 0..100)) {
        let mut h = Histogram::new(0.0, 0.1, 25);
        for &x in &xs {
            h.record(x);
        }
        let binned: u64 = (0..h.num_bins()).map(|i| h.bin(i)).sum();
        prop_assert_eq!(binned + h.underflow() + h.overflow(), xs.len() as u64);
        prop_assert_eq!(h.total(), xs.len() as u64);
        let expected_sum: f64 = xs.iter().sum();
        prop_assert!((h.sum() - expected_sum).abs() < 1e-6 * (1.0 + expected_sum.abs()));
    }

    /// Merging two histograms conserves every bucket and the sum.
    #[test]
    fn histogram_merge_conserves(
        xs in prop::collection::vec(-20.0f64..120.0, 0..60),
        ys in prop::collection::vec(-20.0f64..120.0, 0..60),
    ) {
        let mut a = Histogram::new(0.0, 5.0, 20);
        let mut b = Histogram::new(0.0, 5.0, 20);
        let mut whole = Histogram::new(0.0, 5.0, 20);
        for &x in &xs { a.record(x); whole.record(x); }
        for &y in &ys { b.record(y); whole.record(y); }
        a.merge(&b);
        prop_assert_eq!(a.total(), whole.total());
        prop_assert_eq!(a.underflow(), whole.underflow());
        prop_assert_eq!(a.overflow(), whole.overflow());
        for i in 0..whole.num_bins() {
            prop_assert_eq!(a.bin(i), whole.bin(i));
        }
        prop_assert!((a.sum() - whole.sum()).abs() < 1e-9 * (1.0 + whole.sum().abs()));
    }

    /// OnlineStats matches a naive two-pass computation.
    #[test]
    fn online_stats_matches_naive(xs in prop::collection::vec(-1e3f64..1e3, 1..100)) {
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.variance() - var).abs() < 1e-5 * (1.0 + var.abs()));
    }

    /// Merging stats in any split equals the sequential result.
    #[test]
    fn stats_merge_associative(xs in prop::collection::vec(-1e3f64..1e3, 2..60), split in 1usize..59) {
        let split = split.min(xs.len() - 1);
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let (left, right) = xs.split_at(split);
        let mut a = OnlineStats::new();
        for &x in left { a.push(x); }
        let mut b = OnlineStats::new();
        for &x in right { b.push(x); }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-7 * (1.0 + whole.mean().abs()));
        prop_assert!((a.variance() - whole.variance()).abs() < 1e-5 * (1.0 + whole.variance()));
    }

    /// Concurrent counter increments from several threads sum exactly.
    #[test]
    fn registry_concurrent_increments_sum(
        per_thread in prop::collection::vec(1u64..500, 1..8),
    ) {
        let registry = Arc::new(MetricsRegistry::new());
        let mut handles = Vec::new();
        for &n in &per_thread {
            let registry = Arc::clone(&registry);
            handles.push(std::thread::spawn(move || {
                let counter = registry.counter("rai_test_total", &[("case", "prop")]);
                for _ in 0..n {
                    counter.inc();
                }
            }));
        }
        for handle in handles {
            handle.join().expect("thread finished");
        }
        let expected: u64 = per_thread.iter().sum();
        prop_assert_eq!(
            registry.snapshot().counter("rai_test_total", &[("case", "prop")]),
            Some(expected)
        );
    }

    /// Histogram totals are conserved when shards recorded on separate
    /// threads are merged, matching a single sequential histogram.
    #[test]
    fn registry_histogram_totals_conserved_under_merge(
        shards in prop::collection::vec(prop::collection::vec(0.0f64..100.0, 0..40), 1..6),
    ) {
        let shard_hists: Vec<Histogram> = {
            let mut handles = Vec::new();
            for shard in shards.clone() {
                handles.push(std::thread::spawn(move || {
                    let mut h = Histogram::new(0.0, 10.0, 10);
                    for x in shard {
                        h.record(x);
                    }
                    h
                }));
            }
            handles.into_iter().map(|h| h.join().expect("thread finished")).collect()
        };
        let mut merged = Histogram::new(0.0, 10.0, 10);
        for shard in &shard_hists {
            merged.merge(shard);
        }
        let mut sequential = Histogram::new(0.0, 10.0, 10);
        for shard in &shards {
            for &x in shard {
                sequential.record(x);
            }
        }
        prop_assert_eq!(merged.total(), sequential.total());
        for i in 0..sequential.num_bins() {
            prop_assert_eq!(merged.bin(i), sequential.bin(i));
        }
    }
}
