//! Property tests for the metrics registry, the statistics toolkit,
//! the deterministic log-bucketed latency histogram, and the causal
//! span-tree trace store.

use proptest::prelude::*;
use rai_sim::{SimDuration, SimTime};
use rai_telemetry::{
    component, stage, Histogram, LogHistogram, MetricsRegistry, OnlineStats, TimeSeries,
    TraceStore,
};
use std::sync::Arc;

/// The worker-side stages a random attempt can record, with the
/// component that owns each one.
const ATTEMPT_STAGES: [(&str, &str); 8] = [
    (stage::DEQUEUED, component::BROKER),
    (stage::PULLED, component::SANDBOX),
    (stage::FETCHED, component::STORE),
    (stage::BUILT, component::SANDBOX),
    (stage::RAN, component::SANDBOX),
    (stage::UPLOADED, component::STORE),
    (stage::RECORDED, component::DB),
    (stage::CRASHED, component::FAULT),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// TimeSeries conserves events: total == number of in-range records.
    #[test]
    fn time_series_conserves(
        events in prop::collection::vec(0u64..1_000_000, 0..100),
        bucket_ms in 1u64..10_000,
        start in 0u64..500_000,
    ) {
        let mut ts = TimeSeries::new(SimTime::from_millis(start), SimDuration::from_millis(bucket_ms));
        let mut expected = 0u64;
        for &e in &events {
            ts.record(SimTime::from_millis(e));
            if e >= start {
                expected += 1;
            }
        }
        prop_assert_eq!(ts.total(), expected);
        prop_assert_eq!(ts.counts().iter().sum::<u64>(), expected);
    }

    /// Histogram conserves observations across bins + underflow + overflow.
    #[test]
    fn histogram_conserves(xs in prop::collection::vec(-50.0f64..500.0, 0..100)) {
        let mut h = Histogram::new(0.0, 0.1, 25);
        for &x in &xs {
            h.record(x);
        }
        let binned: u64 = (0..h.num_bins()).map(|i| h.bin(i)).sum();
        prop_assert_eq!(binned + h.underflow() + h.overflow(), xs.len() as u64);
        prop_assert_eq!(h.total(), xs.len() as u64);
        let expected_sum: f64 = xs.iter().sum();
        prop_assert!((h.sum() - expected_sum).abs() < 1e-6 * (1.0 + expected_sum.abs()));
    }

    /// Merging two histograms conserves every bucket and the sum.
    #[test]
    fn histogram_merge_conserves(
        xs in prop::collection::vec(-20.0f64..120.0, 0..60),
        ys in prop::collection::vec(-20.0f64..120.0, 0..60),
    ) {
        let mut a = Histogram::new(0.0, 5.0, 20);
        let mut b = Histogram::new(0.0, 5.0, 20);
        let mut whole = Histogram::new(0.0, 5.0, 20);
        for &x in &xs { a.record(x); whole.record(x); }
        for &y in &ys { b.record(y); whole.record(y); }
        a.merge(&b);
        prop_assert_eq!(a.total(), whole.total());
        prop_assert_eq!(a.underflow(), whole.underflow());
        prop_assert_eq!(a.overflow(), whole.overflow());
        for i in 0..whole.num_bins() {
            prop_assert_eq!(a.bin(i), whole.bin(i));
        }
        prop_assert!((a.sum() - whole.sum()).abs() < 1e-9 * (1.0 + whole.sum().abs()));
    }

    /// OnlineStats matches a naive two-pass computation.
    #[test]
    fn online_stats_matches_naive(xs in prop::collection::vec(-1e3f64..1e3, 1..100)) {
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.variance() - var).abs() < 1e-5 * (1.0 + var.abs()));
    }

    /// Merging stats in any split equals the sequential result.
    #[test]
    fn stats_merge_associative(xs in prop::collection::vec(-1e3f64..1e3, 2..60), split in 1usize..59) {
        let split = split.min(xs.len() - 1);
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let (left, right) = xs.split_at(split);
        let mut a = OnlineStats::new();
        for &x in left { a.push(x); }
        let mut b = OnlineStats::new();
        for &x in right { b.push(x); }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-7 * (1.0 + whole.mean().abs()));
        prop_assert!((a.variance() - whole.variance()).abs() < 1e-5 * (1.0 + whole.variance()));
    }

    /// Concurrent counter increments from several threads sum exactly.
    #[test]
    fn registry_concurrent_increments_sum(
        per_thread in prop::collection::vec(1u64..500, 1..8),
    ) {
        let registry = Arc::new(MetricsRegistry::new());
        let mut handles = Vec::new();
        for &n in &per_thread {
            let registry = Arc::clone(&registry);
            handles.push(std::thread::spawn(move || {
                let counter = registry.counter("rai_test_total", &[("case", "prop")]);
                for _ in 0..n {
                    counter.inc();
                }
            }));
        }
        for handle in handles {
            handle.join().expect("thread finished");
        }
        let expected: u64 = per_thread.iter().sum();
        prop_assert_eq!(
            registry.snapshot().counter("rai_test_total", &[("case", "prop")]),
            Some(expected)
        );
    }

    /// Any causal recording schedule (time advances within each job;
    /// attempts recorded in delivery order, as the worker loop does)
    /// yields a structurally well-formed span tree: unique ids, one
    /// root per attempt, children nested inside their roots, and
    /// attempt roots in disjoint time order.
    #[test]
    fn span_trees_are_well_formed(
        jobs in prop::collection::vec(
            // Per job: 1..4 worker attempts, each 1..5 stages of
            // (stage index, duration ms).
            prop::collection::vec(
                prop::collection::vec((0usize..8, 0u64..5_000), 1..5),
                1..4,
            ),
            1..6,
        ),
        gap_ms in 1u64..10_000,
    ) {
        let store = TraceStore::new();
        for (job, attempts) in jobs.iter().enumerate() {
            let job_id = job as u64;
            let mut clock = 0u64;
            store.record_span(
                job_id, 0, stage::SUBMITTED, component::CLIENT,
                SimTime::from_millis(clock), SimTime::from_millis(clock),
            );
            store.record_span(
                job_id, 0, stage::ENQUEUED, component::BROKER,
                SimTime::from_millis(clock), SimTime::from_millis(clock),
            );
            for (i, stages) in attempts.iter().enumerate() {
                clock += gap_ms; // queue / redelivery wait
                let attempt = (i + 1) as u32;
                for &(stage_idx, dur_ms) in stages {
                    let (name, comp) = ATTEMPT_STAGES[stage_idx];
                    let start = clock;
                    clock += dur_ms;
                    store.record_span(
                        job_id, attempt, name, comp,
                        SimTime::from_millis(start), SimTime::from_millis(clock),
                    );
                }
            }
            let trace = store.get(job_id).expect("trace exists");
            prop_assert!(
                trace.well_formed().is_ok(),
                "job {}: {}", job_id, trace.well_formed().unwrap_err()
            );
            prop_assert!(trace.is_monotone());
            prop_assert_eq!(trace.roots().len(), attempts.len() + 1);
            prop_assert_eq!(trace.final_attempt(), Some(attempts.len() as u32));
            let recorded: usize = attempts.iter().map(Vec::len).sum();
            prop_assert_eq!(trace.events().len(), recorded + 2);
        }
    }

    /// LogHistogram merge is commutative and byte-identical to
    /// recording the union sequentially, for any split of any sample
    /// set — the property the cross-width export gate relies on.
    #[test]
    fn log_histogram_merge_matches_sequential(
        xs in prop::collection::vec(0u64..10_000_000_000, 0..200),
        split in 0usize..200,
    ) {
        let split = split.min(xs.len());
        let mut whole = LogHistogram::new();
        for &x in &xs {
            whole.record_micros(x);
        }
        let (left, right) = xs.split_at(split);
        let mut a = LogHistogram::new();
        for &x in left { a.record_micros(x); }
        let mut b = LogHistogram::new();
        for &x in right { b.record_micros(x); }
        let mut ba = b.clone();
        ba.merge(&a);
        a.merge(&b);
        prop_assert_eq!(a.encode(), whole.encode());
        prop_assert_eq!(ba.encode(), whole.encode());
        prop_assert_eq!(&a, &whole);
        prop_assert_eq!(&ba, &whole);
    }

    /// Quantiles are monotone in q, never undershoot the true
    /// nearest-rank sample, and overshoot by at most one sub-bucket
    /// (relative error ≤ 1/32); min/max/count/sum are exact.
    #[test]
    fn log_histogram_quantiles_are_sound(
        xs in prop::collection::vec(0u64..100_000_000, 1..200),
    ) {
        let mut h = LogHistogram::new();
        for &x in &xs {
            h.record_micros(x);
        }
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        prop_assert_eq!(h.count(), xs.len() as u64);
        prop_assert_eq!(h.min_micros(), sorted[0]);
        prop_assert_eq!(h.max_micros(), *sorted.last().unwrap());
        prop_assert_eq!(h.sum_micros(), xs.iter().sum::<u64>());
        prop_assert_eq!(h.count_le_micros(h.max_micros()), h.count());
        let mut prev = 0u64;
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0] {
            let got = h.quantile_micros(q);
            prop_assert!(got >= prev, "quantiles not monotone at q={}", q);
            prev = got;
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let truth = sorted[rank - 1];
            prop_assert!(got >= truth, "q={} undershoots: {} < {}", q, got, truth);
            prop_assert!(
                got as f64 <= truth as f64 * (1.0 + 1.0 / 32.0) + 1.0,
                "q={} overshoots: {} vs true {}", q, got, truth
            );
        }
    }

    /// Histogram totals are conserved when shards recorded on separate
    /// threads are merged, matching a single sequential histogram.
    #[test]
    fn registry_histogram_totals_conserved_under_merge(
        shards in prop::collection::vec(prop::collection::vec(0.0f64..100.0, 0..40), 1..6),
    ) {
        let shard_hists: Vec<Histogram> = {
            let mut handles = Vec::new();
            for shard in shards.clone() {
                handles.push(std::thread::spawn(move || {
                    let mut h = Histogram::new(0.0, 10.0, 10);
                    for x in shard {
                        h.record(x);
                    }
                    h
                }));
            }
            handles.into_iter().map(|h| h.join().expect("thread finished")).collect()
        };
        let mut merged = Histogram::new(0.0, 10.0, 10);
        for shard in &shard_hists {
            merged.merge(shard);
        }
        let mut sequential = Histogram::new(0.0, 10.0, 10);
        for shard in &shards {
            for &x in shard {
                sequential.record(x);
            }
        }
        prop_assert_eq!(merged.total(), sequential.total());
        for i in 0..sequential.num_bins() {
            prop_assert_eq!(merged.bin(i), sequential.bin(i));
        }
    }
}
