//! Minimal JSON value, emitter, and parser.
//!
//! The telemetry crate must stay dependency-free, so exports carry
//! their own tiny JSON implementation. It covers exactly what metric
//! exposition needs: objects, arrays, strings, finite f64 numbers,
//! booleans, and null. Non-finite numbers are emitted as null (JSON has
//! no NaN/Infinity).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Objects use a `BTreeMap` so emission is deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl Value {
    pub fn object() -> Value {
        Value::Object(BTreeMap::new())
    }

    /// Insert into an object; panics if `self` is not an object.
    pub fn set(&mut self, key: &str, value: Value) -> &mut Self {
        match self {
            Value::Object(map) => {
                map.insert(key.to_string(), value);
            }
            other => panic!("Value::set on non-object {other:?}"),
        }
        self
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Serialize to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => {
                if n.is_finite() {
                    // Integers render without a fraction so counters stay
                    // exact and readable.
                    if n.fract() == 0.0 && n.abs() < 9e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::String(s) => render_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Number(n)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Number(n as f64)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<Vec<Value>> for Value {
    fn from(items: Vec<Value>) -> Value {
        Value::Array(items)
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document. Errors carry the byte offset they occurred at.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut parser = Parser { bytes: input.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing data"));
    }
    Ok(value)
}

/// Parse failure: message plus byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    pub message: String,
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.offset, self.message)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError { message: message.to_string(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn parse_object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex =
                                std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                    .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are out of scope for metric
                            // names; lone surrogates become U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let mut doc = Value::object();
        doc.set("name", "rai_jobs_total".into());
        doc.set("value", 42u64.into());
        doc.set("rate", 0.25.into());
        doc.set(
            "labels",
            Value::Array(vec!["a".into(), Value::Bool(true), Value::Null]),
        );
        let text = doc.render();
        let parsed = parse(&text).expect("parses");
        assert_eq!(parsed, doc);
    }

    #[test]
    fn escapes_survive_round_trip() {
        let original = Value::String("a\"b\\c\nd\te\u{1}".to_string());
        let parsed = parse(&original.render()).expect("parses");
        assert_eq!(parsed, original);
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Value::Number(42.0).render(), "42");
        assert_eq!(Value::Number(0.5).render(), "0.5");
        assert_eq!(Value::Number(f64::NAN).render(), "null");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn parses_scientific_notation() {
        let v = parse("1.5e3").expect("parses");
        assert_eq!(v.as_f64(), Some(1500.0));
    }
}
