//! # rai-telemetry — structured telemetry for the RAI reproduction
//!
//! One [`Telemetry`] handle is threaded through the whole pipeline
//! (broker, workers, sandbox, object store, database, autoscaler) and
//! provides four things:
//!
//! 1. a thread-safe [`MetricsRegistry`] of counters, gauges, and
//!    fixed-bucket histograms;
//! 2. lightweight [`Span`]s stamped with [`VirtualClock`] sim-time;
//! 3. per-job [`JobTrace`]s — attempt-aware *causal span trees* over
//!    the submission lifecycle (submit → enqueue → dequeue → fetch →
//!    build → run → upload → grade), where every delivery attempt owns
//!    a root span, stages hang off it tagged with the component that
//!    did the work, and retries become sibling attempt subtrees;
//! 4. exposition of the registry as Prometheus text or JSON, plus
//!    trace-derived reports: [`critical_path`] / [`attribute`] turn
//!    span trees into wall-clock attribution tables and
//!    [`render_chrome_trace`] exports Perfetto-loadable JSON.
//!
//! Instrumented hot paths push directly into the registry; components
//! that already keep their own cumulative stats (broker, store, db,
//! the `rai-exec` pool) register a *collector* closure instead, which
//! mirrors those stats into the registry every time
//! [`Telemetry::snapshot`] runs.
//!
//! The crate also owns the shared statistics toolkit ([`OnlineStats`],
//! [`Histogram`], [`TimeSeries`], [`GaugeSeries`], [`Percentiles`],
//! and the deterministic log-bucketed [`LogHistogram`]) that used to
//! live in `rai-sim`, plus the [`log!`] leveled diagnostic macro.

pub mod chrome;
pub mod critical;
pub mod export;
pub mod json;
pub mod latency;
pub mod logging;
pub mod registry;
pub mod span;
pub mod stats;
pub mod trace;

pub use chrome::render_chrome_trace;
pub use critical::{attribute, critical_path, segment, Attribution, CriticalPath, PathSegment};
pub use export::{parse_json_snapshot, parse_prometheus, render_json, render_prometheus, PromSample};
pub use latency::{duration_micros, LatencySummary, LogHistogram};
pub use logging::Level;
pub use registry::{Counter, Gauge, HistogramHandle, MetricKey, MetricsRegistry, MetricsSnapshot};
pub use span::{Span, SpanCollector, SpanRecord};
pub use stats::{GaugeSeries, Histogram, OnlineStats, Percentiles, TimeSeries};
pub use trace::{component, stage, JobTrace, SpanId, StageEvent, TraceSpan, TraceStore};

use rai_sim::{SimTime, VirtualClock};
use std::sync::Arc;

/// Metric name constants used across the pipeline. Centralized so the
/// exposition output, instrumentation sites, and tests agree.
pub mod names {
    pub const JOBS_TOTAL: &str = "rai_jobs_total";
    pub const JOB_STAGE_SECONDS: &str = "rai_job_stage_seconds";
    pub const JOB_TOTAL_SECONDS: &str = "rai_job_total_seconds";
    pub const WORKER_ACTIVE_JOBS: &str = "rai_worker_active_jobs";
    pub const BROKER_PUBLISHED_TOTAL: &str = "rai_broker_published_total";
    pub const BROKER_ACKED_TOTAL: &str = "rai_broker_acked_total";
    pub const BROKER_REQUEUED_TOTAL: &str = "rai_broker_requeued_total";
    pub const BROKER_QUEUE_DEPTH: &str = "rai_broker_queue_depth";
    pub const BROKER_IN_FLIGHT: &str = "rai_broker_in_flight";
    pub const BROKER_CHANNELS: &str = "rai_broker_channels";
    pub const STORE_BYTES_UPLOADED_TOTAL: &str = "rai_store_bytes_uploaded_total";
    pub const STORE_BYTES_DOWNLOADED_TOTAL: &str = "rai_store_bytes_downloaded_total";
    pub const STORE_PUTS_TOTAL: &str = "rai_store_puts_total";
    pub const STORE_GETS_TOTAL: &str = "rai_store_gets_total";
    pub const STORE_EXPIRED_TOTAL: &str = "rai_store_expired_total";
    pub const STORE_BYTES_STORED: &str = "rai_store_bytes_stored";
    pub const STORE_OBJECTS: &str = "rai_store_objects";
    // Dedup (content-addressed storage) metrics.
    pub const STORE_BYTES_LOGICAL: &str = "rai_store_bytes_logical";
    pub const STORE_BYTES_PHYSICAL: &str = "rai_store_bytes_physical";
    pub const STORE_CHUNKS: &str = "rai_store_chunks";
    pub const STORE_CHUNKS_DEDUP_TOTAL: &str = "rai_store_chunks_dedup_total";
    pub const STORE_BYTES_WIRE_TOTAL: &str = "rai_store_bytes_wire_total";
    pub const STORE_DELTA_PUTS_TOTAL: &str = "rai_store_delta_puts_total";
    // Sharded lock-domain metrics (DESIGN.md §16).
    pub const LOCK_WAIT_MICROS_TOTAL: &str = "rai_lock_wait_micros_total";
    pub const STORE_SHARD_CHUNKS: &str = "rai_store_shard_chunks";
    pub const DB_SHARD_DOCS: &str = "rai_db_shard_docs";
    pub const DB_INSERTS_TOTAL: &str = "rai_db_inserts_total";
    pub const DB_QUERIES_TOTAL: &str = "rai_db_queries_total";
    pub const DB_UPDATES_TOTAL: &str = "rai_db_updates_total";
    pub const SANDBOX_IMAGE_PULLS_TOTAL: &str = "rai_sandbox_image_pulls_total";
    pub const SANDBOX_RUN_SECONDS: &str = "rai_sandbox_run_seconds";
    pub const SANDBOX_LIMIT_KILLS_TOTAL: &str = "rai_sandbox_limit_kills_total";
    pub const AUTOSCALER_POOL_SIZE: &str = "rai_autoscaler_pool_size";
    pub const AUTOSCALER_SCALE_EVENTS_TOTAL: &str = "rai_autoscaler_scale_events_total";
    pub const RATELIMIT_DENIED_TOTAL: &str = "rai_ratelimit_denied_total";
    // Failure & recovery (chaos) metrics.
    pub const RETRIES_TOTAL: &str = "rai_retries_total";
    pub const REDELIVERIES_TOTAL: &str = "rai_redeliveries_total";
    pub const DEAD_LETTERED_TOTAL: &str = "rai_dead_lettered_total";
    pub const FAULTS_INJECTED_TOTAL: &str = "rai_faults_injected_total";
    pub const JOBS_MALFORMED_TOTAL: &str = "rai_jobs_malformed_total";
    pub const WORKER_CRASHES_TOTAL: &str = "rai_worker_crashes_total";
    // Trace-store hygiene.
    pub const TRACES_DROPPED_LATE_TOTAL: &str = "rai_traces_dropped_late_total";
    // Work-stealing executor pool counters (mirrored by a collector).
    pub const EXEC_SPAWNED_TOTAL: &str = "rai_exec_spawned_total";
    pub const EXEC_INLINE_RUNS_TOTAL: &str = "rai_exec_inline_runs_total";
    pub const EXEC_STOLEN_TOTAL: &str = "rai_exec_stolen_total";
    pub const EXEC_PARKED_TOTAL: &str = "rai_exec_parked_total";
    pub const EXEC_INJECTED_TOTAL: &str = "rai_exec_injected_total";
    pub const EXEC_BATCHES_TOTAL: &str = "rai_exec_batches_total";
    pub const EXEC_BATCH_JOBS_TOTAL: &str = "rai_exec_batch_jobs_total";
    // Write-ahead log counters, labeled per log ("log" = "db"/"store").
    pub const WAL_APPENDS_TOTAL: &str = "rai_wal_appends_total";
    pub const WAL_BYTES_TOTAL: &str = "rai_wal_bytes_total";
    pub const WAL_FSYNC_BATCHES_TOTAL: &str = "rai_wal_fsync_batches_total";
    pub const WAL_REPLAYED_RECORDS_TOTAL: &str = "rai_wal_replayed_records_total";
    pub const WAL_CORRUPT_RECORDS_DROPPED_TOTAL: &str = "rai_wal_corrupt_records_dropped_total";
    pub const WAL_COMPACTIONS_TOTAL: &str = "rai_wal_compactions_total";
    pub const WAL_SEGMENTS: &str = "rai_wal_segments";
    pub const WAL_LOG_BYTES: &str = "rai_wal_log_bytes";
}

type Collector = Box<dyn Fn(&MetricsRegistry) + Send + Sync>;

struct Inner {
    clock: VirtualClock,
    registry: MetricsRegistry,
    spans: Arc<SpanCollector>,
    traces: TraceStore,
    collectors: parking_lot::Mutex<Vec<Collector>>,
}

/// Cheaply cloneable handle to the telemetry pipeline. All clones share
/// the same registry, span collector, and trace store.
#[derive(Clone)]
pub struct Telemetry {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("spans", &self.inner.spans.len())
            .field("traces", &self.inner.traces.len())
            .finish_non_exhaustive()
    }
}

impl Telemetry {
    /// Telemetry sharing `clock` for all timestamps.
    pub fn new(clock: VirtualClock) -> Self {
        Telemetry {
            inner: Arc::new(Inner {
                spans: Arc::new(SpanCollector::new(clock.clone())),
                clock,
                registry: MetricsRegistry::new(),
                traces: TraceStore::new(),
                collectors: parking_lot::Mutex::new(Vec::new()),
            }),
        }
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.inner.clock
    }

    /// Current sim-time.
    pub fn now(&self) -> SimTime {
        self.inner.clock.now()
    }

    /// The underlying registry, for direct handle acquisition.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.inner.registry
    }

    /// Get or create a counter.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        self.inner.registry.counter(name, labels)
    }

    /// Get or create a gauge.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        self.inner.registry.gauge(name, labels)
    }

    /// Get or create a histogram.
    pub fn histogram(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        origin: f64,
        bin_width: f64,
        nbins: usize,
    ) -> HistogramHandle {
        self.inner.registry.histogram(name, labels, origin, bin_width, nbins)
    }

    /// Start a span at the current sim-time.
    pub fn span(&self, name: &str) -> Span {
        self.inner.spans.start(name)
    }

    /// Completed spans, oldest first.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.inner.spans.finished()
    }

    /// Record that a job reached a lifecycle stage at the current
    /// sim-time.
    pub fn trace_stage(&self, job_id: u64, stage: &'static str) {
        self.inner.traces.record(job_id, stage, self.inner.clock.now());
    }

    /// Record a lifecycle stage at an explicit sim-time. Workers use
    /// this to stamp logical completion times that the shared clock has
    /// not reached yet.
    pub fn trace_stage_at(&self, job_id: u64, stage: &'static str, at: SimTime) {
        self.inner.traces.record(job_id, stage, at);
    }

    /// Record a causal span: `stage` work done by `component` on
    /// delivery `attempt` of `job_id`, covering `[start, end]`
    /// sim-time. Retries land in sibling attempt subtrees.
    pub fn trace_span(
        &self,
        job_id: u64,
        attempt: u32,
        stage: &'static str,
        component: &'static str,
        start: SimTime,
        end: SimTime,
    ) {
        self.inner.traces.record_span(job_id, attempt, stage, component, start, end);
    }

    /// Late span records dropped because their job's trace was evicted.
    pub fn traces_dropped_late(&self) -> u64 {
        self.inner.traces.dropped_late()
    }

    /// One job's lifecycle trace, if retained.
    pub fn job_trace(&self, job_id: u64) -> Option<JobTrace> {
        self.inner.traces.get(job_id)
    }

    /// All retained job traces, oldest job first.
    pub fn job_traces(&self) -> Vec<JobTrace> {
        self.inner.traces.all()
    }

    /// Register a pull-style collector: a closure that mirrors some
    /// component's internal stats into the registry. Collectors run, in
    /// registration order, at the start of every [`Telemetry::snapshot`].
    pub fn register_collector<F>(&self, collector: F)
    where
        F: Fn(&MetricsRegistry) + Send + Sync + 'static,
    {
        self.inner.collectors.lock().push(Box::new(collector));
    }

    /// Run all collectors, then copy out the registry.
    pub fn snapshot(&self) -> MetricsSnapshot {
        for collector in self.inner.collectors.lock().iter() {
            collector(&self.inner.registry);
        }
        self.inner
            .registry
            .counter(names::TRACES_DROPPED_LATE_TOTAL, &[])
            .store(self.inner.traces.dropped_late());
        self.inner.registry.snapshot()
    }

    /// Snapshot rendered in the Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        export::render_prometheus(&self.snapshot())
    }

    /// Snapshot rendered as a JSON document.
    pub fn render_json(&self) -> String {
        export::render_json(&self.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rai_sim::SimDuration;

    #[test]
    fn handle_clones_share_state() {
        let telemetry = Telemetry::new(VirtualClock::new());
        let clone = telemetry.clone();
        telemetry.counter(names::JOBS_TOTAL, &[("kind", "submit")]).inc();
        clone.counter(names::JOBS_TOTAL, &[("kind", "submit")]).inc();
        assert_eq!(telemetry.snapshot().counter_total(names::JOBS_TOTAL), 2);
    }

    #[test]
    fn collectors_run_on_snapshot() {
        let telemetry = Telemetry::new(VirtualClock::new());
        telemetry.register_collector(|registry| {
            registry.gauge("collected", &[]).set(7.0);
        });
        assert_eq!(telemetry.snapshot().gauge("collected", &[]), Some(7.0));
    }

    #[test]
    fn trace_stages_stamp_sim_time() {
        let clock = VirtualClock::new();
        let telemetry = Telemetry::new(clock.clone());
        telemetry.trace_stage(1, stage::SUBMITTED);
        clock.advance(SimDuration::from_secs(2));
        telemetry.trace_stage(1, stage::ENQUEUED);
        telemetry.trace_stage_at(1, stage::DEQUEUED, SimTime::from_secs(5));
        let trace = telemetry.job_trace(1).expect("trace exists");
        assert!(trace.is_monotone());
        assert_eq!(trace.total_duration(), SimDuration::from_secs(5));
    }

    #[test]
    fn spans_use_shared_clock() {
        let clock = VirtualClock::new();
        let telemetry = Telemetry::new(clock.clone());
        let span = telemetry.span("broker.publish").label("channel", "jobs");
        clock.advance(SimDuration::from_millis(250));
        span.finish();
        let spans = telemetry.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].duration(), SimDuration::from_millis(250));
    }

    #[test]
    fn render_outputs_parse() {
        let telemetry = Telemetry::new(VirtualClock::new());
        telemetry.counter(names::BROKER_PUBLISHED_TOTAL, &[]).add(3);
        telemetry
            .histogram(names::JOB_STAGE_SECONDS, &[("stage", "queue")], 0.0, 1.0, 8)
            .record(2.5);
        let samples = parse_prometheus(&telemetry.render_prometheus()).expect("prom parses");
        assert!(!samples.is_empty());
        let parsed = parse_json_snapshot(&telemetry.render_json()).expect("json parses");
        assert_eq!(parsed.counter(names::BROKER_PUBLISHED_TOTAL, &[]), Some(3));
    }
}
