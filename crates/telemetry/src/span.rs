//! Lightweight spans stamped with virtual-clock time.
//!
//! A span marks a named region of work (`broker.publish`,
//! `worker.build`, …) with a start and end in sim-time. Spans are
//! recorded into a bounded in-memory collector; there is no sampling —
//! the discrete-event workloads here are small enough to keep every
//! span, and the cap only guards against runaway loops.

use parking_lot::Mutex;
use rai_sim::{SimDuration, SimTime, VirtualClock};
use std::collections::VecDeque;
use std::sync::Arc;

/// Completed span: a named interval of sim-time with optional labels.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    pub name: String,
    pub labels: Vec<(String, String)>,
    pub start: SimTime,
    pub end: SimTime,
}

impl SpanRecord {
    pub fn duration(&self) -> SimDuration {
        self.end.duration_since(self.start)
    }
}

/// Bounded collector of finished spans.
#[derive(Debug)]
pub struct SpanCollector {
    clock: VirtualClock,
    spans: Mutex<VecDeque<SpanRecord>>,
    capacity: usize,
}

/// Default span retention; a semester run emits well under this.
pub const DEFAULT_SPAN_CAPACITY: usize = 65_536;

impl SpanCollector {
    pub fn new(clock: VirtualClock) -> Self {
        SpanCollector {
            clock,
            spans: Mutex::new(VecDeque::new()),
            capacity: DEFAULT_SPAN_CAPACITY,
        }
    }

    /// Start a span at the current sim-time. The span is recorded when
    /// [`Span::finish`] (or [`Span::finish_at`]) is called; a dropped
    /// unfinished span is discarded silently.
    pub fn start(self: &Arc<Self>, name: &str) -> Span {
        Span {
            collector: Arc::clone(self),
            name: name.to_string(),
            labels: Vec::new(),
            start: self.clock.now(),
        }
    }

    fn record(&self, record: SpanRecord) {
        let mut spans = self.spans.lock();
        if spans.len() == self.capacity {
            spans.pop_front();
        }
        spans.push_back(record);
    }

    /// Copy of every retained span, oldest first.
    pub fn finished(&self) -> Vec<SpanRecord> {
        self.spans.lock().iter().cloned().collect()
    }

    pub fn len(&self) -> usize {
        self.spans.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.spans.lock().is_empty()
    }
}

/// An in-flight span. Finish it explicitly to record it.
#[derive(Debug)]
pub struct Span {
    collector: Arc<SpanCollector>,
    name: String,
    labels: Vec<(String, String)>,
    start: SimTime,
}

impl Span {
    /// Attach a label; chainable.
    pub fn label(mut self, key: &str, value: &str) -> Self {
        self.labels.push((key.to_string(), value.to_string()));
        self
    }

    pub fn start_time(&self) -> SimTime {
        self.start
    }

    /// Finish at the clock's current sim-time.
    pub fn finish(self) {
        let end = self.collector.clock.now();
        self.finish_at(end);
    }

    /// Finish at an explicit sim-time. Workers account service time
    /// additively before the engine advances the shared clock, so they
    /// stamp the logical end rather than the (still earlier) clock
    /// reading. Ends before the start are clamped to the start.
    pub fn finish_at(self, end: SimTime) {
        let end = end.max(self.start);
        self.collector.record(SpanRecord {
            name: self.name,
            labels: self.labels,
            start: self.start,
            end,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_interval() {
        let clock = VirtualClock::new();
        let collector = Arc::new(SpanCollector::new(clock.clone()));
        let span = collector.start("worker.build").label("worker", "w0");
        clock.advance(SimDuration::from_secs(3));
        span.finish();
        let spans = collector.finished();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "worker.build");
        assert_eq!(spans[0].labels, vec![("worker".to_string(), "w0".to_string())]);
        assert_eq!(spans[0].duration(), SimDuration::from_secs(3));
    }

    #[test]
    fn finish_at_stamps_logical_end() {
        let clock = VirtualClock::starting_at(SimTime::from_secs(10));
        let collector = Arc::new(SpanCollector::new(clock.clone()));
        let span = collector.start("worker.run");
        span.finish_at(SimTime::from_secs(14));
        let spans = collector.finished();
        assert_eq!(spans[0].start, SimTime::from_secs(10));
        assert_eq!(spans[0].end, SimTime::from_secs(14));
    }

    #[test]
    fn finish_before_start_clamps() {
        let clock = VirtualClock::starting_at(SimTime::from_secs(5));
        let collector = Arc::new(SpanCollector::new(clock.clone()));
        let span = collector.start("odd");
        span.finish_at(SimTime::from_secs(1));
        let spans = collector.finished();
        assert_eq!(spans[0].duration(), SimDuration::ZERO);
    }

    #[test]
    fn collector_is_bounded() {
        let clock = VirtualClock::new();
        let collector = Arc::new(SpanCollector {
            clock: clock.clone(),
            spans: Mutex::new(VecDeque::new()),
            capacity: 4,
        });
        for i in 0..6 {
            collector.start(&format!("s{i}")).finish();
        }
        let spans = collector.finished();
        assert_eq!(spans.len(), 4);
        assert_eq!(spans[0].name, "s2");
        assert_eq!(spans[3].name, "s5");
    }
}
