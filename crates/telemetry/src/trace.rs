//! Per-job lifecycle traces.
//!
//! Every submission that enters the system gets a [`JobTrace`]: an
//! append-only list of named stage events stamped with sim-time. The
//! canonical stage sequence mirrors the RAI pipeline (submit → enqueue
//! → dequeue → fetch → build → run → upload → grade), but traces accept
//! any stage name so ablation experiments can add their own.

use parking_lot::Mutex;
use rai_sim::{SimDuration, SimTime};
use std::collections::{HashMap, VecDeque};

/// Canonical stage names, in pipeline order.
pub mod stage {
    /// Client submitted the job (rate-limit passed, archive packed).
    pub const SUBMITTED: &str = "submitted";
    /// Broker accepted and queued the job.
    pub const ENQUEUED: &str = "enqueued";
    /// A worker dequeued the job.
    pub const DEQUEUED: &str = "dequeued";
    /// Worker fetched the submission archive from the object store.
    pub const FETCHED: &str = "fetched";
    /// Sandbox image resolved/pulled and container built.
    pub const BUILT: &str = "built";
    /// Build commands ran to completion (or were killed).
    pub const RAN: &str = "ran";
    /// Build outputs uploaded back to the object store.
    pub const UPLOADED: &str = "uploaded";
    /// Submission recorded / ranking updated.
    pub const GRADED: &str = "graded";

    /// The canonical order, for reports.
    pub const ORDER: [&str; 8] = [
        SUBMITTED, ENQUEUED, DEQUEUED, FETCHED, BUILT, RAN, UPLOADED, GRADED,
    ];
}

/// One lifecycle event: the job reached `stage` at `at`.
#[derive(Clone, Debug, PartialEq)]
pub struct StageEvent {
    pub stage: &'static str,
    pub at: SimTime,
}

/// Full lifecycle of one job.
#[derive(Clone, Debug, Default)]
pub struct JobTrace {
    pub job_id: u64,
    pub events: Vec<StageEvent>,
}

impl JobTrace {
    /// Time the job reached `stage`, if it did.
    pub fn stage_time(&self, stage: &str) -> Option<SimTime> {
        self.events.iter().find(|e| e.stage == stage).map(|e| e.at)
    }

    /// Duration between two recorded stages (saturating at zero).
    pub fn stage_duration(&self, from: &str, to: &str) -> Option<SimDuration> {
        Some(self.stage_time(to)?.duration_since(self.stage_time(from)?))
    }

    /// Durations of each consecutive recorded stage pair.
    pub fn stage_durations(&self) -> Vec<(&'static str, SimDuration)> {
        self.events
            .windows(2)
            .map(|w| (w[1].stage, w[1].at.duration_since(w[0].at)))
            .collect()
    }

    /// End-to-end latency from the first to the last recorded event.
    pub fn total_duration(&self) -> SimDuration {
        match (self.events.first(), self.events.last()) {
            (Some(first), Some(last)) => last.at.duration_since(first.at),
            _ => SimDuration::ZERO,
        }
    }

    /// True when event timestamps never decrease.
    pub fn is_monotone(&self) -> bool {
        self.events.windows(2).all(|w| w[0].at <= w[1].at)
    }
}

/// Bounded store of job traces, evicting the oldest job once full.
#[derive(Debug)]
pub struct TraceStore {
    inner: Mutex<TraceStoreInner>,
}

#[derive(Debug)]
struct TraceStoreInner {
    traces: HashMap<u64, JobTrace>,
    order: VecDeque<u64>,
    capacity: usize,
}

/// Default trace retention. A full semester replay submits ~40k jobs;
/// the store keeps the most recent window rather than all of them.
pub const DEFAULT_TRACE_CAPACITY: usize = 16_384;

impl Default for TraceStore {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_TRACE_CAPACITY)
    }
}

impl TraceStore {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(capacity: usize) -> Self {
        TraceStore {
            inner: Mutex::new(TraceStoreInner {
                traces: HashMap::new(),
                order: VecDeque::new(),
                capacity: capacity.max(1),
            }),
        }
    }

    /// Record that `job_id` reached `stage` at `at`. Creates the trace
    /// on first sight of the job.
    pub fn record(&self, job_id: u64, stage: &'static str, at: SimTime) {
        let mut inner = self.inner.lock();
        if !inner.traces.contains_key(&job_id) {
            if inner.order.len() == inner.capacity {
                if let Some(evicted) = inner.order.pop_front() {
                    inner.traces.remove(&evicted);
                }
            }
            inner.order.push_back(job_id);
            inner
                .traces
                .insert(job_id, JobTrace { job_id, events: Vec::new() });
        }
        let trace = inner.traces.get_mut(&job_id).expect("just inserted");
        trace.events.push(StageEvent { stage, at });
    }

    /// Copy of one job's trace.
    pub fn get(&self, job_id: u64) -> Option<JobTrace> {
        self.inner.lock().traces.get(&job_id).cloned()
    }

    /// All retained traces, oldest job first.
    pub fn all(&self) -> Vec<JobTrace> {
        let inner = self.inner.lock();
        inner
            .order
            .iter()
            .filter_map(|id| inner.traces.get(id).cloned())
            .collect()
    }

    pub fn len(&self) -> usize {
        self.inner.lock().order.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.lock().order.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_records_lifecycle_in_order() {
        let store = TraceStore::new();
        store.record(7, stage::SUBMITTED, SimTime::from_secs(1));
        store.record(7, stage::ENQUEUED, SimTime::from_secs(1));
        store.record(7, stage::DEQUEUED, SimTime::from_secs(4));
        store.record(7, stage::RAN, SimTime::from_secs(9));
        let trace = store.get(7).expect("trace exists");
        assert!(trace.is_monotone());
        assert_eq!(trace.stage_time(stage::DEQUEUED), Some(SimTime::from_secs(4)));
        assert_eq!(
            trace.stage_duration(stage::ENQUEUED, stage::DEQUEUED),
            Some(SimDuration::from_secs(3))
        );
        assert_eq!(trace.total_duration(), SimDuration::from_secs(8));
    }

    #[test]
    fn stage_durations_are_consecutive_deltas() {
        let store = TraceStore::new();
        store.record(1, stage::SUBMITTED, SimTime::from_secs(0));
        store.record(1, stage::ENQUEUED, SimTime::from_secs(2));
        store.record(1, stage::DEQUEUED, SimTime::from_secs(5));
        let trace = store.get(1).expect("trace exists");
        assert_eq!(
            trace.stage_durations(),
            vec![
                (stage::ENQUEUED, SimDuration::from_secs(2)),
                (stage::DEQUEUED, SimDuration::from_secs(3)),
            ]
        );
    }

    #[test]
    fn store_evicts_oldest_job() {
        let store = TraceStore::with_capacity(2);
        store.record(1, stage::SUBMITTED, SimTime::from_secs(1));
        store.record(2, stage::SUBMITTED, SimTime::from_secs(2));
        store.record(3, stage::SUBMITTED, SimTime::from_secs(3));
        assert_eq!(store.len(), 2);
        assert!(store.get(1).is_none());
        assert!(store.get(2).is_some());
        assert!(store.get(3).is_some());
        // Appending to a surviving trace must not re-insert it.
        store.record(2, stage::ENQUEUED, SimTime::from_secs(4));
        assert_eq!(store.get(2).expect("trace").events.len(), 2);
    }

    #[test]
    fn empty_trace_total_duration_is_zero() {
        let trace = JobTrace::default();
        assert_eq!(trace.total_duration(), SimDuration::ZERO);
        assert!(trace.is_monotone());
    }
}
