//! Per-job causal span trees.
//!
//! Every submission that enters the system gets a [`JobTrace`]: an
//! attempt-aware tree of [`TraceSpan`]s stamped with sim-time
//! intervals. Each delivery attempt owns one root span; the pipeline
//! stages a worker executes on that attempt (dequeue → fetch → build →
//! run → upload → grade) hang off that root as children tagged with the
//! component that did the work (broker, store, sandbox, db, …).
//! Client-side work before the first delivery (submit, enqueue) lives
//! under the attempt-0 root. Retries therefore become *sibling attempt
//! subtrees* instead of duplicate stage events in one flat list, which
//! keeps stage durations honest under crash/retry schedules.
//!
//! The flat [`StageEvent`] view ([`JobTrace::events`]) is preserved for
//! consumers that only care about "when did the job reach stage X".

use parking_lot::Mutex;
use rai_sim::{SimDuration, SimTime};
use std::collections::{HashMap, HashSet, VecDeque};

/// Canonical stage names, in pipeline order.
pub mod stage {
    /// Client submitted the job (rate-limit passed, archive packed).
    pub const SUBMITTED: &str = "submitted";
    /// Broker accepted and queued the job.
    pub const ENQUEUED: &str = "enqueued";
    /// A worker dequeued the job.
    pub const DEQUEUED: &str = "dequeued";
    /// Worker fetched the submission archive from the object store.
    pub const FETCHED: &str = "fetched";
    /// Sandbox image resolved/pulled and container built.
    pub const BUILT: &str = "built";
    /// Build commands ran to completion (or were killed).
    pub const RAN: &str = "ran";
    /// Build outputs uploaded back to the object store.
    pub const UPLOADED: &str = "uploaded";
    /// Submission recorded / ranking updated.
    pub const GRADED: &str = "graded";

    /// Sandbox image pull (cold worker only; child of the attempt).
    pub const PULLED: &str = "pulled";
    /// Database write recording the outcome (child of the attempt).
    pub const RECORDED: &str = "recorded";
    /// Injected fault killed this attempt (zero-width marker).
    pub const CRASHED: &str = "crashed";

    /// Root span of the client-side attempt-0 subtree.
    pub const SUBMIT_ROOT: &str = "submit";
    /// Root span of each worker delivery attempt subtree.
    pub const ATTEMPT_ROOT: &str = "attempt";

    /// The canonical order, for reports.
    pub const ORDER: [&str; 8] = [
        SUBMITTED, ENQUEUED, DEQUEUED, FETCHED, BUILT, RAN, UPLOADED, GRADED,
    ];
}

/// Component tags: who did the work a span covers.
pub mod component {
    pub const CLIENT: &str = "client";
    pub const BROKER: &str = "broker";
    pub const WORKER: &str = "worker";
    pub const STORE: &str = "store";
    pub const SANDBOX: &str = "sandbox";
    pub const DB: &str = "db";
    pub const EXEC: &str = "exec";
    pub const FAULT: &str = "fault";

    /// Deterministic report order.
    pub const ORDER: [&str; 8] = [CLIENT, BROKER, WORKER, STORE, SANDBOX, DB, EXEC, FAULT];
}

/// Identifier of a span within one job's trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u32);

/// One node of a job's causal span tree: `stage` work done by
/// `component` on delivery `attempt`, covering `[start, end]` sim-time.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceSpan {
    pub id: SpanId,
    /// Parent span; `None` for an attempt root.
    pub parent: Option<SpanId>,
    pub stage: &'static str,
    pub component: &'static str,
    /// Delivery attempt: 0 = client-side submit, 1.. = worker attempts.
    pub attempt: u32,
    pub start: SimTime,
    pub end: SimTime,
}

impl TraceSpan {
    /// True for an attempt root (no parent edge).
    pub fn is_root(&self) -> bool {
        self.parent.is_none()
    }

    pub fn duration(&self) -> SimDuration {
        self.end.duration_since(self.start)
    }
}

/// One flattened lifecycle event: the job reached `stage` at `at`.
#[derive(Clone, Debug, PartialEq)]
pub struct StageEvent {
    pub stage: &'static str,
    pub at: SimTime,
}

/// Full lifecycle of one job as a forest of attempt subtrees.
#[derive(Clone, Debug, Default)]
pub struct JobTrace {
    pub job_id: u64,
    /// All spans in recording order. Roots are created lazily right
    /// before their first child, so a root always precedes its children.
    pub spans: Vec<TraceSpan>,
}

impl JobTrace {
    /// Flat stage-event view: every non-root span in recording order,
    /// stamped with the time the stage *completed*.
    pub fn events(&self) -> Vec<StageEvent> {
        self.spans
            .iter()
            .filter(|s| !s.is_root())
            .map(|s| StageEvent { stage: s.stage, at: s.end })
            .collect()
    }

    /// Attempt numbers present, ascending.
    pub fn attempts(&self) -> Vec<u32> {
        let mut seen: Vec<u32> = Vec::new();
        for span in &self.spans {
            if !seen.contains(&span.attempt) {
                seen.push(span.attempt);
            }
        }
        seen.sort_unstable();
        seen
    }

    /// All attempt roots, in recording order.
    pub fn roots(&self) -> Vec<&TraceSpan> {
        self.spans.iter().filter(|s| s.is_root()).collect()
    }

    /// The root span of one attempt.
    pub fn root_of(&self, attempt: u32) -> Option<&TraceSpan> {
        self.spans.iter().find(|s| s.is_root() && s.attempt == attempt)
    }

    /// Children of `id`, in recording order.
    pub fn children(&self, id: SpanId) -> Vec<&TraceSpan> {
        self.spans.iter().filter(|s| s.parent == Some(id)).collect()
    }

    /// The highest worker attempt number (ignores the submit subtree).
    pub fn final_attempt(&self) -> Option<u32> {
        self.spans.iter().map(|s| s.attempt).filter(|&a| a > 0).max()
    }

    /// Time the job first reached `stage`, if it did (completion time of
    /// the earliest-recorded span with that name, any attempt).
    pub fn stage_time(&self, stage: &str) -> Option<SimTime> {
        self.spans
            .iter()
            .find(|s| !s.is_root() && s.stage == stage)
            .map(|s| s.end)
    }

    fn stage_in_attempt(&self, stage: &str, attempt: u32) -> Option<&TraceSpan> {
        // Attempt-0 spans (client-side submit/enqueue) are shared
        // ancestry for every worker attempt, so they match any attempt.
        self.spans
            .iter()
            .find(|s| !s.is_root() && s.stage == stage && (s.attempt == attempt || s.attempt == 0))
    }

    /// Duration between two recorded stages, **attempt-scoped**: both
    /// endpoints must come from the same worker attempt (attempt-0
    /// client-side stages count as part of every attempt). Scans
    /// attempts in ascending order and returns the first attempt that
    /// contains both stages, so a crash-retry trace never pairs an
    /// attempt-1 `DEQUEUED` with an attempt-2 `RAN`.
    pub fn stage_duration(&self, from: &str, to: &str) -> Option<SimDuration> {
        for attempt in self.attempts() {
            if let (Some(f), Some(t)) = (
                self.stage_in_attempt(from, attempt),
                self.stage_in_attempt(to, attempt),
            ) {
                return Some(t.end.duration_since(f.end));
            }
        }
        None
    }

    /// Durations of each consecutive stage pair along the job's causal
    /// chain: attempt-0 client events followed by the **final** worker
    /// attempt's events. Earlier (crashed) attempts are excluded so
    /// retries cannot inflate the deltas.
    pub fn stage_durations(&self) -> Vec<(&'static str, SimDuration)> {
        self.chain()
            .windows(2)
            .map(|w| (w[1].stage, w[1].end.duration_since(w[0].end)))
            .collect()
    }

    /// Stage deltas within one specific attempt subtree.
    pub fn stage_durations_for(&self, attempt: u32) -> Vec<(&'static str, SimDuration)> {
        let spans: Vec<&TraceSpan> = self
            .spans
            .iter()
            .filter(|s| !s.is_root() && s.attempt == attempt)
            .collect();
        spans
            .windows(2)
            .map(|w| (w[1].stage, w[1].end.duration_since(w[0].end)))
            .collect()
    }

    /// The causal chain: attempt-0 events then final-attempt events.
    fn chain(&self) -> Vec<&TraceSpan> {
        let last = self.final_attempt();
        self.spans
            .iter()
            .filter(|s| {
                !s.is_root() && (s.attempt == 0 || Some(s.attempt) == last)
            })
            .collect()
    }

    /// End-to-end latency from the earliest span start to the latest
    /// span end.
    pub fn total_duration(&self) -> SimDuration {
        let start = self.spans.iter().map(|s| s.start).min();
        let end = self.spans.iter().map(|s| s.end).max();
        match (start, end) {
            (Some(s), Some(e)) => e.duration_since(s),
            _ => SimDuration::ZERO,
        }
    }

    /// True when recorded event timestamps never decrease.
    pub fn is_monotone(&self) -> bool {
        self.events().windows(2).all(|w| w[0].at <= w[1].at)
    }

    /// Structural well-formedness: ids unique, parent edges resolve to
    /// earlier-recorded roots, exactly one root per attempt, every
    /// child's interval nests inside its parent's, every span interval
    /// is ordered, and successive attempt roots do not overlap.
    pub fn well_formed(&self) -> Result<(), String> {
        let mut ids = HashSet::new();
        let mut roots_per_attempt: HashMap<u32, u32> = HashMap::new();
        let by_id: HashMap<SpanId, &TraceSpan> =
            self.spans.iter().map(|s| (s.id, s)).collect();
        for span in &self.spans {
            if !ids.insert(span.id) {
                return Err(format!("duplicate span id {:?}", span.id));
            }
            if span.start > span.end {
                return Err(format!("span {:?} ends before it starts", span.id));
            }
            match span.parent {
                None => {
                    *roots_per_attempt.entry(span.attempt).or_insert(0) += 1;
                }
                Some(pid) => {
                    let parent = by_id
                        .get(&pid)
                        .ok_or_else(|| format!("span {:?} has dangling parent", span.id))?;
                    if !parent.is_root() {
                        return Err(format!("span {:?} parent is not a root", span.id));
                    }
                    if parent.attempt != span.attempt {
                        return Err(format!("span {:?} crosses attempts", span.id));
                    }
                    if span.start < parent.start || span.end > parent.end {
                        return Err(format!(
                            "span {:?} [{:?},{:?}] escapes parent [{:?},{:?}]",
                            span.id, span.start, span.end, parent.start, parent.end
                        ));
                    }
                }
            }
        }
        for (attempt, count) in &roots_per_attempt {
            if *count != 1 {
                return Err(format!("attempt {attempt} has {count} roots"));
            }
        }
        let mut roots: Vec<&TraceSpan> = self.roots().into_iter().collect();
        roots.sort_by_key(|r| r.attempt);
        for w in roots.windows(2) {
            if w[1].start < w[0].end {
                return Err(format!(
                    "attempt {} root starts before attempt {} root ends",
                    w[1].attempt, w[0].attempt
                ));
            }
        }
        Ok(())
    }
}

/// Bounded store of job traces, evicting the oldest job once full.
/// Evicted job ids are tombstoned (bounded FIFO) so a late stage event
/// cannot resurrect an evicted job as a fresh truncated trace; such
/// events are counted in [`TraceStore::dropped_late`] instead.
#[derive(Debug)]
pub struct TraceStore {
    inner: Mutex<TraceStoreInner>,
}

#[derive(Debug)]
struct TraceStoreInner {
    traces: HashMap<u64, JobTrace>,
    order: VecDeque<u64>,
    capacity: usize,
    tombstones: HashSet<u64>,
    tombstone_order: VecDeque<u64>,
    dropped_late: u64,
}

/// Default trace retention. A full semester replay submits ~40k jobs;
/// the store keeps the most recent window rather than all of them.
pub const DEFAULT_TRACE_CAPACITY: usize = 16_384;

/// Tombstones retained per trace capacity (evicted ids remembered so
/// late events are dropped, not resurrected).
const TOMBSTONES_PER_CAPACITY: usize = 4;

impl Default for TraceStore {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_TRACE_CAPACITY)
    }
}

impl TraceStore {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(capacity: usize) -> Self {
        TraceStore {
            inner: Mutex::new(TraceStoreInner {
                traces: HashMap::new(),
                order: VecDeque::new(),
                capacity: capacity.max(1),
                tombstones: HashSet::new(),
                tombstone_order: VecDeque::new(),
                dropped_late: 0,
            }),
        }
    }

    /// Record a span for `job_id`: `stage` work by `component` on
    /// delivery `attempt`, covering `[start, end]`. The attempt's root
    /// span is created lazily before its first child and grows to
    /// envelope every child recorded under it.
    pub fn record_span(
        &self,
        job_id: u64,
        attempt: u32,
        stage: &'static str,
        component: &'static str,
        start: SimTime,
        end: SimTime,
    ) {
        let mut inner = self.inner.lock();
        if inner.tombstones.contains(&job_id) {
            inner.dropped_late += 1;
            return;
        }
        if !inner.traces.contains_key(&job_id) {
            if inner.order.len() == inner.capacity {
                if let Some(evicted) = inner.order.pop_front() {
                    inner.traces.remove(&evicted);
                    inner.tombstone(evicted);
                }
            }
            inner.order.push_back(job_id);
            inner
                .traces
                .insert(job_id, JobTrace { job_id, spans: Vec::new() });
        }
        let trace = inner.traces.get_mut(&job_id).expect("just inserted");
        let (end, start) = (end.max(start), start.min(end));
        let root_id = match trace.spans.iter().position(|s| s.is_root() && s.attempt == attempt) {
            Some(idx) => {
                let root = &mut trace.spans[idx];
                root.start = root.start.min(start);
                root.end = root.end.max(end);
                root.id
            }
            None => {
                let id = SpanId(trace.spans.len() as u32);
                let (root_stage, root_component) = if attempt == 0 {
                    (stage::SUBMIT_ROOT, component::CLIENT)
                } else {
                    (stage::ATTEMPT_ROOT, component::WORKER)
                };
                trace.spans.push(TraceSpan {
                    id,
                    parent: None,
                    stage: root_stage,
                    component: root_component,
                    attempt,
                    start,
                    end,
                });
                id
            }
        };
        let id = SpanId(trace.spans.len() as u32);
        trace.spans.push(TraceSpan {
            id,
            parent: Some(root_id),
            stage,
            component,
            attempt,
            start,
            end,
        });
    }

    /// Record that `job_id` reached `stage` at `at` (legacy flat API).
    /// Client-side stages land in the attempt-0 subtree; everything
    /// else defaults to attempt 1 with the component implied by the
    /// canonical pipeline.
    pub fn record(&self, job_id: u64, stage_name: &'static str, at: SimTime) {
        let (attempt, comp) = match stage_name {
            s if s == stage::SUBMITTED => (0, component::CLIENT),
            s if s == stage::ENQUEUED => (0, component::BROKER),
            s if s == stage::DEQUEUED => (1, component::BROKER),
            s if s == stage::FETCHED => (1, component::STORE),
            s if s == stage::BUILT || s == stage::RAN || s == stage::PULLED => {
                (1, component::SANDBOX)
            }
            s if s == stage::UPLOADED => (1, component::STORE),
            s if s == stage::RECORDED => (1, component::DB),
            _ => (1, component::WORKER),
        };
        self.record_span(job_id, attempt, stage_name, comp, at, at);
    }

    /// Copy of one job's trace.
    pub fn get(&self, job_id: u64) -> Option<JobTrace> {
        self.inner.lock().traces.get(&job_id).cloned()
    }

    /// All retained traces, oldest job first.
    pub fn all(&self) -> Vec<JobTrace> {
        let inner = self.inner.lock();
        inner
            .order
            .iter()
            .filter_map(|id| inner.traces.get(id).cloned())
            .collect()
    }

    /// Late span records dropped because their job was already evicted.
    pub fn dropped_late(&self) -> u64 {
        self.inner.lock().dropped_late
    }

    pub fn len(&self) -> usize {
        self.inner.lock().order.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.lock().order.is_empty()
    }
}

impl TraceStoreInner {
    fn tombstone(&mut self, job_id: u64) {
        let cap = self.capacity.saturating_mul(TOMBSTONES_PER_CAPACITY).max(1);
        if self.tombstone_order.len() == cap {
            if let Some(old) = self.tombstone_order.pop_front() {
                self.tombstones.remove(&old);
            }
        }
        if self.tombstones.insert(job_id) {
            self.tombstone_order.push_back(job_id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_records_lifecycle_in_order() {
        let store = TraceStore::new();
        store.record(7, stage::SUBMITTED, SimTime::from_secs(1));
        store.record(7, stage::ENQUEUED, SimTime::from_secs(1));
        store.record(7, stage::DEQUEUED, SimTime::from_secs(4));
        store.record(7, stage::RAN, SimTime::from_secs(9));
        let trace = store.get(7).expect("trace exists");
        assert!(trace.is_monotone());
        assert_eq!(trace.stage_time(stage::DEQUEUED), Some(SimTime::from_secs(4)));
        assert_eq!(
            trace.stage_duration(stage::ENQUEUED, stage::DEQUEUED),
            Some(SimDuration::from_secs(3))
        );
        assert_eq!(trace.total_duration(), SimDuration::from_secs(8));
        trace.well_formed().expect("tree is well-formed");
    }

    #[test]
    fn stage_durations_are_consecutive_deltas() {
        let store = TraceStore::new();
        store.record(1, stage::SUBMITTED, SimTime::from_secs(0));
        store.record(1, stage::ENQUEUED, SimTime::from_secs(2));
        store.record(1, stage::DEQUEUED, SimTime::from_secs(5));
        let trace = store.get(1).expect("trace exists");
        assert_eq!(
            trace.stage_durations(),
            vec![
                (stage::ENQUEUED, SimDuration::from_secs(2)),
                (stage::DEQUEUED, SimDuration::from_secs(3)),
            ]
        );
    }

    #[test]
    fn store_evicts_oldest_job() {
        let store = TraceStore::with_capacity(2);
        store.record(1, stage::SUBMITTED, SimTime::from_secs(1));
        store.record(2, stage::SUBMITTED, SimTime::from_secs(2));
        store.record(3, stage::SUBMITTED, SimTime::from_secs(3));
        assert_eq!(store.len(), 2);
        assert!(store.get(1).is_none());
        assert!(store.get(2).is_some());
        assert!(store.get(3).is_some());
        // Appending to a surviving trace must not re-insert it.
        store.record(2, stage::ENQUEUED, SimTime::from_secs(4));
        assert_eq!(store.get(2).expect("trace").events().len(), 2);
    }

    #[test]
    fn late_event_for_evicted_job_is_dropped_not_resurrected() {
        let store = TraceStore::with_capacity(2);
        store.record(1, stage::SUBMITTED, SimTime::from_secs(1));
        store.record(2, stage::SUBMITTED, SimTime::from_secs(2));
        store.record(3, stage::SUBMITTED, SimTime::from_secs(3)); // evicts 1
        assert!(store.get(1).is_none());
        // A late event for the evicted job must not create a fresh
        // truncated trace (which would evict job 2 in turn).
        store.record(1, stage::GRADED, SimTime::from_secs(9));
        assert!(store.get(1).is_none(), "evicted job resurrected");
        assert!(store.get(2).is_some(), "live trace evicted by a zombie");
        assert_eq!(store.len(), 2);
        assert_eq!(store.dropped_late(), 1);
    }

    #[test]
    fn retries_become_sibling_attempt_subtrees() {
        let store = TraceStore::new();
        let t = SimTime::from_secs;
        store.record_span(5, 0, stage::SUBMITTED, component::CLIENT, t(0), t(0));
        store.record_span(5, 0, stage::ENQUEUED, component::BROKER, t(0), t(0));
        // Attempt 1 dequeues, fetches, then crashes.
        store.record_span(5, 1, stage::DEQUEUED, component::BROKER, t(10), t(10));
        store.record_span(5, 1, stage::FETCHED, component::STORE, t(10), t(12));
        store.record_span(5, 1, stage::CRASHED, component::FAULT, t(13), t(13));
        // Attempt 2 runs the job to completion.
        store.record_span(5, 2, stage::DEQUEUED, component::BROKER, t(40), t(40));
        store.record_span(5, 2, stage::FETCHED, component::STORE, t(40), t(41));
        store.record_span(5, 2, stage::RAN, component::SANDBOX, t(41), t(47));
        store.record_span(5, 2, stage::GRADED, component::WORKER, t(48), t(48));
        let trace = store.get(5).expect("trace exists");
        trace.well_formed().expect("tree is well-formed");
        assert_eq!(trace.attempts(), vec![0, 1, 2]);
        assert_eq!(trace.roots().len(), 3);
        let r1 = trace.root_of(1).expect("attempt 1 root");
        assert_eq!((r1.start, r1.end), (t(10), t(13)));
        assert_eq!(trace.children(r1.id).len(), 3);
        assert_eq!(trace.final_attempt(), Some(2));
    }

    /// Regression: attempt-blind `find` used to pair attempt-1
    /// `DEQUEUED` with attempt-2 `RAN`, inflating the duration across
    /// the crash + redelivery gap.
    #[test]
    fn stage_duration_is_attempt_scoped_under_retries() {
        let store = TraceStore::new();
        let t = SimTime::from_secs;
        store.record_span(9, 0, stage::ENQUEUED, component::BROKER, t(0), t(0));
        store.record_span(9, 1, stage::DEQUEUED, component::BROKER, t(10), t(10));
        store.record_span(9, 1, stage::CRASHED, component::FAULT, t(11), t(11));
        store.record_span(9, 2, stage::DEQUEUED, component::BROKER, t(100), t(100));
        store.record_span(9, 2, stage::RAN, component::SANDBOX, t(100), t(105));
        let trace = store.get(9).expect("trace exists");
        // Attempt-scoped: 5 s within attempt 2, not 95 s across attempts.
        assert_eq!(
            trace.stage_duration(stage::DEQUEUED, stage::RAN),
            Some(SimDuration::from_secs(5))
        );
        // Queue wait pairs the shared attempt-0 enqueue with the FIRST
        // dequeue (attempt 1).
        assert_eq!(
            trace.stage_duration(stage::ENQUEUED, stage::DEQUEUED),
            Some(SimDuration::from_secs(10))
        );
        // stage_durations follows attempt 0 + the final attempt only.
        let durations = trace.stage_durations();
        assert_eq!(
            durations,
            vec![
                (stage::DEQUEUED, SimDuration::from_secs(100)),
                (stage::RAN, SimDuration::from_secs(5)),
            ]
        );
    }

    #[test]
    fn empty_trace_total_duration_is_zero() {
        let trace = JobTrace::default();
        assert_eq!(trace.total_duration(), SimDuration::ZERO);
        assert!(trace.is_monotone());
        trace.well_formed().expect("empty tree is well-formed");
    }
}
