//! Metric exposition: Prometheus text format and JSON.
//!
//! Histograms follow the Prometheus convention: cumulative `_bucket`
//! series with an `le` label, plus `_sum` and `_count`. Samples below
//! the histogram origin fold into every cumulative bucket (they are
//! `<= le` for all finite `le`); overflow appears only in `+Inf`.

use crate::json::{self, Value};
use crate::registry::{MetricKey, MetricsSnapshot};
use crate::stats::Histogram;
use std::fmt::Write as _;

/// Render a snapshot in the Prometheus text exposition format.
pub fn render_prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (key, value) in &snapshot.counters {
        let _ = writeln!(out, "# TYPE {} counter", key.name);
        let _ = writeln!(out, "{} {}", key.render(), value);
    }
    for (key, value) in &snapshot.gauges {
        let _ = writeln!(out, "# TYPE {} gauge", key.name);
        let _ = writeln!(out, "{} {}", key.render(), format_f64(*value));
    }
    for (key, hist) in &snapshot.histograms {
        let _ = writeln!(out, "# TYPE {} histogram", key.name);
        let mut cumulative = hist.underflow();
        for i in 0..hist.num_bins() {
            cumulative += hist.bin(i);
            let (_, hi) = hist.bin_range(i);
            let bucket_key = with_label(key, "le", &format_f64(hi));
            let _ = writeln!(out, "{}_bucket{} {}", key.name, bucket_key, cumulative);
        }
        cumulative += hist.overflow();
        let inf_key = with_label(key, "le", "+Inf");
        let _ = writeln!(out, "{}_bucket{} {}", key.name, inf_key, cumulative);
        let _ = writeln!(out, "{}_sum{} {}", key.name, label_block(key), format_f64(hist.sum()));
        let _ = writeln!(out, "{}_count{} {}", key.name, label_block(key), hist.total());
    }
    out
}

/// Render a snapshot as a JSON document.
pub fn render_json(snapshot: &MetricsSnapshot) -> String {
    let mut doc = Value::object();

    let counters: Vec<Value> = snapshot
        .counters
        .iter()
        .map(|(key, value)| {
            let mut entry = metric_entry(key);
            entry.set("value", (*value).into());
            entry
        })
        .collect();
    doc.set("counters", counters.into());

    let gauges: Vec<Value> = snapshot
        .gauges
        .iter()
        .map(|(key, value)| {
            let mut entry = metric_entry(key);
            entry.set("value", (*value).into());
            entry
        })
        .collect();
    doc.set("gauges", gauges.into());

    let histograms: Vec<Value> = snapshot
        .histograms
        .iter()
        .map(|(key, hist)| {
            let mut entry = metric_entry(key);
            entry.set("origin", hist.origin().into());
            entry.set("bin_width", hist.bin_width().into());
            entry.set(
                "bins",
                Value::Array((0..hist.num_bins()).map(|i| hist.bin(i).into()).collect()),
            );
            entry.set("underflow", hist.underflow().into());
            entry.set("overflow", hist.overflow().into());
            entry.set("sum", hist.sum().into());
            entry.set("count", hist.total().into());
            entry
        })
        .collect();
    doc.set("histograms", histograms.into());

    doc.render()
}

fn metric_entry(key: &MetricKey) -> Value {
    let mut entry = Value::object();
    entry.set("name", key.name.as_str().into());
    let mut labels = Value::object();
    for (k, v) in &key.labels {
        labels.set(k, v.as_str().into());
    }
    entry.set("labels", labels);
    entry
}

/// `{a="1",b="2"}` or empty string when there are no labels.
fn label_block(key: &MetricKey) -> String {
    if key.labels.is_empty() {
        String::new()
    } else {
        let rendered = key.render();
        rendered[key.name.len()..].to_string()
    }
}

/// Label block with one extra pair appended (for `le`).
fn with_label(key: &MetricKey, extra_key: &str, extra_value: &str) -> String {
    let mut pairs: Vec<String> = key
        .labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{v}\""))
        .collect();
    pairs.push(format!("{extra_key}=\"{extra_value}\""));
    format!("{{{}}}", pairs.join(","))
}

fn format_f64(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else if v.fract() == 0.0 && v.abs() < 9e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// One sample parsed back out of the Prometheus text format.
#[derive(Clone, Debug, PartialEq)]
pub struct PromSample {
    pub name: String,
    pub labels: Vec<(String, String)>,
    pub value: f64,
}

/// Parse the Prometheus text exposition format back into samples.
/// Comment (`#`) and blank lines are skipped. Used by the round-trip
/// tests and by bench bins that diff two snapshots.
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, String> {
    let mut samples = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let sample = parse_sample_line(line)
            .map_err(|e| format!("line {}: {e}: {line:?}", lineno + 1))?;
        samples.push(sample);
    }
    Ok(samples)
}

fn parse_sample_line(line: &str) -> Result<PromSample, String> {
    let (name_part, value_part) = match line.find('{') {
        Some(_) => {
            let close = line.rfind('}').ok_or("unclosed label block")?;
            (&line[..close + 1], line[close + 1..].trim())
        }
        None => {
            let space = line.find(' ').ok_or("missing value")?;
            (&line[..space], line[space..].trim())
        }
    };
    let value = match value_part {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        v => v.parse::<f64>().map_err(|_| "bad value")?,
    };

    let (name, labels) = match name_part.find('{') {
        None => (name_part.to_string(), Vec::new()),
        Some(brace) => {
            let name = name_part[..brace].to_string();
            let body = &name_part[brace + 1..name_part.len() - 1];
            (name, parse_labels(body)?)
        }
    };
    Ok(PromSample { name, labels, value })
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let eq = rest.find('=').ok_or("label missing '='")?;
        let key = rest[..eq].trim().to_string();
        rest = &rest[eq + 1..];
        if !rest.starts_with('"') {
            return Err("label value not quoted".to_string());
        }
        rest = &rest[1..];
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let mut consumed = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, escaped)) => value.push(escaped),
                    None => return Err("dangling escape".to_string()),
                },
                '"' => {
                    consumed = Some(i + 1);
                    break;
                }
                c => value.push(c),
            }
        }
        let consumed = consumed.ok_or("unterminated label value")?;
        labels.push((key, value));
        rest = rest[consumed..].trim_start_matches(',');
    }
    Ok(labels)
}

/// Parse a JSON exposition document back into a structured snapshot
/// shape (used by round-trip tests).
pub fn parse_json_snapshot(text: &str) -> Result<MetricsSnapshot, String> {
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    let mut snapshot = MetricsSnapshot::default();

    for entry in doc
        .get("counters")
        .and_then(Value::as_array)
        .ok_or("missing counters")?
    {
        let (key, _) = parse_entry_key(entry)?;
        let value = entry
            .get("value")
            .and_then(Value::as_f64)
            .ok_or("counter missing value")?;
        snapshot.counters.push((key, value as u64));
    }

    for entry in doc
        .get("gauges")
        .and_then(Value::as_array)
        .ok_or("missing gauges")?
    {
        let (key, _) = parse_entry_key(entry)?;
        let value = entry
            .get("value")
            .and_then(Value::as_f64)
            .ok_or("gauge missing value")?;
        snapshot.gauges.push((key, value));
    }

    for entry in doc
        .get("histograms")
        .and_then(Value::as_array)
        .ok_or("missing histograms")?
    {
        let (key, _) = parse_entry_key(entry)?;
        let origin = entry
            .get("origin")
            .and_then(Value::as_f64)
            .ok_or("histogram missing origin")?;
        let bin_width = entry
            .get("bin_width")
            .and_then(Value::as_f64)
            .ok_or("histogram missing bin_width")?;
        let bins = entry
            .get("bins")
            .and_then(Value::as_array)
            .ok_or("histogram missing bins")?;
        let mut hist = Histogram::new(origin, bin_width, bins.len().max(1));
        // Rebuild counts by recording representative values per bin.
        for (i, count) in bins.iter().enumerate() {
            let count = count.as_f64().ok_or("bad bin count")? as u64;
            let (lo, hi) = hist.bin_range(i);
            let mid = (lo + hi) / 2.0;
            for _ in 0..count {
                hist.record(mid);
            }
        }
        snapshot.histograms.push((key, hist));
    }

    Ok(snapshot)
}

fn parse_entry_key(entry: &Value) -> Result<(MetricKey, ()), String> {
    let name = entry
        .get("name")
        .and_then(Value::as_str)
        .ok_or("entry missing name")?;
    let mut labels: Vec<(String, String)> = Vec::new();
    if let Some(Value::Object(map)) = entry.get("labels") {
        for (k, v) in map {
            labels.push((
                k.clone(),
                v.as_str().ok_or("label not a string")?.to_string(),
            ));
        }
    }
    labels.sort();
    Ok((MetricKey { name: name.to_string(), labels }, ()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    fn sample_registry() -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        reg.counter("rai_jobs_total", &[("kind", "submit"), ("outcome", "ok")])
            .add(12);
        reg.counter("rai_broker_published_total", &[]).add(9);
        reg.gauge("rai_worker_active_jobs", &[("worker", "w0")]).set(2.5);
        let h = reg.histogram("rai_job_stage_seconds", &[("stage", "run")], 0.0, 1.0, 4);
        h.record(-0.5); // underflow
        h.record(0.5);
        h.record(2.5);
        h.record(99.0); // overflow
        reg
    }

    #[test]
    fn prometheus_text_round_trips() {
        let snapshot = sample_registry().snapshot();
        let text = render_prometheus(&snapshot);
        let samples = parse_prometheus(&text).expect("parses");

        let find = |name: &str, labels: &[(&str, &str)]| -> f64 {
            samples
                .iter()
                .find(|s| {
                    s.name == name
                        && s.labels
                            == labels
                                .iter()
                                .map(|(k, v)| (k.to_string(), v.to_string()))
                                .collect::<Vec<_>>()
                })
                .unwrap_or_else(|| panic!("sample {name} {labels:?} missing"))
                .value
        };

        assert_eq!(find("rai_jobs_total", &[("kind", "submit"), ("outcome", "ok")]), 12.0);
        assert_eq!(find("rai_broker_published_total", &[]), 9.0);
        assert_eq!(find("rai_worker_active_jobs", &[("worker", "w0")]), 2.5);
        // Cumulative buckets: underflow counts toward every bucket.
        assert_eq!(find("rai_job_stage_seconds_bucket", &[("stage", "run"), ("le", "1")]), 2.0);
        assert_eq!(find("rai_job_stage_seconds_bucket", &[("stage", "run"), ("le", "3")]), 3.0);
        assert_eq!(
            find("rai_job_stage_seconds_bucket", &[("stage", "run"), ("le", "+Inf")]),
            4.0
        );
        assert_eq!(find("rai_job_stage_seconds_count", &[("stage", "run")]), 4.0);
        assert_eq!(find("rai_job_stage_seconds_sum", &[("stage", "run")]), 101.5);
    }

    #[test]
    fn cumulative_buckets_are_monotone() {
        let snapshot = sample_registry().snapshot();
        let text = render_prometheus(&snapshot);
        let samples = parse_prometheus(&text).expect("parses");
        let mut buckets: Vec<(f64, f64)> = samples
            .iter()
            .filter(|s| s.name == "rai_job_stage_seconds_bucket")
            .map(|s| {
                let le = s
                    .labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .map(|(_, v)| if v == "+Inf" { f64::INFINITY } else { v.parse().unwrap() })
                    .expect("le label");
                (le, s.value)
            })
            .collect();
        buckets.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("comparable"));
        assert!(buckets.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn wal_counters_render_with_per_log_labels() {
        // The durability layer exports one label set per journal
        // ("db" / "store"); the exposition text must keep the series
        // distinct and round-trip exactly.
        let reg = MetricsRegistry::new();
        for (log, appends, corrupt) in [("db", 120u64, 0u64), ("store", 64, 3)] {
            let l = &[("log", log)];
            reg.counter(crate::names::WAL_APPENDS_TOTAL, l).store(appends);
            reg.counter(crate::names::WAL_BYTES_TOTAL, l).store(appends * 100);
            reg.counter(crate::names::WAL_FSYNC_BATCHES_TOTAL, l).store(appends / 4);
            reg.counter(crate::names::WAL_REPLAYED_RECORDS_TOTAL, l).store(appends / 2);
            reg.counter(crate::names::WAL_CORRUPT_RECORDS_DROPPED_TOTAL, l).store(corrupt);
            reg.counter(crate::names::WAL_COMPACTIONS_TOTAL, l).store(1);
            reg.gauge(crate::names::WAL_SEGMENTS, l).set(3.0);
            reg.gauge(crate::names::WAL_LOG_BYTES, l).set(8192.0);
        }
        let text = render_prometheus(&reg.snapshot());
        let samples = parse_prometheus(&text).expect("parses");
        let find = |name: &str, log: &str| -> f64 {
            samples
                .iter()
                .find(|s| s.name == name && s.labels == vec![("log".to_string(), log.to_string())])
                .unwrap_or_else(|| panic!("sample {name}{{log=\"{log}\"}} missing"))
                .value
        };
        assert_eq!(find(crate::names::WAL_APPENDS_TOTAL, "db"), 120.0);
        assert_eq!(find(crate::names::WAL_APPENDS_TOTAL, "store"), 64.0);
        assert_eq!(find(crate::names::WAL_BYTES_TOTAL, "db"), 12000.0);
        assert_eq!(find(crate::names::WAL_FSYNC_BATCHES_TOTAL, "store"), 16.0);
        assert_eq!(find(crate::names::WAL_REPLAYED_RECORDS_TOTAL, "db"), 60.0);
        assert_eq!(find(crate::names::WAL_CORRUPT_RECORDS_DROPPED_TOTAL, "db"), 0.0);
        assert_eq!(find(crate::names::WAL_CORRUPT_RECORDS_DROPPED_TOTAL, "store"), 3.0);
        assert_eq!(find(crate::names::WAL_COMPACTIONS_TOTAL, "store"), 1.0);
        assert_eq!(find(crate::names::WAL_SEGMENTS, "db"), 3.0);
        assert_eq!(find(crate::names::WAL_LOG_BYTES, "store"), 8192.0);
    }

    #[test]
    fn json_round_trips() {
        let snapshot = sample_registry().snapshot();
        let text = render_json(&snapshot);
        let parsed = parse_json_snapshot(&text).expect("parses");

        assert_eq!(parsed.counters, snapshot.counters);
        assert_eq!(parsed.gauges, snapshot.gauges);
        assert_eq!(parsed.histograms.len(), snapshot.histograms.len());
        for ((pk, ph), (sk, sh)) in parsed.histograms.iter().zip(&snapshot.histograms) {
            assert_eq!(pk, sk);
            assert_eq!(ph.num_bins(), sh.num_bins());
            for i in 0..sh.num_bins() {
                assert_eq!(ph.bin(i), sh.bin(i), "bin {i} of {}", sk.name);
            }
        }
    }

    #[test]
    fn empty_snapshot_renders_and_parses() {
        let snapshot = MetricsRegistry::new().snapshot();
        assert_eq!(parse_prometheus(&render_prometheus(&snapshot)).expect("parses"), vec![]);
        let parsed = parse_json_snapshot(&render_json(&snapshot)).expect("parses");
        assert!(parsed.counters.is_empty());
        assert!(parsed.gauges.is_empty());
        assert!(parsed.histograms.is_empty());
    }
}
