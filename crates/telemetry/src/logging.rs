//! Leveled diagnostic logging for bins and tests.
//!
//! `rai_telemetry::log!(info, "worker {} drained", id)` writes to
//! stderr when the level passes the `RAI_LOG` env filter (`error`,
//! `warn`, `info`, `debug`, `trace`, or `off`; default `info`).
//! Figure bins print their data on stdout, so diagnostics go to stderr
//! and piping stdout to a plot script stays clean.

use std::sync::OnceLock;

/// Log severity, ordered from most to least severe.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Error = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
    Trace = 4,
}

impl Level {
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }
}

/// Parse a `RAI_LOG` value. `off`/`none` silence everything; anything
/// unrecognized falls back to the default (`info`).
pub fn parse_level(value: &str) -> Option<Level> {
    match value.trim().to_ascii_lowercase().as_str() {
        "error" => Some(Level::Error),
        "warn" | "warning" => Some(Level::Warn),
        "info" => Some(Level::Info),
        "debug" => Some(Level::Debug),
        "trace" => Some(Level::Trace),
        "off" | "none" => None,
        _ => Some(Level::Info),
    }
}

// Deliberate `std::sync` holdout in a parking_lot codebase (DESIGN.md
// §14 "Lock policy"): this is write-once init, not a contended lock.
// `OnceLock` has no parking_lot equivalent, cannot poison (the closure
// runs exactly once and a panic there aborts init, never wedging later
// readers), and after init every read is a plain atomic load.
static MAX_LEVEL: OnceLock<Option<Level>> = OnceLock::new();

/// The active filter, resolved once from `RAI_LOG` (default `info`).
/// `None` means logging is off.
pub fn max_level() -> Option<Level> {
    *MAX_LEVEL.get_or_init(|| match std::env::var("RAI_LOG") {
        Ok(value) => parse_level(&value),
        Err(_) => Some(Level::Info),
    })
}

/// True when a record at `level` should be emitted.
pub fn enabled(level: Level) -> bool {
    matches!(max_level(), Some(max) if level <= max)
}

#[doc(hidden)]
pub fn emit(level: Level, args: std::fmt::Arguments<'_>) {
    eprintln!("[{:5}] {}", level.as_str(), args);
}

/// Log a formatted message at the given level (`error`, `warn`,
/// `info`, `debug`, or `trace`):
///
/// ```
/// rai_telemetry::log!(info, "processed {} jobs", 3);
/// ```
#[macro_export]
macro_rules! log {
    (error, $($arg:tt)*) => { $crate::log!(@emit $crate::logging::Level::Error, $($arg)*) };
    (warn,  $($arg:tt)*) => { $crate::log!(@emit $crate::logging::Level::Warn,  $($arg)*) };
    (info,  $($arg:tt)*) => { $crate::log!(@emit $crate::logging::Level::Info,  $($arg)*) };
    (debug, $($arg:tt)*) => { $crate::log!(@emit $crate::logging::Level::Debug, $($arg)*) };
    (trace, $($arg:tt)*) => { $crate::log!(@emit $crate::logging::Level::Trace, $($arg)*) };
    (@emit $level:expr, $($arg:tt)*) => {
        if $crate::logging::enabled($level) {
            $crate::logging::emit($level, format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_by_severity() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Info < Level::Trace);
    }

    #[test]
    fn parses_filter_values() {
        assert_eq!(parse_level("debug"), Some(Level::Debug));
        assert_eq!(parse_level("WARN"), Some(Level::Warn));
        assert_eq!(parse_level("off"), None);
        assert_eq!(parse_level("bogus"), Some(Level::Info));
    }

    #[test]
    fn macro_compiles_at_every_level() {
        // Emission depends on the environment; this just exercises the
        // macro arms.
        crate::log!(error, "e {}", 1);
        crate::log!(warn, "w");
        crate::log!(info, "i {}", "x");
        crate::log!(debug, "d");
        crate::log!(trace, "t");
    }
}
