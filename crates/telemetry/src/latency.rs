//! Deterministic log-bucketed latency histograms.
//!
//! [`LogHistogram`] records non-negative latencies in integer
//! microseconds into HDR-style log-linear buckets: values below 64 µs
//! are counted exactly (one bucket per microsecond), and each octave
//! above that is split into 32 sub-buckets, bounding the relative
//! error of any bucket at 1/32 ≈ 3.1 %. Bucket boundaries are a pure
//! function of the value — no configuration, no floating point — so
//! two histograms built from the same samples in any order, on any
//! thread count, are byte-identical, and [`LogHistogram::merge`] is a
//! plain vector add that commutes exactly.
//!
//! Quantiles use the nearest-rank rule over bucket counts and report
//! the bucket's inclusive upper bound, clamped to the exact observed
//! maximum — deterministic integers, never an interpolation.

use rai_sim::SimDuration;

/// A sim-duration in microseconds (sim-time has millisecond resolution).
pub fn duration_micros(d: SimDuration) -> u64 {
    d.as_millis().saturating_mul(1_000)
}

/// Sub-bucket resolution: 32 sub-buckets per octave (exact below 64 µs).
const SUB_BITS: u32 = 6;
const SUB_COUNT: u64 = 1 << SUB_BITS;
const SUB_HALF: u64 = SUB_COUNT / 2;

/// Fixed log-linear histogram over latencies in microseconds.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LogHistogram {
    /// counts[i] = samples whose bucket index is `i`. Grown on demand;
    /// trailing zero buckets are never significant.
    counts: Vec<u64>,
    count: u64,
    sum_micros: u64,
    min_micros: u64,
    max_micros: u64,
}

/// Bucket index for a value. Values `< SUB_COUNT` map to themselves;
/// larger values use `exp * SUB_HALF + (v >> exp)` where `exp` is the
/// octave above the exact region.
fn index_for(v: u64) -> usize {
    let bits = 64 - v.leading_zeros();
    if bits <= SUB_BITS {
        v as usize
    } else {
        let exp = bits - SUB_BITS;
        (exp as usize) * SUB_HALF as usize + (v >> exp) as usize
    }
}

/// Inclusive upper bound of bucket `i` (the largest value mapping to it).
fn upper_bound(i: usize) -> u64 {
    let i = i as u64;
    if i < SUB_COUNT {
        i
    } else {
        let exp = (i >> (SUB_BITS - 1)) - 1;
        let sub = (i & (SUB_HALF - 1)) + SUB_HALF;
        ((sub + 1) << exp) - 1
    }
}

impl LogHistogram {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one latency in microseconds.
    pub fn record_micros(&mut self, micros: u64) {
        let idx = index_for(micros);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        if self.count == 0 {
            self.min_micros = micros;
            self.max_micros = micros;
        } else {
            self.min_micros = self.min_micros.min(micros);
            self.max_micros = self.max_micros.max(micros);
        }
        self.count += 1;
        self.sum_micros = self.sum_micros.saturating_add(micros);
    }

    /// Record a sim-duration (millisecond resolution, stored as µs).
    pub fn record(&mut self, d: SimDuration) {
        self.record_micros(duration_micros(d));
    }

    /// Record a latency in (non-negative) seconds.
    pub fn record_secs(&mut self, secs: f64) {
        self.record_micros((secs.max(0.0) * 1e6).round() as u64);
    }

    /// Merge another histogram into this one. Pure per-bucket addition:
    /// associative, commutative, and byte-identical to recording the
    /// union of samples in any order.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            return;
        }
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (dst, src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst += *src;
        }
        if self.count == 0 {
            self.min_micros = other.min_micros;
            self.max_micros = other.max_micros;
        } else {
            self.min_micros = self.min_micros.min(other.min_micros);
            self.max_micros = self.max_micros.max(other.max_micros);
        }
        self.count += other.count;
        self.sum_micros = self.sum_micros.saturating_add(other.sum_micros);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    pub fn sum_micros(&self) -> u64 {
        self.sum_micros
    }

    pub fn min_micros(&self) -> u64 {
        self.min_micros
    }

    pub fn max_micros(&self) -> u64 {
        self.max_micros
    }

    /// Integer mean in microseconds (0 when empty).
    pub fn mean_micros(&self) -> u64 {
        self.sum_micros.checked_div(self.count).unwrap_or(0)
    }

    /// Nearest-rank quantile in microseconds: the smallest bucket upper
    /// bound `u` such that at least `ceil(q * count)` samples are ≤ u,
    /// clamped to the observed maximum. `q` is clamped to [0, 1].
    pub fn quantile_micros(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return upper_bound(i).clamp(self.min_micros, self.max_micros);
            }
        }
        self.max_micros
    }

    /// Exact count of samples ≤ `micros` **when `micros` is a bucket
    /// upper bound** (always true below 64 µs); otherwise the count of
    /// the whole bucket containing `micros` is included.
    pub fn count_le_micros(&self, micros: u64) -> u64 {
        let idx = index_for(micros);
        self.counts.iter().take(idx + 1).sum()
    }

    /// The standard latency summary: count, mean, min/max, p50/p95/p99/p99.9.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count,
            mean_micros: self.mean_micros(),
            min_micros: self.min_micros,
            max_micros: self.max_micros,
            p50_micros: self.quantile_micros(0.50),
            p95_micros: self.quantile_micros(0.95),
            p99_micros: self.quantile_micros(0.99),
            p999_micros: self.quantile_micros(0.999),
        }
    }

    /// Stable textual encoding: `count;sum;min;max;[idx:count,...]`
    /// over non-empty buckets. Byte-identical iff the histograms hold
    /// identical bucket contents — the byte-identity gate for exports.
    pub fn encode(&self) -> String {
        let mut out = format!(
            "{};{};{};{};[",
            self.count, self.sum_micros, self.min_micros, self.max_micros
        );
        let mut first = true;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("{i}:{c}"));
        }
        out.push(']');
        out
    }
}

/// Exact-quantile summary of one latency population, in microseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencySummary {
    pub count: u64,
    pub mean_micros: u64,
    pub min_micros: u64,
    pub max_micros: u64,
    pub p50_micros: u64,
    pub p95_micros: u64,
    pub p99_micros: u64,
    pub p999_micros: u64,
}

impl LatencySummary {
    /// Render one quantile in human seconds.
    pub fn secs(micros: u64) -> f64 {
        micros as f64 / 1e6
    }

    /// `p50/p95/p99/p99.9` line in seconds with fixed formatting.
    pub fn render_secs(&self) -> String {
        format!(
            "n={} mean={:.3}s p50={:.3}s p95={:.3}s p99={:.3}s p99.9={:.3}s max={:.3}s",
            self.count,
            Self::secs(self.mean_micros),
            Self::secs(self.p50_micros),
            Self::secs(self.p95_micros),
            Self::secs(self.p99_micros),
            Self::secs(self.p999_micros),
            Self::secs(self.max_micros),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_region_is_exact() {
        let mut h = LogHistogram::new();
        for v in 0..SUB_COUNT {
            h.record_micros(v);
        }
        assert_eq!(h.count(), SUB_COUNT);
        for v in 0..SUB_COUNT {
            assert_eq!(h.count_le_micros(v), v + 1);
        }
        assert_eq!(h.quantile_micros(0.0), 0);
        assert_eq!(h.quantile_micros(1.0), SUB_COUNT - 1);
    }

    #[test]
    fn bucket_bounds_invert_the_index() {
        for v in [0u64, 1, 31, 32, 63, 64, 65, 127, 128, 1_000, 999_999, 1_000_000, u64::from(u32::MAX), 3_000_000_000_000] {
            let idx = index_for(v);
            let hi = upper_bound(idx);
            assert!(v <= hi, "v={v} above its bucket upper bound {hi}");
            // v is in the bucket whose upper bound we report.
            assert_eq!(index_for(hi), idx, "upper bound {hi} escapes bucket of {v}");
            if hi < u64::MAX {
                assert_eq!(index_for(hi + 1), idx + 1, "bucket of {v} not tight at {hi}");
            }
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut h = LogHistogram::new();
        let v = 123_456_789u64;
        h.record_micros(v);
        let p50 = h.quantile_micros(0.5);
        assert!(p50 >= v);
        assert!((p50 - v) as f64 / v as f64 <= 1.0 / SUB_HALF as f64);
    }

    #[test]
    fn merge_is_byte_identical_to_sequential() {
        let samples: Vec<u64> = (0..500).map(|i| (i * 7919 + 13) % 3_000_000).collect();
        let mut whole = LogHistogram::new();
        for &s in &samples {
            whole.record_micros(s);
        }
        let (left, right) = samples.split_at(137);
        let mut a = LogHistogram::new();
        for &s in left {
            a.record_micros(s);
        }
        let mut b = LogHistogram::new();
        for &s in right {
            b.record_micros(s);
        }
        // Merge in both orders; all three encodings must agree.
        let mut ba = b.clone();
        ba.merge(&a);
        a.merge(&b);
        assert_eq!(a.encode(), whole.encode());
        assert_eq!(ba.encode(), whole.encode());
        assert_eq!(a, whole);
    }

    #[test]
    fn quantiles_are_monotone_and_clamped() {
        let mut h = LogHistogram::new();
        for i in 1..=1000u64 {
            h.record_micros(i * 1000); // 1ms .. 1s
        }
        let s = h.summary();
        assert!(s.p50_micros <= s.p95_micros);
        assert!(s.p95_micros <= s.p99_micros);
        assert!(s.p99_micros <= s.p999_micros);
        assert!(s.p999_micros <= s.max_micros);
        assert_eq!(s.max_micros, 1_000_000);
        assert_eq!(s.min_micros, 1000);
        // p50 within 3.2% above the true median.
        let true_median = 500_000f64;
        assert!(s.p50_micros as f64 >= true_median);
        assert!(s.p50_micros as f64 <= true_median * (1.0 + 1.0 / SUB_HALF as f64));
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LogHistogram::new();
        assert_eq!(h.summary(), LatencySummary::default());
        assert_eq!(h.encode(), "0;0;0;0;[]");
    }
}
