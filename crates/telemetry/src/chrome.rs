//! Chrome trace-event JSON export of job span trees.
//!
//! Renders [`JobTrace`]s in the Trace Event Format (the JSON flavour
//! `chrome://tracing` and Perfetto's legacy importer load): one
//! complete event (`"ph":"X"`) per span, timestamps and durations in
//! microseconds of sim-time, one track (`tid`) per job, components as
//! categories. Output is fully deterministic: traces render in store
//! order, spans in recording order, all integers.

use crate::trace::JobTrace;

/// Render traces as a Trace Event Format JSON document.
///
/// `pid` is a constant 1 (one simulated deployment); each job gets its
/// own `tid` so Perfetto lays attempts of the same job on one track.
pub fn render_chrome_trace(traces: &[JobTrace]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for trace in traces {
        for span in &trace.spans {
            if !first {
                out.push(',');
            }
            first = false;
            let ts = span.start.as_millis().saturating_mul(1_000);
            let dur = crate::latency::duration_micros(span.end.duration_since(span.start));
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{\"job\":{},\"attempt\":{},\"span\":{},\"parent\":{}}}}}",
                span.stage,
                span.component,
                ts,
                dur,
                trace.job_id,
                trace.job_id,
                span.attempt,
                span.id.0,
                span.parent.map_or(-1i64, |p| i64::from(p.0)),
            ));
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{component, stage, TraceStore};
    use rai_sim::SimTime;

    #[test]
    fn export_is_valid_trace_event_json() {
        let store = TraceStore::new();
        let t = SimTime::from_secs;
        store.record_span(3, 0, stage::SUBMITTED, component::CLIENT, t(0), t(0));
        store.record_span(3, 1, stage::RAN, component::SANDBOX, t(2), t(7));
        let json = render_chrome_trace(&store.all());
        // Structural sanity (the repo has no JSON parser dependency; the
        // bench suite's parse helpers cover exposition JSON instead).
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"ran\""));
        assert!(json.contains("\"cat\":\"sandbox\""));
        assert!(json.contains("\"ts\":2000000"));
        assert!(json.contains("\"dur\":5000000"));
        // Balanced braces/brackets — parseable by any JSON reader.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn export_is_deterministic() {
        let build = || {
            let store = TraceStore::new();
            let t = SimTime::from_secs;
            store.record_span(1, 1, stage::RAN, component::SANDBOX, t(1), t(4));
            store.record_span(2, 1, stage::RAN, component::SANDBOX, t(2), t(6));
            render_chrome_trace(&store.all())
        };
        assert_eq!(build(), build());
    }
}
