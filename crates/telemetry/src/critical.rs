//! Critical-path extraction and latency attribution over span trees.
//!
//! A submission's end-to-end latency is a single causal chain — submit
//! → queue → (attempt₁ … attemptₙ) → graded — so its critical path is
//! the trace itself with every instant accounted to exactly one
//! segment: a recorded span (attributed to its stage + component), a
//! gap between attempt subtrees (queue wait or retry redelivery wait),
//! or an unattributed gap inside an attempt (worker overhead such as
//! auth/validation that has no dedicated span). Summing segments over
//! every job answers "where does the semester wall go": per-stage /
//! per-component totals, shares of the summed end-to-end latency, and
//! a deterministic [`LogHistogram`] per segment kind.

use crate::latency::{duration_micros, LogHistogram};
use crate::trace::{component, JobTrace, TraceSpan};
use rai_sim::{SimDuration, SimTime};

/// Synthetic segment labels (gaps that have no recorded span).
pub mod segment {
    /// Broker queue wait before the first delivery.
    pub const QUEUE_WAIT: &str = "queue-wait";
    /// Redelivery wait between a failed attempt and the next one.
    pub const RETRY_WAIT: &str = "retry-wait";
    /// Unattributed time inside an attempt (auth, validation, …).
    pub const OTHER: &str = "other";
}

/// One segment of a job's critical path.
#[derive(Clone, Debug, PartialEq)]
pub struct PathSegment {
    pub stage: &'static str,
    pub component: &'static str,
    pub attempt: u32,
    pub start: SimTime,
    pub end: SimTime,
    /// Work on a non-final attempt: it was redone after a crash.
    pub wasted: bool,
}

impl PathSegment {
    pub fn duration(&self) -> SimDuration {
        self.end.duration_since(self.start)
    }
}

/// A job's end-to-end latency split into contiguous segments.
#[derive(Clone, Debug)]
pub struct CriticalPath {
    pub job_id: u64,
    pub start: SimTime,
    pub end: SimTime,
    pub segments: Vec<PathSegment>,
}

impl CriticalPath {
    pub fn total(&self) -> SimDuration {
        self.end.duration_since(self.start)
    }
}

/// Extract the critical path of one trace. Returns `None` for an empty
/// trace. Segments are contiguous, non-overlapping, and cover
/// `[start, end]` exactly.
pub fn critical_path(trace: &JobTrace) -> Option<CriticalPath> {
    if trace.spans.is_empty() {
        return None;
    }
    let start = trace.spans.iter().map(|s| s.start).min()?;
    let end = trace.spans.iter().map(|s| s.end).max()?;
    let final_attempt = trace.final_attempt().unwrap_or(0);
    let mut roots: Vec<&TraceSpan> = trace.roots();
    roots.sort_by_key(|r| r.attempt);
    let mut segments = Vec::new();
    let mut cursor = start;
    let push = |segments: &mut Vec<PathSegment>, seg: PathSegment| {
        if seg.end > seg.start {
            segments.push(seg);
        }
    };
    for root in &roots {
        // Gap before this subtree: queue wait ahead of the first worker
        // attempt, redelivery wait ahead of every retry.
        if root.start > cursor && root.attempt > 0 {
            let (label, wasted) = if roots
                .iter()
                .any(|r| r.attempt > 0 && r.attempt < root.attempt)
            {
                (segment::RETRY_WAIT, true)
            } else {
                (segment::QUEUE_WAIT, false)
            };
            push(
                &mut segments,
                PathSegment {
                    stage: label,
                    component: component::BROKER,
                    attempt: root.attempt,
                    start: cursor,
                    end: root.start,
                    wasted,
                },
            );
            cursor = root.start;
        }
        let wasted = root.attempt > 0 && root.attempt < final_attempt;
        let mut children: Vec<&TraceSpan> = trace.children(root.id);
        children.sort_by_key(|c| (c.start, c.id));
        for child in children {
            if child.start > cursor {
                // Unattributed time inside the attempt.
                push(
                    &mut segments,
                    PathSegment {
                        stage: segment::OTHER,
                        component: component::WORKER,
                        attempt: root.attempt,
                        start: cursor,
                        end: child.start,
                        wasted,
                    },
                );
                cursor = child.start;
            }
            if child.end > cursor {
                push(
                    &mut segments,
                    PathSegment {
                        stage: child.stage,
                        component: child.component,
                        attempt: child.attempt,
                        start: cursor.max(child.start),
                        end: child.end,
                        wasted,
                    },
                );
                cursor = child.end;
            }
        }
        if root.end > cursor {
            push(
                &mut segments,
                PathSegment {
                    stage: segment::OTHER,
                    component: component::WORKER,
                    attempt: root.attempt,
                    start: cursor,
                    end: root.end,
                    wasted,
                },
            );
            cursor = root.end;
        }
    }
    Some(CriticalPath {
        job_id: trace.job_id,
        start,
        end,
        segments,
    })
}

/// One aggregate row: everything attributed to (`component`, `stage`).
#[derive(Clone, Debug)]
pub struct AttributionRow {
    pub component: &'static str,
    pub stage: &'static str,
    pub total_micros: u64,
    /// Number of segments (≥ jobs that hit this stage; retries add more).
    pub count: u64,
    /// Micros attributed to non-final (redone) attempts.
    pub wasted_micros: u64,
    pub hist: LogHistogram,
}

/// The "where does the wall go" aggregate over many jobs.
#[derive(Clone, Debug, Default)]
pub struct Attribution {
    pub jobs: u64,
    /// Sum of end-to-end latencies, µs.
    pub total_micros: u64,
    /// End-to-end latency distribution.
    pub end_to_end: LogHistogram,
    /// Rows sorted by attributed share, descending (ties by name).
    pub rows: Vec<AttributionRow>,
}

/// Aggregate critical paths over every trace.
pub fn attribute(traces: &[JobTrace]) -> Attribution {
    let mut out = Attribution::default();
    let mut rows: Vec<AttributionRow> = Vec::new();
    for trace in traces {
        let Some(path) = critical_path(trace) else { continue };
        out.jobs += 1;
        let e2e = path.total();
        out.end_to_end.record(e2e);
        out.total_micros = out.total_micros.saturating_add(duration_micros(e2e));
        for seg in &path.segments {
            let micros = duration_micros(seg.duration());
            let row = match rows
                .iter_mut()
                .find(|r| r.component == seg.component && r.stage == seg.stage)
            {
                Some(row) => row,
                None => {
                    rows.push(AttributionRow {
                        component: seg.component,
                        stage: seg.stage,
                        total_micros: 0,
                        count: 0,
                        wasted_micros: 0,
                        hist: LogHistogram::new(),
                    });
                    rows.last_mut().expect("just pushed")
                }
            };
            row.total_micros = row.total_micros.saturating_add(micros);
            row.count += 1;
            if seg.wasted {
                row.wasted_micros = row.wasted_micros.saturating_add(micros);
            }
            row.hist.record_micros(micros);
        }
    }
    rows.sort_by(|a, b| {
        b.total_micros
            .cmp(&a.total_micros)
            .then_with(|| a.component.cmp(b.component))
            .then_with(|| a.stage.cmp(b.stage))
    });
    out.rows = rows;
    out
}

impl Attribution {
    /// Fixed-format attribution table: one row per (component, stage),
    /// share of the summed end-to-end latency, and exact quantiles.
    /// Deterministic: byte-identical for identical traces.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<8} {:<11} {:>7} {:>12} {:>8} {:>9} {:>9} {:>9} {:>9}\n",
            "component", "stage", "share%", "total_s", "n", "p50_s", "p95_s", "p99_s", "p99.9_s"
        ));
        for row in &self.rows {
            let share = if self.total_micros == 0 {
                0.0
            } else {
                row.total_micros as f64 / self.total_micros as f64 * 100.0
            };
            let s = row.hist.summary();
            out.push_str(&format!(
                "{:<8} {:<11} {:>7.2} {:>12.3} {:>8} {:>9.4} {:>9.4} {:>9.4} {:>9.4}\n",
                row.component,
                row.stage,
                share,
                row.total_micros as f64 / 1e6,
                row.count,
                s.p50_micros as f64 / 1e6,
                s.p95_micros as f64 / 1e6,
                s.p99_micros as f64 / 1e6,
                s.p999_micros as f64 / 1e6,
            ));
        }
        let e2e = self.end_to_end.summary();
        out.push_str(&format!(
            "end-to-end: jobs={} {}\n",
            self.jobs,
            e2e.render_secs()
        ));
        out
    }

    /// Total micros attributed to wasted (redone) work.
    pub fn wasted_micros(&self) -> u64 {
        self.rows.iter().map(|r| r.wasted_micros).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{stage, TraceStore};
    use rai_sim::SimTime;

    fn crash_retry_trace() -> JobTrace {
        let store = TraceStore::new();
        let t = SimTime::from_secs;
        store.record_span(1, 0, stage::SUBMITTED, component::CLIENT, t(0), t(0));
        store.record_span(1, 0, stage::ENQUEUED, component::BROKER, t(0), t(0));
        store.record_span(1, 1, stage::DEQUEUED, component::BROKER, t(5), t(5));
        store.record_span(1, 1, stage::FETCHED, component::STORE, t(5), t(7));
        store.record_span(1, 1, stage::CRASHED, component::FAULT, t(8), t(8));
        store.record_span(1, 2, stage::DEQUEUED, component::BROKER, t(20), t(20));
        store.record_span(1, 2, stage::FETCHED, component::STORE, t(20), t(21));
        store.record_span(1, 2, stage::RAN, component::SANDBOX, t(21), t(30));
        store.record_span(1, 2, stage::GRADED, component::WORKER, t(31), t(31));
        store.get(1).expect("trace")
    }

    #[test]
    fn segments_cover_end_to_end_exactly() {
        let trace = crash_retry_trace();
        let path = critical_path(&trace).expect("non-empty");
        assert_eq!(path.total(), SimDuration::from_secs(31));
        // Contiguous, ordered cover of [start, end].
        let mut cursor = path.start;
        for seg in &path.segments {
            assert_eq!(seg.start, cursor, "gap before {seg:?}");
            assert!(seg.end > seg.start);
            cursor = seg.end;
        }
        assert_eq!(cursor, path.end);
        let total: u64 = path.segments.iter().map(|s| duration_micros(s.duration())).sum();
        assert_eq!(total, duration_micros(path.total()));
    }

    #[test]
    fn queue_and_retry_waits_are_separated() {
        let trace = crash_retry_trace();
        let path = critical_path(&trace).expect("non-empty");
        let queue: Vec<_> = path
            .segments
            .iter()
            .filter(|s| s.stage == segment::QUEUE_WAIT)
            .collect();
        let retry: Vec<_> = path
            .segments
            .iter()
            .filter(|s| s.stage == segment::RETRY_WAIT)
            .collect();
        assert_eq!(queue.len(), 1);
        assert_eq!(queue[0].duration(), SimDuration::from_secs(5));
        assert_eq!(retry.len(), 1);
        // Attempt 1 envelope ended at the crash marker (8 s); redelivery
        // waited until 20 s.
        assert_eq!(retry[0].duration(), SimDuration::from_secs(12));
        assert!(retry[0].wasted);
        // Attempt-1 work is flagged wasted, attempt-2 work is not.
        assert!(path
            .segments
            .iter()
            .filter(|s| s.attempt == 1 && s.stage != segment::QUEUE_WAIT)
            .all(|s| s.wasted));
        assert!(path
            .segments
            .iter()
            .filter(|s| s.attempt == 2 && s.stage != segment::RETRY_WAIT)
            .all(|s| !s.wasted));
    }

    #[test]
    fn attribution_conserves_latency_and_orders_rows() {
        let trace = crash_retry_trace();
        let agg = attribute(&[trace.clone(), trace]);
        assert_eq!(agg.jobs, 2);
        assert_eq!(agg.total_micros, 2 * 31_000_000);
        let attributed: u64 = agg.rows.iter().map(|r| r.total_micros).sum();
        assert_eq!(attributed, agg.total_micros, "segments must cover e2e");
        // Rows sorted by share, descending.
        for w in agg.rows.windows(2) {
            assert!(w[0].total_micros >= w[1].total_micros);
        }
        // The table renders and mentions the dominant segment.
        let table = agg.table();
        assert!(table.contains("retry-wait"));
        assert!(table.contains("end-to-end: jobs=2"));
    }
}
