//! Statistics primitives shared across the workspace.
//!
//! * [`OnlineStats`] — Welford's streaming mean/variance plus min/max.
//! * [`Histogram`] — fixed-width binning (paper Fig. 2 uses 0.1 s bins)
//!   with explicit underflow/overflow buckets and parallel merge.
//! * [`TimeSeries`] — event counts bucketed by a fixed interval of
//!   virtual time (paper Fig. 4 uses 1-hour buckets).
//! * [`Percentiles`] — exact percentiles over a retained sample vector,
//!   used for queue-wait summaries in the scalability experiments.
//!
//! This module moved here from `rai-sim` so every crate (workload,
//! bench, core ranking, and the metrics registry itself) consumes one
//! shared implementation.

use rai_sim::{SimDuration, SimTime};
use std::fmt;

/// Streaming univariate statistics (Welford's algorithm).
#[derive(Clone, Debug, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold in one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation (std-dev / mean); 0 when the mean is 0.
    /// Used by the worker-concurrency timing-repeatability ablation.
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.std_dev() / m
        }
    }

    /// Smallest observation (NaN if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation (NaN if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Merge another accumulator into this one (parallel-combine).
    ///
    /// Zero-count operands are identity elements on either side: the
    /// non-empty operand's statistics survive unchanged, and merging
    /// two empty accumulators leaves an empty accumulator whose
    /// `min`/`max` still report NaN rather than ±infinity.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A fixed-bin-width histogram over `f64` observations, as used for the
/// paper's Fig. 2 ("each bin in the histogram is 0.1 second interval")
/// and the telemetry registry's latency metrics.
#[derive(Clone, Debug)]
pub struct Histogram {
    bin_width: f64,
    origin: f64,
    bins: Vec<u64>,
    total: u64,
    sum: f64,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// A histogram with `nbins` bins of width `bin_width` starting at
    /// `origin`. Observations outside the binned range are counted in
    /// explicit underflow/overflow buckets rather than dropped or
    /// silently clamped.
    pub fn new(origin: f64, bin_width: f64, nbins: usize) -> Self {
        assert!(bin_width > 0.0, "bin width must be positive");
        assert!(nbins > 0, "need at least one bin");
        Histogram {
            bin_width,
            origin,
            bins: vec![0; nbins],
            total: 0,
            sum: 0.0,
            underflow: 0,
            overflow: 0,
        }
    }

    /// Record one observation. Values below the origin are counted in
    /// the underflow bucket (they used to clamp into the first bin,
    /// which silently distorted the first bin's count).
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        self.sum += x;
        let rel = (x - self.origin) / self.bin_width;
        if rel < 0.0 {
            self.underflow += 1;
        } else if (rel as usize) < self.bins.len() {
            self.bins[rel as usize] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Count in bin `i`.
    pub fn bin(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// `[lo, hi)` bounds of bin `i`.
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        let lo = self.origin + i as f64 * self.bin_width;
        (lo, lo + self.bin_width)
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Lower bound of the first bin.
    pub fn origin(&self) -> f64 {
        self.origin
    }

    /// Width of each bin.
    pub fn bin_width(&self) -> f64 {
        self.bin_width
    }

    /// Observations below the origin.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations past the last bin.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Sum of all recorded observations (Prometheus `_sum`).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Iterator of `(lo, hi, count)` rows, including empty bins.
    pub fn rows(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        (0..self.bins.len()).map(|i| {
            let (lo, hi) = self.bin_range(i);
            (lo, hi, self.bins[i])
        })
    }

    /// Index of the fullest bin (ties break low), or `None` if no
    /// observation landed in a bin.
    pub fn mode_bin(&self) -> Option<usize> {
        if self.total == self.overflow + self.underflow {
            return None;
        }
        let mut best = 0usize;
        for (i, &c) in self.bins.iter().enumerate() {
            if c > self.bins[best] {
                best = i;
            }
        }
        Some(best)
    }

    /// Merge another histogram with the same shape (origin, bin width,
    /// bin count) into this one. Panics on shape mismatch — merging
    /// differently-binned histograms is a logic error.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.origin == other.origin
                && self.bin_width == other.bin_width
                && self.bins.len() == other.bins.len(),
            "histogram merge requires identical binning: \
             ({}, {}, {}) vs ({}, {}, {})",
            self.origin,
            self.bin_width,
            self.bins.len(),
            other.origin,
            other.bin_width,
            other.bins.len(),
        );
        for (mine, theirs) in self.bins.iter_mut().zip(&other.bins) {
            *mine += theirs;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.underflow += other.underflow;
        self.overflow += other.overflow;
    }

    /// Render an ASCII bar chart, one row per non-empty bin. An empty
    /// histogram renders as an explicit placeholder instead of an
    /// empty string.
    pub fn ascii(&self, max_width: usize) -> String {
        if self.total == 0 {
            return "(no samples)\n".to_string();
        }
        let peak = self.bins.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        if self.underflow > 0 {
            out.push_str(&format!("below origin: {}\n", self.underflow));
        }
        for (lo, hi, count) in self.rows() {
            if count == 0 {
                continue;
            }
            let w = (count as usize * max_width).div_ceil(peak as usize);
            out.push_str(&format!(
                "[{lo:6.1}, {hi:6.1}) |{:<width$}| {count}\n",
                "#".repeat(w),
                width = max_width
            ));
        }
        if self.overflow > 0 {
            out.push_str(&format!("overflow: {}\n", self.overflow));
        }
        out
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.ascii(50))
    }
}

/// Counts of events bucketed by fixed-width intervals of virtual time,
/// used for the paper's Fig. 4 (submissions per hour over two weeks).
#[derive(Clone, Debug)]
pub struct TimeSeries {
    start: SimTime,
    bucket: SimDuration,
    counts: Vec<u64>,
}

impl TimeSeries {
    /// A series starting at `start` with buckets of width `bucket`.
    pub fn new(start: SimTime, bucket: SimDuration) -> Self {
        assert!(!bucket.is_zero(), "bucket width must be positive");
        TimeSeries {
            start,
            bucket,
            counts: Vec::new(),
        }
    }

    /// Record one event at time `t`. Events before `start` are ignored.
    pub fn record(&mut self, t: SimTime) {
        if t < self.start {
            return;
        }
        let idx = (t.duration_since(self.start).as_millis() / self.bucket.as_millis()) as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
    }

    /// Bucket counts, in time order.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total events recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The start time of bucket `i`.
    pub fn bucket_start(&self, i: usize) -> SimTime {
        self.start + self.bucket * i as u64
    }

    /// Peak bucket as `(index, count)`, or `None` if empty.
    pub fn peak(&self) -> Option<(usize, u64)> {
        self.counts
            .iter()
            .copied()
            .enumerate()
            .max_by_key(|&(i, c)| (c, std::cmp::Reverse(i)))
    }

    /// Sparkline-style rendering with `cols` output columns (buckets are
    /// grouped if there are more buckets than columns). A series with
    /// no recorded events renders as the empty string — callers that
    /// need fixed-width output should check [`TimeSeries::total`]
    /// first.
    pub fn sparkline(&self, cols: usize) -> String {
        const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        if self.counts.is_empty() || cols == 0 {
            return String::new();
        }
        let group = self.counts.len().div_ceil(cols);
        let grouped: Vec<u64> = self
            .counts
            .chunks(group)
            .map(|c| c.iter().sum::<u64>())
            .collect();
        let peak = grouped.iter().copied().max().unwrap_or(0).max(1);
        grouped
            .iter()
            .map(|&c| GLYPHS[((c * (GLYPHS.len() as u64 - 1)).div_ceil(peak)) as usize])
            .collect()
    }
}

/// Sampled gauge values (queue depth, in-flight count, pool size)
/// bucketed by fixed-width intervals of virtual time. Unlike
/// [`TimeSeries`], which counts events, this tracks the *level* of a
/// quantity: per bucket it keeps the max, the sum, and the sample
/// count, so reports can plot peaks and means deterministically.
#[derive(Clone, Debug)]
pub struct GaugeSeries {
    start: SimTime,
    bucket: SimDuration,
    max: Vec<u64>,
    sum: Vec<u64>,
    count: Vec<u64>,
}

impl GaugeSeries {
    /// A series starting at `start` with buckets of width `bucket`.
    pub fn new(start: SimTime, bucket: SimDuration) -> Self {
        assert!(!bucket.is_zero(), "bucket width must be positive");
        GaugeSeries {
            start,
            bucket,
            max: Vec::new(),
            sum: Vec::new(),
            count: Vec::new(),
        }
    }

    /// Record one sample of the gauge at time `t`. Samples before
    /// `start` are ignored.
    pub fn record(&mut self, t: SimTime, value: u64) {
        if t < self.start {
            return;
        }
        let idx = (t.duration_since(self.start).as_millis() / self.bucket.as_millis()) as usize;
        if idx >= self.max.len() {
            self.max.resize(idx + 1, 0);
            self.sum.resize(idx + 1, 0);
            self.count.resize(idx + 1, 0);
        }
        self.max[idx] = self.max[idx].max(value);
        self.sum[idx] = self.sum[idx].saturating_add(value);
        self.count[idx] += 1;
    }

    /// Per-bucket maxima, in time order.
    pub fn maxes(&self) -> &[u64] {
        &self.max
    }

    /// Integer mean of bucket `i` (0 when the bucket has no samples).
    pub fn mean(&self, i: usize) -> u64 {
        match self.count.get(i) {
            Some(&c) if c > 0 => self.sum[i] / c,
            _ => 0,
        }
    }

    /// Total samples recorded.
    pub fn samples(&self) -> u64 {
        self.count.iter().sum()
    }

    /// Highest sampled value overall.
    pub fn peak(&self) -> u64 {
        self.max.iter().copied().max().unwrap_or(0)
    }

    /// The bucket with the highest max as `(index, max)`, earliest wins
    /// ties; `None` if no samples.
    pub fn peak_bucket(&self) -> Option<(usize, u64)> {
        if self.samples() == 0 {
            return None;
        }
        self.max
            .iter()
            .copied()
            .enumerate()
            .max_by_key(|&(i, v)| (v, std::cmp::Reverse(i)))
    }

    /// The start time of bucket `i`.
    pub fn bucket_start(&self, i: usize) -> SimTime {
        self.start + self.bucket * i as u64
    }

    /// Sparkline of per-bucket maxima with `cols` output columns
    /// (buckets grouped by max). Empty series render as "".
    pub fn sparkline(&self, cols: usize) -> String {
        const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        if self.max.is_empty() || cols == 0 {
            return String::new();
        }
        let group = self.max.len().div_ceil(cols);
        let grouped: Vec<u64> = self
            .max
            .chunks(group)
            .map(|c| c.iter().copied().max().unwrap_or(0))
            .collect();
        let peak = grouped.iter().copied().max().unwrap_or(0).max(1);
        grouped
            .iter()
            .map(|&c| GLYPHS[((c * (GLYPHS.len() as u64 - 1)).div_ceil(peak)) as usize])
            .collect()
    }
}

/// Exact percentile summary over retained samples.
#[derive(Clone, Debug, Default)]
pub struct Percentiles {
    samples: Vec<f64>,
    sorted: bool,
}

impl Percentiles {
    /// An empty sample set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one sample.
    pub fn push(&mut self, x: f64) {
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// The `p`-th percentile (0.0..=100.0) by nearest-rank; NaN if empty.
    pub fn percentile(&mut self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            self.sorted = true;
        }
        let rank = ((p / 100.0) * (self.samples.len() - 1) as f64).round() as usize;
        self.samples[rank.min(self.samples.len() - 1)]
    }

    /// Convenience: (p50, p90, p99).
    pub fn summary(&mut self) -> (f64, f64, f64) {
        (
            self.percentile(50.0),
            self.percentile(90.0),
            self.percentile(99.0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.cv() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.min().is_nan());
        assert!(s.max().is_nan());
    }

    #[test]
    fn online_stats_merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn online_stats_merge_empty_right_operand_is_identity() {
        let mut s = OnlineStats::new();
        s.push(3.0);
        s.push(7.0);
        let before = s.clone();
        s.merge(&OnlineStats::new());
        assert_eq!(s.count(), before.count());
        assert_eq!(s.mean(), before.mean());
        assert_eq!(s.variance(), before.variance());
        assert_eq!(s.min(), before.min());
        assert_eq!(s.max(), before.max());
    }

    #[test]
    fn online_stats_merge_empty_left_operand_adopts_other() {
        let mut other = OnlineStats::new();
        other.push(3.0);
        other.push(7.0);
        let mut s = OnlineStats::new();
        s.merge(&other);
        assert_eq!(s.count(), 2);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.min(), 3.0);
        assert_eq!(s.max(), 7.0);
    }

    #[test]
    fn online_stats_merge_both_empty_stays_empty() {
        let mut s = OnlineStats::new();
        s.merge(&OnlineStats::new());
        assert_eq!(s.count(), 0);
        assert!(s.min().is_nan());
        assert!(s.max().is_nan());
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn histogram_binning() {
        // The Fig. 2 configuration: 0.1 s bins from 0.
        let mut h = Histogram::new(0.0, 0.1, 25);
        h.record(0.45);
        h.record(0.44);
        h.record(0.05);
        h.record(123.0); // the paper's 2-minute straggler → overflow
        assert_eq!(h.bin(4), 2);
        assert_eq!(h.bin(0), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 4);
        assert_eq!(h.mode_bin(), Some(4));
        assert!((h.sum() - 123.94).abs() < 1e-9);
        let (lo, hi) = h.bin_range(4);
        assert!((lo - 0.4).abs() < 1e-12 && (hi - 0.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_underflow_goes_to_underflow_bucket() {
        let mut h = Histogram::new(1.0, 1.0, 3);
        h.record(0.0);
        h.record(-5.0);
        h.record(1.5);
        // Below-origin observations no longer pollute the first bin.
        assert_eq!(h.bin(0), 1);
        assert_eq!(h.underflow(), 2);
        assert_eq!(h.total(), 3);
        assert_eq!(h.mode_bin(), Some(0));
    }

    #[test]
    fn histogram_all_underflow_has_no_mode() {
        let mut h = Histogram::new(10.0, 1.0, 4);
        h.record(1.0);
        h.record(2.0);
        assert_eq!(h.underflow(), 2);
        assert_eq!(h.mode_bin(), None);
    }

    #[test]
    fn histogram_ascii_renders_nonempty_rows() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(0.5);
        h.record(2.5);
        h.record(2.7);
        let art = h.ascii(10);
        assert_eq!(art.lines().count(), 2);
        assert!(art.contains('#'));
    }

    #[test]
    fn histogram_ascii_empty_is_explicit() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.ascii(10), "(no samples)\n");
    }

    #[test]
    fn histogram_ascii_shows_underflow() {
        let mut h = Histogram::new(1.0, 1.0, 2);
        h.record(0.5);
        h.record(1.5);
        let art = h.ascii(10);
        assert!(art.contains("below origin: 1"), "got: {art}");
    }

    #[test]
    fn histogram_merge_accumulates() {
        let mut a = Histogram::new(0.0, 1.0, 4);
        let mut b = Histogram::new(0.0, 1.0, 4);
        a.record(0.5);
        a.record(9.0);
        b.record(0.7);
        b.record(-1.0);
        b.record(3.2);
        a.merge(&b);
        assert_eq!(a.total(), 5);
        assert_eq!(a.bin(0), 2);
        assert_eq!(a.bin(3), 1);
        assert_eq!(a.underflow(), 1);
        assert_eq!(a.overflow(), 1);
        assert!((a.sum() - 12.4).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "identical binning")]
    fn histogram_merge_rejects_mismatched_shapes() {
        let mut a = Histogram::new(0.0, 1.0, 4);
        let b = Histogram::new(0.0, 0.5, 4);
        a.merge(&b);
    }

    #[test]
    fn time_series_buckets_by_hour() {
        let mut ts = TimeSeries::new(SimTime::ZERO, SimDuration::HOUR);
        ts.record(SimTime::from_secs(10));
        ts.record(SimTime::from_secs(3599));
        ts.record(SimTime::from_secs(3600));
        ts.record(SimTime::from_secs(3 * 3600 + 1));
        assert_eq!(ts.counts(), &[2, 1, 0, 1]);
        assert_eq!(ts.total(), 4);
        assert_eq!(ts.peak(), Some((0, 2)));
        assert_eq!(ts.bucket_start(2), SimTime::from_secs(7200));
    }

    #[test]
    fn time_series_ignores_pre_start() {
        let mut ts = TimeSeries::new(SimTime::from_secs(100), SimDuration::SECOND);
        ts.record(SimTime::from_secs(50));
        assert_eq!(ts.total(), 0);
    }

    #[test]
    fn sparkline_has_requested_columns() {
        let mut ts = TimeSeries::new(SimTime::ZERO, SimDuration::SECOND);
        for i in 0..100u64 {
            for _ in 0..=(i % 7) {
                ts.record(SimTime::from_secs(i));
            }
        }
        let line = ts.sparkline(20);
        assert_eq!(line.chars().count(), 20);
    }

    #[test]
    fn sparkline_empty_series_is_empty_string() {
        let ts = TimeSeries::new(SimTime::ZERO, SimDuration::SECOND);
        assert_eq!(ts.sparkline(20), "");
        assert_eq!(ts.peak(), None);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut p = Percentiles::new();
        for i in 1..=100 {
            p.push(i as f64);
        }
        assert_eq!(p.percentile(0.0), 1.0);
        assert_eq!(p.percentile(100.0), 100.0);
        let (p50, p90, p99) = p.summary();
        assert!((p50 - 51.0).abs() <= 1.0);
        assert!((p90 - 90.0).abs() <= 1.5);
        assert!((p99 - 99.0).abs() <= 1.5);
        assert!(Percentiles::new().percentile(50.0).is_nan());
    }
}
