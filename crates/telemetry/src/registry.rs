//! Thread-safe metrics registry: counters, gauges, and fixed-bucket
//! histograms, addressed by `(name, sorted label set)`.
//!
//! Handles returned by the registry are cheap `Arc` clones — hot paths
//! acquire their handle once and then update lock-free (counters,
//! gauges) or under a short per-metric mutex (histograms).

use crate::stats::Histogram;
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Metric identity: name plus a sorted list of label pairs.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricKey {
    pub name: String,
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey { name: name.to_string(), labels }
    }

    /// `name{k="v",…}` rendering shared by exposition and debugging.
    pub fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let labels: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
            .collect();
        format!("{}{{{}}}", self.name, labels.join(","))
    }
}

fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Monotonically increasing counter handle.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrite with an absolute value — used by pull-style collectors
    /// that mirror an existing cumulative counter into the registry.
    pub fn store(&self, n: u64) {
        self.0.store(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Instantaneous value handle (f64 stored as bits in an atomic).
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    pub fn add(&self, delta: f64) {
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }

    pub fn sub(&self, delta: f64) {
        self.add(-delta);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Shared histogram handle.
#[derive(Clone, Debug)]
pub struct HistogramHandle(Arc<Mutex<Histogram>>);

impl HistogramHandle {
    pub fn record(&self, x: f64) {
        self.0.lock().record(x);
    }

    pub fn snapshot(&self) -> Histogram {
        self.0.lock().clone()
    }
}

/// Point-in-time copy of every registered metric, sorted by key.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    pub counters: Vec<(MetricKey, u64)>,
    pub gauges: Vec<(MetricKey, f64)>,
    pub histograms: Vec<(MetricKey, Histogram)>,
}

impl MetricsSnapshot {
    /// Sum of a counter across all label sets.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, v)| v)
            .sum()
    }

    /// Exact counter lookup.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let key = MetricKey::new(name, labels);
        self.counters.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }

    /// Exact gauge lookup.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let key = MetricKey::new(name, labels);
        self.gauges.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }

    /// All gauges with the given metric name.
    pub fn gauges_named(&self, name: &str) -> Vec<(&MetricKey, f64)> {
        self.gauges
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(k, v)| (k, *v))
            .collect()
    }

    /// Exact histogram lookup.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Histogram> {
        let key = MetricKey::new(name, labels);
        self.histograms.iter().find(|(k, _)| *k == key).map(|(_, h)| h)
    }

    /// All histograms with the given metric name.
    pub fn histograms_named(&self, name: &str) -> Vec<(&MetricKey, &Histogram)> {
        self.histograms
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(k, h)| (k, h))
            .collect()
    }
}

/// The registry proper.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<MetricKey, Arc<AtomicU64>>>,
    gauges: RwLock<BTreeMap<MetricKey, Arc<AtomicU64>>>,
    histograms: RwLock<BTreeMap<MetricKey, Arc<Mutex<Histogram>>>>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create a counter.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = MetricKey::new(name, labels);
        if let Some(cell) = self.counters.read().get(&key) {
            return Counter(Arc::clone(cell));
        }
        let mut counters = self.counters.write();
        let cell = counters.entry(key).or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Counter(Arc::clone(cell))
    }

    /// Get or create a gauge.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = MetricKey::new(name, labels);
        if let Some(cell) = self.gauges.read().get(&key) {
            return Gauge(Arc::clone(cell));
        }
        let mut gauges = self.gauges.write();
        let cell = gauges
            .entry(key)
            .or_insert_with(|| Arc::new(AtomicU64::new(0.0f64.to_bits())));
        Gauge(Arc::clone(cell))
    }

    /// Get or create a fixed-bucket histogram. The shape parameters
    /// apply only on first creation; later callers share the existing
    /// histogram regardless of the shape they pass.
    pub fn histogram(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        origin: f64,
        bin_width: f64,
        nbins: usize,
    ) -> HistogramHandle {
        let key = MetricKey::new(name, labels);
        if let Some(cell) = self.histograms.read().get(&key) {
            return HistogramHandle(Arc::clone(cell));
        }
        let mut histograms = self.histograms.write();
        let cell = histograms
            .entry(key)
            .or_insert_with(|| Arc::new(Mutex::new(Histogram::new(origin, bin_width, nbins))));
        HistogramHandle(Arc::clone(cell))
    }

    /// Copy out every metric, sorted by key.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            gauges: self
                .gauges
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
                .collect(),
            histograms: self
                .histograms
                .read()
                .iter()
                .map(|(k, h)| (k.clone(), h.lock().clone()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_state() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("jobs_total", &[("kind", "run")]);
        let b = reg.counter("jobs_total", &[("kind", "run")]);
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("jobs_total", &[("kind", "run")]), Some(5));
    }

    #[test]
    fn label_order_does_not_matter() {
        let reg = MetricsRegistry::new();
        reg.counter("m", &[("a", "1"), ("b", "2")]).inc();
        reg.counter("m", &[("b", "2"), ("a", "1")]).inc();
        let snap = reg.snapshot();
        assert_eq!(snap.counters.len(), 1);
        assert_eq!(snap.counter_total("m"), 2);
    }

    #[test]
    fn gauge_set_add_sub() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("pool_size", &[]);
        g.set(4.0);
        g.add(2.0);
        g.sub(1.0);
        assert_eq!(g.get(), 5.0);
        assert_eq!(reg.snapshot().gauge("pool_size", &[]), Some(5.0));
    }

    #[test]
    fn histogram_records_through_handle() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("latency", &[("stage", "run")], 0.0, 0.5, 10);
        h.record(0.7);
        h.record(1.2);
        let snap = reg.snapshot();
        let hist = snap.histogram("latency", &[("stage", "run")]).expect("present");
        assert_eq!(hist.total(), 2);
        assert_eq!(hist.bin(1), 1);
        assert_eq!(hist.bin(2), 1);
    }

    #[test]
    fn key_render_is_prometheus_shaped() {
        let key = MetricKey::new("rai_jobs_total", &[("kind", "submit"), ("outcome", "ok")]);
        assert_eq!(key.render(), "rai_jobs_total{kind=\"submit\",outcome=\"ok\"}");
        assert_eq!(MetricKey::new("up", &[]).render(), "up");
    }

    #[test]
    fn concurrent_increments_sum() {
        let reg = Arc::new(MetricsRegistry::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let reg = Arc::clone(&reg);
            handles.push(std::thread::spawn(move || {
                let c = reg.counter("contended", &[]);
                for _ in 0..10_000 {
                    c.inc();
                }
            }));
        }
        for h in handles {
            h.join().expect("thread finished");
        }
        assert_eq!(reg.snapshot().counter_total("contended"), 80_000);
    }
}
