//! Property tests for the discrete-event engine.
//!
//! The statistics property tests moved to `rai-telemetry` along with
//! the stats toolkit itself.

use proptest::prelude::*;
use rai_sim::{SimTime, Simulation};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Events always fire in non-decreasing time order, regardless of
    /// scheduling order, and every event fires exactly once.
    #[test]
    fn events_fire_in_time_order(times in prop::collection::vec(0u64..1_000_000, 0..60)) {
        let mut sim = Simulation::new(Vec::<u64>::new());
        for &t in &times {
            sim.scheduler().at(SimTime::from_millis(t), move |log: &mut Vec<u64>, _| {
                log.push(t);
            });
        }
        let executed = sim.run();
        prop_assert_eq!(executed as usize, times.len());
        let log = sim.into_state();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        prop_assert_eq!(log, sorted);
    }

    /// The clock never goes backwards while running.
    #[test]
    fn clock_is_monotone(times in prop::collection::vec(0u64..100_000, 1..40)) {
        let mut sim = Simulation::new(Vec::<SimTime>::new());
        for &t in &times {
            sim.scheduler().at(SimTime::from_millis(t), |log: &mut Vec<SimTime>, sched| {
                log.push(sched.now());
            });
        }
        sim.run();
        let observed = sim.into_state();
        for w in observed.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }
}
