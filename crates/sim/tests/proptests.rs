//! Property tests for the discrete-event engine and statistics.

use proptest::prelude::*;
use rai_sim::{Histogram, OnlineStats, SimDuration, SimTime, Simulation, TimeSeries};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Events always fire in non-decreasing time order, regardless of
    /// scheduling order, and every event fires exactly once.
    #[test]
    fn events_fire_in_time_order(times in prop::collection::vec(0u64..1_000_000, 0..60)) {
        let mut sim = Simulation::new(Vec::<u64>::new());
        for &t in &times {
            sim.scheduler().at(SimTime::from_millis(t), move |log: &mut Vec<u64>, _| {
                log.push(t);
            });
        }
        let executed = sim.run();
        prop_assert_eq!(executed as usize, times.len());
        let log = sim.into_state();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        prop_assert_eq!(log, sorted);
    }

    /// The clock never goes backwards while running.
    #[test]
    fn clock_is_monotone(times in prop::collection::vec(0u64..100_000, 1..40)) {
        let mut sim = Simulation::new(Vec::<SimTime>::new());
        for &t in &times {
            sim.scheduler().at(SimTime::from_millis(t), |log: &mut Vec<SimTime>, sched| {
                log.push(sched.now());
            });
        }
        sim.run();
        let observed = sim.into_state();
        for w in observed.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }

    /// TimeSeries conserves events: total == number of in-range records.
    #[test]
    fn time_series_conserves(
        events in prop::collection::vec(0u64..1_000_000, 0..100),
        bucket_ms in 1u64..10_000,
        start in 0u64..500_000,
    ) {
        let mut ts = TimeSeries::new(SimTime::from_millis(start), SimDuration::from_millis(bucket_ms));
        let mut expected = 0u64;
        for &e in &events {
            ts.record(SimTime::from_millis(e));
            if e >= start {
                expected += 1;
            }
        }
        prop_assert_eq!(ts.total(), expected);
        prop_assert_eq!(ts.counts().iter().sum::<u64>(), expected);
    }

    /// Histogram conserves observations across bins + overflow.
    #[test]
    fn histogram_conserves(xs in prop::collection::vec(-50.0f64..500.0, 0..100)) {
        let mut h = Histogram::new(0.0, 0.1, 25);
        for &x in &xs {
            h.record(x);
        }
        let binned: u64 = (0..h.num_bins()).map(|i| h.bin(i)).sum();
        prop_assert_eq!(binned + h.overflow(), xs.len() as u64);
        prop_assert_eq!(h.total(), xs.len() as u64);
    }

    /// OnlineStats matches a naive two-pass computation.
    #[test]
    fn online_stats_matches_naive(xs in prop::collection::vec(-1e3f64..1e3, 1..100)) {
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.variance() - var).abs() < 1e-5 * (1.0 + var.abs()));
    }

    /// Merging stats in any split equals the sequential result.
    #[test]
    fn stats_merge_associative(xs in prop::collection::vec(-1e3f64..1e3, 2..60), split in 1usize..59) {
        let split = split.min(xs.len() - 1);
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let (left, right) = xs.split_at(split);
        let mut a = OnlineStats::new();
        for &x in left { a.push(x); }
        let mut b = OnlineStats::new();
        for &x in right { b.push(x); }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-7 * (1.0 + whole.mean().abs()));
        prop_assert!((a.variance() - whole.variance()).abs() < 1e-5 * (1.0 + whole.variance()));
    }
}
