//! # rai-sim — discrete-event simulation substrate
//!
//! The paper evaluates RAI on a real AWS deployment over a five-week
//! course project. This crate provides the virtual-time substrate that
//! lets the reproduction run an entire semester of submissions in
//! milliseconds, deterministically:
//!
//! * [`time`] — [`SimTime`]/[`SimDuration`], millisecond-resolution
//!   virtual timestamps with calendar-ish helpers (hours, days, weeks).
//! * [`clock`] — [`VirtualClock`], a shared monotonically advancing
//!   clock used by components that only need "what time is it?"
//!   (object-store lifecycle expiry, rate limiters, container deadlines).
//! * [`engine`] — a classic event-calendar discrete-event engine:
//!   schedule closures at future instants, run to quiescence or a
//!   horizon.
//! * [`stats`] — the small statistics toolkit used by the benchmark
//!   harness: online mean/variance, fixed-width histograms (paper
//!   Fig. 2), time-bucketed series (paper Fig. 4) and percentile
//!   summaries.

pub mod clock;
pub mod engine;
pub mod stats;
pub mod time;

pub use clock::VirtualClock;
pub use engine::{EventId, Scheduler, Simulation};
pub use stats::{Histogram, OnlineStats, Percentiles, TimeSeries};
pub use time::{SimDuration, SimTime};
