//! # rai-sim — discrete-event simulation substrate
//!
//! The paper evaluates RAI on a real AWS deployment over a five-week
//! course project. This crate provides the virtual-time substrate that
//! lets the reproduction run an entire semester of submissions in
//! milliseconds, deterministically:
//!
//! * [`time`] — [`SimTime`]/[`SimDuration`], millisecond-resolution
//!   virtual timestamps with calendar-ish helpers (hours, days, weeks).
//! * [`clock`] — [`VirtualClock`], a shared monotonically advancing
//!   clock used by components that only need "what time is it?"
//!   (object-store lifecycle expiry, rate limiters, container deadlines).
//! * [`engine`] — a classic event-calendar discrete-event engine:
//!   schedule closures at future instants, run to quiescence or a
//!   horizon.
//!
//! The statistics toolkit (online mean/variance, histograms,
//! time-bucketed series, percentiles) that used to live here moved to
//! `rai-telemetry`, which also layers a metrics registry, spans, and
//! per-job traces on top of this crate's virtual clock.

pub mod clock;
pub mod engine;
pub mod time;

pub use clock::VirtualClock;
pub use engine::{EventId, Scheduler, Simulation};
pub use time::{SimDuration, SimTime};
