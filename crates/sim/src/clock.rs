//! A shared, monotonically advancing virtual clock.
//!
//! Components that only need to *read* the current virtual time (object
//! store lifecycle expiry, the 30-second submission rate limiter,
//! container lifetime enforcement) hold a cheap [`VirtualClock`] handle.
//! The discrete-event engine — or a test — advances it.

use crate::time::{SimDuration, SimTime};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A cloneable handle to a shared virtual clock.
///
/// Cloning the handle shares the underlying clock: advancing through one
/// handle is observed by all clones. The clock is monotone — it can only
/// move forward.
#[derive(Clone, Debug, Default)]
pub struct VirtualClock {
    now_ms: Arc<AtomicU64>,
}

impl VirtualClock {
    /// A new clock starting at the simulation epoch.
    pub fn new() -> Self {
        Self::default()
    }

    /// A new clock starting at `t`.
    pub fn starting_at(t: SimTime) -> Self {
        let c = Self::new();
        c.now_ms.store(t.as_millis(), Ordering::SeqCst);
        c
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        SimTime::from_millis(self.now_ms.load(Ordering::SeqCst))
    }

    /// Advance the clock by `d` and return the new time.
    pub fn advance(&self, d: SimDuration) -> SimTime {
        let new = self
            .now_ms
            .fetch_add(d.as_millis(), Ordering::SeqCst)
            .saturating_add(d.as_millis());
        SimTime::from_millis(new)
    }

    /// Move the clock forward to `t`. If `t` is in the past the clock is
    /// left unchanged (monotonicity), and the actual current time is
    /// returned.
    pub fn advance_to(&self, t: SimTime) -> SimTime {
        let target = t.as_millis();
        let mut cur = self.now_ms.load(Ordering::SeqCst);
        while cur < target {
            match self
                .now_ms
                .compare_exchange(cur, target, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return t,
                Err(actual) => cur = actual,
            }
        }
        SimTime::from_millis(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_epoch() {
        assert_eq!(VirtualClock::new().now(), SimTime::ZERO);
    }

    #[test]
    fn clones_share_time() {
        let a = VirtualClock::new();
        let b = a.clone();
        a.advance(SimDuration::from_secs(5));
        assert_eq!(b.now(), SimTime::from_secs(5));
    }

    #[test]
    fn advance_to_is_monotone() {
        let c = VirtualClock::starting_at(SimTime::from_secs(100));
        // Going backwards is a no-op.
        assert_eq!(c.advance_to(SimTime::from_secs(50)), SimTime::from_secs(100));
        assert_eq!(c.now(), SimTime::from_secs(100));
        // Going forwards works.
        assert_eq!(c.advance_to(SimTime::from_secs(200)), SimTime::from_secs(200));
    }

    #[test]
    fn concurrent_advance_to_converges() {
        let c = VirtualClock::new();
        let threads: Vec<_> = (1..=8u64)
            .map(|i| {
                let c = c.clone();
                std::thread::spawn(move || {
                    c.advance_to(SimTime::from_secs(i * 10));
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.now(), SimTime::from_secs(80));
    }
}
