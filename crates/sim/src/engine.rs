//! The discrete-event engine.
//!
//! An event calendar (binary heap keyed on `(time, sequence)`) of boxed
//! closures over a user-supplied state type `S`. Events scheduled at the
//! same instant fire in scheduling order, which keeps simulations
//! deterministic. Events may schedule further events and may cancel
//! previously scheduled ones by [`EventId`].
//!
//! The engine deliberately stays single-threaded: RAI's *modelled*
//! concurrency (many students, many workers) is expressed as interleaved
//! events over virtual time, while the *host* concurrency of the live
//! data-plane components (broker, store) is tested separately with real
//! threads in their own crates.

use crate::clock::VirtualClock;
use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering as CmpOrdering;
use std::collections::{BinaryHeap, HashSet};

/// Identifier of a scheduled event, usable for cancellation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(u64);

type EventFn<S> = Box<dyn FnOnce(&mut S, &mut Scheduler<S>)>;

struct ScheduledEvent<S> {
    at: SimTime,
    seq: u64,
    run: EventFn<S>,
}

impl<S> PartialEq for ScheduledEvent<S> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<S> Eq for ScheduledEvent<S> {}
impl<S> PartialOrd for ScheduledEvent<S> {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl<S> Ord for ScheduledEvent<S> {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first,
        // with sequence number as a deterministic tie-break.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The scheduling half of the engine, passed to every firing event so it
/// can enqueue follow-up work.
pub struct Scheduler<S> {
    heap: BinaryHeap<ScheduledEvent<S>>,
    cancelled: HashSet<u64>,
    next_seq: u64,
    now: SimTime,
    clock: VirtualClock,
}

impl<S> Scheduler<S> {
    fn new(clock: VirtualClock) -> Self {
        Scheduler {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            now: clock.now(),
            clock,
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The shared clock driven by this engine.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// Schedule `f` to run at absolute time `at`. Scheduling in the past
    /// clamps to "now" (the event fires next, after already-queued events
    /// at the current instant).
    pub fn at<F>(&mut self, at: SimTime, f: F) -> EventId
    where
        F: FnOnce(&mut S, &mut Scheduler<S>) + 'static,
    {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent {
            at,
            seq,
            run: Box::new(f),
        });
        EventId(seq)
    }

    /// Schedule `f` to run `after` from now.
    pub fn after<F>(&mut self, after: SimDuration, f: F) -> EventId
    where
        F: FnOnce(&mut S, &mut Scheduler<S>) + 'static,
    {
        self.at(self.now + after, f)
    }

    /// Schedule `f` to run every `interval` starting one interval from
    /// now, until (and excluding) `until` — the pattern control loops
    /// (autoscalers, lifecycle sweeps) use.
    pub fn every<F>(&mut self, interval: SimDuration, until: SimTime, f: F)
    where
        F: FnMut(&mut S, &mut Scheduler<S>) + Clone + 'static,
    {
        assert!(!interval.is_zero(), "recurring interval must be positive");
        let next = self.now + interval;
        if next >= until {
            return;
        }
        self.at(next, move |state: &mut S, sched: &mut Scheduler<S>| {
            let mut f = f;
            f(state, sched);
            sched.every(interval, until, f);
        });
    }

    /// Cancel a previously scheduled event. Cancelling an event that has
    /// already fired (or was already cancelled) is a no-op and returns
    /// `false`.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        self.cancelled.insert(id.0)
    }

    /// Number of events still pending (including cancelled tombstones not
    /// yet popped).
    pub fn pending(&self) -> usize {
        self.heap.len().saturating_sub(self.cancelled.len())
    }
}

/// A discrete-event simulation over a state `S`.
pub struct Simulation<S> {
    state: S,
    sched: Scheduler<S>,
    executed: u64,
}

impl<S> Simulation<S> {
    /// Create a simulation with its own fresh clock.
    pub fn new(state: S) -> Self {
        Self::with_clock(state, VirtualClock::new())
    }

    /// Create a simulation driving an externally shared clock, so that
    /// clock-reading components (store lifecycle, rate limiters) observe
    /// simulated time.
    pub fn with_clock(state: S, clock: VirtualClock) -> Self {
        Simulation {
            state,
            sched: Scheduler::new(clock),
            executed: 0,
        }
    }

    /// Immutable access to the simulated state.
    pub fn state(&self) -> &S {
        &self.state
    }

    /// Mutable access to the simulated state.
    pub fn state_mut(&mut self) -> &mut S {
        &mut self.state
    }

    /// The scheduler, for seeding initial events.
    pub fn scheduler(&mut self) -> &mut Scheduler<S> {
        &mut self.sched
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sched.now
    }

    /// Total number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    fn step(&mut self, horizon: SimTime) -> bool {
        loop {
            let Some(top) = self.sched.heap.peek() else {
                return false;
            };
            if top.at > horizon {
                return false;
            }
            let ev = self.sched.heap.pop().expect("peeked event must pop");
            if self.sched.cancelled.remove(&ev.seq) {
                continue;
            }
            self.sched.now = ev.at;
            self.sched.clock.advance_to(ev.at);
            (ev.run)(&mut self.state, &mut self.sched);
            self.executed += 1;
            return true;
        }
    }

    /// Run until the event calendar is empty. Returns the number of
    /// events executed.
    pub fn run(&mut self) -> u64 {
        self.run_until(SimTime::MAX)
    }

    /// Run events with timestamps `<= horizon`; the clock ends at the last
    /// executed event (or `horizon` if nothing was pending beyond it).
    /// Returns the number of events executed by this call.
    pub fn run_until(&mut self, horizon: SimTime) -> u64 {
        let before = self.executed;
        while self.step(horizon) {}
        if horizon != SimTime::MAX && self.sched.now < horizon {
            self.sched.now = horizon;
            self.sched.clock.advance_to(horizon);
        }
        self.executed - before
    }

    /// Run at most `n` further events (ignoring any horizon); useful for
    /// debugging stuck simulations. Returns how many actually ran.
    pub fn run_steps(&mut self, n: u64) -> u64 {
        let mut ran = 0;
        while ran < n && self.step(SimTime::MAX) {
            ran += 1;
        }
        ran
    }

    /// Consume the simulation, returning the final state.
    pub fn into_state(self) -> S {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Simulation::new(Vec::<u32>::new());
        sim.scheduler().at(SimTime::from_secs(3), |s: &mut Vec<u32>, _| s.push(3));
        sim.scheduler().at(SimTime::from_secs(1), |s: &mut Vec<u32>, _| s.push(1));
        sim.scheduler().at(SimTime::from_secs(2), |s: &mut Vec<u32>, _| s.push(2));
        sim.run();
        assert_eq!(sim.state(), &vec![1, 2, 3]);
        assert_eq!(sim.now(), SimTime::from_secs(3));
    }

    #[test]
    fn same_instant_fifo() {
        let mut sim = Simulation::new(Vec::<u32>::new());
        for i in 0..10 {
            sim.scheduler().at(SimTime::from_secs(1), move |s: &mut Vec<u32>, _| s.push(i));
        }
        sim.run();
        assert_eq!(sim.state(), &(0..10).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_reschedule() {
        // A self-rescheduling "process": counts up once per second for 5 ticks.
        fn tick(count: &mut u32, sched: &mut Scheduler<u32>) {
            *count += 1;
            if *count < 5 {
                sched.after(SimDuration::SECOND, tick);
            }
        }
        let mut sim = Simulation::new(0u32);
        sim.scheduler().after(SimDuration::SECOND, tick);
        sim.run();
        assert_eq!(*sim.state(), 5);
        assert_eq!(sim.now(), SimTime::from_secs(5));
    }

    #[test]
    fn recurring_schedule_ticks_until_horizon() {
        let mut sim = Simulation::new(Vec::<u64>::new());
        sim.scheduler().every(
            SimDuration::from_secs(10),
            SimTime::from_secs(60),
            |log: &mut Vec<u64>, sched| log.push(sched.now().as_secs()),
        );
        sim.run();
        // Fires at 10..50 (60 is excluded).
        assert_eq!(sim.state(), &vec![10, 20, 30, 40, 50]);
    }

    #[test]
    fn recurring_schedule_with_zero_window_never_fires() {
        let mut sim = Simulation::new(0u32);
        sim.scheduler()
            .every(SimDuration::from_secs(10), SimTime::from_secs(5), |n: &mut u32, _| {
                *n += 1;
            });
        sim.run();
        assert_eq!(*sim.state(), 0);
    }

    #[test]
    fn cancellation() {
        let mut sim = Simulation::new(Vec::<&str>::new());
        let keep = sim.scheduler().at(SimTime::from_secs(1), |s: &mut Vec<&str>, _| s.push("keep"));
        let drop_id = sim
            .scheduler()
            .at(SimTime::from_secs(2), |s: &mut Vec<&str>, _| s.push("drop"));
        assert!(sim.scheduler().cancel(drop_id));
        // Double-cancel is a no-op.
        assert!(!sim.scheduler().cancel(drop_id));
        // Cancelling an unknown id is a no-op.
        assert!(!sim.scheduler().cancel(EventId(999)));
        sim.run();
        assert_eq!(sim.state(), &vec!["keep"]);
        let _ = keep;
    }

    #[test]
    fn run_until_horizon() {
        let mut sim = Simulation::new(0u32);
        sim.scheduler().at(SimTime::from_secs(1), |s: &mut u32, _| *s += 1);
        sim.scheduler().at(SimTime::from_secs(10), |s: &mut u32, _| *s += 100);
        let ran = sim.run_until(SimTime::from_secs(5));
        assert_eq!(ran, 1);
        assert_eq!(*sim.state(), 1);
        assert_eq!(sim.now(), SimTime::from_secs(5));
        sim.run();
        assert_eq!(*sim.state(), 101);
    }

    #[test]
    fn scheduling_in_past_clamps_to_now() {
        let mut sim = Simulation::new(Vec::<u64>::new());
        sim.scheduler().at(SimTime::from_secs(5), |s: &mut Vec<u64>, sched| {
            // "Yesterday" clamps to now.
            sched.at(SimTime::from_secs(1), |s: &mut Vec<u64>, sched2| {
                s.push(sched2.now().as_secs());
            });
            s.push(sched.now().as_secs());
        });
        sim.run();
        assert_eq!(sim.state(), &vec![5, 5]);
    }

    #[test]
    fn shared_clock_tracks_engine() {
        let clock = VirtualClock::new();
        let mut sim = Simulation::with_clock((), clock.clone());
        sim.scheduler().at(SimTime::from_secs(42), |_, _| {});
        sim.run();
        assert_eq!(clock.now(), SimTime::from_secs(42));
    }

    #[test]
    fn run_steps_limits_execution() {
        let mut sim = Simulation::new(0u32);
        for i in 0..10u64 {
            sim.scheduler().at(SimTime::from_secs(i), |s: &mut u32, _| *s += 1);
        }
        assert_eq!(sim.run_steps(3), 3);
        assert_eq!(*sim.state(), 3);
        assert_eq!(sim.run_steps(100), 7);
    }

    #[test]
    fn pending_excludes_cancelled() {
        let mut sim = Simulation::new(());
        let a = sim.scheduler().at(SimTime::from_secs(1), |_, _| {});
        let _b = sim.scheduler().at(SimTime::from_secs(2), |_, _| {});
        assert_eq!(sim.scheduler().pending(), 2);
        sim.scheduler().cancel(a);
        assert_eq!(sim.scheduler().pending(), 1);
    }
}
