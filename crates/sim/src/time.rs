//! Virtual time: instants and durations with millisecond resolution.
//!
//! All RAI components speak [`SimTime`] rather than `std::time::Instant`
//! so that a whole semester of course traffic can be replayed under the
//! discrete-event engine. The representation is a plain `u64` count of
//! milliseconds since the simulation epoch, which keeps the types `Copy`,
//! totally ordered, and hashable.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in virtual time, in milliseconds since the simulation epoch.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in milliseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The farthest representable instant; useful as an "infinite" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw milliseconds since the epoch.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Construct from whole seconds since the epoch.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000)
    }

    /// Raw milliseconds since the epoch.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Whole seconds since the epoch (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since the epoch as a float, for statistics.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Duration elapsed since `earlier`, saturating at zero if `earlier`
    /// is in the future.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }

    /// The zero-based hour-of-day this instant falls in, treating the
    /// epoch as midnight. Used by the circadian workload model.
    pub fn hour_of_day(self) -> u64 {
        (self.0 / SimDuration::HOUR.0) % 24
    }

    /// Zero-based day index since the epoch.
    pub fn day_index(self) -> u64 {
        self.0 / SimDuration::DAY.0
    }

    /// Zero-based hour index since the epoch (used for per-hour bucketing
    /// in the Fig. 4 reproduction).
    pub fn hour_index(self) -> u64 {
        self.0 / SimDuration::HOUR.0
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// One millisecond.
    pub const MILLI: SimDuration = SimDuration(1);
    /// One second.
    pub const SECOND: SimDuration = SimDuration(1_000);
    /// One minute.
    pub const MINUTE: SimDuration = SimDuration(60_000);
    /// One hour.
    pub const HOUR: SimDuration = SimDuration(3_600_000);
    /// One day.
    pub const DAY: SimDuration = SimDuration(86_400_000);
    /// Seven days.
    pub const WEEK: SimDuration = SimDuration(7 * 86_400_000);

    /// Construct from raw milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000)
    }

    /// Construct from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60_000)
    }

    /// Construct from whole hours.
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3_600_000)
    }

    /// Construct from whole days.
    pub const fn from_days(d: u64) -> Self {
        SimDuration(d * 86_400_000)
    }

    /// Construct from a float second count (sub-millisecond truncates).
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1_000.0).round() as u64)
    }

    /// Raw milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Whole seconds (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Whether the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration((self.0 as f64 * rhs.max(0.0)).round() as u64)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = self.0;
        if ms == 0 {
            return write!(f, "0ms");
        }
        let days = ms / SimDuration::DAY.0;
        let hours = (ms % SimDuration::DAY.0) / SimDuration::HOUR.0;
        let mins = (ms % SimDuration::HOUR.0) / SimDuration::MINUTE.0;
        let secs = (ms % SimDuration::MINUTE.0) / 1_000;
        let rem_ms = ms % 1_000;
        let mut wrote = false;
        for (v, unit) in [(days, "d"), (hours, "h"), (mins, "m"), (secs, "s")] {
            if v > 0 {
                write!(f, "{v}{unit}")?;
                wrote = true;
            }
        }
        if rem_ms > 0 || !wrote {
            write!(f, "{rem_ms}ms")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).as_millis(), 3_000);
        assert_eq!(SimDuration::from_hours(2).as_secs(), 7_200);
        assert_eq!(SimDuration::from_days(1), SimDuration::DAY);
        assert_eq!(SimDuration::from_mins(90), SimDuration::from_secs(5400));
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_secs(10) + SimDuration::from_secs(5);
        assert_eq!(t.as_secs(), 15);
        assert_eq!(t - SimTime::from_secs(10), SimDuration::from_secs(5));
        // Saturating: subtracting a later time yields zero, not underflow.
        assert_eq!(SimTime::ZERO - SimTime::from_secs(1), SimDuration::ZERO);
    }

    #[test]
    fn duration_since_saturates() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(9);
        assert_eq!(late.duration_since(early).as_secs(), 8);
        assert_eq!(early.duration_since(late), SimDuration::ZERO);
    }

    #[test]
    fn calendar_helpers() {
        let t = SimTime::from_millis(SimDuration::DAY.as_millis() * 2 + SimDuration::HOUR.as_millis() * 5);
        assert_eq!(t.day_index(), 2);
        assert_eq!(t.hour_of_day(), 5);
        assert_eq!(t.hour_index(), 53);
    }

    #[test]
    fn display_humanizes() {
        assert_eq!(SimDuration::ZERO.to_string(), "0ms");
        assert_eq!(SimDuration::from_secs(90).to_string(), "1m30s");
        let d = SimDuration::from_days(1) + SimDuration::from_hours(2) + SimDuration::from_millis(7);
        assert_eq!(d.to_string(), "1d2h7ms");
    }

    #[test]
    fn float_seconds_round_trip() {
        let d = SimDuration::from_secs_f64(0.5);
        assert_eq!(d.as_millis(), 500);
        assert!((d.as_secs_f64() - 0.5).abs() < 1e-9);
        // Negative inputs clamp to zero rather than wrapping.
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
    }

    #[test]
    fn scalar_ops() {
        assert_eq!(SimDuration::SECOND * 30, SimDuration::from_secs(30));
        assert_eq!(SimDuration::from_secs(30) / 3, SimDuration::from_secs(10));
        assert_eq!(SimDuration::SECOND * 2.5, SimDuration::from_millis(2_500));
    }

    #[test]
    fn min_max() {
        let a = SimDuration::from_secs(1);
        let b = SimDuration::from_secs(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }
}
