//! Determinism across pool widths: the `parallelism` knob executes
//! whole submissions concurrently between their serial claim and
//! commit phases (and still offloads pure byte-crunching), but claims
//! and commits stay on the event loop in a round structure the pool
//! width cannot see, so no store/db/broker operation is added,
//! removed, or reordered. Semester, chaos, and restart-resume
//! fingerprints must therefore be byte-identical at every thread
//! count — including widths above the host core count — even with
//! seeded worker crashes and a process kill landing mid-round.

use proptest::prelude::*;
use rai_workload::chaos::{run_chaos, ChaosConfig};
use rai_workload::recovery::{run_recovery, KillPoint, RecoveryConfig};
use rai_workload::semester::{run_semester, SemesterConfig};
use rai_wal::DurabilityConfig;

fn semester_fingerprint(seed: u64, parallelism: usize) -> u64 {
    let cfg = SemesterConfig::scaled(4, 6, seed).with_parallelism(parallelism);
    run_semester(&cfg).fingerprint()
}

fn chaos_fingerprint(seed: u64, parallelism: usize) -> u64 {
    let result = run_chaos(&ChaosConfig::quick(seed).with_parallelism(parallelism));
    result.verify().expect("chaos invariants hold on the pool");
    result.fingerprint
}

/// A restart-resume run under the full quick chaos plan (seeded worker
/// crashes and stalls included), killed three commits into round 4 —
/// mid-round, so at widths > 1 the kill drops executed-but-uncommitted
/// pool work on the floor.
fn recovery_fingerprint(seed: u64, parallelism: usize) -> u64 {
    let cfg = RecoveryConfig {
        chaos: ChaosConfig::quick(seed).with_parallelism(parallelism),
        kill: Some(KillPoint::mid_drive(4, 3)),
        disk_faults: None,
        durability: DurabilityConfig::durable(),
    };
    let result = run_recovery(&cfg);
    assert!(result.killed, "seed {seed}: the mid-round kill fired");
    result.verify().expect("no-lost across restart on the pool");
    result.fingerprint
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Same seed, any pool width, same semester bytes.
    #[test]
    fn semester_fingerprint_is_parallelism_invariant(seed in 0u64..1_000) {
        let reference = semester_fingerprint(seed, 1);
        for threads in [2usize, 8] {
            prop_assert_eq!(
                reference,
                semester_fingerprint(seed, threads),
                "seed {} diverged at parallelism {}",
                seed,
                threads
            );
        }
    }

    /// Same seed, any pool width, same chaos bytes — fault draws are
    /// consumed per operation, so the schedule must not shift either.
    #[test]
    fn chaos_fingerprint_is_parallelism_invariant(seed in 0u64..1_000) {
        let reference = chaos_fingerprint(seed, 1);
        for threads in [2usize, 8] {
            prop_assert_eq!(
                reference,
                chaos_fingerprint(seed, threads),
                "seed {} diverged at parallelism {}",
                seed,
                threads
            );
        }
    }

    /// Same seed, any pool width, same bytes across a process kill:
    /// the mid-round kill lands between the same two commits at every
    /// width, because commits serialize in claim order and execution
    /// is pure.
    #[test]
    fn recovery_fingerprint_is_parallelism_invariant(seed in 0u64..1_000) {
        let reference = recovery_fingerprint(seed, 1);
        for threads in [2usize, 8] {
            prop_assert_eq!(
                reference,
                recovery_fingerprint(seed, threads),
                "seed {} diverged across restart at parallelism {}",
                seed,
                threads
            );
        }
    }
}

/// The observability exports derived from the causal span trees — the
/// critical-path attribution table, the queue-wait histogram encoding,
/// the backpressure sparkline, and the Chrome trace-event JSON — are
/// byte-identical at every pool width, not just the scalar fingerprint.
#[test]
fn trace_exports_are_parallelism_invariant() {
    let render = |parallelism: usize| {
        let cfg = SemesterConfig::scaled(4, 6, 2016).with_parallelism(parallelism);
        let result = run_semester(&cfg);
        let sample = result.traces.len().min(64);
        (
            rai_telemetry::attribute(&result.traces).table(),
            result.queue_wait.encode(),
            result.depth_series.sparkline(32),
            rai_telemetry::render_chrome_trace(&result.traces[..sample]),
        )
    };
    let reference = render(1);
    assert!(!reference.0.is_empty(), "attribution table rendered");
    for threads in [2usize, 8] {
        assert_eq!(
            reference,
            render(threads),
            "trace exports diverged at parallelism {threads}"
        );
    }
}

/// The paper-shaped acceptance chaos profile (worker crashes, store
/// faults, poison jobs, an instance death) is also width-invariant.
#[test]
fn acceptance_chaos_is_parallelism_invariant() {
    let reference = run_chaos(&ChaosConfig::acceptance(2016));
    reference.verify().expect("sequential acceptance run is sound");
    for threads in [2usize, 8] {
        let pooled = run_chaos(&ChaosConfig::acceptance(2016).with_parallelism(threads));
        pooled.verify().expect("pooled acceptance run is sound");
        assert_eq!(
            reference.fingerprint, pooled.fingerprint,
            "acceptance chaos diverged at parallelism {threads}"
        );
    }
}
