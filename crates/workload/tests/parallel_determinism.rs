//! Determinism across pool widths: the `parallelism` knob routes pure
//! byte-crunching (chunking, digesting, chunk validation) onto a
//! work-stealing pool, but every offloaded result joins in input order
//! and no store/db/broker operation is added, removed, or reordered.
//! Semester and chaos fingerprints must therefore be byte-identical at
//! every thread count — including widths above the host core count.

use proptest::prelude::*;
use rai_workload::chaos::{run_chaos, ChaosConfig};
use rai_workload::semester::{run_semester, SemesterConfig};

fn semester_fingerprint(seed: u64, parallelism: usize) -> u64 {
    let cfg = SemesterConfig::scaled(4, 6, seed).with_parallelism(parallelism);
    run_semester(&cfg).fingerprint()
}

fn chaos_fingerprint(seed: u64, parallelism: usize) -> u64 {
    let result = run_chaos(&ChaosConfig::quick(seed).with_parallelism(parallelism));
    result.verify().expect("chaos invariants hold on the pool");
    result.fingerprint
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Same seed, any pool width, same semester bytes.
    #[test]
    fn semester_fingerprint_is_parallelism_invariant(seed in 0u64..1_000) {
        let reference = semester_fingerprint(seed, 1);
        for threads in [2usize, 8] {
            prop_assert_eq!(
                reference,
                semester_fingerprint(seed, threads),
                "seed {} diverged at parallelism {}",
                seed,
                threads
            );
        }
    }

    /// Same seed, any pool width, same chaos bytes — fault draws are
    /// consumed per operation, so the schedule must not shift either.
    #[test]
    fn chaos_fingerprint_is_parallelism_invariant(seed in 0u64..1_000) {
        let reference = chaos_fingerprint(seed, 1);
        for threads in [2usize, 8] {
            prop_assert_eq!(
                reference,
                chaos_fingerprint(seed, threads),
                "seed {} diverged at parallelism {}",
                seed,
                threads
            );
        }
    }
}

/// The observability exports derived from the causal span trees — the
/// critical-path attribution table, the queue-wait histogram encoding,
/// the backpressure sparkline, and the Chrome trace-event JSON — are
/// byte-identical at every pool width, not just the scalar fingerprint.
#[test]
fn trace_exports_are_parallelism_invariant() {
    let render = |parallelism: usize| {
        let cfg = SemesterConfig::scaled(4, 6, 2016).with_parallelism(parallelism);
        let result = run_semester(&cfg);
        let sample = result.traces.len().min(64);
        (
            rai_telemetry::attribute(&result.traces).table(),
            result.queue_wait.encode(),
            result.depth_series.sparkline(32),
            rai_telemetry::render_chrome_trace(&result.traces[..sample]),
        )
    };
    let reference = render(1);
    assert!(!reference.0.is_empty(), "attribution table rendered");
    for threads in [2usize, 8] {
        assert_eq!(
            reference,
            render(threads),
            "trace exports diverged at parallelism {threads}"
        );
    }
}

/// The paper-shaped acceptance chaos profile (worker crashes, store
/// faults, poison jobs, an instance death) is also width-invariant.
#[test]
fn acceptance_chaos_is_parallelism_invariant() {
    let reference = run_chaos(&ChaosConfig::acceptance(2016));
    reference.verify().expect("sequential acceptance run is sound");
    for threads in [2usize, 8] {
        let pooled = run_chaos(&ChaosConfig::acceptance(2016).with_parallelism(threads));
        pooled.verify().expect("pooled acceptance run is sound");
        assert_eq!(
            reference.fingerprint, pooled.fingerprint,
            "acceptance chaos diverged at parallelism {threads}"
        );
    }
}
