//! Determinism across lock-domain shard counts (DESIGN.md §16): shard
//! assignment is a pure function of chunk digest, primary key, and job
//! id, and the sharded structures preserve the single-lock visit
//! orders (k-way key-order merges in the db, claim-rank commit order
//! in the lanes, per-digest refcounts in the arena). Semester, chaos,
//! and restart-resume fingerprints must therefore be byte-identical at
//! every shard count × pool width combination, with `shards = 1`
//! exactly reproducing the pre-shard reference configuration.

use proptest::prelude::*;
use rai_wal::DurabilityConfig;
use rai_workload::chaos::{run_chaos, ChaosConfig};
use rai_workload::recovery::{run_recovery, KillPoint, RecoveryConfig};
use rai_workload::semester::{run_semester, SemesterConfig};

const SHARD_GRID: [usize; 2] = [4, 16];
const WIDTH_GRID: [usize; 3] = [1, 2, 8];

fn semester_fingerprint(seed: u64, shards: usize, parallelism: usize) -> u64 {
    let cfg = SemesterConfig::scaled(4, 6, seed)
        .with_shards(shards)
        .with_parallelism(parallelism);
    run_semester(&cfg).fingerprint()
}

fn chaos_fingerprint(seed: u64, shards: usize, parallelism: usize) -> u64 {
    let result = run_chaos(
        &ChaosConfig::quick(seed)
            .with_shards(shards)
            .with_parallelism(parallelism),
    );
    result.verify().expect("chaos invariants hold when sharded");
    result.fingerprint
}

/// Restart-resume under the quick chaos plan, killed three commits
/// into round 4, recovered from the per-shard journal lanes.
fn recovery_fingerprint(seed: u64, shards: usize, parallelism: usize) -> u64 {
    let cfg = RecoveryConfig {
        chaos: ChaosConfig::quick(seed)
            .with_shards(shards)
            .with_parallelism(parallelism),
        kill: Some(KillPoint::mid_drive(4, 3)),
        disk_faults: None,
        durability: DurabilityConfig::durable(),
    };
    let result = run_recovery(&cfg);
    assert!(result.killed, "seed {seed}: the mid-round kill fired");
    result.verify().expect("no-lost across a sharded restart");
    result.fingerprint
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// Same seed, any shard count, any pool width, same semester bytes.
    #[test]
    fn semester_fingerprint_is_shard_invariant(seed in 0u64..1_000) {
        let reference = semester_fingerprint(seed, 1, 1);
        for shards in SHARD_GRID {
            for width in WIDTH_GRID {
                prop_assert_eq!(
                    reference,
                    semester_fingerprint(seed, shards, width),
                    "seed {} diverged at shards {} width {}",
                    seed, shards, width
                );
            }
        }
    }

    /// Same seed, any shard count, same chaos bytes — fault-plan runs
    /// keep the single-lane commit schedule, so sharding only
    /// repartitions locks.
    #[test]
    fn chaos_fingerprint_is_shard_invariant(seed in 0u64..1_000) {
        let reference = chaos_fingerprint(seed, 1, 1);
        for shards in SHARD_GRID {
            for width in WIDTH_GRID {
                prop_assert_eq!(
                    reference,
                    chaos_fingerprint(seed, shards, width),
                    "seed {} diverged at shards {} width {}",
                    seed, shards, width
                );
            }
        }
    }

    /// Same seed, any shard count, same bytes across a process kill:
    /// replaying `shards` chunk-install lanes plus the main log
    /// rebuilds the exact pre-kill refcounts and dedup counters.
    #[test]
    fn recovery_fingerprint_is_shard_invariant(seed in 0u64..1_000) {
        let reference = recovery_fingerprint(seed, 1, 1);
        for shards in SHARD_GRID {
            for width in WIDTH_GRID {
                prop_assert_eq!(
                    reference,
                    recovery_fingerprint(seed, shards, width),
                    "seed {} diverged across restart at shards {} width {}",
                    seed, shards, width
                );
            }
        }
    }
}

/// The committed perf-bench reference fingerprint (BENCH_perf.json,
/// seed 2016, 12 teams × 21 days) is reproduced both by the preserved
/// `shards = 1` configuration and by the sharded one — the drift gate
/// does not fork on the knob.
#[test]
fn semester_reference_fingerprint_survives_sharding() {
    let fp = |shards: usize| {
        run_semester(&SemesterConfig::scaled(12, 21, 2016).with_shards(shards)).fingerprint()
    };
    let reference = fp(1);
    assert_eq!(
        format!("{reference:#018x}"),
        "0xc9f1c2aa0b01e04a",
        "shards=1 no longer reproduces the committed BENCH_perf.json fingerprint"
    );
    assert_eq!(reference, fp(4), "sharded run diverged from the committed reference");
}
