//! Determinism across claim-lane counts (DESIGN.md §17): the pop half
//! of a claim stays serial and order-defining, the claim tails fan out
//! across lanes keyed by a hash of the job's log topic, and the
//! results are re-sorted into pop order before execute — so semester,
//! chaos, and restart-resume fingerprints must be byte-identical at
//! every claim-lane count × pool width × shard count combination, with
//! `claim_lanes = 1` exactly reproducing the serial reference claim
//! schedule. Fault-plan runs (chaos, recovery) additionally pin the
//! serial path structurally: the injector's draw stream is
//! ordering-visible, so the lanes knob must be inert there.

use proptest::prelude::*;
use rai_wal::DurabilityConfig;
use rai_workload::chaos::{run_chaos, ChaosConfig};
use rai_workload::recovery::{run_recovery, KillPoint, RecoveryConfig};
use rai_workload::semester::{run_semester, SemesterConfig};

const LANE_GRID: [usize; 2] = [4, 16];
const WIDTH_GRID: [usize; 3] = [1, 2, 8];
const SHARD_GRID: [usize; 2] = [1, 4];

fn semester_fingerprint(seed: u64, claim_lanes: usize, width: usize, shards: usize) -> u64 {
    let cfg = SemesterConfig::scaled(4, 6, seed)
        .with_claim_lanes(claim_lanes)
        .with_parallelism(width)
        .with_shards(shards);
    run_semester(&cfg).fingerprint()
}

fn chaos_fingerprint(seed: u64, claim_lanes: usize, width: usize, shards: usize) -> u64 {
    let result = run_chaos(
        &ChaosConfig::quick(seed)
            .with_claim_lanes(claim_lanes)
            .with_parallelism(width)
            .with_shards(shards),
    );
    result.verify().expect("chaos invariants hold across claim lanes");
    result.fingerprint
}

/// Restart-resume under the quick chaos plan, killed three commits
/// into round 4, recovered from the write-ahead logs.
fn recovery_fingerprint(seed: u64, claim_lanes: usize, width: usize, shards: usize) -> u64 {
    let cfg = RecoveryConfig {
        chaos: ChaosConfig::quick(seed)
            .with_claim_lanes(claim_lanes)
            .with_parallelism(width)
            .with_shards(shards),
        kill: Some(KillPoint::mid_drive(4, 3)),
        disk_faults: None,
        durability: DurabilityConfig::durable(),
    };
    let result = run_recovery(&cfg);
    assert!(result.killed, "seed {seed}: the mid-round kill fired");
    result.verify().expect("no-lost across a restart with claim lanes");
    result.fingerprint
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// Same seed, any claim-lane count, any pool width, any shard
    /// count: same semester bytes.
    #[test]
    fn semester_fingerprint_is_claim_lane_invariant(seed in 0u64..1_000) {
        let reference = semester_fingerprint(seed, 1, 1, 1);
        for lanes in LANE_GRID {
            for width in WIDTH_GRID {
                for shards in SHARD_GRID {
                    prop_assert_eq!(
                        reference,
                        semester_fingerprint(seed, lanes, width, shards),
                        "seed {} diverged at claim_lanes {} width {} shards {}",
                        seed, lanes, width, shards
                    );
                }
            }
        }
    }

    /// Same seed, any claim-lane count, same chaos bytes — fault-plan
    /// runs keep the serial claim schedule by the serial-fallback
    /// rule, so the knob must not move a single fault draw.
    #[test]
    fn chaos_fingerprint_is_claim_lane_invariant(seed in 0u64..1_000) {
        let reference = chaos_fingerprint(seed, 1, 1, 1);
        for lanes in LANE_GRID {
            for width in WIDTH_GRID {
                for shards in SHARD_GRID {
                    prop_assert_eq!(
                        reference,
                        chaos_fingerprint(seed, lanes, width, shards),
                        "seed {} diverged at claim_lanes {} width {} shards {}",
                        seed, lanes, width, shards
                    );
                }
            }
        }
    }

    /// Same seed, any claim-lane count, same bytes across a process
    /// kill: the pre-kill prefix, the replay, and the resumed run all
    /// claim on the serial reference schedule under the fault plan.
    #[test]
    fn recovery_fingerprint_is_claim_lane_invariant(seed in 0u64..1_000) {
        let reference = recovery_fingerprint(seed, 1, 1, 1);
        for lanes in LANE_GRID {
            for width in WIDTH_GRID {
                for shards in SHARD_GRID {
                    prop_assert_eq!(
                        reference,
                        recovery_fingerprint(seed, lanes, width, shards),
                        "seed {} diverged across restart at claim_lanes {} width {} shards {}",
                        seed, lanes, width, shards
                    );
                }
            }
        }
    }
}

/// The committed perf-bench reference fingerprint (BENCH_perf.json,
/// seed 2016, 12 teams × 21 days) is reproduced both by the preserved
/// `claim_lanes = 1` serial reference and by the fanned-out claim
/// pipeline — the drift gate does not fork on the knob.
#[test]
fn semester_reference_fingerprint_survives_claim_lanes() {
    let fp = |lanes: usize| {
        run_semester(&SemesterConfig::scaled(12, 21, 2016).with_claim_lanes(lanes)).fingerprint()
    };
    let reference = fp(1);
    assert_eq!(
        format!("{reference:#018x}"),
        "0xc9f1c2aa0b01e04a",
        "claim_lanes=1 no longer reproduces the committed BENCH_perf.json fingerprint"
    );
    assert_eq!(reference, fp(4), "lane-claimed run diverged from the committed reference");
    assert_eq!(reference, fp(16), "lane-claimed run diverged from the committed reference");
}
