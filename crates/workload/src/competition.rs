//! The Fig. 2 experiment: the end-of-semester competition.
//!
//! Every team's final tuned project goes through a *real* deployment —
//! client packaging, upload, queue, worker, container, ranking database
//! — exactly like `rai submit`; the result is the leaderboard histogram
//! the paper plots (top 30 teams, 0.1 s bins).

use crate::teams::TeamRoster;
use rai_core::{RaiSystem, SystemConfig};
use rai_telemetry::{Histogram, LogHistogram};

/// Competition parameters.
#[derive(Clone, Debug)]
pub struct CompetitionConfig {
    /// Number of teams (paper: 58).
    pub teams: usize,
    /// Number of students (paper: 176).
    pub students: u32,
    /// RNG seed.
    pub seed: u64,
    /// Histogram: top N teams (paper: 30).
    pub top_n: usize,
    /// Histogram bin width in seconds (paper: 0.1).
    pub bin_width: f64,
}

impl Default for CompetitionConfig {
    fn default() -> Self {
        CompetitionConfig {
            teams: 58,
            students: 176,
            seed: 2016,
            top_n: 30,
            bin_width: 0.1,
        }
    }
}

/// Competition outputs.
#[derive(Debug)]
pub struct CompetitionResult {
    /// Final standings, fastest first: `(team, student-visible secs)`.
    pub standings: Vec<(String, f64)>,
    /// The Fig. 2 histogram over the top N teams.
    pub histogram: Histogram,
    /// The same top-N runtime population in the deterministic
    /// log-bucketed latency histogram (µs resolution); the fixed-bin
    /// `histogram` stays for the paper figure's exact 0.1 s bins.
    pub runtimes: LogHistogram,
    /// Teams whose final submission failed (should be none).
    pub failures: Vec<String>,
}

/// Run the competition through a real deployment.
pub fn run_competition(config: &CompetitionConfig) -> CompetitionResult {
    let roster = TeamRoster::generate(config.teams, config.students, config.seed);
    let mut system = RaiSystem::new(SystemConfig {
        workers: 4,
        jobs_per_worker: 1, // benchmarking weeks: single job for clean timing
        rate_limit: None,   // irrelevant for one final submission per team
        seed: config.seed,
        ..Default::default()
    });
    let mut failures = Vec::new();
    for team in &roster.teams {
        let creds = system.register_team(&team.name, &[]);
        match system.submit_final(&creds, &team.final_project()) {
            Ok(receipt) if receipt.success => {}
            _ => failures.push(team.name.clone()),
        }
    }
    let board = system.rankings();
    let standings = board.standings();
    // 25 bins of 0.1 s covers the sub-2.5 s cluster; the straggler lands
    // in the overflow bucket, like the paper's "slowest … 2 minutes".
    let histogram = board.top_n_histogram(config.top_n, config.bin_width, 25);
    let mut runtimes = LogHistogram::new();
    for (_, secs) in standings.iter().take(config.top_n) {
        runtimes.record_secs(*secs);
    }
    CompetitionResult {
        standings,
        histogram,
        runtimes,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scaled-down competition that still checks the Fig. 2 shape; the
    /// full 58-team run lives in the `fig2_histogram` bench binary.
    #[test]
    fn small_competition_end_to_end() {
        let config = CompetitionConfig {
            teams: 12,
            students: 36,
            seed: 5,
            top_n: 8,
            bin_width: 0.1,
        };
        let result = run_competition(&config);
        assert!(result.failures.is_empty(), "failures: {:?}", result.failures);
        assert_eq!(result.standings.len(), 12);
        // Standings sorted ascending.
        for w in result.standings.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(result.histogram.total(), 8);
        // The guaranteed straggler exists and is ~2 minutes.
        let slowest = result.standings.last().unwrap().1;
        assert!(slowest > 100.0, "slowest={slowest}");
    }

    #[test]
    fn full_class_shape_matches_figure2() {
        let result = run_competition(&CompetitionConfig {
            // Full team count but smaller histogram assertions to keep
            // the test quick; runtime distribution is what matters.
            ..Default::default()
        });
        assert!(result.failures.is_empty());
        assert_eq!(result.standings.len(), 58);
        // Paper: most of the top 30 land under 1 second.
        let under_1s = result
            .standings
            .iter()
            .take(30)
            .filter(|(_, s)| *s < 1.0)
            .count();
        assert!(under_1s >= 18, "only {under_1s}/30 under 1 s");
        // Mode bin is in the sub-second region.
        let mode = result.histogram.mode_bin().expect("non-empty");
        assert!(mode < 10, "mode bin {mode} should be < 1 s");
        // Slowest ≈ 2 minutes.
        let slowest = result.standings.last().unwrap().1;
        assert!((115.0..130.0).contains(&slowest), "slowest={slowest}");
    }
}
