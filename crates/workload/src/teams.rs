//! Team skill and project-performance trajectories.
//!
//! Calibration targets from the paper:
//!
//! * the provided serial baseline takes ~30 minutes on the full dataset;
//! * by the deadline "most teams fell within the 1 second runtime";
//! * e.g. "5 teams had a runtime between 0.4 and 0.5 seconds";
//! * "the slowest submission took 2 minutes to complete".

use rai_core::client::ProjectDir;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rai_sim::{SimDuration, SimTime};

/// A modeled team.
#[derive(Clone, Debug)]
pub struct TeamModel {
    /// Team name (`team-01` …).
    pub name: String,
    /// Number of students (2–4 per the paper).
    pub members: u32,
    /// Relative submission activity (1.0 = average).
    pub activity: f64,
    /// The full-dataset runtime (ms) of their *final* tuned kernel.
    pub final_full_ms: f64,
    /// Accuracy their implementation reaches.
    pub accuracy: f64,
    /// When (days into the project) they first get a CUDA version
    /// running, before which submissions exercise the CPU baseline.
    pub gpu_from_day: f64,
}

impl TeamModel {
    /// The team's project performance (full-dataset ms, gpu?) at `t`:
    /// CPU baseline before `gpu_from_day`, then a log-linear descent
    /// from the ~60 s first CUDA version to the final tuned runtime at
    /// the deadline.
    pub fn perf_at(&self, t: SimTime, deadline: SimTime) -> (f64, bool) {
        let day = t.as_millis() as f64 / SimDuration::DAY.as_millis() as f64;
        if day < self.gpu_from_day {
            return (30.0 * 60.0 * 1000.0, false);
        }
        let deadline_day = deadline.as_millis() as f64 / SimDuration::DAY.as_millis() as f64;
        let first_gpu_ms: f64 = 60_000.0;
        let span = (deadline_day - self.gpu_from_day).max(1.0);
        let progress = ((day - self.gpu_from_day) / span).clamp(0.0, 1.0);
        let log_ms = first_gpu_ms.ln() + (self.final_full_ms.ln() - first_gpu_ms.ln()) * progress;
        (log_ms.exp(), true)
    }

    /// A concrete project directory reflecting the team's code at `t`
    /// (with a small per-submission perf jitter from `rng`). Some
    /// submissions benchmark on the full dataset: rarely while running
    /// the serial baseline (those jobs take ~30 minutes, §VII), and
    /// half the time during the final benchmarking week.
    pub fn project_at(&self, t: SimTime, deadline: SimTime, rng: &mut StdRng) -> ProjectDir {
        let (full_ms, gpu) = self.perf_at(t, deadline);
        if !gpu {
            let mut p = ProjectDir::baseline_cpu_project();
            if rng.gen_range(0.0..1.0) < 0.10 {
                // A full-dataset baseline run takes ~30 minutes; running
                // it twice more under nvprof would trip the 1-hour
                // container lifetime, so students drop the profiling
                // step for these timing runs.
                p.tree
                    .insert(
                        "rai-build.yml",
                        "rai:\n  version: 0.1\n  image: webgpu/rai:root\ncommands:\n  build:\n    - echo \"Building project\"\n    - cmake /src\n    - make\n    - ./ece408 /data/testfull.hdf5 /data/model.hdf5\n"
                            .as_bytes()
                            .to_vec(),
                    )
                    .expect("static path");
            }
            return p;
        }
        let jitter = rng.gen_range(0.97..1.03);
        let p = ProjectDir::cuda_project_with_perf(full_ms * jitter, self.accuracy, 2048);
        let final_week = deadline.duration_since(t) <= SimDuration::from_days(7);
        if final_week && rng.gen_range(0.0..1.0) < 0.5 {
            p.with_full_dataset_build()
        } else {
            p
        }
    }

    /// The final competition submission project.
    pub fn final_project(&self) -> ProjectDir {
        ProjectDir::cuda_project_with_perf(self.final_full_ms, self.accuracy, 2048)
            .with_final_artifacts()
    }
}

/// The class: a seeded set of teams.
#[derive(Clone, Debug)]
pub struct TeamRoster {
    /// The teams.
    pub teams: Vec<TeamModel>,
}

impl TeamRoster {
    /// The paper's class shape: `n_teams` teams covering `n_students`
    /// students. Final runtimes are log-normal around ~0.65 s with a
    /// heavy tail, plus one guaranteed two-minute straggler.
    pub fn generate(n_teams: usize, n_students: u32, seed: u64) -> TeamRoster {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut teams = Vec::with_capacity(n_teams);
        let mut remaining_students = n_students;
        for i in 0..n_teams {
            let teams_left = (n_teams - i) as u32;
            // Deal 2–4 members while keeping the total consistent.
            let min_needed = teams_left.saturating_sub(1) * 2;
            let lo = 2u32.max(remaining_students.saturating_sub(teams_left.saturating_sub(1) * 4));
            let hi = 4u32.min(remaining_students.saturating_sub(min_needed)).max(lo);
            let members = rng.gen_range(lo..=hi);
            remaining_students -= members;

            // Log-normal final runtime: ln N(ln 650ms, 0.55).
            let z: f64 = sample_standard_normal(&mut rng);
            let mut final_full_ms = (650.0f64.ln() + 0.55 * z).exp();
            // One team in the class never escapes ~2 minutes.
            if i == n_teams - 1 {
                final_full_ms = 120_000.0;
            }
            final_full_ms = final_full_ms.clamp(250.0, 120_000.0);

            teams.push(TeamModel {
                name: format!("team-{i:02}"),
                members,
                activity: rng.gen_range(0.4..1.9),
                final_full_ms,
                accuracy: rng.gen_range(0.80..0.95),
                gpu_from_day: rng.gen_range(7.0..18.0),
            });
        }
        TeamRoster { teams }
    }

    /// Total students across teams.
    pub fn total_students(&self) -> u32 {
        self.teams.iter().map(|t| t.members).sum()
    }
}

/// Box–Muller standard normal.
fn sample_standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_matches_class_shape() {
        let r = TeamRoster::generate(58, 176, 1);
        assert_eq!(r.teams.len(), 58);
        assert_eq!(r.total_students(), 176);
        assert!(r.teams.iter().all(|t| (2..=4).contains(&t.members)));
    }

    #[test]
    fn roster_is_deterministic_per_seed() {
        let a = TeamRoster::generate(58, 176, 7);
        let b = TeamRoster::generate(58, 176, 7);
        assert_eq!(a.teams[10].final_full_ms, b.teams[10].final_full_ms);
        let c = TeamRoster::generate(58, 176, 8);
        assert_ne!(a.teams[10].final_full_ms, c.teams[10].final_full_ms);
    }

    #[test]
    fn final_runtime_distribution_matches_figure2_shape() {
        let r = TeamRoster::generate(58, 176, 42);
        let mut finals: Vec<f64> = r.teams.iter().map(|t| t.final_full_ms / 1000.0).collect();
        finals.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        // Top-30: "most teams fell within the 1 second runtime".
        let under_1s = finals.iter().take(30).filter(|&&s| s < 1.0).count();
        assert!(under_1s >= 20, "only {under_1s}/30 under 1s");
        // The guaranteed straggler: ~2 minutes.
        assert!((finals.last().unwrap() - 120.0).abs() < 1.0);
    }

    #[test]
    fn perf_trajectory_descends_to_final() {
        let r = TeamRoster::generate(8, 24, 3);
        let team = &r.teams[0];
        let deadline = SimTime::ZERO + SimDuration::from_days(35);
        // Day 0: CPU baseline.
        let (ms0, gpu0) = team.perf_at(SimTime::ZERO, deadline);
        assert!(!gpu0);
        assert_eq!(ms0, 1_800_000.0);
        // Deadline: the final runtime.
        let (ms_end, gpu_end) = team.perf_at(deadline, deadline);
        assert!(gpu_end);
        assert!((ms_end - team.final_full_ms).abs() / team.final_full_ms < 0.01);
        // Monotone improvement after the GPU switch.
        let mid1 = team.perf_at(SimTime::ZERO + SimDuration::from_days(20), deadline).0;
        let mid2 = team.perf_at(SimTime::ZERO + SimDuration::from_days(30), deadline).0;
        assert!(mid1 >= mid2, "{mid1} then {mid2}");
    }

    #[test]
    fn project_at_respects_phase() {
        let r = TeamRoster::generate(4, 12, 5);
        let team = &r.teams[0];
        let deadline = SimTime::ZERO + SimDuration::from_days(35);
        let mut rng = StdRng::seed_from_u64(0);
        let early = team.project_at(SimTime::ZERO, deadline, &mut rng);
        assert!(early.tree.contains("main.cpp"), "early phase is the CPU baseline");
        let late = team.project_at(deadline, deadline, &mut rng);
        assert!(late.tree.contains("main.cu"));
        let final_p = team.final_project();
        assert!(final_p.tree.contains("USAGE"));
        assert!(final_p.tree.contains("report.pdf"));
    }
}
