//! The full-semester discrete-event simulation (Fig. 4 and §VII).
//!
//! Every submission runs the real pipeline — client packaging, file
//! server upload, broker queue, worker, container, database — while the
//! event engine advances virtual time, the paper's phase schedule sets
//! the fleet capacity, and the cluster pool bills instance-hours.

use crate::circadian::CircadianModel;
use crate::teams::TeamRoster;
use rai_cluster::{InstanceType, PhaseSchedule, ReactiveAutoscaler, ScaleAction, WorkerPool};
use rai_core::client::PendingJob;
use rai_core::worker::StepEvent;
use rai_core::{RaiSystem, SubmitMode, SystemConfig, Worker};
use rai_sim::{SimDuration, SimTime, Simulation, VirtualClock};
use rai_telemetry::{
    component, duration_micros, names, stage, GaugeSeries, JobTrace, LogHistogram,
    MetricsSnapshot, TimeSeries,
};
use rai_store::StoreUsage;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::time::Duration;

/// Semester parameters.
#[derive(Clone, Debug)]
pub struct SemesterConfig {
    /// Teams (paper: 58).
    pub teams: usize,
    /// Students (paper: 176).
    pub students: u32,
    /// Project length in days (paper: 5 weeks).
    pub duration_days: u64,
    /// The Fig. 4 reporting window: last N days (paper: 14).
    pub window_days: u64,
    /// RNG seed.
    pub seed: u64,
    /// How the worker fleet is provisioned.
    pub fleet: FleetPolicy,
    /// Arrival model.
    pub arrivals: CircadianModel,
    /// Create the database's hot-path indexes (default). `false` is the
    /// pre-overhaul full-scan configuration `perf_report` times as its
    /// reference run; results and fingerprints are identical.
    pub db_hot_indexes: bool,
    /// Width of the `rai_exec` pool whole submissions execute on. `1`
    /// — the preserved reference configuration — runs each job inline;
    /// `N > 1` executes up to `N` independent submissions concurrently
    /// between their serial claim and commit phases (plus the payload
    /// pipeline's chunking/digesting offload). Claims and commits stay
    /// on the event loop in FIFO order, so
    /// [`SemesterResult::fingerprint`] is byte-identical at every
    /// setting (DESIGN.md §15).
    pub parallelism: usize,
    /// Lock-domain shard count for the store arena, database
    /// collections, and commit lanes (1 = the preserved single-lock
    /// reference). Shard assignment is a pure function of
    /// digest/key/job id, so fingerprints are byte-identical at every
    /// setting (DESIGN.md §16).
    pub shards: usize,
    /// Claim-lane count: `1` — the preserved serial reference — claims
    /// every popped job inline on the event loop; `N > 1` fans the
    /// claim tails (auth, spec parse, image resolve, payload fetch)
    /// across `N` lanes keyed by a hash of the job's log topic, with
    /// results re-sorted into pop order before execute. Popping stays
    /// serial and order-defining, so
    /// [`SemesterResult::fingerprint`] is byte-identical at every
    /// setting (DESIGN.md §17).
    pub claim_lanes: usize,
}

/// Fleet provisioning policy for the semester (the elasticity
/// ablation's independent variable).
#[derive(Clone, Debug)]
pub enum FleetPolicy {
    /// The paper's explicit three-phase schedule (§VII).
    PaperSchedule,
    /// A fixed fleet of single-job P2 workers from day 0.
    Fixed(usize),
    /// The reactive queue-depth autoscaler, evaluated every 5 minutes,
    /// paying real provisioning latency on every scale-out.
    Reactive {
        /// Lower bound on live instances.
        min: usize,
        /// Upper bound on live instances.
        max: usize,
    },
}

impl SemesterConfig {
    /// The paper's semester.
    pub fn paper() -> Self {
        SemesterConfig {
            teams: 58,
            students: 176,
            duration_days: 35,
            window_days: 14,
            seed: 2016,
            fleet: FleetPolicy::PaperSchedule,
            arrivals: CircadianModel::paper_calibrated(),
            db_hot_indexes: true,
            parallelism: 1,
            shards: 1,
            claim_lanes: 1,
        }
    }

    /// A scaled-down semester for tests: fewer teams, shorter horizon.
    pub fn scaled(teams: usize, days: u64, seed: u64) -> Self {
        let mut arrivals = CircadianModel::paper_calibrated();
        arrivals.horizon_days = days as f64;
        SemesterConfig {
            teams,
            students: (teams * 3) as u32,
            duration_days: days,
            window_days: days.min(14),
            seed,
            fleet: FleetPolicy::PaperSchedule,
            arrivals,
            db_hot_indexes: true,
            parallelism: 1,
            shards: 1,
            claim_lanes: 1,
        }
    }

    /// The same semester with the payload pipeline on an
    /// `n`-worker pool (1 = sequential reference).
    pub fn with_parallelism(mut self, n: usize) -> Self {
        self.parallelism = n;
        self
    }

    /// The same semester with `n` lock-domain shards (1 = single-lock
    /// reference).
    pub fn with_shards(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }

    /// The same semester with `n` claim lanes (1 = serial claim
    /// reference).
    pub fn with_claim_lanes(mut self, n: usize) -> Self {
        self.claim_lanes = n;
        self
    }
}

/// Semester outputs.
#[derive(Debug)]
pub struct SemesterResult {
    /// Total submissions processed over the whole project.
    pub total_submissions: u64,
    /// Submissions that failed (build errors etc.).
    pub failures: u64,
    /// Hourly submission counts across the whole project.
    pub full_timeline: TimeSeries,
    /// Hourly submission counts over the last `window_days` (Fig. 4).
    pub window_timeline: TimeSeries,
    /// Submissions in the window (paper: 30 782).
    pub window_submissions: u64,
    /// Queue-wait percentiles in seconds over the window (p50/p90/p99),
    /// read from [`SemesterResult::queue_wait`]'s deterministic
    /// log-bucketed histogram.
    pub queue_wait_secs: (f64, f64, f64),
    /// The full queue-wait latency distribution (µs resolution,
    /// byte-identical across same-seed runs and pool widths).
    pub queue_wait: LogHistogram,
    /// Broker queue depth sampled at every submit/dispatch transition,
    /// bucketed hourly (per-bucket maxima show backpressure peaks).
    pub depth_series: GaugeSeries,
    /// Jobs in flight on the fleet, sampled alongside `depth_series`.
    pub in_flight_series: GaugeSeries,
    /// Per-job causal span trees (submit + every delivery attempt) for
    /// critical-path attribution and Chrome trace export.
    pub traces: Vec<JobTrace>,
    /// File-server usage at the end.
    pub store: StoreUsage,
    /// Fleet cost in cents over the project.
    pub cost_cents: u64,
    /// Final leaderboard.
    pub final_standings: Vec<(String, f64)>,
    /// Total bytes of log traffic published by workers (paper §VIII:
    /// "25GB of logs and meta-data").
    pub log_bytes: u64,
    /// Telemetry snapshot at semester end (job counters, stage
    /// histograms, broker / store / db mirrors, pool-size gauge).
    pub metrics: MetricsSnapshot,
}

impl SemesterResult {
    /// FNV-1a digest of every deterministic output of the run: totals,
    /// hourly timelines, queue-wait percentiles, store accounting,
    /// fleet cost, standings, and log bytes. Same-seed runs must
    /// produce byte-identical fingerprints; `perf_report` commits this
    /// value to `BENCH_perf.json` and CI re-checks it, so wall-clock
    /// optimisations have to be observationally pure.
    pub fn fingerprint(&self) -> u64 {
        let mut fp: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for b in bytes {
                fp ^= u64::from(*b);
                fp = fp.wrapping_mul(0x100_0000_01b3);
            }
        };
        eat(&self.total_submissions.to_le_bytes());
        eat(&self.failures.to_le_bytes());
        eat(&self.window_submissions.to_le_bytes());
        for series in [&self.full_timeline, &self.window_timeline] {
            for count in series.counts() {
                eat(&count.to_le_bytes());
            }
        }
        let (p50, p90, p99) = self.queue_wait_secs;
        for p in [p50, p90, p99] {
            eat(&p.to_bits().to_le_bytes());
        }
        // The whole latency distribution, not just three quantiles: any
        // scheduling leak that shifts a single queue wait by one
        // microsecond breaks the fingerprint.
        eat(self.queue_wait.encode().as_bytes());
        for n in [
            self.store.bytes_stored,
            self.store.bytes_physical,
            self.store.bytes_uploaded,
            self.store.bytes_wire,
            self.store.chunks,
            self.store.chunks_dedup_total,
            self.store.puts,
            self.store.delta_puts,
        ] {
            eat(&n.to_le_bytes());
        }
        eat(&self.cost_cents.to_le_bytes());
        for (team, secs) in &self.final_standings {
            eat(team.as_bytes());
            eat(&secs.to_bits().to_le_bytes());
        }
        eat(&self.log_bytes.to_le_bytes());
        fp
    }
}

struct SemState {
    system: RaiSystem,
    creds: HashMap<String, rai_auth::Credentials>,
    pool: WorkerPool,
    schedule: PhaseSchedule,
    policy: FleetPolicy,
    autoscaler: ReactiveAutoscaler,
    roster: TeamRoster,
    rng: StdRng,
    deadline: SimTime,
    window_start: SimTime,
    // Queue of submissions accepted but not yet dispatched: job ids in
    // FIFO order (the broker holds the actual messages).
    waiting: VecDeque<u64>,
    in_flight: usize,
    pending: HashMap<u64, (PendingJob, SimTime)>,
    next_worker: usize,
    // Metrics.
    full_timeline: TimeSeries,
    window_timeline: TimeSeries,
    waits: LogHistogram,
    depth_series: GaugeSeries,
    in_flight_series: GaugeSeries,
    total: u64,
    failures: u64,
}

impl SemState {
    fn capacity(&self, now: SimTime) -> usize {
        match &self.policy {
            FleetPolicy::Fixed(n) => *n,
            FleetPolicy::PaperSchedule => match self.schedule.phase_at(now) {
                Some(p) => p.fleet * p.jobs_per_worker,
                None => 1,
            },
            // Reactive: only instances past their provisioning latency
            // take jobs, one at a time.
            FleetPolicy::Reactive { .. } => self.pool.ready_instances().len(),
        }
    }
}

type Sched<'a> = rai_sim::Scheduler<SemState>;

/// Sample broker depth + fleet occupancy into the backpressure series.
/// Called at every queue transition, so the hourly buckets hold true
/// per-bucket maxima (a sample *between* transitions can't differ).
fn sample_pressure(state: &mut SemState, now: SimTime) {
    state.depth_series.record(now, state.waiting.len() as u64);
    state.in_flight_series.record(now, state.in_flight as u64);
}

fn dispatch(state: &mut SemState, sched: &mut Sched<'_>) {
    let now = sched.now();
    loop {
        // One scheduling round: claim up to the free capacity in FIFO
        // order (the broker is FIFO, so the head of `waiting` is what
        // the next worker will pop), at most one job per worker so the
        // batch shape — and therefore every per-worker draw sequence —
        // is independent of pool width.
        let n_workers = state.system.workers_mut().len();
        let budget = state
            .capacity(now)
            .saturating_sub(state.in_flight)
            .min(state.waiting.len())
            .min(n_workers);
        if budget == 0 {
            return;
        }
        // Pop serially — the order-defining half of a claim — then fan
        // the claim tails across the configured claim lanes; results
        // come back re-sorted into pop order (DESIGN.md §17). The
        // round-robin assignment pops at most one task per worker per
        // round (budget <= n_workers), as `claim_tasks` requires.
        let mut popped = Vec::with_capacity(budget);
        for _ in 0..budget {
            let expect_id = state.waiting.pop_front().expect("bounded by len");
            let wi = state.next_worker % n_workers;
            state.next_worker = state.next_worker.wrapping_add(1);
            let task = state.system.workers_mut()[wi]
                .pop_task()
                .expect("broker held a queued job");
            debug_assert_eq!(task.job_id(), expect_id);
            popped.push((wi, task));
        }
        let claims = state.system.claim_tasks(popped);
        // Execute the round on the job pool; commit serially in claim
        // order, so db rows, waits, and follow-up events land exactly
        // as the sequential reference does.
        let executor = state.system.executor().clone();
        executor.run_jobs(
            claims,
            |(wi, claimed)| (wi, Worker::execute(claimed)),
            |(wi, executed)| {
                let outcome = match state.system.workers_mut()[wi].commit(executed) {
                    StepEvent::Done(outcome) => outcome,
                    _ => unreachable!("semester jobs neither crash nor idle"),
                };
                let (pending, submitted_at) = state
                    .pending
                    .remove(&outcome.job_id)
                    .expect("every queued job has a pending entry");
                state
                    .waits
                    .record_micros(duration_micros(now.duration_since(submitted_at)));
                if !outcome.success {
                    state.failures += 1;
                }
                // Drain the log stream so the ephemeral topic is GC'd.
                let _ = pending.wait(Duration::from_millis(50));
                state.in_flight += 1;
                sample_pressure(state, now);
                sched.after(outcome.service_time, |state: &mut SemState, sched: &mut Sched<'_>| {
                    state.in_flight -= 1;
                    sample_pressure(state, sched.now());
                    dispatch(state, sched);
                });
            },
        );
    }
}

fn submit_event(state: &mut SemState, sched: &mut Sched<'_>, team_idx: usize, mode: SubmitMode) {
    let now = sched.now();
    let team = state.roster.teams[team_idx].clone();
    let project = match mode {
        SubmitMode::Run => team.project_at(now, state.deadline, &mut state.rng),
        SubmitMode::Submit => team.final_project(),
    };
    // Team credentials were registered up front.
    let Some(creds) = state.creds.get(&team.name).cloned() else {
        return;
    };
    let client = state.system.client_for(&creds);
    let Ok(pending) = client.begin_submit(&project, mode) else {
        state.failures += 1;
        return;
    };
    state.total += 1;
    // Attempt 0 is the client's submit subtree; upload + publish are
    // one step, so the two spans share a timestamp.
    let telemetry = state.system.telemetry();
    telemetry.trace_span(pending.job_id, 0, stage::SUBMITTED, component::CLIENT, now, now);
    telemetry.trace_span(pending.job_id, 0, stage::ENQUEUED, component::BROKER, now, now);
    state.full_timeline.record(now);
    if now >= state.window_start {
        state.window_timeline.record(now);
    }
    state.waiting.push_back(pending.job_id);
    state.pending.insert(pending.job_id, (pending, now));
    dispatch(state, sched);
    // Sample after dispatch: the series holds the *resting* depth, so a
    // non-zero bucket means capacity was saturated, not merely touched.
    sample_pressure(state, now);
}

/// Run the semester.
pub fn run_semester(config: &SemesterConfig) -> SemesterResult {
    let clock = VirtualClock::new();
    let mut system = RaiSystem::with_clock(
        SystemConfig {
            workers: 32,
            jobs_per_worker: 1,
            rate_limit: None, // spacing is enforced by the arrival model
            seed: config.seed,
            db_hot_indexes: config.db_hot_indexes,
            parallelism: config.parallelism,
            shards: config.shards,
            claim_lanes: config.claim_lanes,
            ..Default::default()
        },
        clock.clone(),
    );
    let roster = TeamRoster::generate(config.teams, config.students, config.seed);
    let mut creds_by_team = HashMap::new();
    for team in &roster.teams {
        let creds = system.register_team(&team.name, &[]);
        creds_by_team.insert(team.name.clone(), creds);
    }

    let deadline = SimTime::ZERO + SimDuration::from_days(config.duration_days);
    let window_start = deadline - SimDuration::from_days(config.window_days);
    let pool = WorkerPool::new(clock.clone());
    {
        let pool = pool.clone();
        system.telemetry().register_collector(move |reg| {
            reg.gauge(names::AUTOSCALER_POOL_SIZE, &[])
                .set(pool.live_count() as f64);
        });
    }
    let schedule = PhaseSchedule::paper_semester();

    // Pre-sample every team's submission instants.
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xA11CE);
    let mut events: Vec<(SimTime, usize, SubmitMode)> = Vec::new();
    for (i, team) in roster.teams.iter().enumerate() {
        for t in config.arrivals.sample_team_events(
            team.activity,
            SimTime::ZERO,
            deadline,
            SimDuration::from_secs(30),
            &mut rng,
        ) {
            events.push((t, i, SubmitMode::Run));
        }
        // Final submission in the last day, after their last dev run.
        let final_at = deadline - SimDuration::from_hours(1 + (i as u64 % 20));
        events.push((final_at, i, SubmitMode::Submit));
    }

    let state = SemState {
        system,
        creds: creds_by_team,
        pool: pool.clone(),
        schedule: schedule.clone(),
        policy: config.fleet.clone(),
        autoscaler: match config.fleet {
            FleetPolicy::Reactive { min, max } => {
                ReactiveAutoscaler::new(min, max, 2.0, SimDuration::from_mins(10))
            }
            _ => ReactiveAutoscaler::paper_bounds(),
        },
        roster,
        rng: StdRng::seed_from_u64(config.seed ^ 0xF00D),
        deadline,
        window_start,
        waiting: VecDeque::new(),
        in_flight: 0,
        pending: HashMap::new(),
        next_worker: 0,
        full_timeline: TimeSeries::new(SimTime::ZERO, SimDuration::HOUR),
        window_timeline: TimeSeries::new(window_start, SimDuration::HOUR),
        waits: LogHistogram::new(),
        depth_series: GaugeSeries::new(SimTime::ZERO, SimDuration::HOUR),
        in_flight_series: GaugeSeries::new(SimTime::ZERO, SimDuration::HOUR),
        total: 0,
        failures: 0,
    };

    let mut sim = Simulation::with_clock(state, clock.clone());

    // Fleet provisioning per policy (the billing pool tracks cost; the
    // reactive policy also drives capacity through it).
    match config.fleet {
        FleetPolicy::PaperSchedule => {
            for phase in &schedule.phases {
                let fleet = phase.fleet;
                let itype: &'static InstanceType = phase.itype;
                sim.scheduler().at(phase.starts_at, move |state: &mut SemState, _sched: &mut Sched<'_>| {
                    let live = state.pool.live_count();
                    if fleet > live {
                        state.pool.launch(itype, fleet - live);
                    } else if live > fleet {
                        state.pool.terminate_n(live - fleet);
                    }
                });
            }
        }
        FleetPolicy::Fixed(fleet) => {
            sim.scheduler().at(SimTime::ZERO, move |state: &mut SemState, _| {
                state.pool.launch(InstanceType::p2(), fleet);
            });
        }
        FleetPolicy::Reactive { .. } => {
            // Periodic control loop: observe queue + fleet, scale, and
            // retry dispatch (new instances may just have become ready).
            let control = |state: &mut SemState, sched: &mut Sched<'_>| {
                let now = sched.now();
                let action = state.autoscaler.decide(
                    now,
                    state.waiting.len(),
                    state.pool.live_count(),
                );
                match action {
                    ScaleAction::Out(n) => {
                        state.pool.launch(InstanceType::p2(), n);
                        state
                            .system
                            .telemetry()
                            .counter(names::AUTOSCALER_SCALE_EVENTS_TOTAL, &[("direction", "out")])
                            .inc();
                    }
                    ScaleAction::In(n) => {
                        // Never terminate busier than idle capacity.
                        let ready = state.pool.ready_instances().len();
                        let idle = ready.saturating_sub(state.in_flight);
                        if state.pool.terminate_n(n.min(idle)) > 0 {
                            state
                                .system
                                .telemetry()
                                .counter(names::AUTOSCALER_SCALE_EVENTS_TOTAL, &[("direction", "in")])
                                .inc();
                        }
                    }
                    ScaleAction::Hold => {}
                }
                dispatch(state, sched);
            };
            sim.scheduler().at(SimTime::ZERO, control);
            sim.scheduler()
                .every(SimDuration::from_mins(5), deadline, control);
        }
    }

    for (t, team_idx, mode) in events {
        sim.scheduler().at(t, move |state: &mut SemState, sched: &mut Sched<'_>| {
            submit_event(state, sched, team_idx, mode);
        });
    }

    sim.run();
    let state = sim.into_state();
    // Terminate the fleet at semester end so billing stops.
    state.pool.terminate_n(usize::MAX / 2);

    let queue_wait_secs = (
        state.waits.quantile_micros(0.50) as f64 / 1e6,
        state.waits.quantile_micros(0.90) as f64 / 1e6,
        state.waits.quantile_micros(0.99) as f64 / 1e6,
    );
    let standings = state.system.rankings().standings();
    // Dogfood the database's aggregation pipeline for the log tally.
    let log_bytes = {
        use rai_db::aggregate::{aggregate, Accumulator, Stage};
        let coll = state.system.db().collection("submissions");
        let rows = aggregate(
            &coll.read(),
            &[Stage::Group {
                by: None,
                fields: vec![("bytes".into(), Accumulator::Sum("log_bytes".into()))],
            }],
        );
        rows.first()
            .and_then(|r| r.get("bytes"))
            .and_then(rai_db::Value::as_i64)
            .unwrap_or(0) as u64
    };
    SemesterResult {
        total_submissions: state.total,
        failures: state.failures,
        window_submissions: state.window_timeline.total(),
        full_timeline: state.full_timeline,
        window_timeline: state.window_timeline,
        queue_wait_secs,
        queue_wait: state.waits,
        depth_series: state.depth_series,
        in_flight_series: state.in_flight_series,
        traces: state.system.telemetry().job_traces(),
        store: state.system.store().usage(),
        cost_cents: state.pool.stats().cost_cents,
        final_standings: standings,
        log_bytes,
        metrics: state.system.telemetry().snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_semester_end_to_end() {
        // 6 teams, 10 days: a few hundred submissions through the full
        // pipeline.
        let result = run_semester(&SemesterConfig::scaled(6, 10, 11));
        assert!(result.total_submissions > 50, "got {}", result.total_submissions);
        assert_eq!(result.failures, 0, "no submission should fail");
        assert_eq!(result.final_standings.len(), 6, "every team ranked");
        assert_eq!(
            result.full_timeline.total(),
            result.total_submissions,
            "every submission counted once"
        );
        // Store accounted for uploads and build outputs.
        assert!(result.store.puts >= 2 * result.total_submissions);
        assert!(result.cost_cents > 0);
        // Telemetry mirrors the pipeline: one JOBS_TOTAL count per
        // submission and non-empty stage histograms.
        assert_eq!(
            result.metrics.counter_total(names::JOBS_TOTAL),
            result.total_submissions
        );
        assert!(!result.metrics.histograms_named(names::JOB_STAGE_SECONDS).is_empty());
        assert!(result.metrics.gauge(names::AUTOSCALER_POOL_SIZE, &[]).is_some());
    }

    #[test]
    fn deadline_ramp_visible_in_timeline() {
        let result = run_semester(&SemesterConfig::scaled(6, 10, 13));
        let counts = result.full_timeline.counts();
        let n = counts.len();
        let first_half: u64 = counts[..n / 2].iter().sum();
        let second_half: u64 = counts[n / 2..].iter().sum();
        assert!(
            second_half > first_half * 2,
            "expected late-half dominance: {first_half} vs {second_half}"
        );
    }

    #[test]
    fn reactive_policy_scales_and_completes() {
        let mut cfg = SemesterConfig::scaled(6, 8, 23);
        cfg.fleet = FleetPolicy::Reactive { min: 1, max: 10 };
        let result = run_semester(&cfg);
        assert!(result.total_submissions > 50);
        assert_eq!(result.failures, 0);
        assert_eq!(result.final_standings.len(), 6);
        assert!(result.cost_cents > 0, "autoscaled fleet still bills");
    }

    #[test]
    fn fixed_fleet_ablation_waits_longer() {
        let mut starved_cfg = SemesterConfig::scaled(8, 8, 17);
        starved_cfg.fleet = FleetPolicy::Fixed(1);
        let starved = run_semester(&starved_cfg);
        let elastic = run_semester(&SemesterConfig::scaled(8, 8, 17));
        // One worker for eight bursty teams waits far longer at p99.
        assert!(
            starved.queue_wait_secs.2 >= elastic.queue_wait_secs.2,
            "starved p99 {:?} vs elastic {:?}",
            starved.queue_wait_secs,
            elastic.queue_wait_secs
        );
    }
}
