//! The restart-resume chaos audit: kill the whole process mid-semester,
//! recover from the write-ahead logs, resume, and prove nothing was
//! lost.
//!
//! This is the durability counterpart of [`crate::chaos`]. The same
//! round-structured course runs on a *durable* deployment
//! ([`rai_core::RaiSystem::with_clock_durable`]) whose database and
//! object store journal every committed mutation to a pair of
//! simulated disks. At a seeded kill point the process "dies": every
//! piece of in-memory state — broker queues, worker claims, credential
//! registry, telemetry — is dropped on the floor, optionally with
//! seeded disk faults chewing on the unsynced log tails. The harness
//! then recovers a fresh deployment from the two logs, re-registers
//! the course's teams, re-publishes the accepted-but-unfinished
//! submissions found in the intent ledger, resumes the remaining
//! rounds, and audits the combined run with the exact audit
//! (and fingerprint) the chaos scenario uses:
//!
//! * **zero lost** — every accepted submission reaches a terminal row
//!   or the dead-letter topic, across the kill;
//! * **zero duplicated** — recovery's re-publish never double-counts a
//!   job that already completed;
//! * with a clean kill and a fault-free plan, the recovered run's
//!   fingerprint is **byte-identical** to an uninterrupted same-seed
//!   run, at any payload-pipeline width.

use crate::chaos::{audit_terminal_state, AuditOutcome, ChaosConfig};
use rai_broker::dead_letter_topic;
use rai_cluster::{InstanceId, InstanceType, WorkerPool};
use rai_core::protocol::{routes, JobRequest};
use rai_core::worker::StepEvent;
use rai_core::{ProjectDir, RaiSystem, RecoveryReport, SubmitMode, SystemConfig, Worker};
use rai_faults::{CrashKind, DiskFault, DiskFaultProfile, FaultKind};
use rai_sim::{SimDuration, SimTime, VirtualClock};
use rai_telemetry::MetricsSnapshot;
use rai_wal::{DurabilityConfig, MemDisk, WalStats};
use std::collections::{BTreeSet, VecDeque};
use std::sync::Arc;

/// Where in the run the process dies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KillPoint {
    /// The submission round the kill lands in (0-based). A round ≥ the
    /// configured round count never fires.
    pub round: usize,
    /// When within the round: `None` kills right after the round's
    /// submissions are accepted (jobs queued, none processed);
    /// `Some(n)` kills after `n` job commits of the round's
    /// processing — between two serial commit points, whatever the
    /// pool width; `Some(u64::MAX)` kills at the round boundary, after
    /// the queue fully drains.
    pub after_steps: Option<u64>,
}

impl KillPoint {
    /// Kill after round `round`'s submissions, before any processing.
    pub fn before_drive(round: usize) -> Self {
        KillPoint { round, after_steps: None }
    }

    /// Kill mid-drive, `steps` worker step events into round `round`.
    pub fn mid_drive(round: usize, steps: u64) -> Self {
        KillPoint { round, after_steps: Some(steps) }
    }

    /// Kill at the boundary after round `round` fully drains.
    pub fn at_boundary(round: usize) -> Self {
        KillPoint { round, after_steps: Some(u64::MAX) }
    }
}

/// Restart-resume run parameters.
#[derive(Clone, Debug)]
pub struct RecoveryConfig {
    /// The underlying course + fault plan (shared with [`crate::chaos`]
    /// so recovered runs can be compared against uninterrupted ones).
    pub chaos: ChaosConfig,
    /// The seeded kill point; `None` runs uninterrupted (on the same
    /// durable deployment — the cross-validation baseline).
    pub kill: Option<KillPoint>,
    /// Disk-fault profile applied to the logs' unsynced tails at the
    /// kill ("dirty" crash); `None` crashes clean.
    pub disk_faults: Option<DiskFaultProfile>,
    /// Durability knobs for the two write-ahead logs.
    pub durability: DurabilityConfig,
}

impl RecoveryConfig {
    /// A clean kill of a fault-free quick course — the byte-identity
    /// profile.
    pub fn clean(seed: u64, kill: KillPoint) -> Self {
        let mut chaos = ChaosConfig::quick(seed);
        chaos.plan = rai_faults::FaultPlan::none(seed);
        RecoveryConfig {
            chaos,
            kill: Some(kill),
            disk_faults: None,
            durability: DurabilityConfig::durable(),
        }
    }

    /// A dirty crash of the full quick chaos course: process kill plus
    /// seeded disk faults on the unsynced log tails.
    pub fn dirty(seed: u64, kill: KillPoint) -> Self {
        RecoveryConfig {
            chaos: ChaosConfig::quick(seed),
            kill: Some(kill),
            disk_faults: Some(DiskFaultProfile::chaos(seed)),
            durability: DurabilityConfig::durable(),
        }
    }
}

/// Audited outputs of a restart-resume run.
#[derive(Debug)]
pub struct RecoveryResult {
    /// Job ids accepted across both lives of the process.
    pub accepted: Vec<u64>,
    /// Visible submit failures (not losses).
    pub rejected: u64,
    /// Job ids with a terminal submissions row after the full run.
    pub terminal: Vec<u64>,
    /// Job ids that left via the dead-letter topic (post-recovery tap;
    /// pre-kill dead letters die with the broker and re-earn their
    /// place by re-executing).
    pub dead_lettered: Vec<u64>,
    /// Job ids with more than one row (must be empty).
    pub duplicated: Vec<u64>,
    /// Accepted ids never reaching a terminal state (must be empty).
    pub lost: Vec<u64>,
    /// Final leaderboard.
    pub standings: Vec<(String, f64)>,
    /// The chaos-scenario fingerprint of the terminal state.
    pub fingerprint: u64,
    /// Whether the kill actually fired.
    pub killed: bool,
    /// Jobs the recovered process re-published from the intent ledger.
    pub republished: u64,
    /// What replay reported, when a recovery happened.
    pub recovery: Option<RecoveryReport>,
    /// Disk faults injected at the kill.
    pub disk_faults: Vec<DiskFault>,
    /// Final db-log statistics (appends, replays, corruption drops…).
    pub db_wal: WalStats,
    /// Final store-log statistics.
    pub store_wal: WalStats,
    /// Fleet instances that died mid-run (both lives).
    pub instances_failed: usize,
    /// Telemetry snapshot of the final process.
    pub metrics: MetricsSnapshot,
}

impl RecoveryResult {
    /// The crash-consistency guarantee as one checkable statement:
    /// nothing lost, nothing double-counted, everything accounted.
    pub fn verify(&self) -> Result<(), String> {
        if !self.lost.is_empty() {
            return Err(format!("lost submissions across restart: {:?}", self.lost));
        }
        if !self.duplicated.is_empty() {
            return Err(format!(
                "double-counted submissions after re-publish: {:?}",
                self.duplicated
            ));
        }
        let accounted = self.terminal.len() + self.dead_lettered.len();
        if accounted < self.accepted.len() {
            return Err(format!(
                "{} accepted but only {} accounted for",
                self.accepted.len(),
                accounted
            ));
        }
        Ok(())
    }
}

/// In-flight timeout used when a stalled worker holds a claim.
const MESSAGE_TIMEOUT: SimDuration = SimDuration::from_mins(10);

/// The chaos driver, extended with a step budget so a kill can land
/// between any two worker step events.
struct Driver {
    system: RaiSystem,
    clock: VirtualClock,
    pool: WorkerPool,
    instance_ids: Vec<InstanceId>,
    alive: Vec<bool>,
    deaths: VecDeque<SimTime>,
    steps: u64,
}

impl Driver {
    fn deploy(
        config: &ChaosConfig,
        clock: VirtualClock,
        system: RaiSystem,
        deaths: VecDeque<SimTime>,
    ) -> Self {
        let pool = WorkerPool::new(clock.clone());
        let instance_ids = pool.launch(InstanceType::p2(), config.workers);
        clock.advance(InstanceType::p2().provision_latency);
        Driver {
            alive: vec![true; config.workers],
            deaths,
            system,
            clock,
            pool,
            instance_ids,
            steps: 0,
        }
    }

    fn apply_due_deaths(&mut self) {
        while let Some(&at) = self.deaths.front() {
            if self.clock.now() < at {
                break;
            }
            self.deaths.pop_front();
            let Some(victim) = self.alive.iter().position(|a| *a) else { continue };
            self.alive[victim] = false;
            self.pool.fail(self.instance_ids[victim]);
            self.system.workers_mut()[victim].crash_recover();
            if let Some(inj) = self.system.fault_injector() {
                inj.note_injected(FaultKind::InstanceDeath);
            }
        }
    }

    /// Drive every live worker until none makes progress, or until the
    /// cumulative *commit* count reaches `kill_at_step` (returns
    /// `true`: the process dies here, mid-queue, claims and all).
    ///
    /// Rounds follow the chaos driver's shape — serial claims in
    /// worker order, pooled execution, serial commits in claim order —
    /// so the kill always lands between two commits regardless of pool
    /// width. Execution is pure (commits are the only store/db/broker
    /// mutation points), so a mid-round kill simply drops the round's
    /// executed-but-uncommitted jobs on the floor: their claims were
    /// never acked and their effects were never applied, exactly as if
    /// the process had died holding them.
    fn drive(&mut self, kill_at_step: Option<u64>) -> bool {
        let kill_due = |steps: u64| kill_at_step.is_some_and(|k| steps >= k);
        if kill_due(self.steps) {
            return true;
        }
        loop {
            self.apply_due_deaths();
            let mut claims = Vec::new();
            for i in 0..self.alive.len() {
                if !self.alive[i] {
                    continue;
                }
                if let Some(claimed) = self.system.workers_mut()[i].claim() {
                    claims.push((i, claimed));
                }
            }
            if claims.is_empty() {
                return false;
            }
            let executor = self.system.executor().clone();
            let mut advance = SimDuration::ZERO;
            let mut stalled = false;
            let mut crashed = Vec::new();
            let mut killed = false;
            executor.run_jobs(
                claims,
                |(wi, claimed)| (wi, Worker::execute(claimed)),
                |(wi, executed)| {
                    if killed {
                        // The process is dead: un-acked, un-committed
                        // work evaporates with it.
                        return;
                    }
                    match self.system.workers_mut()[wi].commit(executed) {
                        StepEvent::Idle => unreachable!("commit always seals its claim"),
                        StepEvent::Done(outcome) => advance += outcome.service_time,
                        StepEvent::Crashed(report) => {
                            advance += report.wasted;
                            stalled |= report.kind == CrashKind::Stall;
                            crashed.push(wi);
                        }
                    }
                    self.steps += 1;
                    killed = kill_due(self.steps);
                },
            );
            self.clock.advance(advance);
            if killed {
                return true;
            }
            if stalled {
                self.clock.advance(MESSAGE_TIMEOUT);
                self.system.broker().reclaim_expired(MESSAGE_TIMEOUT);
            }
            for wi in crashed {
                self.system.workers_mut()[wi].crash_recover();
            }
        }
    }

    /// Submit one round for every team — the exact chaos-round shape,
    /// so same-seed runs produce the same projects and job ids.
    fn submit_round(
        &mut self,
        config: &ChaosConfig,
        creds: &[rai_auth::Credentials],
        round: usize,
        accepted: &mut Vec<u64>,
        rejected: &mut u64,
        pendings: &mut Vec<rai_core::PendingJob>,
    ) {
        self.clock.advance(config.arrival_gap);
        self.apply_due_deaths();
        for (i, cred) in creds.iter().enumerate() {
            let ms = 400.0 + ((config.seed ^ (round as u64) << 8 ^ i as u64) % 900) as f64;
            let project = ProjectDir::cuda_project_with_perf(ms, 0.92, 1024).with_final_artifacts();
            let mode = if round == config.rounds - 1 { SubmitMode::Submit } else { SubmitMode::Run };
            let client = self.system.client_for(cred);
            match client.begin_submit(&project, mode) {
                Ok(pending) => {
                    accepted.push(pending.job_id);
                    let now = self.clock.now();
                    let t = self.system.telemetry();
                    t.trace_span(
                        pending.job_id,
                        0,
                        rai_telemetry::stage::SUBMITTED,
                        rai_telemetry::component::CLIENT,
                        now,
                        now,
                    );
                    t.trace_span(
                        pending.job_id,
                        0,
                        rai_telemetry::stage::ENQUEUED,
                        rai_telemetry::component::BROKER,
                        now,
                        now,
                    );
                    pendings.push(pending);
                }
                Err(_) => *rejected += 1,
            }
        }
    }
}

/// Run the restart-resume scenario and audit it.
pub fn run_recovery(config: &RecoveryConfig) -> RecoveryResult {
    let chaos = &config.chaos;
    let sys_config = SystemConfig {
        workers: chaos.workers,
        jobs_per_worker: 1,
        rate_limit: None,
        seed: chaos.seed,
        broker_attempts: chaos.broker_attempts,
        fault_plan: Some(chaos.plan.clone()),
        parallelism: chaos.parallelism,
        shards: chaos.shards,
        durability: config.durability,
        ..Default::default()
    };
    let db_disk = MemDisk::new();
    let store_disk = MemDisk::new();
    let clock = VirtualClock::new();
    let system = RaiSystem::with_clock_durable(
        sys_config.clone(),
        clock.clone(),
        Arc::new(db_disk.clone()),
        Arc::new(store_disk.clone()),
    );
    let dead_sub = system
        .broker()
        .subscribe(&dead_letter_topic(routes::TASK_TOPIC, routes::TASK_CHANNEL), "audit");
    let start_deaths = |start: SimTime| -> VecDeque<SimTime> {
        chaos.plan.instance_deaths.iter().map(|d| start + *d).collect()
    };
    let mut driver = Driver::deploy(chaos, clock.clone(), system, VecDeque::new());
    let start = clock.now();
    driver.deaths = start_deaths(start);

    let team_names: Vec<String> = (0..chaos.teams).map(|i| format!("chaos-team-{i:02}")).collect();
    let creds: Vec<_> = team_names
        .iter()
        .map(|name| driver.system.register_team(name, &[]))
        .collect();

    let mut accepted = Vec::new();
    let mut rejected = 0u64;
    let mut pendings = Vec::new();
    let mut killed_after_round = None;
    for round in 0..chaos.rounds {
        driver.submit_round(chaos, &creds, round, &mut accepted, &mut rejected, &mut pendings);
        let kill_here = config.kill.filter(|k| k.round == round);
        if let Some(k) = kill_here {
            if k.after_steps.is_none() {
                killed_after_round = Some(round);
                break;
            }
            let budget = k
                .after_steps
                .map(|n| driver.steps.saturating_add(n))
                .filter(|_| k.after_steps != Some(u64::MAX));
            driver.drive(budget);
            // Mid-drive budgets that outlast the round's work, and
            // explicit boundary kills, both land here: the queue is
            // drained and the process dies between rounds.
            killed_after_round = Some(round);
            break;
        }
        driver.drive(None);
        // Round boundaries are quiesced points: compact the logs if
        // they have outgrown their last snapshot (a later kill then
        // recovers from snapshot + tail instead of the full history).
        driver.system.maybe_compact();
    }

    let (mut driver, dead_sub, killed, republished, recovery, disk_faults) =
        if let Some(kill_round) = killed_after_round {
            // ---- The process dies. ----
            let kill_time = driver.clock.now();
            let remaining_deaths: VecDeque<SimTime> =
                driver.deaths.iter().copied().filter(|t| *t > kill_time).collect();
            let injector = driver.system.fault_injector().cloned();
            let pre_kill_failed = driver.pool.stats().failed;
            drop(pendings);
            drop(dead_sub);
            drop(driver);
            // The crash chews on the unsynced log tails (or doesn't,
            // for a clean kill). Distinct crash indices keep the two
            // logs' fault draws independent.
            let mut faults = Vec::new();
            match &config.disk_faults {
                Some(profile) => {
                    faults.extend(db_disk.crash_with(profile, 0));
                    faults.extend(store_disk.crash_with(profile, 1));
                }
                None => {
                    db_disk.crash_clean();
                    store_disk.crash_clean();
                }
            }

            // ---- Recovery: a fresh process, the same environment. ----
            // The clock and the fault injector's draw state are the
            // *world*, not process memory — the world does not rewind
            // when a service restarts.
            let clock2 = VirtualClock::starting_at(kill_time);
            let (mut system, report) = RaiSystem::recover_with_clock(
                sys_config.clone(),
                clock2.clone(),
                Arc::new(db_disk.clone()),
                Arc::new(store_disk.clone()),
                injector,
            );
            // Re-register teams in their original order: the key
            // generator is deterministic in (seed, order), so the
            // journaled job signatures verify against the re-issued
            // credentials.
            for name in &team_names {
                system.reregister_team(name);
            }
            let dead_sub = system
                .broker()
                .subscribe(&dead_letter_topic(routes::TASK_TOPIC, routes::TASK_CHANNEL), "audit");
            let republished = system.republish_pending();
            let mut driver = Driver::deploy(chaos, clock2, system, remaining_deaths);
            // Pre-seed the failure ledger with the first life's losses.
            for _ in 0..pre_kill_failed {
                let extra = driver.pool.launch(InstanceType::p2(), 1);
                driver.pool.fail(extra[0]);
            }
            // Finish the killed round: re-published jobs and any the
            // kill left queued run to completion here.
            driver.drive(None);
            // Resume the remaining rounds.
            pendings = Vec::new();
            for round in kill_round + 1..chaos.rounds {
                driver.submit_round(chaos, &creds, round, &mut accepted, &mut rejected, &mut pendings);
                driver.drive(None);
                driver.system.maybe_compact();
            }
            (driver, dead_sub, true, republished, Some(report), faults)
        } else {
            (driver, dead_sub, false, 0, None, Vec::new())
        };

    // Final drain + audit, exactly as the chaos scenario does it.
    driver.drive(None);
    driver.system.sync_wals();
    drop(pendings);

    let mut dead_lettered = Vec::new();
    let mut dead_seen = BTreeSet::new();
    while let Some(msg) = dead_sub.try_recv() {
        if let Some(req) = JobRequest::decode(&msg.body_str()) {
            // At-least-once re-publish can (rarely) dead-letter the
            // same job in both lives of a claim; the audit counts the
            // first appearance.
            if dead_seen.insert(req.job_id) {
                dead_lettered.push(req.job_id);
            }
        }
        dead_sub.ack(msg.id);
    }
    let AuditOutcome {
        terminal,
        duplicated,
        lost,
        standings,
        fingerprint,
    } = audit_terminal_state(&driver.system, &accepted, &dead_lettered);

    let db_wal = driver.system.db().wal().expect("durable deployment").stats();
    let store_wal = driver.system.store().wal().expect("durable deployment").stats();
    let metrics = driver.system.telemetry().snapshot();
    RecoveryResult {
        accepted,
        rejected,
        terminal,
        dead_lettered,
        duplicated,
        lost,
        standings,
        fingerprint,
        killed,
        republished,
        recovery,
        disk_faults,
        db_wal,
        store_wal,
        instances_failed: driver.pool.stats().failed,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::run_chaos;

    #[test]
    fn uninterrupted_durable_run_matches_chaos_fingerprint() {
        // Journaling must be an observer: the same seed on a durable
        // deployment produces the exact bytes the in-memory chaos run
        // does.
        let chaos = run_chaos(&ChaosConfig::quick(42));
        let durable = run_recovery(&RecoveryConfig {
            chaos: ChaosConfig::quick(42),
            kill: None,
            disk_faults: None,
            durability: DurabilityConfig::durable(),
        });
        assert!(!durable.killed);
        durable.verify().expect("invariant holds");
        assert_eq!(durable.fingerprint, chaos.fingerprint);
        assert_eq!(durable.accepted, chaos.accepted);
        assert!(durable.db_wal.appends > 0, "db mutations journaled");
        assert!(durable.store_wal.appends > 0, "store mutations journaled");
        // The per-log telemetry collectors see the same numbers.
        for (label, stats) in [("db", &durable.db_wal), ("store", &durable.store_wal)] {
            assert_eq!(
                durable
                    .metrics
                    .counter(rai_telemetry::names::WAL_APPENDS_TOTAL, &[("log", label)]),
                Some(stats.appends)
            );
            assert_eq!(
                durable
                    .metrics
                    .counter(rai_telemetry::names::WAL_FSYNC_BATCHES_TOTAL, &[("log", label)]),
                Some(stats.fsync_batches)
            );
        }
    }

    #[test]
    fn clean_kill_resume_is_byte_identical_fault_free() {
        for kill in [
            KillPoint::before_drive(3),
            KillPoint::mid_drive(5, 2),
            KillPoint::at_boundary(7),
        ] {
            let baseline = run_recovery(&RecoveryConfig { kill: None, ..RecoveryConfig::clean(9, kill) });
            let resumed = run_recovery(&RecoveryConfig::clean(9, kill));
            assert!(resumed.killed, "kill {kill:?} fired");
            resumed.verify().expect("invariant holds");
            assert!(resumed.recovery.is_some());
            assert_eq!(
                resumed.fingerprint, baseline.fingerprint,
                "kill {kill:?}: recovered run differs from uninterrupted run"
            );
            assert_eq!(resumed.accepted, baseline.accepted);
            assert_eq!(resumed.duplicated, Vec::<u64>::new());
        }
    }

    #[test]
    fn clean_kill_resume_is_byte_identical_at_width_4() {
        let kill = KillPoint::mid_drive(4, 3);
        let mut base_cfg = RecoveryConfig::clean(11, kill);
        base_cfg.chaos = base_cfg.chaos.with_parallelism(4);
        let baseline = run_recovery(&RecoveryConfig { kill: None, ..base_cfg.clone() });
        let resumed = run_recovery(&base_cfg);
        assert!(resumed.killed);
        resumed.verify().unwrap();
        assert_eq!(resumed.fingerprint, baseline.fingerprint);
        // And the pool width changes nothing vs the sequential run.
        let sequential = run_recovery(&RecoveryConfig::clean(11, kill));
        assert_eq!(resumed.fingerprint, sequential.fingerprint);
    }

    #[test]
    fn mid_drive_kill_under_chaos_plan_loses_nothing() {
        let cfg = RecoveryConfig {
            chaos: ChaosConfig::quick(21),
            kill: Some(KillPoint::mid_drive(6, 3)),
            disk_faults: None,
            durability: DurabilityConfig::durable(),
        };
        let result = run_recovery(&cfg);
        assert!(result.killed);
        result.verify().expect("no-lost across restart under chaos plan");
        assert!(result.recovery.is_some());
        let report = result.recovery.unwrap();
        assert!(report.db.stats.replayed > 0);
        assert!(report.store.stats.replayed > 0);
        assert_eq!(report.db.malformed_dropped, 0, "clean crash corrupts nothing");
        assert_eq!(result.db_wal.corrupt_dropped, 0);
    }

    #[test]
    fn kill_after_compaction_recovers_from_snapshot_plus_tail() {
        // Aggressive compaction thresholds force snapshots mid-course;
        // a later kill must recover from snapshot + tail to the same
        // bytes as the uninterrupted run.
        let durability = DurabilityConfig {
            segment_bytes: 16 << 10,
            compact_min_bytes: 4 << 10,
            compact_factor: 2,
            ..DurabilityConfig::durable()
        };
        let mut cfg = RecoveryConfig::clean(17, KillPoint::mid_drive(9, 1));
        cfg.durability = durability;
        let baseline = run_recovery(&RecoveryConfig { kill: None, ..cfg.clone() });
        assert!(
            baseline.db_wal.compactions > 0 && baseline.store_wal.compactions > 0,
            "thresholds low enough that both logs compacted (db {}, store {})",
            baseline.db_wal.compactions,
            baseline.store_wal.compactions
        );
        let resumed = run_recovery(&cfg);
        assert!(resumed.killed);
        resumed.verify().unwrap();
        assert_eq!(resumed.fingerprint, baseline.fingerprint);
        // Compaction actually bounded the resident log: far fewer
        // bytes on disk than were ever appended.
        assert!(baseline.db_wal.log_bytes < baseline.db_wal.bytes);
    }

    #[test]
    fn dirty_crash_detects_corruption_and_still_loses_nothing() {
        // Disk faults on the unsynced tails: replay must detect and
        // drop the damage (never panic, never silently accept), and
        // the at-least-once path must still account for every
        // accepted submission.
        let mut checked_any_faults = false;
        for seed in [5u64, 6, 7] {
            let result = run_recovery(&RecoveryConfig::dirty(seed, KillPoint::mid_drive(5, 2)));
            assert!(result.killed);
            result.verify().expect("zero lost, zero duplicated after dirty crash");
            if !result.disk_faults.is_empty() {
                checked_any_faults = true;
                // Torn/corrupt damage shows up in the replay ledger,
                // not as lost submissions.
                let stats = [&result.db_wal, &result.store_wal];
                assert!(
                    stats.iter().any(|s| s.corrupt_dropped > 0 || s.torn_bytes > 0),
                    "seed {seed}: faults {:?} left no trace in replay stats",
                    result.disk_faults
                );
            }
        }
        assert!(checked_any_faults, "no seed injected any disk fault");
    }
}
