//! The submission-arrival model behind Fig. 4.
//!
//! "Students made a significant number of submissions during the last
//! week of the course which followed their circadian rhythm." The
//! arrival process is a non-homogeneous Poisson process per team:
//!
//! ```text
//! λ_team(t) = base · activity_team · diurnal(hour of day) · ramp(day)
//! ```
//!
//! sampled by thinning, then post-processed with the client's 30-second
//! minimum spacing. `base` is calibrated so a 58-team class produces
//! ≈30 800 submissions over the last 14 days, the paper's count.

use rand::rngs::StdRng;
use rand::Rng;
use rai_sim::{SimDuration, SimTime};

/// The arrival-intensity model.
#[derive(Clone, Debug)]
pub struct CircadianModel {
    /// Relative intensity per hour of day (0–23). The epoch is
    /// midnight.
    pub diurnal: [f64; 24],
    /// Deadline-ramp exponent: intensity scales with
    /// `(day / horizon)^ramp_power` plus a floor.
    pub ramp_power: f64,
    /// Floor on the ramp (early-period activity never hits zero).
    pub ramp_floor: f64,
    /// Project length in days (the ramp peaks at the end).
    pub horizon_days: f64,
    /// Base events/hour for an `activity = 1` team at diurnal = 1,
    /// ramp = 1.
    pub base_per_hour: f64,
}

impl CircadianModel {
    /// Calibrated to the paper's last-two-weeks volume: 58 teams ×
    /// 14 days ⇒ ≈30.8k submissions, with a late-evening peak and a
    /// 4–9 am trough.
    pub fn paper_calibrated() -> Self {
        // Students' day: quiet overnight, climbing through the
        // afternoon, peaking 21:00–01:00 (the classic pre-deadline
        // rhythm visible in the paper's Fig. 4).
        let diurnal = [
            0.75, 0.55, 0.35, 0.20, 0.10, 0.08, 0.10, 0.18, // 00-07
            0.30, 0.45, 0.60, 0.72, 0.80, 0.85, 0.90, 0.95, // 08-15
            1.00, 1.00, 0.95, 0.95, 1.00, 1.10, 1.15, 1.00, // 16-23
        ];
        CircadianModel {
            diurnal,
            ramp_power: 3.0,
            ramp_floor: 0.08,
            horizon_days: 35.0,
            base_per_hour: 3.6,
        }
    }

    /// Deadline ramp at an absolute time.
    pub fn ramp(&self, t: SimTime) -> f64 {
        let day = t.as_millis() as f64 / SimDuration::DAY.as_millis() as f64;
        let x = (day / self.horizon_days).clamp(0.0, 1.0);
        self.ramp_floor + (1.0 - self.ramp_floor) * x.powf(self.ramp_power)
    }

    /// Intensity (events/hour) for a team at `t`.
    pub fn intensity(&self, activity: f64, t: SimTime) -> f64 {
        self.base_per_hour * activity * self.diurnal[t.hour_of_day() as usize] * self.ramp(t)
    }

    /// Upper bound on intensity for thinning.
    fn intensity_max(&self, activity: f64) -> f64 {
        let d = self.diurnal.iter().cloned().fold(0.0f64, f64::max);
        self.base_per_hour * activity * d
    }

    /// Sample one team's submission instants in `[start, end)` by
    /// Poisson thinning, enforcing the client-side minimum gap.
    pub fn sample_team_events(
        &self,
        activity: f64,
        start: SimTime,
        end: SimTime,
        min_gap: SimDuration,
        rng: &mut StdRng,
    ) -> Vec<SimTime> {
        let lambda_max = self.intensity_max(activity).max(1e-9);
        let mut events = Vec::new();
        let mut t = start;
        let mut last_accepted: Option<SimTime> = None;
        loop {
            // Exponential(λmax) inter-arrival, in hours.
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            let dt_hours = -u.ln() / lambda_max;
            t += SimDuration::from_secs_f64(dt_hours * 3600.0);
            if t >= end {
                break;
            }
            let accept = rng.gen_range(0.0..1.0) < self.intensity(activity, t) / lambda_max;
            if !accept {
                continue;
            }
            if let Some(last) = last_accepted {
                if t.duration_since(last) < min_gap {
                    // The client refuses; the student retries right after
                    // the window opens.
                    t = last + min_gap;
                    if t >= end {
                        break;
                    }
                }
            }
            events.push(t);
            last_accepted = Some(t);
        }
        events
    }

    /// Expected event count for one `activity = 1` team over
    /// `[start, end)` (hourly Riemann sum) — used by calibration tests.
    pub fn expected_events(&self, start: SimTime, end: SimTime) -> f64 {
        let mut total = 0.0;
        let mut t = start;
        while t < end {
            total += self.intensity(1.0, t);
            t += SimDuration::HOUR;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn window() -> (SimTime, SimTime) {
        // The Fig. 4 window: days 21–35 of a 35-day project.
        (
            SimTime::ZERO + SimDuration::from_days(21),
            SimTime::ZERO + SimDuration::from_days(35),
        )
    }

    #[test]
    fn calibrated_to_paper_volume() {
        let m = CircadianModel::paper_calibrated();
        let (start, end) = window();
        // 58 teams at mean activity ≈ 1.15 (uniform 0.4..1.9).
        let expected_class = m.expected_events(start, end) * 58.0 * 1.15;
        assert!(
            (24_000.0..38_000.0).contains(&expected_class),
            "expected ≈30 782, model gives {expected_class:.0}"
        );
    }

    #[test]
    fn sampled_volume_matches_expectation() {
        let m = CircadianModel::paper_calibrated();
        let (start, end) = window();
        let mut rng = StdRng::seed_from_u64(9);
        let mut total = 0usize;
        for i in 0..58 {
            let activity = 0.4 + 1.5 * (i as f64 / 57.0); // mean 1.15
            total += m
                .sample_team_events(activity, start, end, SimDuration::from_secs(30), &mut rng)
                .len();
        }
        assert!(
            (24_000..39_000).contains(&total),
            "sampled {total}, paper reports 30 782"
        );
    }

    #[test]
    fn ramp_increases_toward_deadline() {
        let m = CircadianModel::paper_calibrated();
        let early = m.ramp(SimTime::ZERO + SimDuration::from_days(5));
        let late = m.ramp(SimTime::ZERO + SimDuration::from_days(34));
        assert!(late > early * 5.0, "early={early} late={late}");
        assert!(early >= m.ramp_floor);
    }

    #[test]
    fn diurnal_trough_before_dawn() {
        let m = CircadianModel::paper_calibrated();
        let peak: f64 = m.diurnal.iter().cloned().fold(0.0, f64::max);
        let trough = m.diurnal[5];
        assert!(trough < peak / 5.0);
        // 10 pm busier than 6 am on the same day.
        let day30 = SimTime::ZERO + SimDuration::from_days(30);
        let night = m.intensity(1.0, day30 + SimDuration::from_hours(22));
        let dawn = m.intensity(1.0, day30 + SimDuration::from_hours(6));
        assert!(night > dawn * 3.0);
    }

    #[test]
    fn min_gap_is_enforced() {
        let m = CircadianModel::paper_calibrated();
        let (start, end) = window();
        let mut rng = StdRng::seed_from_u64(4);
        let events = m.sample_team_events(5.0, start, end, SimDuration::from_secs(30), &mut rng);
        assert!(!events.is_empty());
        for pair in events.windows(2) {
            assert!(
                pair[1].duration_since(pair[0]) >= SimDuration::from_secs(30),
                "rate limit violated: {:?}",
                pair
            );
        }
    }

    #[test]
    fn events_are_sorted_and_within_window() {
        let m = CircadianModel::paper_calibrated();
        let (start, end) = window();
        let mut rng = StdRng::seed_from_u64(2);
        let events = m.sample_team_events(1.0, start, end, SimDuration::from_secs(30), &mut rng);
        for pair in events.windows(2) {
            assert!(pair[0] < pair[1]);
        }
        assert!(events.iter().all(|&t| t >= start && t < end));
    }
}
