//! # rai-workload — course workload models (paper §VI–§VII)
//!
//! The paper's evaluation is one semester of real students: 176
//! students in 58 teams making >40 000 submissions, 30 782 of them in
//! the last two weeks, with a circadian daily rhythm and a strong
//! deadline ramp (Fig. 4), and a final-runtime distribution whose top
//! 30 teams cluster under one second with a two-minute straggler
//! (Fig. 2). We obviously cannot re-run the class, so this crate models
//! the students:
//!
//! * [`teams`] — team skill and the performance trajectory of their
//!   project over the five weeks (serial baseline → first CUDA version
//!   → tuned kernel), seeded and reproducible;
//! * [`circadian`] — a non-homogeneous Poisson submission process with
//!   a diurnal profile and a polynomial deadline ramp, thinned per
//!   team, calibrated so the last two weeks produce ≈30.8k submissions;
//! * [`competition`] — the Fig. 2 experiment: run every team's final
//!   submission through a real [`rai_core::RaiSystem`] and histogram
//!   the leaderboard;
//! * [`semester`] — the full five-week discrete-event simulation
//!   driving client → broker → worker → store end to end, with the
//!   paper's phase-scheduled fleet, producing the Fig. 4 timeline and
//!   the §VII resource-usage report;
//! * [`chaos`] — the fault-injected semester: store/db/broker faults,
//!   worker crashes and stalls, poison jobs, and instance deaths,
//!   audited for the no-lost-submissions guarantee;
//! * [`recovery`] — the restart-resume chaos audit: kill the whole
//!   process mid-semester (optionally with disk faults on the
//!   write-ahead logs' unsynced tails), recover from the logs, resume,
//!   and prove zero lost / zero duplicated submissions — byte-identical
//!   to an uninterrupted run when the crash is clean and fault-free.

pub mod chaos;
pub mod circadian;
pub mod competition;
pub mod recovery;
pub mod semester;
pub mod teams;

pub use chaos::{run_chaos, ChaosConfig, ChaosResult};
pub use recovery::{run_recovery, KillPoint, RecoveryConfig, RecoveryResult};
pub use circadian::CircadianModel;
pub use competition::{run_competition, CompetitionConfig, CompetitionResult};
pub use semester::{FleetPolicy, SemesterConfig, SemesterResult};
pub use teams::{TeamModel, TeamRoster};
