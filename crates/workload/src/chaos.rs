//! The chaos semester: a fault-injected workload proving the
//! no-lost-submissions guarantee.
//!
//! A scaled course runs with a deterministic [`FaultPlan`] active —
//! store/db/broker faults, worker crashes and stalls at named pipeline
//! points, poison jobs that can never complete, and instance deaths
//! mid-run — and the driver then audits the invariant the paper's
//! architecture is meant to provide: **every accepted submission
//! reaches a terminal state exactly once** — either one terminal row in
//! the submissions collection or one appearance on the dead-letter
//! topic — with nothing lost, nothing double-counted, and the whole run
//! byte-identical across same-seed executions.

use rai_broker::dead_letter_topic;
use rai_cluster::{InstanceId, InstanceType, WorkerPool};
use rai_core::protocol::{routes, JobRequest};
use rai_core::worker::StepEvent;
use rai_core::{ProjectDir, RaiSystem, SubmitMode, SystemConfig, Worker};
use rai_faults::{CrashKind, FaultKind, FaultPlan};
use rai_sim::{SimDuration, SimTime, VirtualClock};
use rai_telemetry::{component, stage, JobTrace, MetricsSnapshot};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Chaos-run parameters.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Teams submitting.
    pub teams: usize,
    /// Submission rounds; each round every team submits once.
    pub rounds: usize,
    /// Sim-time gap between rounds (the arrival spacing — what lets
    /// the run reach the plan's instance-death times).
    pub arrival_gap: SimDuration,
    /// Worker fleet size (must exceed the plan's instance deaths).
    pub workers: usize,
    /// Per-message delivery cap before dead-lettering.
    pub broker_attempts: u32,
    /// Seed for teams, projects, and the fault plan.
    pub seed: u64,
    /// The fault plan to execute.
    pub plan: FaultPlan,
    /// Job-pool width (1 = sequential reference). Whole submissions
    /// execute concurrently at `N > 1`, but fault draws are consumed
    /// only in the serial claim/commit phases — whose order is fixed
    /// by the round structure, not the pool — so chaos fingerprints
    /// are byte-identical at every setting (DESIGN.md §15).
    pub parallelism: usize,
    /// Lock-domain shard count (1 = single-lock reference). Fault-plan
    /// runs always commit on the single-lane reference schedule, so
    /// sharding only repartitions arena/collection locks — chaos
    /// fingerprints stay byte-identical (DESIGN.md §16).
    pub shards: usize,
    /// Claim-lane count (1 = serial claim reference). A fault plan
    /// pins the claim phase to the serial reference schedule — the
    /// injector's draw stream is ordering-visible — so this knob is
    /// structurally inert here and chaos fingerprints stay
    /// byte-identical at every setting (DESIGN.md §17); the
    /// determinism suite sweeps it to prove exactly that.
    pub claim_lanes: usize,
}

impl ChaosConfig {
    /// The acceptance profile: ≥5% worker crash rate, ≥2% store/db
    /// fault rate, poison jobs, and an instance death at six hours —
    /// with enough rounds to get there.
    pub fn acceptance(seed: u64) -> Self {
        ChaosConfig {
            teams: 6,
            rounds: 160,
            arrival_gap: SimDuration::from_mins(3),
            workers: 4,
            broker_attempts: 8,
            seed,
            plan: FaultPlan::chaos(seed),
            parallelism: 1,
            shards: 1,
            claim_lanes: 1,
        }
    }

    /// A fast profile for unit tests: smaller scale, earlier death.
    pub fn quick(seed: u64) -> Self {
        let mut plan = FaultPlan::chaos(seed);
        plan.instance_deaths = vec![SimDuration::from_mins(8)];
        plan.poison_every = Some(13);
        ChaosConfig {
            teams: 4,
            rounds: 12,
            arrival_gap: SimDuration::from_mins(1),
            workers: 3,
            broker_attempts: 6,
            seed,
            plan,
            parallelism: 1,
            shards: 1,
            claim_lanes: 1,
        }
    }

    /// The same scenario with the payload pipeline on an `n`-worker
    /// pool (1 = sequential reference).
    pub fn with_parallelism(mut self, n: usize) -> Self {
        self.parallelism = n;
        self
    }

    /// The same scenario with `n` lock-domain shards (1 = single-lock
    /// reference).
    pub fn with_shards(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }

    /// The same scenario with `n` claim lanes (1 = serial claim
    /// reference; inert under a fault plan by the serial-fallback
    /// rule).
    pub fn with_claim_lanes(mut self, n: usize) -> Self {
        self.claim_lanes = n;
        self
    }
}

/// Audited outputs of a chaos run.
#[derive(Debug)]
pub struct ChaosResult {
    /// Job ids the system accepted (client `begin_submit` returned Ok).
    pub accepted: Vec<u64>,
    /// Job ids the client was *told* failed to submit (visible errors,
    /// not losses).
    pub rejected: u64,
    /// Job ids with a terminal row in the submissions collection.
    pub terminal: Vec<u64>,
    /// Job ids that left the queue through the dead-letter topic.
    pub dead_lettered: Vec<u64>,
    /// Job ids with more than one submissions row (must be empty).
    pub duplicated: Vec<u64>,
    /// Accepted ids with neither a terminal row nor a dead-letter
    /// appearance (must be empty).
    pub lost: Vec<u64>,
    /// Worker instances that died mid-run.
    pub instances_failed: usize,
    /// Injected-fault counts by kind label.
    pub injected: Vec<(String, u64)>,
    /// Final leaderboard.
    pub standings: Vec<(String, f64)>,
    /// FNV-1a digest of the terminal database state + dead-letter
    /// order: byte-identical across same-seed runs.
    pub fingerprint: u64,
    /// Telemetry snapshot at run end.
    pub metrics: MetricsSnapshot,
    /// Per-job causal span trees. Crash-redelivered jobs carry one
    /// subtree per delivery attempt (non-final attempts are the wasted
    /// work the critical-path extractor charges to `retry-wait`).
    pub traces: Vec<JobTrace>,
    /// File-server usage at run end (dedup ratios must hold under
    /// faults too — crash-redelivered uploads land on the same chunks).
    pub store: rai_store::StoreUsage,
}

impl ChaosResult {
    /// The no-lost-submissions guarantee, as one checkable statement.
    pub fn verify(&self) -> Result<(), String> {
        if !self.lost.is_empty() {
            return Err(format!("lost submissions: {:?}", self.lost));
        }
        if !self.duplicated.is_empty() {
            return Err(format!("double-counted submissions: {:?}", self.duplicated));
        }
        let accounted = self.terminal.len() + self.dead_lettered.len();
        if accounted < self.accepted.len() {
            return Err(format!(
                "{} accepted but only {} accounted for",
                self.accepted.len(),
                accounted
            ));
        }
        Ok(())
    }
}

/// In-flight timeout used when a stalled worker holds a claim.
const MESSAGE_TIMEOUT: SimDuration = SimDuration::from_mins(10);

struct Driver {
    system: RaiSystem,
    clock: VirtualClock,
    pool: WorkerPool,
    instance_ids: Vec<InstanceId>,
    alive: Vec<bool>,
    deaths: VecDeque<SimTime>,
}

impl Driver {
    /// Kill fleet instances whose scheduled death time has passed: the
    /// pool stops billing them, their worker releases its claims (the
    /// un-acked job redelivers elsewhere) and stops taking work.
    fn apply_due_deaths(&mut self) {
        while let Some(&at) = self.deaths.front() {
            if self.clock.now() < at {
                break;
            }
            self.deaths.pop_front();
            let Some(victim) = self.alive.iter().position(|a| *a) else { continue };
            self.alive[victim] = false;
            self.pool.fail(self.instance_ids[victim]);
            self.system.workers_mut()[victim].crash_recover();
            if let Some(inj) = self.system.fault_injector() {
                inj.note_injected(FaultKind::InstanceDeath);
            }
        }
    }

    /// Drive every live worker until none makes progress, one
    /// scheduling round at a time: deaths land at the round boundary,
    /// each live worker claims at most one job (serially, in worker
    /// order — fault draws included), the round executes on the job
    /// pool, and commits apply serially in claim order. The round
    /// shape is independent of pool width, so fault draws, crashes,
    /// and the final fingerprint are too. Crashes restart the worker
    /// at the end of the round; stalls wait out the in-flight timeout
    /// so the broker reclaims the held message.
    fn drive(&mut self) {
        loop {
            self.apply_due_deaths();
            // Pop serially in worker order, then route the claim tails
            // through the shared claim pipeline. With a fault plan
            // attached `claim_tasks` always takes the serial reference
            // path, so fault draws stay in pop order (DESIGN.md §17).
            let mut popped = Vec::new();
            for i in 0..self.alive.len() {
                if !self.alive[i] {
                    continue;
                }
                if let Some(task) = self.system.workers_mut()[i].pop_task() {
                    popped.push((i, task));
                }
            }
            if popped.is_empty() {
                return;
            }
            let claims = self.system.claim_tasks(popped);
            let executor = self.system.executor().clone();
            let mut advance = SimDuration::ZERO;
            let mut stalled = false;
            let mut crashed = Vec::new();
            executor.run_jobs(
                claims,
                |(wi, claimed)| (wi, Worker::execute(claimed)),
                |(wi, executed)| match self.system.workers_mut()[wi].commit(executed) {
                    StepEvent::Idle => unreachable!("commit always seals its claim"),
                    StepEvent::Done(outcome) => advance += outcome.service_time,
                    StepEvent::Crashed(report) => {
                        advance += report.wasted;
                        stalled |= report.kind == CrashKind::Stall;
                        crashed.push(wi);
                    }
                },
            );
            self.clock.advance(advance);
            if stalled {
                self.clock.advance(MESSAGE_TIMEOUT);
                self.system.broker().reclaim_expired(MESSAGE_TIMEOUT);
            }
            for wi in crashed {
                self.system.workers_mut()[wi].crash_recover();
            }
        }
    }
}

fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for b in bytes {
        *h ^= u64::from(*b);
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
}

/// The terminal-state audit shared by the chaos and restart-resume
/// scenarios (`crate::recovery`): row/dead-letter accounting plus the
/// run fingerprint. One implementation, so "recovered run equals
/// uninterrupted run" compares the exact same bytes.
pub(crate) struct AuditOutcome {
    pub terminal: Vec<u64>,
    pub duplicated: Vec<u64>,
    pub lost: Vec<u64>,
    pub standings: Vec<(String, f64)>,
    pub fingerprint: u64,
}

pub(crate) fn audit_terminal_state(
    system: &RaiSystem,
    accepted: &[u64],
    dead_lettered: &[u64],
) -> AuditOutcome {
    let mut rows_per_id: BTreeMap<u64, u64> = BTreeMap::new();
    let submissions = system.db().collection("submissions");
    let all_rows = submissions.read().find(&rai_db::doc! {});
    for row in &all_rows {
        if let Some(id) = row.get("job_id").and_then(rai_db::Value::as_i64) {
            *rows_per_id.entry(id as u64).or_insert(0) += 1;
        }
    }
    let dead_set: BTreeSet<u64> = dead_lettered.iter().copied().collect();
    let terminal: Vec<u64> = rows_per_id.keys().copied().collect();
    let duplicated: Vec<u64> = rows_per_id
        .iter()
        .filter(|(_, n)| **n > 1)
        .map(|(id, _)| *id)
        .collect();
    let lost: Vec<u64> = accepted
        .iter()
        .copied()
        .filter(|id| !rows_per_id.contains_key(id) && !dead_set.contains(id))
        .collect();
    let standings = system.rankings().standings();

    // Fingerprint: terminal rows (sorted by job id) + dead-letter order
    // + standings. Presigned URLs are deliberately excluded (their
    // secret is process-global, not seed-derived).
    let mut fp: u64 = 0xcbf2_9ce4_8422_2325;
    for id in rows_per_id.keys() {
        let row = submissions
            .read()
            .find_one(&rai_db::doc! { "job_id" => *id })
            .expect("counted above");
        fnv1a(&mut fp, &id.to_le_bytes());
        fnv1a(&mut fp, row.get("team").and_then(rai_db::Value::as_str).unwrap_or("").as_bytes());
        fnv1a(&mut fp, row.get("kind").and_then(rai_db::Value::as_str).unwrap_or("").as_bytes());
        fnv1a(&mut fp, &[u8::from(row.get("success").and_then(rai_db::Value::as_bool).unwrap_or(false))]);
        let secs = row.get("internal_secs").and_then(rai_db::Value::as_f64).unwrap_or(0.0);
        fnv1a(&mut fp, &secs.to_bits().to_le_bytes());
    }
    for id in dead_lettered {
        fnv1a(&mut fp, &id.to_le_bytes());
    }
    for (team, secs) in &standings {
        fnv1a(&mut fp, team.as_bytes());
        fnv1a(&mut fp, &secs.to_bits().to_le_bytes());
    }
    AuditOutcome {
        terminal,
        duplicated,
        lost,
        standings,
        fingerprint: fp,
    }
}

/// Run the chaos scenario and audit it.
pub fn run_chaos(config: &ChaosConfig) -> ChaosResult {
    let clock = VirtualClock::new();
    let system = RaiSystem::with_clock(
        SystemConfig {
            workers: config.workers,
            jobs_per_worker: 1,
            rate_limit: None,
            seed: config.seed,
            broker_attempts: config.broker_attempts,
            fault_plan: Some(config.plan.clone()),
            parallelism: config.parallelism,
            shards: config.shards,
            claim_lanes: config.claim_lanes,
            ..Default::default()
        },
        clock.clone(),
    );
    // Audit tap on the dead-letter topic, created before any traffic.
    let dead_sub = system.broker().subscribe(
        &dead_letter_topic(routes::TASK_TOPIC, routes::TASK_CHANNEL),
        "audit",
    );
    // A billing pool mirroring the worker fleet, so instance deaths
    // show up in cost and failure accounting.
    let pool = WorkerPool::new(clock.clone());
    let instance_ids = pool.launch(InstanceType::p2(), config.workers);
    clock.advance(InstanceType::p2().provision_latency);

    let start = clock.now();
    let mut driver = Driver {
        alive: vec![true; config.workers],
        deaths: config
            .plan
            .instance_deaths
            .iter()
            .map(|d| start + *d)
            .collect(),
        system,
        clock: clock.clone(),
        pool,
        instance_ids,
    };

    let creds: Vec<_> = (0..config.teams)
        .map(|i| driver.system.register_team(&format!("chaos-team-{i:02}"), &[]))
        .collect();

    let mut accepted = Vec::new();
    let mut rejected = 0u64;
    let mut pendings = Vec::new();
    for round in 0..config.rounds {
        driver.clock.advance(config.arrival_gap);
        driver.apply_due_deaths();
        for (i, cred) in creds.iter().enumerate() {
            // Vary the project per (team, round) so runtimes differ
            // deterministically.
            let ms = 400.0 + ((config.seed ^ (round as u64) << 8 ^ i as u64) % 900) as f64;
            let project = ProjectDir::cuda_project_with_perf(ms, 0.92, 1024).with_final_artifacts();
            let mode = if round == config.rounds - 1 { SubmitMode::Submit } else { SubmitMode::Run };
            let client = driver.system.client_for(cred);
            match client.begin_submit(&project, mode) {
                Ok(pending) => {
                    accepted.push(pending.job_id);
                    let now = driver.clock.now();
                    let t = driver.system.telemetry();
                    t.trace_span(pending.job_id, 0, stage::SUBMITTED, component::CLIENT, now, now);
                    t.trace_span(pending.job_id, 0, stage::ENQUEUED, component::BROKER, now, now);
                    // Keep the log subscription alive until the end so
                    // late frames from redelivered attempts land
                    // somewhere; dropped in bulk after the run.
                    pendings.push(pending);
                }
                // A submit error after the client's bounded retries is
                // a *visible* failure, not a lost submission.
                Err(_) => rejected += 1,
            }
        }
        driver.drive();
    }
    // Final drain: anything still queued (e.g. claims released by the
    // last instance death) runs to completion.
    driver.drive();
    drop(pendings);

    // Audit. Dead letters, in arrival order.
    let mut dead_lettered = Vec::new();
    while let Some(msg) = dead_sub.try_recv() {
        if let Some(req) = JobRequest::decode(&msg.body_str()) {
            dead_lettered.push(req.job_id);
        }
        dead_sub.ack(msg.id);
    }
    let AuditOutcome {
        terminal,
        duplicated,
        lost,
        standings,
        fingerprint: fp,
    } = audit_terminal_state(&driver.system, &accepted, &dead_lettered);

    let injected = driver
        .system
        .fault_injector()
        .map(|inj| {
            inj.injected_counts()
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect()
        })
        .unwrap_or_default();
    let metrics = driver.system.telemetry().snapshot();
    let traces = driver.system.telemetry().job_traces();
    let store = driver.system.store().usage();
    ChaosResult {
        accepted,
        rejected,
        terminal,
        dead_lettered,
        duplicated,
        lost,
        instances_failed: driver.pool.stats().failed,
        injected,
        standings,
        fingerprint: fp,
        metrics,
        traces,
        store,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rai_telemetry::names;

    #[test]
    fn quick_chaos_loses_nothing_and_dead_letters_poison() {
        let result = run_chaos(&ChaosConfig::quick(42));
        result.verify().expect("no-lost-submissions invariant");
        assert!(!result.accepted.is_empty());
        // Poison jobs (id % 13 == 0) can only leave via dead-letter.
        for id in &result.dead_lettered {
            assert_eq!(id % 13, 0, "only poison jobs should dead-letter, got {id}");
        }
        assert!(
            !result.dead_lettered.is_empty(),
            "accepted {} jobs but no poison id dead-lettered",
            result.accepted.len()
        );
        assert_eq!(result.instances_failed, 1, "the scheduled death happened");
        assert!(
            result.metrics.counter_total(names::FAULTS_INJECTED_TOTAL) > 0,
            "faults were injected"
        );
        assert_eq!(
            result.metrics.counter_total(names::DEAD_LETTERED_TOTAL),
            result.dead_lettered.len() as u64
        );
    }

    #[test]
    fn same_seed_is_byte_identical_and_seeds_differ() {
        let a = run_chaos(&ChaosConfig::quick(7));
        let b = run_chaos(&ChaosConfig::quick(7));
        assert_eq!(a.fingerprint, b.fingerprint, "same seed, same bytes");
        assert_eq!(a.accepted, b.accepted);
        assert_eq!(a.dead_lettered, b.dead_lettered);
        let c = run_chaos(&ChaosConfig::quick(8));
        assert_ne!(a.fingerprint, c.fingerprint, "different seed, different run");
    }

    #[test]
    fn fault_free_plan_matches_no_injector_row_counts() {
        let mut cfg = ChaosConfig::quick(3);
        cfg.plan = FaultPlan::none(3);
        let result = run_chaos(&cfg);
        result.verify().unwrap();
        assert!(result.dead_lettered.is_empty());
        assert_eq!(result.rejected, 0);
        assert_eq!(result.terminal.len(), result.accepted.len());
        assert_eq!(result.metrics.counter_total(names::WORKER_CRASHES_TOTAL), 0);
    }
}
