//! Property tests for the container runtime: arbitrary student input —
//! command lines, build scripts, file contents — must never panic the
//! worker, never escape the filesystem sandbox, and always respect the
//! resource limits.

use proptest::prelude::*;
use rai_archive::FileTree;
use rai_sandbox::exec::shell_words;
use rai_sandbox::{Container, ContainerStatus, ImageRegistry, ResourceLimits};

fn container() -> Container {
    let reg = ImageRegistry::course_default();
    let image = reg.resolve("webgpu/rai:root").expect("whitelisted");
    Container::create(image, ResourceLimits::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_command_lines_never_panic(cmd in "[ -~]{0,80}") {
        let mut c = container();
        let _ = c.run_command(&cmd);
    }

    #[test]
    fn arbitrary_scripts_terminate_with_a_status(
        cmds in prop::collection::vec("[ -~]{0,40}", 0..8)
    ) {
        let mut c = container();
        c.run_script(cmds.iter().map(String::as_str));
        let report = c.destroy();
        // Whatever happened, we got a definite status and a bounded
        // lifetime.
        prop_assert!(matches!(
            report.status,
            ContainerStatus::Created | ContainerStatus::Exited(_) | ContainerStatus::Killed(_)
        ));
        prop_assert!(report.elapsed <= ResourceLimits::default().max_lifetime);
    }

    #[test]
    fn shell_words_round_trip_simple_tokens(
        tokens in prop::collection::vec("[a-zA-Z0-9_./-]{1,10}", 1..6)
    ) {
        let line = tokens.join(" ");
        prop_assert_eq!(shell_words(&line), tokens);
    }

    #[test]
    fn shell_words_never_panics(line in "[ -~]{0,120}") {
        let _ = shell_words(&line);
    }

    #[test]
    fn mounted_files_cannot_escape_the_tree(
        name in "[a-z]{1,8}",
        data in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        // Whatever a project contains, it lands under /src and path
        // traversal components are rejected at the FileTree layer.
        let mut tree = FileTree::new();
        tree.insert(&name, data).expect("simple name is valid");
        prop_assert!(tree.insert("../escape", b"x".to_vec()).is_err());
        prop_assert!(tree.insert("a/../../b", b"x".to_vec()).is_err());
        let mut c = container();
        c.mount("/src", &tree);
        let mounted_path = format!("src/{name}");
        prop_assert!(c.fs.contains(&mounted_path));
    }

    #[test]
    fn memory_limit_always_enforced(mem_mb in 1u64..20_000) {
        let tree = FileTree::new()
            .with("CMakeLists.txt", &b"add_executable(ece408 main.cu)"[..])
            .with(
                "main.cu",
                format!("// rai:perf mode=gpu full_ms=10 acc=0.9 mem_mb={mem_mb}\n").into_bytes(),
            );
        let mut c = container();
        c.mount("/src", &tree);
        c.run_script(["cmake /src", "make", "./ece408 /data/test10.hdf5 /data/model.hdf5"]);
        let report = c.destroy();
        let limit = ResourceLimits::default().memory_bytes;
        if mem_mb * 1024 * 1024 > limit {
            prop_assert!(matches!(report.status, ContainerStatus::Killed(_)), "{mem_mb}MB should OOM");
        } else {
            prop_assert!(report.success(), "{mem_mb}MB fits under the cap");
        }
    }
}
