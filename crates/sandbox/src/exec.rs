//! The build-command interpreter.
//!
//! Executes the `rai-build.yml` command vocabulary deterministically
//! against a container's in-memory filesystem, charging simulated time
//! and memory. The vocabulary covers everything in the paper's listings
//! (`echo`, `cmake`, `make`, program execution, `nvprof`,
//! `/usr/bin/time`, `cp -r`) plus the obvious student variations
//! (`ls`, `cat`, `mkdir`, `rm`) and the *denied* network tools.

use crate::container::{Container, KillReason, LogStream};
use crate::image::hdf5_item_count;
use crate::perf::{ExecMode, PerfSpec};
use rai_sim::SimDuration;

/// Outcome of one command.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CmdResult {
    /// Process exit code (0 = success; 137 = killed).
    pub exit_code: i32,
    /// Simulated wall-clock the command consumed.
    pub duration: SimDuration,
    /// Set when the command tripped a resource limit.
    pub killed: Option<KillReason>,
}

impl CmdResult {
    fn ok(duration: SimDuration) -> Self {
        CmdResult {
            exit_code: 0,
            duration,
            killed: None,
        }
    }

    fn fail(exit_code: i32, duration: SimDuration) -> Self {
        CmdResult {
            exit_code,
            duration,
            killed: None,
        }
    }

    fn killed(reason: KillReason, duration: SimDuration) -> Self {
        CmdResult {
            exit_code: 137,
            duration,
            killed: Some(reason),
        }
    }
}

/// Marker prefix for "compiled binaries" in the container filesystem.
pub const BINARY_MAGIC: &str = "RAIBIN\n";

/// Split a command line into words, honouring single/double quotes.
pub fn shell_words(cmd: &str) -> Vec<String> {
    let mut words = Vec::new();
    let mut cur = String::new();
    let mut in_single = false;
    let mut in_double = false;
    for c in cmd.chars() {
        match c {
            '\'' if !in_double => in_single = !in_single,
            '"' if !in_single => in_double = !in_double,
            c if c.is_whitespace() && !in_single && !in_double => {
                if !cur.is_empty() {
                    words.push(std::mem::take(&mut cur));
                }
            }
            c => cur.push(c),
        }
    }
    if !cur.is_empty() {
        words.push(cur);
    }
    words
}

/// Commands that would require network access.
const NETWORK_TOOLS: &[&str] = &[
    "curl", "wget", "git", "apt", "apt-get", "pip", "pip3", "ping", "ssh", "scp", "nc", "netcat",
];

/// Split a command line on top-level `&&`, honouring quotes (students
/// write `cmake /src && make` in their build files).
pub fn split_chain(cmd: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut in_single = false;
    let mut in_double = false;
    let mut chars = cmd.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '\'' if !in_double => {
                in_single = !in_single;
                cur.push(c);
            }
            '"' if !in_single => {
                in_double = !in_double;
                cur.push(c);
            }
            '&' if !in_single && !in_double && chars.peek() == Some(&'&') => {
                chars.next();
                parts.push(std::mem::take(&mut cur));
            }
            c => cur.push(c),
        }
    }
    parts.push(cur);
    parts.into_iter().map(|p| p.trim().to_string()).collect()
}

pub(crate) fn execute(container: &mut Container, cmd: &str) -> CmdResult {
    // `a && b && c` short-circuits like a shell.
    let chain = split_chain(cmd);
    let mut total = SimDuration::ZERO;
    let mut last = CmdResult::ok(SimDuration::ZERO);
    for part in chain {
        let words = shell_words(&part);
        if words.is_empty() {
            continue;
        }
        last = dispatch(container, &words);
        total += last.duration;
        if last.exit_code != 0 {
            break;
        }
    }
    CmdResult {
        exit_code: last.exit_code,
        duration: total,
        killed: last.killed,
    }
}

fn dispatch(container: &mut Container, words: &[String]) -> CmdResult {
    let argv0 = words[0].as_str();
    let args = &words[1..];
    match argv0 {
        "echo" => run_echo(container, args),
        "cmake" => run_cmake(container, args),
        "make" => run_make(container, args),
        "nvprof" => run_nvprof(container, args),
        "/usr/bin/time" | "time" => run_time(container, args),
        "cp" => run_cp(container, args),
        "ls" => run_ls(container, args),
        "cat" => run_cat(container, args),
        "mkdir" => CmdResult::ok(SimDuration::MILLI), // dirs are implicit
        "rm" => run_rm(container, args),
        "grep" => run_grep(container, args),
        "head" => run_head(container, args),
        "wc" => run_wc(container, args),
        "pwd" => {
            let d = format!("/{}", container.workdir());
            container.log(LogStream::Stdout, d);
            CmdResult::ok(SimDuration::MILLI)
        }
        "env" => {
            for line in [
                "PATH=/usr/local/cuda/bin:/usr/bin:/bin",
                "CUDA_HOME=/usr/local/cuda",
                "HOME=/root",
            ] {
                container.log(LogStream::Stdout, line.to_string());
            }
            CmdResult::ok(SimDuration::MILLI)
        }
        "true" | ":" => CmdResult::ok(SimDuration::MILLI),
        "false" => CmdResult::fail(1, SimDuration::MILLI),
        "sleep" => run_sleep(container, args),
        t if NETWORK_TOOLS.contains(&t) => {
            if container.limits.network {
                container.log(
                    LogStream::Stdout,
                    format!("{t}: ok (network enabled for this session)"),
                );
                CmdResult::ok(SimDuration::from_millis(200))
            } else {
                container.log(
                    LogStream::Stderr,
                    format!("{t}: network access is disabled inside RAI containers"),
                );
                CmdResult::fail(1, SimDuration::from_millis(5))
            }
        }
        prog if is_program_invocation(prog) => run_program(container, words),
        other => {
            container.log(
                LogStream::Stderr,
                format!("sh: {other}: command not found"),
            );
            CmdResult::fail(127, SimDuration::MILLI)
        }
    }
}

fn is_program_invocation(argv0: &str) -> bool {
    argv0.starts_with("./") || argv0.starts_with('/')
}

fn run_echo(container: &mut Container, args: &[String]) -> CmdResult {
    container.log(LogStream::Stdout, args.join(" "));
    CmdResult::ok(SimDuration::MILLI)
}

fn run_sleep(container: &mut Container, args: &[String]) -> CmdResult {
    let secs: f64 = args.first().and_then(|a| a.parse().ok()).unwrap_or(0.0);
    let _ = container;
    CmdResult::ok(SimDuration::from_secs_f64(secs))
}

/// `cmake <srcdir>`: requires `CMakeLists.txt`, records the executable
/// target, and "generates a Makefile" in the working directory.
fn run_cmake(container: &mut Container, args: &[String]) -> CmdResult {
    let srcdir = args
        .iter()
        .find(|a| !a.starts_with('-'))
        .cloned()
        .unwrap_or_else(|| "/src".to_string());
    let src = container.resolve_path(&srcdir);
    let lists_path = format!("{src}/CMakeLists.txt");
    let Some(lists) = container.fs.get(&lists_path).cloned() else {
        container.log(
            LogStream::Stderr,
            format!("CMake Error: The source directory \"{srcdir}\" does not appear to contain CMakeLists.txt."),
        );
        return CmdResult::fail(1, SimDuration::from_millis(120));
    };
    let text = String::from_utf8_lossy(&lists);
    let target = parse_add_executable(&text).unwrap_or_else(|| "a.out".to_string());
    let makefile = format!("# generated by rai cmake\nSRCDIR={src}\nTARGET={target}\n");
    let makefile_path = format!("{}/Makefile", container.workdir());
    container
        .fs
        .insert(&makefile_path, makefile.into_bytes())
        .expect("workdir path is valid");
    container.log(LogStream::Stdout, "-- The CUDA compiler identification is NVIDIA".to_string());
    container.log(
        LogStream::Stdout,
        "-- Hunter disabled: dependencies provided by the base image".to_string(),
    );
    container.log(
        LogStream::Stdout,
        format!("-- Configuring done; generating Makefile for target '{target}'"),
    );
    // cmake configure latency: fixed, small.
    CmdResult::ok(SimDuration::from_millis(900))
}

fn parse_add_executable(cmake: &str) -> Option<String> {
    let idx = cmake.find("add_executable(")?;
    let rest = &cmake[idx + "add_executable(".len()..];
    let name: String = rest
        .chars()
        .take_while(|c| !c.is_whitespace() && *c != ')' && *c != '(')
        .collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// `make`: "compiles" the sources — time proportional to source bytes,
/// diagnostics for marked sources, and a binary carrying the perf spec.
fn run_make(container: &mut Container, _args: &[String]) -> CmdResult {
    let makefile_path = format!("{}/Makefile", container.workdir());
    let Some(makefile) = container.fs.get(&makefile_path).cloned() else {
        container.log(
            LogStream::Stderr,
            "make: *** No targets specified and no makefile found.  Stop.".to_string(),
        );
        return CmdResult::fail(2, SimDuration::from_millis(10));
    };
    let text = String::from_utf8_lossy(&makefile);
    let srcdir = extract_var(&text, "SRCDIR").unwrap_or_else(|| "src".to_string());
    let target = extract_var(&text, "TARGET").unwrap_or_else(|| "a.out".to_string());

    // Collect compilable sources.
    let mut sources: Vec<(String, String)> = Vec::new();
    let prefix = format!("{srcdir}/");
    for (path, data) in container.fs.iter() {
        let in_srcdir = path.starts_with(&prefix);
        let compilable = [".cu", ".cpp", ".cc", ".c"].iter().any(|s| path.ends_with(s));
        if in_srcdir && compilable {
            sources.push((path.to_string(), String::from_utf8_lossy(data).into_owned()));
        }
    }
    if sources.is_empty() {
        container.log(
            LogStream::Stderr,
            format!("make: *** no source files found under {srcdir}.  Stop."),
        );
        return CmdResult::fail(2, SimDuration::from_millis(10));
    }

    let total_bytes: usize = sources.iter().map(|(_, s)| s.len()).sum();
    // Compile-time model: fixed nvcc startup plus per-KB cost.
    let duration =
        SimDuration::from_millis(1_500) + SimDuration::from_millis((total_bytes as u64 / 1024) * 40);
    let mem = 512 * 1024 * 1024;
    if let Some(kill) = container.charge(duration, mem) {
        return CmdResult::killed(kill, duration);
    }

    // Diagnostics: a marked syntax error aborts the build.
    for (path, text) in &sources {
        if text.contains("RAI_SYNTAX_ERROR") {
            container.log(
                LogStream::Stderr,
                format!("/{path}(1): error: expected a ';' (nvcc exited with status 2)"),
            );
            container.log(LogStream::Stderr, format!("make: *** [{target}] Error 2"));
            return CmdResult::fail(2, duration);
        }
        if text.contains("RAI_WARNING") {
            container.log(
                LogStream::Stderr,
                format!("/{path}(1): warning: variable declared but never referenced"),
            );
        }
    }

    let spec = PerfSpec::from_sources(sources.iter().map(|(_, s)| s.as_str()));
    for (_, text) in &sources {
        container.log(
            LogStream::Stdout,
            format!("[ nvcc ] compiling ({} bytes)", text.len()),
        );
    }
    let binary = format!("{BINARY_MAGIC}// {}\n", spec.to_directive());
    let bin_path = format!("{}/{target}", container.workdir());
    container
        .fs
        .insert(&bin_path, binary.into_bytes())
        .expect("workdir path is valid");
    container.log(LogStream::Stdout, format!("[100%] Built target {target}"));
    CmdResult::ok(duration)
}

fn extract_var(makefile: &str, var: &str) -> Option<String> {
    makefile
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{var}=")))
        .map(str::to_string)
}

/// Run a compiled program (`./ece408 /data/test10.hdf5 /data/model.hdf5`).
fn run_program(container: &mut Container, words: &[String]) -> CmdResult {
    let prog_path = container.resolve_path(&words[0]);
    let Some(bin) = container.fs.get(&prog_path).cloned() else {
        container.log(
            LogStream::Stderr,
            format!("sh: {}: No such file or directory", words[0]),
        );
        return CmdResult::fail(127, SimDuration::MILLI);
    };
    let content = String::from_utf8_lossy(&bin);
    let Some(spec_text) = content.strip_prefix(BINARY_MAGIC) else {
        container.log(
            LogStream::Stderr,
            format!("sh: {}: Permission denied (not an executable)", words[0]),
        );
        return CmdResult::fail(126, SimDuration::MILLI);
    };
    let spec = PerfSpec::parse(spec_text).unwrap_or_default();

    // Dataset selection: an explicit integer argument wins (Listing 2's
    // trailing `10000`), else the first .hdf5 argument with a nonzero
    // item count.
    let mut items: Option<u64> = words[1..]
        .iter()
        .find_map(|a| a.parse::<u64>().ok());
    let mut missing_file: Option<String> = None;
    for arg in &words[1..] {
        if arg.ends_with(".hdf5") {
            let path = container.resolve_path(arg);
            match container.fs.get(&path) {
                Some(data) => {
                    if items.is_none() {
                        if let Some(n) = hdf5_item_count(data).filter(|&n| n > 0) {
                            items = Some(n);
                        }
                    }
                }
                None => missing_file = Some(arg.clone()),
            }
        }
    }
    if let Some(missing) = missing_file {
        container.log(
            LogStream::Stderr,
            format!("unable to open dataset file {missing}"),
        );
        return CmdResult::fail(1, SimDuration::from_millis(40));
    }
    let Some(items) = items else {
        container.log(
            LogStream::Stderr,
            "usage: ece408 <data.hdf5> <model.hdf5> [count]".to_string(),
        );
        return CmdResult::fail(1, SimDuration::from_millis(5));
    };

    if spec.mode == ExecMode::Gpu && container.limits.gpus == 0 {
        container.log(
            LogStream::Stderr,
            "CUDA error: no CUDA-capable device is detected".to_string(),
        );
        return CmdResult::fail(1, SimDuration::from_millis(60));
    }

    let scale = container.program_time_scale(spec.mode == ExecMode::Gpu);
    let duration = SimDuration::from_secs_f64(spec.runtime_ms(items) * scale / 1000.0);
    if let Some(kill) = container.charge(duration, spec.memory_bytes) {
        if kill == KillReason::OutOfMemory {
            container.log(LogStream::Stderr, "Killed".to_string());
        }
        return CmdResult::killed(kill, duration);
    }

    container.log(LogStream::Stdout, "Loading fashion-mnist data...done".to_string());
    container.log(LogStream::Stdout, "Loading model...done".to_string());
    container.log(
        LogStream::Stdout,
        format!(
            "Done with {items} queries in elapsed = {:.3} s",
            duration.as_secs_f64()
        ),
    );
    container.log(LogStream::Stdout, format!("Correctness: {:.4}", spec.accuracy));
    CmdResult::ok(duration)
}

/// `nvprof [--export-profile FILE] <cmd…>`: profile a program run.
fn run_nvprof(container: &mut Container, args: &[String]) -> CmdResult {
    if container.limits.gpus == 0 {
        container.log(
            LogStream::Stderr,
            "======== Error: unified memory profiling failed (no CUDA device).".to_string(),
        );
        return CmdResult::fail(1, SimDuration::from_millis(50));
    }
    let mut profile_out: Option<String> = None;
    let mut rest = args;
    while let Some(first) = rest.first() {
        if first == "--export-profile" {
            profile_out = rest.get(1).cloned();
            rest = &rest[2.min(rest.len())..];
        } else if first.starts_with("--") {
            rest = &rest[1..];
        } else {
            break;
        }
    }
    if rest.is_empty() {
        container.log(LogStream::Stderr, "nvprof: no application specified".to_string());
        return CmdResult::fail(1, SimDuration::MILLI);
    }
    container.log(
        LogStream::Stderr,
        format!("==PROF== Profiling application: {}", rest.join(" ")),
    );
    let inner = dispatch(container, rest);
    if inner.killed.is_some() {
        return inner;
    }
    // Profiling overhead: ~10% of the profiled run.
    let overhead = inner.duration * 0.1;
    if let Some(file) = profile_out {
        let path = container.resolve_path(&file);
        let blob = format!("NVPROF-TIMELINE\ncmd={}\nspan_ms={}\n", rest.join(" "), inner.duration.as_millis());
        container
            .fs
            .insert(&path, blob.into_bytes())
            .ok();
        container.log(
            LogStream::Stderr,
            format!("==PROF== Generated result file: {file}"),
        );
    }
    CmdResult {
        exit_code: inner.exit_code,
        duration: inner.duration + overhead,
        killed: None,
    }
}

/// `/usr/bin/time <cmd…>`: run and report elapsed on stderr — "the
/// results from the time command are shown to the instructors during
/// grading."
fn run_time(container: &mut Container, args: &[String]) -> CmdResult {
    if args.is_empty() {
        return CmdResult::fail(1, SimDuration::MILLI);
    }
    let inner = dispatch(container, args);
    let secs = inner.duration.as_secs_f64();
    container.log(
        LogStream::Stderr,
        format!(
            "{:.2}user {:.2}system {}:{:05.2}elapsed 99%CPU",
            secs * 0.98,
            secs * 0.02,
            (secs as u64) / 60,
            secs % 60.0,
        ),
    );
    inner
}

/// `cp [-r] <src> <dst>`.
fn run_cp(container: &mut Container, args: &[String]) -> CmdResult {
    let recursive = args.iter().any(|a| a == "-r" || a == "-R" || a == "-a");
    let paths: Vec<&String> = args.iter().filter(|a| !a.starts_with('-')).collect();
    if paths.len() != 2 {
        container.log(LogStream::Stderr, "cp: expected source and destination".to_string());
        return CmdResult::fail(1, SimDuration::MILLI);
    }
    let src = container.resolve_path(paths[0]);
    let dst = container.resolve_path(paths[1]);
    if let Some(data) = container.fs.get(&src).cloned() {
        // Single file copy.
        container.fs.insert(&dst, data).ok();
        return CmdResult::ok(SimDuration::from_millis(5));
    }
    // Directory copy.
    let sub = container.fs.subtree(&src);
    if sub.is_empty() {
        container.log(
            LogStream::Stderr,
            format!("cp: cannot stat '{}': No such file or directory", paths[0]),
        );
        return CmdResult::fail(1, SimDuration::MILLI);
    }
    if !recursive {
        container.log(
            LogStream::Stderr,
            format!("cp: -r not specified; omitting directory '{}'", paths[0]),
        );
        return CmdResult::fail(1, SimDuration::MILLI);
    }
    let bytes = sub.total_size();
    container.fs.mount(&dst, &sub).ok();
    // Copy latency: 200 MB/s.
    CmdResult::ok(SimDuration::from_millis(5 + bytes / (200 * 1024)))
}

fn run_ls(container: &mut Container, args: &[String]) -> CmdResult {
    let dir = args
        .iter()
        .find(|a| !a.starts_with('-'))
        .map(|a| container.resolve_path(a))
        .unwrap_or_else(|| container.workdir().to_string());
    let prefix = format!("{dir}/");
    let mut names: Vec<String> = Vec::new();
    for path in container.fs.paths() {
        if let Some(rest) = path.strip_prefix(&prefix) {
            let first = rest.split('/').next().unwrap_or(rest);
            if !names.iter().any(|n| n == first) {
                names.push(first.to_string());
            }
        } else if path == dir {
            names.push(dir.rsplit('/').next().unwrap_or(&dir).to_string());
        }
    }
    names.sort();
    container.log(LogStream::Stdout, names.join("  "));
    CmdResult::ok(SimDuration::MILLI)
}

fn run_cat(container: &mut Container, args: &[String]) -> CmdResult {
    let mut code = 0;
    for a in args.iter().filter(|a| !a.starts_with('-')) {
        let path = container.resolve_path(a);
        match container.fs.get(&path).cloned() {
            Some(data) => {
                let text = String::from_utf8_lossy(&data).into_owned();
                for line in text.lines() {
                    container.log(LogStream::Stdout, line.to_string());
                }
            }
            None => {
                container.log(
                    LogStream::Stderr,
                    format!("cat: {a}: No such file or directory"),
                );
                code = 1;
            }
        }
    }
    CmdResult {
        exit_code: code,
        duration: SimDuration::MILLI,
        killed: None,
    }
}

/// `grep <pattern> <files…>`: substring match, exit 1 when nothing
/// matches (students grep build logs and sources).
fn run_grep(container: &mut Container, args: &[String]) -> CmdResult {
    let positional: Vec<&String> = args.iter().filter(|a| !a.starts_with('-')).collect();
    let Some((pattern, files)) = positional.split_first() else {
        container.log(LogStream::Stderr, "usage: grep PATTERN [FILE]...".to_string());
        return CmdResult::fail(2, SimDuration::MILLI);
    };
    let mut matched = false;
    for file in files {
        let path = container.resolve_path(file);
        match container.fs.get(&path).cloned() {
            Some(data) => {
                let text = String::from_utf8_lossy(&data).into_owned();
                for line in text.lines().filter(|l| l.contains(pattern.as_str())) {
                    matched = true;
                    container.log(LogStream::Stdout, line.to_string());
                }
            }
            None => {
                container.log(
                    LogStream::Stderr,
                    format!("grep: {file}: No such file or directory"),
                );
                return CmdResult::fail(2, SimDuration::MILLI);
            }
        }
    }
    CmdResult::fail(i32::from(!matched), SimDuration::MILLI)
}

/// `head [-n N] <file>`.
fn run_head(container: &mut Container, args: &[String]) -> CmdResult {
    let mut n = 10usize;
    let mut file = None;
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        if a == "-n" {
            n = iter.next().and_then(|v| v.parse().ok()).unwrap_or(10);
        } else if !a.starts_with('-') {
            file = Some(a.clone());
        }
    }
    let Some(file) = file else {
        return CmdResult::fail(1, SimDuration::MILLI);
    };
    let path = container.resolve_path(&file);
    match container.fs.get(&path).cloned() {
        Some(data) => {
            let text = String::from_utf8_lossy(&data).into_owned();
            for line in text.lines().take(n) {
                container.log(LogStream::Stdout, line.to_string());
            }
            CmdResult::ok(SimDuration::MILLI)
        }
        None => {
            container.log(
                LogStream::Stderr,
                format!("head: cannot open '{file}' for reading"),
            );
            CmdResult::fail(1, SimDuration::MILLI)
        }
    }
}

/// `wc -l <file>`: line count (the only wc mode students use here).
fn run_wc(container: &mut Container, args: &[String]) -> CmdResult {
    let Some(file) = args.iter().find(|a| !a.starts_with('-')) else {
        return CmdResult::fail(1, SimDuration::MILLI);
    };
    let path = container.resolve_path(file);
    match container.fs.get(&path).cloned() {
        Some(data) => {
            let lines = String::from_utf8_lossy(&data).lines().count();
            container.log(LogStream::Stdout, format!("{lines} {file}"));
            CmdResult::ok(SimDuration::MILLI)
        }
        None => {
            container.log(LogStream::Stderr, format!("wc: {file}: No such file or directory"));
            CmdResult::fail(1, SimDuration::MILLI)
        }
    }
}

fn run_rm(container: &mut Container, args: &[String]) -> CmdResult {
    let recursive = args.iter().any(|a| a.contains('r'));
    let mut code = 0;
    let paths: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with('-'))
        .map(|a| container.resolve_path(a))
        .collect();
    for p in paths {
        if container.fs.remove(&p).is_some() {
            continue;
        }
        if recursive && container.fs.remove_dir(&p) > 0 {
            continue;
        }
        container.log(
            LogStream::Stderr,
            format!("rm: cannot remove '/{p}': No such file or directory"),
        );
        code = 1;
    }
    CmdResult::fail(code, SimDuration::MILLI)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shell_word_splitting() {
        assert_eq!(
            shell_words("echo \"Building project\""),
            vec!["echo", "Building project"]
        );
        assert_eq!(
            shell_words("./ece408 /data/test10.hdf5 /data/model.hdf5"),
            vec!["./ece408", "/data/test10.hdf5", "/data/model.hdf5"]
        );
        assert_eq!(shell_words("echo 'a  b'  c"), vec!["echo", "a  b", "c"]);
        assert_eq!(shell_words("   "), Vec::<String>::new());
    }

    #[test]
    fn chain_splitting() {
        assert_eq!(split_chain("cmake /src && make"), vec!["cmake /src", "make"]);
        assert_eq!(split_chain("echo 'a && b'"), vec!["echo 'a && b'"]);
        assert_eq!(split_chain("a&&b && c"), vec!["a", "b", "c"]);
        assert_eq!(split_chain("single"), vec!["single"]);
    }

    #[test]
    fn parse_add_executable_name() {
        assert_eq!(
            parse_add_executable("project(x)\nadd_executable(ece408 src/main.cu)\n"),
            Some("ece408".to_string())
        );
        assert_eq!(parse_add_executable("nothing here"), None);
    }

    #[test]
    fn extract_makefile_var() {
        let m = "# generated\nSRCDIR=src\nTARGET=ece408\n";
        assert_eq!(extract_var(m, "SRCDIR"), Some("src".into()));
        assert_eq!(extract_var(m, "TARGET"), Some("ece408".into()));
        assert_eq!(extract_var(m, "MISSING"), None);
    }
}
