//! Container lifecycle: create from an image, mount volumes, run the
//! build script, collect the execution report, destroy.

use crate::exec::{execute, CmdResult};
use crate::image::Image;
use crate::limits::ResourceLimits;
use rai_archive::FileTree;
use rai_sim::SimDuration;

/// Why a container was killed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KillReason {
    /// Memory limit exceeded.
    OutOfMemory,
    /// The 1-hour (configurable) lifetime elapsed.
    LifetimeExceeded,
}

/// Container state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ContainerStatus {
    /// Created, nothing run yet.
    Created,
    /// Commands ran; the last one exited with this code.
    Exited(i32),
    /// A resource limit killed it.
    Killed(KillReason),
}

/// Which stream a log line was written to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LogStream {
    /// Standard output.
    Stdout,
    /// Standard error.
    Stderr,
}

/// One line of container output, as forwarded to the log topic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogLine {
    /// stdout or stderr.
    pub stream: LogStream,
    /// The text (no trailing newline).
    pub text: String,
}

impl LogLine {
    /// Render as the client prints it (stderr lines get a marker).
    pub fn render(&self) -> String {
        match self.stream {
            LogStream::Stdout => self.text.clone(),
            LogStream::Stderr => format!("[stderr] {}", self.text),
        }
    }
}

/// What the worker ships back after the container is destroyed.
#[derive(Clone, Debug)]
pub struct ExecutionReport {
    /// Final status.
    pub status: ContainerStatus,
    /// All output lines in order.
    pub log: Vec<LogLine>,
    /// Total simulated wall-clock consumed.
    pub elapsed: SimDuration,
    /// Peak resident memory observed.
    pub peak_memory: u64,
    /// The `/build` directory contents (uploaded to the file server).
    pub build_dir: FileTree,
    /// Per-command durations, in order (instructors' timing view).
    pub command_durations: Vec<SimDuration>,
}

impl ExecutionReport {
    /// Whether every command succeeded.
    pub fn success(&self) -> bool {
        matches!(self.status, ContainerStatus::Exited(0))
    }

    /// The program-reported elapsed time ("elapsed = X.XXX s"), i.e. the
    /// *internal timer* students see; `None` if no program ran.
    pub fn internal_timer_secs(&self) -> Option<f64> {
        self.log.iter().rev().find_map(|l| {
            let rest = l.text.split("elapsed = ").nth(1)?;
            rest.split_whitespace().next()?.parse().ok()
        })
    }
}

/// A running (simulated) container.
pub struct Container {
    /// The merged filesystem: image rootfs + mounted volumes + workdir.
    pub fs: FileTree,
    /// Resource limits in force.
    pub limits: ResourceLimits,
    image_name: String,
    workdir: String,
    status: ContainerStatus,
    log: Vec<LogLine>,
    elapsed: SimDuration,
    peak_memory: u64,
    command_durations: Vec<SimDuration>,
    gpu_speed: f64,
    time_dilation: f64,
}

impl Container {
    /// Create a container from a base image. The worker then mounts
    /// `/src` (the student's project) and uses `/build` as the working
    /// directory, per the paper.
    pub fn create(image: &Image, limits: ResourceLimits) -> Self {
        Container {
            fs: image.rootfs.clone(),
            limits,
            image_name: image.name.clone(),
            workdir: "build".to_string(),
            status: ContainerStatus::Created,
            log: Vec::new(),
            elapsed: SimDuration::ZERO,
            peak_memory: 0,
            command_durations: Vec::new(),
            gpu_speed: 1.0,
            time_dilation: 1.0,
        }
    }

    /// Relative GPU throughput of the host (1.0 = the paper's K80
    /// baseline; the early G2/K40 fleet is slower). Scales GPU-mode
    /// program runtimes.
    pub fn set_gpu_speed(&mut self, speed: f64) {
        self.gpu_speed = speed.max(0.01);
    }

    /// Host-side time dilation (>1.0 = contention from co-scheduled
    /// jobs). Models why the staff switched workers to one job at a
    /// time during the benchmarking weeks.
    pub fn set_time_dilation(&mut self, dilation: f64) {
        self.time_dilation = dilation.max(1.0);
    }

    /// Effective multiplier applied to GPU program runtimes.
    pub(crate) fn program_time_scale(&self, gpu: bool) -> f64 {
        let base = if gpu { 1.0 / self.gpu_speed } else { 1.0 };
        base * self.time_dilation
    }

    /// Mount a read-only volume at an absolute path (e.g. `/src`).
    pub fn mount(&mut self, path: &str, tree: &FileTree) {
        self.fs
            .mount(path.trim_start_matches('/'), tree)
            .expect("mount path is valid");
    }

    /// The working directory (normalized, no leading slash).
    pub fn workdir(&self) -> &str {
        &self.workdir
    }

    /// Set the working directory.
    pub fn set_workdir(&mut self, dir: &str) {
        self.workdir = dir.trim_start_matches('/').to_string();
    }

    /// The image this container was started from.
    pub fn image_name(&self) -> &str {
        &self.image_name
    }

    /// Resolve a command-line path against the container filesystem:
    /// absolute paths strip the leading `/`; `./x` and bare names are
    /// relative to the working directory.
    pub fn resolve_path(&self, arg: &str) -> String {
        if let Some(abs) = arg.strip_prefix('/') {
            abs.to_string()
        } else if let Some(rel) = arg.strip_prefix("./") {
            format!("{}/{rel}", self.workdir)
        } else {
            format!("{}/{arg}", self.workdir)
        }
    }

    /// Append a log line.
    pub fn log(&mut self, stream: LogStream, text: String) {
        self.log.push(LogLine { stream, text });
    }

    /// Charge a command's resource use against the limits. Returns the
    /// kill reason if a limit is tripped.
    pub(crate) fn charge(&mut self, duration: SimDuration, memory: u64) -> Option<KillReason> {
        self.peak_memory = self.peak_memory.max(memory);
        if memory > self.limits.memory_bytes {
            return Some(KillReason::OutOfMemory);
        }
        if self.elapsed + duration > self.limits.max_lifetime {
            return Some(KillReason::LifetimeExceeded);
        }
        None
    }

    /// Run one command. Returns its result; the container's status,
    /// elapsed time and log are updated.
    pub fn run_command(&mut self, cmd: &str) -> CmdResult {
        if let ContainerStatus::Killed(_) = self.status {
            return CmdResult {
                exit_code: 137,
                duration: SimDuration::ZERO,
                killed: match self.status {
                    ContainerStatus::Killed(r) => Some(r),
                    _ => None,
                },
            };
        }
        let mut result = execute(self, cmd);
        // Centralized lifetime enforcement: any command (including ones
        // that don't model memory, like `sleep`) is killed when it would
        // run past the container deadline.
        if result.killed.is_none() && self.elapsed + result.duration > self.limits.max_lifetime {
            result = CmdResult {
                exit_code: 137,
                duration: result.duration,
                killed: Some(KillReason::LifetimeExceeded),
            };
        }
        // Lifetime accrues even when the command is the one that tripped
        // the limit (clamped at the cap).
        self.elapsed = (self.elapsed + result.duration).min(self.limits.max_lifetime);
        self.command_durations.push(result.duration);
        self.status = match result.killed {
            Some(reason) => ContainerStatus::Killed(reason),
            None => ContainerStatus::Exited(result.exit_code),
        };
        result
    }

    /// Run a build script (the `commands.build` list): commands run in
    /// order; a failing command aborts the remainder, like the worker's
    /// step executor.
    pub fn run_script<'a>(&mut self, commands: impl IntoIterator<Item = &'a str>) {
        for cmd in commands {
            let r = self.run_command(cmd);
            if r.exit_code != 0 {
                break;
            }
        }
    }

    /// Destroy the container and produce the execution report ("after
    /// the execution is complete, the worker creates a .tar.bz2 of the
    /// container's /build directory").
    pub fn destroy(self) -> ExecutionReport {
        let build_dir = self.fs.subtree(&self.workdir);
        ExecutionReport {
            status: self.status,
            log: self.log,
            elapsed: self.elapsed,
            peak_memory: self.peak_memory,
            build_dir,
            command_durations: self.command_durations,
        }
    }

    /// Snapshot of the log so far (interactive sessions stream output
    /// incrementally instead of waiting for `destroy`).
    pub fn log_snapshot(&self) -> Vec<LogLine> {
        self.log.clone()
    }

    /// Elapsed simulated time so far.
    pub fn elapsed(&self) -> SimDuration {
        self.elapsed
    }

    /// Current status.
    pub fn status(&self) -> ContainerStatus {
        self.status
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::ImageRegistry;

    /// A student project with a GPU implementation at 470 ms full-dataset.
    fn project(perf: &str) -> FileTree {
        FileTree::new()
            .with(
                "CMakeLists.txt",
                &b"cmake_minimum_required(VERSION 3.0)\nadd_executable(ece408 main.cu)\n"[..],
            )
            .with(
                "main.cu",
                format!("// {perf}\n__global__ void forward() {{}}\nint main() {{}}\n").into_bytes(),
            )
    }

    fn gpu_project() -> FileTree {
        project("rai:perf mode=gpu full_ms=470 acc=0.93 mem_mb=2048")
    }

    fn make_container(tree: &FileTree, limits: ResourceLimits) -> Container {
        let reg = ImageRegistry::course_default();
        let img = reg.resolve("webgpu/rai:root").unwrap();
        let mut c = Container::create(img, limits);
        c.mount("/src", tree);
        c
    }

    /// The paper's Listing 1 default build, minus the YAML wrapper.
    const LISTING1_CMDS: [&str; 5] = [
        "echo \"Building project\"",
        "cmake /src",
        "make",
        "./ece408 /data/test10.hdf5 /data/model.hdf5",
        "nvprof --export-profile timeline.nvprof ./ece408 /data/test10.hdf5 /data/model.hdf5",
    ];

    #[test]
    fn listing1_full_pipeline() {
        let mut c = make_container(&gpu_project(), ResourceLimits::default());
        c.run_script(LISTING1_CMDS);
        let report = c.destroy();
        assert!(report.success(), "log: {:#?}", report.log);
        // echo landed in the log.
        assert!(report.log.iter().any(|l| l.text == "Building project"));
        // The run reported its internal timer.
        let secs = report.internal_timer_secs().unwrap();
        // test10 = 10 items: 35ms setup + 470 * 10/10000 ≈ 0.035s.
        assert!(secs < 0.1, "small dataset run should be fast, got {secs}");
        // nvprof produced the timeline file in /build.
        assert!(report.build_dir.contains("timeline.nvprof"));
        // The binary is in /build too.
        assert!(report.build_dir.contains("ece408"));
    }

    #[test]
    fn listing2_final_submission_pipeline() {
        let mut c = make_container(&gpu_project(), ResourceLimits::default());
        c.run_script([
            "echo \"Submitting project\"",
            "cp -r /src /build/submission_code",
            "cmake /src",
            "make",
            "/usr/bin/time ./ece408 /data/testfull.hdf5 /data/model.hdf5 10000",
        ]);
        let report = c.destroy();
        assert!(report.success(), "log: {:#?}", report.log);
        // Source snapshot captured for the graders.
        assert!(report.build_dir.contains("submission_code/main.cu"));
        // Internal timer ≈ 470ms + 35ms setup.
        let secs = report.internal_timer_secs().unwrap();
        assert!((secs - 0.505).abs() < 0.01, "got {secs}");
        // /usr/bin/time reported to stderr for the instructors.
        assert!(report
            .log
            .iter()
            .any(|l| l.stream == LogStream::Stderr && l.text.contains("elapsed")));
    }

    #[test]
    fn cpu_baseline_takes_half_hour_on_full_dataset() {
        let tree = project("no directive here");
        let mut c = make_container(&tree, ResourceLimits::default());
        c.run_script(["cmake /src", "make", "./ece408 /data/testfull.hdf5 /data/model.hdf5"]);
        let report = c.destroy();
        assert!(report.success(), "log: {:#?}", report.log);
        let secs = report.internal_timer_secs().unwrap();
        assert!((1_790.0..=1_810.0).contains(&secs), "~30 min, got {secs}");
    }

    #[test]
    fn gpu_program_without_gpu_fails() {
        let mut c = make_container(&gpu_project(), ResourceLimits::cpu_only());
        c.run_script(["cmake /src", "make", "./ece408 /data/test10.hdf5 /data/model.hdf5"]);
        let report = c.destroy();
        assert!(!report.success());
        assert!(report
            .log
            .iter()
            .any(|l| l.text.contains("no CUDA-capable device")));
    }

    #[test]
    fn syntax_error_aborts_script() {
        let tree = FileTree::new()
            .with("CMakeLists.txt", &b"add_executable(ece408 main.cu)"[..])
            .with("main.cu", &b"RAI_SYNTAX_ERROR int main(){}"[..]);
        let mut c = make_container(&tree, ResourceLimits::default());
        c.run_script(["cmake /src", "make", "./ece408 /data/test10.hdf5 /data/model.hdf5"]);
        let report = c.destroy();
        assert_eq!(report.status, ContainerStatus::Exited(2));
        assert!(report.log.iter().any(|l| l.text.contains("error:")));
        // The program never ran.
        assert!(report.internal_timer_secs().is_none());
    }

    #[test]
    fn missing_cmakelists_fails_cleanly() {
        let tree = FileTree::new().with("main.cu", &b"int main(){}"[..]);
        let mut c = make_container(&tree, ResourceLimits::default());
        c.run_script(["cmake /src", "make"]);
        let report = c.destroy();
        assert!(!report.success());
        assert!(report.log.iter().any(|l| l.text.contains("CMakeLists.txt")));
    }

    #[test]
    fn oom_kill() {
        let tree = project("rai:perf mode=gpu full_ms=100 acc=0.9 mem_mb=9000");
        let mut c = make_container(&tree, ResourceLimits::default()); // 8 GB cap
        c.run_script(["cmake /src", "make", "./ece408 /data/test10.hdf5 /data/model.hdf5"]);
        let report = c.destroy();
        assert_eq!(report.status, ContainerStatus::Killed(KillReason::OutOfMemory));
        assert!(report.log.iter().any(|l| l.text == "Killed"));
    }

    #[test]
    fn lifetime_kill_on_infinite_loop() {
        // A "hang" (sleep longer than the lifetime cap).
        let mut c = make_container(&gpu_project(), ResourceLimits::default());
        c.run_script(["sleep 4000"]); // > 1 hour
        let report = c.destroy();
        assert_eq!(
            report.status,
            ContainerStatus::Killed(KillReason::LifetimeExceeded)
        );
        assert!(report.elapsed <= ResourceLimits::default().max_lifetime);
    }

    #[test]
    fn killed_container_refuses_further_commands() {
        let mut c = make_container(&gpu_project(), ResourceLimits::default());
        c.run_command("sleep 4000");
        let r = c.run_command("echo should-not-run");
        assert_eq!(r.exit_code, 137);
        let report = c.destroy();
        assert!(!report.log.iter().any(|l| l.text == "should-not-run"));
    }

    #[test]
    fn network_tools_denied() {
        let mut c = make_container(&gpu_project(), ResourceLimits::default());
        for cmd in ["curl http://example.com", "git clone x", "apt-get install y", "pip install z"] {
            let r = c.run_command(cmd);
            assert_ne!(r.exit_code, 0, "{cmd} should fail");
        }
        let report = c.destroy();
        assert!(report
            .log
            .iter()
            .any(|l| l.text.contains("network access is disabled")));
    }

    #[test]
    fn network_enabled_session_allows_tools() {
        let mut c = make_container(
            &gpu_project(),
            ResourceLimits::default().with_network(true),
        );
        assert_eq!(c.run_command("curl http://example.com").exit_code, 0);
    }

    #[test]
    fn unknown_command_is_127() {
        let mut c = make_container(&gpu_project(), ResourceLimits::default());
        let r = c.run_command("frobnicate --all");
        assert_eq!(r.exit_code, 127);
    }

    #[test]
    fn misc_shell_commands() {
        let mut c = make_container(&gpu_project(), ResourceLimits::default());
        c.run_script([
            "cmake /src",
            "make",
            "ls /build",
            "cat /src/CMakeLists.txt",
            "rm /build/Makefile",
        ]);
        let report = c.destroy();
        assert!(report.success(), "log: {:#?}", report.log);
        assert!(report.log.iter().any(|l| l.text.contains("ece408")));
        assert!(report.log.iter().any(|l| l.text.contains("add_executable")));
        assert!(!report.build_dir.contains("Makefile"));
    }

    #[test]
    fn command_chains_short_circuit() {
        let mut c = make_container(&gpu_project(), ResourceLimits::default());
        // A chained student build file: one line, full pipeline.
        let r = c.run_command("cmake /src && make && ./ece408 /data/test10.hdf5 /data/model.hdf5");
        assert_eq!(r.exit_code, 0);
        // Failure in the middle stops the chain.
        let r = c.run_command("false && echo never-runs");
        assert_eq!(r.exit_code, 1);
        let report = c.destroy();
        assert!(report.log.iter().any(|l| l.text.contains("elapsed =")));
        assert!(!report.log.iter().any(|l| l.text == "never-runs"));
    }

    #[test]
    fn text_tools() {
        let mut c = make_container(&gpu_project(), ResourceLimits::default());
        c.run_script([
            "grep global /src/main.cu",
            "head -n 1 /src/main.cu",
            "wc -l /src/main.cu",
            "pwd",
            "env",
        ]);
        let report = c.destroy();
        assert!(report.success(), "log: {:#?}", report.log);
        assert!(report.log.iter().any(|l| l.text.contains("__global__")));
        assert!(report.log.iter().any(|l| l.text == "/build"));
        assert!(report.log.iter().any(|l| l.text.starts_with("PATH=")));
        // grep with no match exits 1.
        let mut c = make_container(&gpu_project(), ResourceLimits::default());
        assert_eq!(c.run_command("grep nonexistent-needle /src/main.cu").exit_code, 1);
    }

    #[test]
    fn warnings_do_not_fail_build() {
        let tree = FileTree::new()
            .with("CMakeLists.txt", &b"add_executable(ece408 main.cu)"[..])
            .with(
                "main.cu",
                &b"// RAI_WARNING unused var\n// rai:perf mode=gpu full_ms=500 acc=0.9 mem_mb=100\n"[..],
            );
        let mut c = make_container(&tree, ResourceLimits::default());
        c.run_script(["cmake /src", "make"]);
        let report = c.destroy();
        assert!(report.success());
        assert!(report.log.iter().any(|l| l.text.contains("warning:")));
    }

    #[test]
    fn per_command_durations_recorded() {
        let mut c = make_container(&gpu_project(), ResourceLimits::default());
        c.run_script(["echo hi", "cmake /src", "make"]);
        let report = c.destroy();
        assert_eq!(report.command_durations.len(), 3);
        assert!(report.command_durations[2] > report.command_durations[0]);
        assert_eq!(
            report.elapsed,
            report
                .command_durations
                .iter()
                .fold(SimDuration::ZERO, |a, &d| a + d)
        );
    }

    #[test]
    fn gpu_speed_scales_gpu_runtime_only() {
        // Same program on a K40-class host (0.6× K80) runs ~1.67× longer.
        let run = |speed: f64| {
            let mut c = make_container(&gpu_project(), ResourceLimits::default());
            c.set_gpu_speed(speed);
            c.run_script(["cmake /src", "make", "./ece408 /data/testfull.hdf5 /data/model.hdf5"]);
            c.destroy().internal_timer_secs().unwrap()
        };
        let k80 = run(1.0);
        let k40 = run(0.6);
        assert!((k40 / k80 - 1.0 / 0.6).abs() < 0.01, "k80={k80} k40={k40}");
    }

    #[test]
    fn time_dilation_inflates_measured_runtime() {
        let run = |dilation: f64| {
            let mut c = make_container(&gpu_project(), ResourceLimits::default());
            c.set_time_dilation(dilation);
            c.run_script(["cmake /src", "make", "./ece408 /data/testfull.hdf5 /data/model.hdf5"]);
            c.destroy().internal_timer_secs().unwrap()
        };
        let clean = run(1.0);
        let contended = run(1.5);
        assert!(contended > clean * 1.4, "clean={clean} contended={contended}");
        // Dilation below 1.0 clamps (no speedup from contention).
        let clamped = run(0.5);
        assert!((clamped - clean).abs() < 1e-9);
    }

    #[test]
    fn missing_dataset_file_errors() {
        let mut c = make_container(&gpu_project(), ResourceLimits::default());
        c.run_script(["cmake /src", "make", "./ece408 /data/nonexistent.hdf5 /data/model.hdf5"]);
        let report = c.destroy();
        assert!(!report.success());
        assert!(report
            .log
            .iter()
            .any(|l| l.text.contains("unable to open dataset")));
    }
}
