//! # rai-sandbox — the container runtime (paper §IV/§V "Container Execution")
//!
//! Every student command runs "within a sandboxed container": a Docker
//! container started from a whitelisted base image, with the
//! nvidia-docker CUDA volume mounted, the project at `/src`, a fresh
//! `/build` working directory, *no network*, 8 GB of memory and a 1-hour
//! maximum lifetime. This crate reproduces that runtime as a
//! deterministic simulation:
//!
//! * [`image`] — base-image registry with the instructor's whitelist,
//!   preloaded `/data` volumes (test datasets, model weights) and a pull
//!   latency model;
//! * [`limits`] — the paper's resource-limit set (memory, lifetime,
//!   network) with its defaults;
//! * [`perf`] — the performance model: student sources carry a
//!   `rai:perf` directive (mode, full-dataset runtime, accuracy, memory
//!   footprint) that the "compiler" bakes into the produced binary and
//!   the "program" replays at run time — this is the substitution for
//!   real CUDA execution, and what the workload models tune per team;
//! * [`exec`] — the build-command interpreter (`echo`, `cmake`, `make`,
//!   `nvprof`, `/usr/bin/time`, `cp -r`, program invocation), charging
//!   simulated time/memory and enforcing the limits;
//! * [`container`] — container lifecycle (create → run commands →
//!   destroy), mounts, GPU attachment, and the execution report the
//!   worker ships back.

pub mod container;
pub mod exec;
pub mod image;
pub mod limits;
pub mod perf;

pub use container::{Container, ContainerStatus, ExecutionReport, KillReason, LogLine, LogStream};
pub use image::{Image, ImageError, ImageRegistry};
pub use limits::ResourceLimits;
pub use perf::PerfSpec;
