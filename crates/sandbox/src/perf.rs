//! The performance model — the substitution for real CUDA execution.
//!
//! We obviously cannot run student CUDA kernels on a K80 inside this
//! reproduction. Instead, a source file may carry a `rai:perf` directive
//! describing how the *resulting program* behaves:
//!
//! ```text
//! // rai:perf mode=gpu full_ms=470 acc=0.93 mem_mb=2048
//! ```
//!
//! * `mode` — `cpu` (the provided serial baseline) or `gpu`;
//! * `full_ms` — wall-clock milliseconds to process the **full**
//!   10 000-image dataset;
//! * `acc` — classification accuracy the program reports;
//! * `mem_mb` — resident memory while running.
//!
//! The "compiler" (`make`) bakes the directive into the produced binary;
//! program invocation replays it, scaling runtime by the dataset's item
//! count. Absent a directive the defaults describe the course's provided
//! baseline: a serial CPU implementation that "took around 30 minutes to
//! complete using the full dataset" (paper §VI).

/// Execution mode of the student program.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Serial CPU implementation (the provided baseline).
    Cpu,
    /// CUDA implementation (requires a GPU in the container).
    Gpu,
}

/// Parsed performance directive.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PerfSpec {
    /// CPU or GPU execution.
    pub mode: ExecMode,
    /// Milliseconds to process the full 10 000-item dataset.
    pub full_dataset_ms: f64,
    /// Reported accuracy in `[0, 1]`.
    pub accuracy: f64,
    /// Resident memory in bytes while running.
    pub memory_bytes: u64,
}

/// Items in the full dataset (`/data/testfull.hdf5`).
pub const FULL_DATASET_ITEMS: u64 = 10_000;

impl Default for PerfSpec {
    /// The provided serial baseline: ~30 minutes on the full dataset.
    fn default() -> Self {
        PerfSpec {
            mode: ExecMode::Cpu,
            full_dataset_ms: 30.0 * 60.0 * 1000.0,
            accuracy: 0.8714,
            memory_bytes: 1024 * 1024 * 1024,
        }
    }
}

impl PerfSpec {
    /// Parse the first `rai:perf` directive found in a source file.
    pub fn parse(source: &str) -> Option<PerfSpec> {
        let line = source.lines().find(|l| l.contains("rai:perf"))?;
        let after = line.split("rai:perf").nth(1)?;
        let mut spec = PerfSpec::default();
        for token in after.split_whitespace() {
            let Some((k, v)) = token.split_once('=') else {
                continue;
            };
            match k {
                "mode" => {
                    spec.mode = match v {
                        "gpu" => ExecMode::Gpu,
                        _ => ExecMode::Cpu,
                    }
                }
                "full_ms" => {
                    if let Ok(x) = v.parse::<f64>() {
                        spec.full_dataset_ms = x.max(0.0);
                    }
                }
                "acc" => {
                    if let Ok(x) = v.parse::<f64>() {
                        spec.accuracy = x.clamp(0.0, 1.0);
                    }
                }
                "mem_mb" => {
                    if let Ok(x) = v.parse::<u64>() {
                        spec.memory_bytes = x * 1024 * 1024;
                    }
                }
                _ => {}
            }
        }
        Some(spec)
    }

    /// Scan a set of sources; the first directive wins, else the
    /// baseline default.
    pub fn from_sources<'a>(sources: impl IntoIterator<Item = &'a str>) -> PerfSpec {
        for s in sources {
            if let Some(spec) = Self::parse(s) {
                return spec;
            }
        }
        PerfSpec::default()
    }

    /// Runtime in milliseconds on a dataset of `items` items. Includes a
    /// fixed setup cost (model load, cuDNN init) so tiny datasets don't
    /// complete in zero time.
    pub fn runtime_ms(&self, items: u64) -> f64 {
        const SETUP_MS: f64 = 35.0;
        SETUP_MS + self.full_dataset_ms * (items as f64 / FULL_DATASET_ITEMS as f64)
    }

    /// Serialize into the directive format (what `make` writes into the
    /// "binary").
    pub fn to_directive(&self) -> String {
        format!(
            "rai:perf mode={} full_ms={} acc={} mem_mb={}",
            match self.mode {
                ExecMode::Cpu => "cpu",
                ExecMode::Gpu => "gpu",
            },
            self.full_dataset_ms,
            self.accuracy,
            self.memory_bytes / (1024 * 1024),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_directive() {
        let src = "#include <cuda.h>\n// rai:perf mode=gpu full_ms=470 acc=0.93 mem_mb=2048\nint main(){}\n";
        let s = PerfSpec::parse(src).unwrap();
        assert_eq!(s.mode, ExecMode::Gpu);
        assert_eq!(s.full_dataset_ms, 470.0);
        assert_eq!(s.accuracy, 0.93);
        assert_eq!(s.memory_bytes, 2048 * 1024 * 1024);
    }

    #[test]
    fn default_is_thirty_minute_baseline() {
        let s = PerfSpec::default();
        assert_eq!(s.mode, ExecMode::Cpu);
        assert!((s.full_dataset_ms - 1_800_000.0).abs() < 1e-9);
    }

    #[test]
    fn no_directive_returns_none() {
        assert!(PerfSpec::parse("int main() { return 0; }").is_none());
        // But from_sources falls back to the baseline.
        let s = PerfSpec::from_sources(["int main(){}"]);
        assert_eq!(s, PerfSpec::default());
    }

    #[test]
    fn runtime_scales_with_dataset() {
        let s = PerfSpec::parse("// rai:perf mode=gpu full_ms=1000 acc=0.9 mem_mb=100").unwrap();
        let full = s.runtime_ms(FULL_DATASET_ITEMS);
        let small = s.runtime_ms(10);
        assert!((full - 1035.0).abs() < 1e-9);
        assert!((small - 36.0).abs() < 1e-9);
    }

    #[test]
    fn directive_round_trips() {
        let s = PerfSpec {
            mode: ExecMode::Gpu,
            full_dataset_ms: 512.5,
            accuracy: 0.91,
            memory_bytes: 3 * 1024 * 1024 * 1024,
        };
        let text = format!("// {}\n", s.to_directive());
        assert_eq!(PerfSpec::parse(&text).unwrap(), s);
    }

    #[test]
    fn malformed_values_fall_back() {
        let s = PerfSpec::parse("// rai:perf mode=warp full_ms=fast acc=2.5").unwrap();
        assert_eq!(s.mode, ExecMode::Cpu);
        assert_eq!(s.full_dataset_ms, PerfSpec::default().full_dataset_ms);
        assert_eq!(s.accuracy, 1.0, "accuracy clamps to [0,1]");
    }
}
