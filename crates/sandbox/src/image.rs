//! Base images and the image registry.
//!
//! The default RAI image (`webgpu/rai:root`) ships "the latest CUDA
//! toolkit along with CUDNN and other neural network frameworks such as
//! Tensorflow and Torch7" plus the course datasets under `/data`.
//! Students pick from an instructor whitelist; if a worker does not have
//! an image locally, it is "pulled from the Docker repository" (we model
//! the pull latency).

use rai_archive::FileTree;
use rai_sim::SimDuration;
use std::collections::BTreeMap;

/// A container base image.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Image {
    /// Full name, e.g. `webgpu/rai:root`.
    pub name: String,
    /// Files baked into the image (datasets, preinstalled tool markers).
    pub rootfs: FileTree,
    /// Download size in bytes (drives first-pull latency).
    pub size_bytes: u64,
    /// Tools available inside (consulted by the command interpreter).
    pub tools: Vec<String>,
}

/// Image resolution errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ImageError {
    /// Image is not on the instructor whitelist.
    NotWhitelisted(String),
    /// Image does not exist in the repository at all.
    NotFound(String),
}

impl std::fmt::Display for ImageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImageError::NotWhitelisted(n) => write!(f, "image {n:?} is not whitelisted"),
            ImageError::NotFound(n) => write!(f, "image {n:?} not found in repository"),
        }
    }
}

impl std::error::Error for ImageError {}

/// The image repository plus whitelist, shared by all workers.
#[derive(Clone, Debug, Default)]
pub struct ImageRegistry {
    images: BTreeMap<String, Image>,
    whitelist: Vec<String>,
}

/// Modeled network bandwidth for image pulls (100 MB/s).
const PULL_BYTES_PER_MS: u64 = 100 * 1024 * 1024 / 1000;

impl ImageRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The registry used for the Applied Parallel Programming course:
    /// the default `webgpu/rai:root` image (CUDA + cuDNN + frameworks +
    /// the HDF5 course data) and a couple of whitelisted alternates.
    pub fn course_default() -> Self {
        let mut reg = Self::new();
        let mut rootfs = FileTree::new();
        // Course data volume: a small test split, the full evaluation
        // set, and the fixed pre-trained model weights.
        rootfs
            .insert("data/test10.hdf5", make_hdf5_stub("test10", 10))
            .expect("static path");
        rootfs
            .insert("data/testfull.hdf5", make_hdf5_stub("testfull", 10_000))
            .expect("static path");
        rootfs
            .insert("data/model.hdf5", make_hdf5_stub("model", 0))
            .expect("static path");
        let tools = [
            "echo", "cmake", "make", "nvprof", "time", "cp", "nvcc", "g++", "cudnn", "tensorflow",
            "torch7",
        ];
        reg.add_image(Image {
            name: "webgpu/rai:root".into(),
            rootfs: rootfs.clone(),
            size_bytes: 4 * 1024 * 1024 * 1024, // CUDA images are huge
            tools: tools.iter().map(|s| s.to_string()).collect(),
        });
        reg.add_image(Image {
            name: "webgpu/rai:cuda8".into(),
            rootfs: rootfs.clone(),
            size_bytes: 3 * 1024 * 1024 * 1024,
            tools: tools.iter().map(|s| s.to_string()).collect(),
        });
        // Exists in the repo but NOT whitelisted (tests the deny path).
        reg.add_unlisted_image(Image {
            name: "malicious/miner:latest".into(),
            rootfs: FileTree::new(),
            size_bytes: 100 * 1024 * 1024,
            tools: vec!["echo".into()],
        });
        reg
    }

    /// Add an image and whitelist it.
    pub fn add_image(&mut self, image: Image) {
        self.whitelist.push(image.name.clone());
        self.images.insert(image.name.clone(), image);
    }

    /// Add an image to the repository without whitelisting it.
    pub fn add_unlisted_image(&mut self, image: Image) {
        self.images.insert(image.name.clone(), image);
    }

    /// Whitelisted image names.
    pub fn whitelist(&self) -> &[String] {
        &self.whitelist
    }

    /// Resolve a student-requested image, enforcing the whitelist.
    pub fn resolve(&self, name: &str) -> Result<&Image, ImageError> {
        if !self.whitelist.iter().any(|w| w == name) {
            return Err(ImageError::NotWhitelisted(name.to_string()));
        }
        self.images
            .get(name)
            .ok_or_else(|| ImageError::NotFound(name.to_string()))
    }

    /// Time to pull an image that is not cached on the worker.
    pub fn pull_latency(&self, name: &str) -> SimDuration {
        match self.images.get(name) {
            Some(img) => SimDuration::from_millis(img.size_bytes / PULL_BYTES_PER_MS),
            None => SimDuration::ZERO,
        }
    }
}

/// A recognizable stand-in for the course's HDF5 files: a tiny header
/// plus an item count the program model reads back.
fn make_hdf5_stub(name: &str, items: u64) -> Vec<u8> {
    format!("\u{0089}HDF\nname={name}\nitems={items}\n").into_bytes()
}

/// Parse the item count out of a stub HDF5 file.
pub fn hdf5_item_count(data: &[u8]) -> Option<u64> {
    let text = std::str::from_utf8(data).ok()?;
    text.lines()
        .find_map(|l| l.strip_prefix("items="))
        .and_then(|v| v.parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn course_registry_resolves_default() {
        let reg = ImageRegistry::course_default();
        let img = reg.resolve("webgpu/rai:root").unwrap();
        assert!(img.rootfs.contains("data/test10.hdf5"));
        assert!(img.tools.iter().any(|t| t == "nvprof"));
    }

    #[test]
    fn whitelist_enforced() {
        let reg = ImageRegistry::course_default();
        assert_eq!(
            reg.resolve("malicious/miner:latest"),
            Err(ImageError::NotWhitelisted("malicious/miner:latest".into()))
        );
        assert_eq!(
            reg.resolve("nonexistent:tag"),
            Err(ImageError::NotWhitelisted("nonexistent:tag".into()))
        );
    }

    #[test]
    fn whitelisted_but_missing_is_not_found() {
        let mut reg = ImageRegistry::new();
        reg.whitelist.push("ghost:1".into());
        assert_eq!(reg.resolve("ghost:1"), Err(ImageError::NotFound("ghost:1".into())));
    }

    #[test]
    fn pull_latency_scales_with_size() {
        let reg = ImageRegistry::course_default();
        let big = reg.pull_latency("webgpu/rai:root");
        let small = reg.pull_latency("malicious/miner:latest");
        assert!(big > small);
        assert!(big >= SimDuration::from_secs(30), "4GB at 100MB/s ≈ 40s, got {big}");
    }

    #[test]
    fn hdf5_stub_round_trips_item_count() {
        let data = make_hdf5_stub("testfull", 10_000);
        assert_eq!(hdf5_item_count(&data), Some(10_000));
        assert_eq!(hdf5_item_count(b"not hdf5"), None);
    }
}
