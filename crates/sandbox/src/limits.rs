//! Container resource limits.
//!
//! Paper §V: "the container is configured with limited RAM and no
//! network access … only 8GB of memory, and a maximum lifetime of 1
//! hour. These limits can be changed using the RAI worker configuration
//! file."

use rai_sim::SimDuration;

/// Resource limits applied to a container.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResourceLimits {
    /// Maximum resident memory in bytes.
    pub memory_bytes: u64,
    /// Maximum container lifetime (wall clock inside the simulation).
    pub max_lifetime: SimDuration,
    /// Whether the container may reach the network.
    pub network: bool,
    /// Number of GPUs visible inside the container.
    pub gpus: u32,
}

impl Default for ResourceLimits {
    /// The paper's defaults: 8 GB, 1 hour, no network, one GPU volume.
    fn default() -> Self {
        ResourceLimits {
            memory_bytes: 8 * 1024 * 1024 * 1024,
            max_lifetime: SimDuration::from_hours(1),
            network: false,
            gpus: 1,
        }
    }
}

impl ResourceLimits {
    /// A CPU-only variant (early-project G2-era workers running the
    /// baseline serial code don't need the GPU volume).
    pub fn cpu_only() -> Self {
        ResourceLimits {
            gpus: 0,
            // The serial baseline takes ~30 minutes; leave the 1 h cap.
            ..Default::default()
        }
    }

    /// Builder: override the memory cap.
    pub fn with_memory_bytes(mut self, bytes: u64) -> Self {
        self.memory_bytes = bytes;
        self
    }

    /// Builder: override the lifetime cap.
    pub fn with_max_lifetime(mut self, d: SimDuration) -> Self {
        self.max_lifetime = d;
        self
    }

    /// Builder: enable network (instructor debugging sessions only).
    pub fn with_network(mut self, enabled: bool) -> Self {
        self.network = enabled;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let l = ResourceLimits::default();
        assert_eq!(l.memory_bytes, 8 * 1024 * 1024 * 1024);
        assert_eq!(l.max_lifetime, SimDuration::from_hours(1));
        assert!(!l.network);
        assert_eq!(l.gpus, 1);
    }

    #[test]
    fn builders() {
        let l = ResourceLimits::default()
            .with_memory_bytes(1024)
            .with_max_lifetime(SimDuration::from_mins(5))
            .with_network(true);
        assert_eq!(l.memory_bytes, 1024);
        assert_eq!(l.max_lifetime, SimDuration::from_mins(5));
        assert!(l.network);
    }

    #[test]
    fn cpu_only_has_no_gpu() {
        assert_eq!(ResourceLimits::cpu_only().gpus, 0);
    }
}
