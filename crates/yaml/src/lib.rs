//! # rai-yaml — the YAML subset used by `rai-build.yml`
//!
//! RAI's execution specification (paper §V, Listings 1 and 2) is a YAML
//! document: a nested block mapping with a block sequence of build
//! commands, where long commands may be folded across lines. The offline
//! dependency set has no YAML crate, so this is a from-scratch
//! implementation of exactly the subset RAI needs — with enough slack
//! that arbitrary student-authored build files parse predictably.
//!
//! Supported syntax:
//!
//! * block mappings (`key: value`, `key:` + indented block), order
//!   preserved;
//! * block sequences (`- item`, `-` + indented block);
//! * plain scalars with type inference (null/bool/int/float/string);
//! * single- and double-quoted scalars (with `\"`-style escapes);
//! * folded continuation lines for plain scalars in sequences and
//!   mapping values (the Listing 1 `nvprof … ⏎ ./ece408 …` case);
//! * block scalars — literal `|`/`|-` and folded `>`/`>-` — for
//!   multi-line build scripts;
//! * flow sequences `[a, b, c]` and flow mappings `{a: 1}`;
//! * `#` comments and blank lines anywhere.
//!
//! ```
//! let doc = rai_yaml::parse("rai:\n  version: 0.1\n  image: webgpu/rai:root\n").unwrap();
//! let version = doc.path(&["rai", "version"]).unwrap();
//! assert_eq!(version.as_f64(), Some(0.1));
//! ```

pub mod emit;
pub mod error;
pub mod parser;
pub mod scanner;
pub mod value;

pub use emit::to_string;
pub use error::{YamlError, YamlResult};
pub use parser::parse;
pub use value::Yaml;
