//! Block-style emitter. `parse(to_string(v))` reconstructs `v` for every
//! value the parser can produce (verified by a proptest round-trip in
//! `tests/roundtrip.rs`).

use crate::scanner::infer_plain;
use crate::value::{format_float, Yaml};

/// Serialize a value as a block-style YAML document (trailing newline
/// included for non-empty documents).
pub fn to_string(v: &Yaml) -> String {
    let mut out = String::new();
    emit_node(v, 0, &mut out);
    out
}

fn push_indent(indent: usize, out: &mut String) {
    for _ in 0..indent {
        out.push(' ');
    }
}

fn emit_node(v: &Yaml, indent: usize, out: &mut String) {
    match v {
        Yaml::Map(m) if !m.is_empty() => {
            for (k, val) in m {
                push_indent(indent, out);
                out.push_str(&emit_key(k));
                out.push(':');
                emit_value_after_key(val, indent, out);
            }
        }
        Yaml::Seq(s) if !s.is_empty() => {
            for item in s {
                push_indent(indent, out);
                out.push('-');
                emit_value_after_key(item, indent, out);
            }
        }
        other => {
            push_indent(indent, out);
            out.push_str(&emit_scalar_or_empty_flow(other));
            out.push('\n');
        }
    }
}

/// Emit a value that follows `key:` or `-` on the same line (scalars,
/// empty collections) or as an indented block (non-empty collections).
fn emit_value_after_key(v: &Yaml, indent: usize, out: &mut String) {
    match v {
        Yaml::Map(m) if !m.is_empty() => {
            out.push('\n');
            emit_node(v, indent + 2, out);
            let _ = m;
        }
        Yaml::Seq(s) if !s.is_empty() => {
            out.push('\n');
            emit_node(v, indent + 2, out);
            let _ = s;
        }
        Yaml::Null => out.push('\n'),
        other => {
            out.push(' ');
            out.push_str(&emit_scalar_or_empty_flow(other));
            out.push('\n');
        }
    }
}

fn emit_scalar_or_empty_flow(v: &Yaml) -> String {
    match v {
        Yaml::Null => "~".to_string(),
        Yaml::Bool(b) => b.to_string(),
        Yaml::Int(i) => i.to_string(),
        Yaml::Float(f) => format_float(*f),
        Yaml::Str(s) => emit_string(s),
        Yaml::Seq(_) => "[]".to_string(),
        Yaml::Map(_) => "{}".to_string(),
    }
}

fn emit_key(k: &str) -> String {
    // Keys never contain the separator pattern after quoting.
    emit_string(k)
}

/// Decide whether a string can be emitted plain or must be quoted.
fn emit_string(s: &str) -> String {
    if needs_quoting(s) {
        let mut q = String::with_capacity(s.len() + 2);
        q.push('"');
        for c in s.chars() {
            match c {
                '"' => q.push_str("\\\""),
                '\\' => q.push_str("\\\\"),
                '\n' => q.push_str("\\n"),
                '\t' => q.push_str("\\t"),
                '\r' => q.push_str("\\r"),
                '\0' => q.push_str("\\0"),
                other => q.push(other),
            }
        }
        q.push('"');
        q
    } else {
        s.to_string()
    }
}

fn needs_quoting(s: &str) -> bool {
    if s.is_empty() {
        return true;
    }
    // Leading/trailing whitespace would be eaten by trimming.
    if s != s.trim() {
        return true;
    }
    // Would be re-parsed as a different type or as structure.
    if !matches!(infer_plain(s), Yaml::Str(_)) {
        return true;
    }
    if s == "-" || s.starts_with("- ") || s.starts_with('#') {
        return true;
    }
    if s.starts_with(['[', '{', '"', '\'', '&', '*', '!', '|', '>', '%', '@']) {
        return true;
    }
    // A separator colon would make it look like a mapping entry.
    if s.ends_with(':') || s.contains(": ") {
        return true;
    }
    if s.contains('\n') || s.contains('\t') || s.contains('\r') || s.contains('\0') {
        return true;
    }
    // A ` #` would be scanned as a trailing comment.
    if s.contains(" #") {
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn round_trip(v: &Yaml) {
        let text = to_string(v);
        let back = parse(&text).unwrap_or_else(|e| panic!("emitted text failed to parse: {e}\n{text}"));
        assert_eq!(&back, v, "round-trip mismatch; emitted:\n{text}");
    }

    #[test]
    fn emits_listing_like_document() {
        let doc = Yaml::Map(vec![
            (
                "rai".into(),
                Yaml::Map(vec![
                    ("version".into(), Yaml::Float(0.1)),
                    ("image".into(), Yaml::Str("webgpu/rai:root".into())),
                ]),
            ),
            (
                "commands".into(),
                Yaml::Map(vec![(
                    "build".into(),
                    Yaml::Seq(vec![
                        Yaml::Str("echo \"Building project\"".into()),
                        Yaml::Str("cmake /src".into()),
                        Yaml::Str("make".into()),
                    ]),
                )]),
            ),
        ]);
        let text = to_string(&doc);
        assert!(text.contains("rai:\n  version: 0.1\n  image: webgpu/rai:root\n"));
        assert!(text.contains("  build:\n    - "));
        round_trip(&doc);
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Yaml::Null,
            Yaml::Bool(true),
            Yaml::Bool(false),
            Yaml::Int(0),
            Yaml::Int(-42),
            Yaml::Float(0.25),
            Yaml::Str("plain".into()),
            Yaml::Str("needs: quoting".into()),
            Yaml::Str("0.1".into()),
            Yaml::Str("".into()),
            Yaml::Str("has # comment-ish".into()),
            Yaml::Str("multi\nline\tstuff".into()),
            Yaml::Str("- looks like a seq".into()),
            Yaml::Str("true".into()),
        ] {
            round_trip(&v);
        }
    }

    #[test]
    fn empty_collections_round_trip() {
        round_trip(&Yaml::Map(vec![("a".into(), Yaml::Seq(vec![]))]));
        round_trip(&Yaml::Map(vec![("a".into(), Yaml::Map(vec![]))]));
        round_trip(&Yaml::Seq(vec![Yaml::Seq(vec![]), Yaml::Map(vec![])]));
    }

    #[test]
    fn deep_nesting_round_trips() {
        let doc = Yaml::Seq(vec![
            Yaml::Map(vec![
                ("name".into(), Yaml::Str("team a".into())),
                (
                    "runs".into(),
                    Yaml::Seq(vec![Yaml::Float(0.45), Yaml::Float(0.47)]),
                ),
            ]),
            Yaml::Seq(vec![Yaml::Seq(vec![Yaml::Int(1)])]),
            Yaml::Null,
        ]);
        round_trip(&doc);
    }

    #[test]
    fn quoted_key_round_trips() {
        let doc = Yaml::Map(vec![("weird: key".into(), Yaml::Int(1))]);
        round_trip(&doc);
    }
}
