//! The YAML value model.

use std::fmt;

/// A parsed YAML value.
///
/// Mappings preserve insertion order (RAI build files are read top to
/// bottom, and the emitter must round-trip the original ordering).
#[derive(Clone, Debug, PartialEq)]
pub enum Yaml {
    /// `~`, `null`, or an empty value.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integer scalar.
    Int(i64),
    /// Floating-point scalar.
    Float(f64),
    /// String scalar (plain or quoted).
    Str(String),
    /// Block or flow sequence.
    Seq(Vec<Yaml>),
    /// Block or flow mapping, in document order.
    Map(Vec<(String, Yaml)>),
}

impl Yaml {
    /// `Some(&str)` if this is a string scalar.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Yaml::Str(s) => Some(s),
            _ => None,
        }
    }

    /// `Some(i64)` if this is an integer scalar.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Yaml::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Numeric view: ints widen to floats.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Yaml::Float(f) => Some(*f),
            Yaml::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// `Some(bool)` if this is a boolean scalar.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Yaml::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// `Some(&[Yaml])` if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Yaml]> {
        match self {
            Yaml::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// `Some(&[(k, v)])` if this is a mapping.
    pub fn as_map(&self) -> Option<&[(String, Yaml)]> {
        match self {
            Yaml::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Whether this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Yaml::Null)
    }

    /// Mapping lookup by key (first match wins).
    pub fn get(&self, key: &str) -> Option<&Yaml> {
        match self {
            Yaml::Map(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Nested lookup: `doc.path(&["rai", "commands", "build"])`.
    pub fn path(&self, keys: &[&str]) -> Option<&Yaml> {
        let mut cur = self;
        for k in keys {
            cur = cur.get(k)?;
        }
        Some(cur)
    }

    /// Render any *scalar* as a string the way a shell-ish consumer would
    /// see it; collections return `None`.
    pub fn scalar_to_string(&self) -> Option<String> {
        match self {
            Yaml::Null => Some(String::new()),
            Yaml::Bool(b) => Some(b.to_string()),
            Yaml::Int(i) => Some(i.to_string()),
            Yaml::Float(f) => Some(format_float(*f)),
            Yaml::Str(s) => Some(s.clone()),
            _ => None,
        }
    }
}

/// Format a float so that it round-trips through the parser as a float
/// (always keeps a decimal point or exponent).
pub(crate) fn format_float(f: f64) -> String {
    if f.is_nan() {
        return ".nan".to_string();
    }
    if f.is_infinite() {
        return if f > 0.0 { ".inf" } else { "-.inf" }.to_string();
    }
    let s = format!("{f}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

impl fmt::Display for Yaml {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::emit::to_string(self))
    }
}

impl From<&str> for Yaml {
    fn from(s: &str) -> Self {
        Yaml::Str(s.to_string())
    }
}

impl From<String> for Yaml {
    fn from(s: String) -> Self {
        Yaml::Str(s)
    }
}

impl From<i64> for Yaml {
    fn from(i: i64) -> Self {
        Yaml::Int(i)
    }
}

impl From<f64> for Yaml {
    fn from(f: f64) -> Self {
        Yaml::Float(f)
    }
}

impl From<bool> for Yaml {
    fn from(b: bool) -> Self {
        Yaml::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Yaml {
        Yaml::Map(vec![
            (
                "rai".to_string(),
                Yaml::Map(vec![
                    ("version".to_string(), Yaml::Float(0.1)),
                    ("image".to_string(), Yaml::Str("webgpu/rai:root".into())),
                ]),
            ),
            (
                "steps".to_string(),
                Yaml::Seq(vec![Yaml::Str("cmake /src".into()), Yaml::Str("make".into())]),
            ),
        ])
    }

    #[test]
    fn accessors() {
        let doc = sample();
        assert_eq!(
            doc.path(&["rai", "image"]).and_then(Yaml::as_str),
            Some("webgpu/rai:root")
        );
        assert_eq!(doc.path(&["rai", "version"]).and_then(Yaml::as_f64), Some(0.1));
        assert_eq!(doc.get("steps").and_then(Yaml::as_seq).map(|s| s.len()), Some(2));
        assert!(doc.path(&["rai", "missing"]).is_none());
        assert!(doc.get("rai").unwrap().as_seq().is_none());
    }

    #[test]
    fn scalar_rendering() {
        assert_eq!(Yaml::Int(3).scalar_to_string().unwrap(), "3");
        assert_eq!(Yaml::Bool(true).scalar_to_string().unwrap(), "true");
        assert_eq!(Yaml::Null.scalar_to_string().unwrap(), "");
        assert_eq!(Yaml::Float(2.0).scalar_to_string().unwrap(), "2.0");
        assert!(Yaml::Seq(vec![]).scalar_to_string().is_none());
    }

    #[test]
    fn float_formatting_keeps_type() {
        assert_eq!(format_float(1.0), "1.0");
        assert_eq!(format_float(0.5), "0.5");
        assert_eq!(format_float(f64::INFINITY), ".inf");
        assert_eq!(format_float(f64::NEG_INFINITY), "-.inf");
        assert_eq!(format_float(f64::NAN), ".nan");
    }

    #[test]
    fn from_impls() {
        assert_eq!(Yaml::from("x"), Yaml::Str("x".into()));
        assert_eq!(Yaml::from(4i64), Yaml::Int(4));
        assert_eq!(Yaml::from(true), Yaml::Bool(true));
    }
}
