//! Recursive-descent block parser over scanned lines, plus a small flow
//! (`[..]` / `{..}`) parser for inline collections.

use crate::error::{YamlError, YamlResult};
use crate::scanner::{parse_scalar, scan, split_key, Line};
use crate::value::Yaml;

/// Parse a single YAML document.
///
/// An empty (or comment-only) document parses to [`Yaml::Null`].
pub fn parse(src: &str) -> YamlResult<Yaml> {
    let lines = scan(src)?;
    if lines.is_empty() {
        return Ok(Yaml::Null);
    }
    let root_indent = lines[0].indent;
    let raw: Vec<String> = src.lines().map(str::to_string).collect();
    let mut p = Parser { lines, pos: 0, raw };
    let value = p.parse_node(root_indent)?;
    if let Some(extra) = p.peek() {
        return Err(YamlError::new(
            extra.number,
            format!("unexpected content after document root: {:?}", extra.content),
        ));
    }
    Ok(value)
}

struct Parser {
    lines: Vec<Line>,
    pos: usize,
    /// The raw source lines (1-based via index+0): block scalars need
    /// them because the scanner strips comments and blank lines.
    raw: Vec<String>,
}

impl Parser {
    fn peek(&self) -> Option<&Line> {
        self.lines.get(self.pos)
    }

    fn bump(&mut self) -> Line {
        let l = self.lines[self.pos].clone();
        self.pos += 1;
        l
    }

    /// Parse the node whose first line is at `self.pos`, expected at
    /// exactly `indent`.
    fn parse_node(&mut self, indent: usize) -> YamlResult<Yaml> {
        let line = self
            .peek()
            .ok_or_else(|| YamlError::new(0, "unexpected end of document"))?;
        if line.indent != indent {
            return Err(YamlError::new(
                line.number,
                format!("bad indentation: expected column {indent}, found {}", line.indent),
            ));
        }
        if is_sequence_entry(&line.content) {
            self.parse_sequence(indent)
        } else if split_key(&line.content).is_some() {
            self.parse_mapping(indent)
        } else {
            // Top-level / nested scalar (or flow collection) with folding.
            let line = self.bump();
            let folded = self.fold_continuations(line.content.clone(), indent);
            self.parse_inline_scalar_or_flow(&folded, line.number)
        }
    }

    fn parse_mapping(&mut self, indent: usize) -> YamlResult<Yaml> {
        let mut map: Vec<(String, Yaml)> = Vec::new();
        while let Some(line) = self.peek() {
            if line.indent < indent {
                break;
            }
            if line.indent > indent {
                return Err(YamlError::new(
                    line.number,
                    format!("bad indentation inside mapping: expected column {indent}"),
                ));
            }
            if is_sequence_entry(&line.content) {
                return Err(YamlError::new(
                    line.number,
                    "sequence entry found where a mapping key was expected",
                ));
            }
            let line = self.bump();
            let Some((raw_key, rest)) = split_key(&line.content) else {
                return Err(YamlError::new(
                    line.number,
                    format!("expected `key: value`, found {:?}", line.content),
                ));
            };
            let key = parse_scalar(raw_key, line.number)?
                .scalar_to_string()
                .ok_or_else(|| YamlError::new(line.number, "mapping key must be a scalar"))?;
            if map.iter().any(|(k, _)| *k == key) {
                return Err(YamlError::new(line.number, format!("duplicate mapping key {key:?}")));
            }
            let value = if rest.is_empty() {
                // `key:` — nested block, or null if nothing deeper follows.
                match self.peek() {
                    Some(next) if next.indent > indent => {
                        let child_indent = next.indent;
                        self.parse_node(child_indent)?
                    }
                    _ => Yaml::Null,
                }
            } else if let Some(style) = block_scalar_style(rest) {
                self.parse_block_scalar(style, indent, line.number)?
            } else {
                self.parse_inline_value(rest, indent, line.number)?
            };
            map.push((key, value));
        }
        Ok(Yaml::Map(map))
    }

    fn parse_sequence(&mut self, indent: usize) -> YamlResult<Yaml> {
        let mut seq = Vec::new();
        while let Some(line) = self.peek() {
            if line.indent < indent {
                break;
            }
            if line.indent > indent {
                return Err(YamlError::new(
                    line.number,
                    format!("bad indentation inside sequence: expected column {indent}"),
                ));
            }
            if !is_sequence_entry(&line.content) {
                break;
            }
            let line = self.bump();
            if line.content == "-" {
                // Dash alone: nested block on following deeper lines.
                match self.peek() {
                    Some(next) if next.indent > indent => {
                        let child_indent = next.indent;
                        seq.push(self.parse_node(child_indent)?);
                    }
                    _ => seq.push(Yaml::Null),
                }
                continue;
            }
            let rest = line.content[1..].trim_start().to_string();
            let rest_col = indent + (line.content.len() - rest.len());
            if split_key(&rest).is_some() && !starts_quoted_or_flow(&rest) {
                // `- key: value` opens a mapping whose first entry sits on
                // the dash line. Re-inject the remainder as a virtual line
                // at the column where it begins.
                self.lines.insert(
                    self.pos,
                    Line {
                        number: line.number,
                        indent: rest_col,
                        content: rest,
                    },
                );
                seq.push(self.parse_node(rest_col)?);
            } else if let Some(style) = block_scalar_style(&rest) {
                seq.push(self.parse_block_scalar(style, indent, line.number)?);
            } else {
                let folded = self.fold_continuations(rest, indent);
                seq.push(self.parse_inline_scalar_or_flow(&folded, line.number)?);
            }
        }
        Ok(Yaml::Seq(seq))
    }

    /// Parse a block scalar whose header (`|`, `|-`, `>`, `>-`) sat on
    /// the line numbered `header_line` at `parent_indent`. Content is
    /// every following raw line that is blank or indented deeper than
    /// the parent; the scanner's view of those lines is skipped.
    fn parse_block_scalar(
        &mut self,
        style: BlockStyle,
        parent_indent: usize,
        header_line: usize,
    ) -> YamlResult<Yaml> {
        // Collect the raw content region.
        let mut content: Vec<String> = Vec::new();
        let mut last_line = header_line;
        for (idx, raw) in self.raw.iter().enumerate().skip(header_line) {
            let number = idx + 1;
            let trimmed = raw.trim_start_matches(' ');
            let indent = raw.len() - trimmed.len();
            if trimmed.is_empty() {
                content.push(String::new());
                last_line = number;
                continue;
            }
            if indent <= parent_indent {
                break;
            }
            content.push(raw.clone());
            last_line = number;
        }
        // Trim trailing blank lines out of the region (they belong to
        // whatever comes next).
        while content.last().is_some_and(|l| l.trim().is_empty()) {
            content.pop();
            last_line -= 1;
        }
        if content.is_empty() {
            // An empty block scalar is the empty string.
            return Ok(Yaml::Str(String::new()));
        }
        // The block's own indentation is the indent of its first
        // non-blank line.
        let block_indent = content
            .iter()
            .find(|l| !l.trim().is_empty())
            .map(|l| l.len() - l.trim_start_matches(' ').len())
            .unwrap_or(parent_indent + 1);
        let stripped: Vec<String> = content
            .iter()
            .map(|l| {
                if l.len() >= block_indent {
                    l[block_indent.min(l.len())..].to_string()
                } else {
                    String::new()
                }
            })
            .collect();

        // Skip the scanned lines consumed by this block.
        while self
            .peek()
            .is_some_and(|l| l.number > header_line && l.number <= last_line)
        {
            self.pos += 1;
        }

        let mut text = match style.folded {
            false => stripped.join("\n"),
            true => {
                // Folding: single newlines become spaces, blank lines
                // become newlines.
                let mut out = String::new();
                let mut pending_break = false;
                for line in &stripped {
                    if line.trim().is_empty() {
                        out.push('\n');
                        pending_break = false;
                    } else {
                        if pending_break {
                            out.push(' ');
                        }
                        out.push_str(line);
                        pending_break = true;
                    }
                }
                out
            }
        };
        if !style.chomp {
            text.push('\n');
        }
        Ok(Yaml::Str(text))
    }

    /// Fold plain-scalar continuation lines (strictly deeper indent, not a
    /// new sequence entry) into `first`, joined with single spaces. This
    /// is what lets Listing 1 split `nvprof … ./ece408 …` over two lines.
    fn fold_continuations(&mut self, first: String, indent: usize) -> String {
        if starts_quoted_or_flow(&first) {
            return first;
        }
        let mut out = first;
        while let Some(next) = self.peek() {
            // A deeper line that itself looks like structure (sequence
            // entry or mapping key) is not a continuation — leaving it
            // here lets the enclosing block report a clear indentation
            // error, as real YAML does.
            if next.indent <= indent
                || is_sequence_entry(&next.content)
                || split_key(&next.content).is_some()
            {
                break;
            }
            let cont = self.bump();
            out.push(' ');
            out.push_str(cont.content.trim());
        }
        out
    }

    /// Parse a mapping value appearing on the same line as its key.
    fn parse_inline_value(&mut self, rest: &str, indent: usize, number: usize) -> YamlResult<Yaml> {
        let folded = self.fold_continuations(rest.to_string(), indent);
        self.parse_inline_scalar_or_flow(&folded, number)
    }

    fn parse_inline_scalar_or_flow(&mut self, text: &str, number: usize) -> YamlResult<Yaml> {
        let t = text.trim();
        if t.starts_with('[') || t.starts_with('{') {
            let mut fp = FlowParser {
                chars: t.char_indices().collect(),
                pos: 0,
                line: number,
            };
            let v = fp.parse_value()?;
            fp.skip_ws();
            if fp.pos < fp.chars.len() {
                return Err(YamlError::new(number, "trailing characters after flow collection"));
            }
            Ok(v)
        } else {
            parse_scalar(t, number)
        }
    }
}

/// Block-scalar header style.
#[derive(Clone, Copy)]
struct BlockStyle {
    /// `>` (folded) vs `|` (literal).
    folded: bool,
    /// `-` chomping indicator: strip the final newline.
    chomp: bool,
}

fn block_scalar_style(rest: &str) -> Option<BlockStyle> {
    match rest {
        "|" => Some(BlockStyle { folded: false, chomp: false }),
        "|-" => Some(BlockStyle { folded: false, chomp: true }),
        ">" => Some(BlockStyle { folded: true, chomp: false }),
        ">-" => Some(BlockStyle { folded: true, chomp: true }),
        _ => None,
    }
}

fn is_sequence_entry(content: &str) -> bool {
    content == "-" || content.starts_with("- ")
}

fn starts_quoted_or_flow(s: &str) -> bool {
    matches!(s.as_bytes().first(), Some(b'"' | b'\'' | b'[' | b'{'))
}

/// Minimal flow-style parser: `[a, b]`, `{k: v, …}`, nesting allowed;
/// must be complete on one (folded) line.
struct FlowParser {
    chars: Vec<(usize, char)>,
    pos: usize,
    line: usize,
}

impl FlowParser {
    fn skip_ws(&mut self) {
        while self.pos < self.chars.len() && self.chars[self.pos].1 == ' ' {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).map(|&(_, c)| c)
    }

    fn parse_value(&mut self) -> YamlResult<Yaml> {
        self.skip_ws();
        match self.peek() {
            Some('[') => self.parse_seq(),
            Some('{') => self.parse_map(),
            Some('"') | Some('\'') => {
                let token = self.take_quoted()?;
                parse_scalar(&token, self.line)
            }
            Some(_) => {
                let token = self.take_plain();
                parse_scalar(&token, self.line)
            }
            None => Err(YamlError::new(self.line, "unexpected end of flow value")),
        }
    }

    fn parse_seq(&mut self) -> YamlResult<Yaml> {
        self.pos += 1; // consume '['
        let mut items = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(']') => {
                    self.pos += 1;
                    return Ok(Yaml::Seq(items));
                }
                None => return Err(YamlError::new(self.line, "unterminated flow sequence")),
                _ => {}
            }
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(',') => {
                    self.pos += 1;
                }
                Some(']') => {}
                other => {
                    return Err(YamlError::new(
                        self.line,
                        format!("expected `,` or `]` in flow sequence, found {other:?}"),
                    ))
                }
            }
        }
    }

    fn parse_map(&mut self) -> YamlResult<Yaml> {
        self.pos += 1; // consume '{'
        let mut map = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some('}') => {
                    self.pos += 1;
                    return Ok(Yaml::Map(map));
                }
                None => return Err(YamlError::new(self.line, "unterminated flow mapping")),
                _ => {}
            }
            let key_tok = match self.peek() {
                Some('"') | Some('\'') => self.take_quoted()?,
                _ => self.take_plain_until_colon(),
            };
            let key = parse_scalar(key_tok.trim(), self.line)?
                .scalar_to_string()
                .ok_or_else(|| YamlError::new(self.line, "flow mapping key must be a scalar"))?;
            self.skip_ws();
            if self.peek() != Some(':') {
                return Err(YamlError::new(self.line, "expected `:` in flow mapping"));
            }
            self.pos += 1;
            let value = self.parse_value()?;
            if map.iter().any(|(k, _)| *k == key) {
                return Err(YamlError::new(self.line, format!("duplicate mapping key {key:?}")));
            }
            map.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(',') => {
                    self.pos += 1;
                }
                Some('}') => {}
                other => {
                    return Err(YamlError::new(
                        self.line,
                        format!("expected `,` or `}}` in flow mapping, found {other:?}"),
                    ))
                }
            }
        }
    }

    /// Take a quoted token including its quotes, handling escapes.
    fn take_quoted(&mut self) -> YamlResult<String> {
        let quote = self.peek().expect("caller checked");
        let start = self.pos;
        self.pos += 1;
        while let Some(c) = self.peek() {
            if c == '\\' && quote == '"' {
                self.pos += 2;
                continue;
            }
            if c == quote {
                // Single-quote doubling escape.
                if quote == '\'' && self.chars.get(self.pos + 1).map(|&(_, c)| c) == Some('\'') {
                    self.pos += 2;
                    continue;
                }
                self.pos += 1;
                let token: String = self.chars[start..self.pos].iter().map(|&(_, c)| c).collect();
                return Ok(token);
            }
            self.pos += 1;
        }
        Err(YamlError::new(self.line, "unterminated quoted scalar in flow context"))
    }

    fn take_plain(&mut self) -> String {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if matches!(c, ',' | ']' | '}' | '[' | '{') {
                break;
            }
            self.pos += 1;
        }
        self.chars[start..self.pos]
            .iter()
            .map(|&(_, c)| c)
            .collect::<String>()
            .trim()
            .to_string()
    }

    fn take_plain_until_colon(&mut self) -> String {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if matches!(c, ':' | ',' | ']' | '}') {
                break;
            }
            self.pos += 1;
        }
        self.chars[start..self.pos]
            .iter()
            .map(|&(_, c)| c)
            .collect::<String>()
            .trim()
            .to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Listing 1 — the default `rai-build.yml`.
    const LISTING_1: &str = r#"
rai:
  version: 0.1
  image: webgpu/rai:root
commands:
  build:
    - echo "Building project"
    - cmake /src
    - make
    - ./ece408 /data/test10.hdf5 /data/model.hdf5
    - nvprof --export-profile timeline.nvprof
      ./ece408 data/test10.hdf5 /data/model.hdf5
"#;

    /// Paper Listing 2 — the enforced final-submission build file.
    const LISTING_2: &str = r#"
rai:
  version: 0.1
  image: webgpu/rai:root
commands:
  build:
    - echo "Submitting project"
    - cp -r /src /build/submission_code
    - cmake /src
    - make
    - /usr/bin/time ./ece408 /data/testfull.hdf5
      /data/model.hdf5 10000
"#;

    #[test]
    fn parses_listing_1() {
        let doc = parse(LISTING_1).unwrap();
        assert_eq!(doc.path(&["rai", "version"]).and_then(Yaml::as_f64), Some(0.1));
        assert_eq!(
            doc.path(&["rai", "image"]).and_then(Yaml::as_str),
            Some("webgpu/rai:root")
        );
        let build = doc.path(&["commands", "build"]).unwrap().as_seq().unwrap();
        assert_eq!(build.len(), 5);
        assert_eq!(build[0].as_str(), Some("echo \"Building project\""));
        assert_eq!(build[2].as_str(), Some("make"));
        // The folded two-line nvprof command is joined with a space.
        assert_eq!(
            build[4].as_str(),
            Some("nvprof --export-profile timeline.nvprof ./ece408 data/test10.hdf5 /data/model.hdf5")
        );
    }

    #[test]
    fn parses_listing_2() {
        let doc = parse(LISTING_2).unwrap();
        let build = doc.path(&["commands", "build"]).unwrap().as_seq().unwrap();
        assert_eq!(build.len(), 5);
        assert_eq!(
            build[4].as_str(),
            Some("/usr/bin/time ./ece408 /data/testfull.hdf5 /data/model.hdf5 10000")
        );
    }

    #[test]
    fn literal_block_scalar() {
        let src = "script: |\n  cmake /src\n  make -j4\n\n  ./ece408 a b\nnext: 1\n";
        let doc = parse(src).unwrap();
        assert_eq!(
            doc.get("script").and_then(Yaml::as_str),
            Some("cmake /src\nmake -j4\n\n./ece408 a b\n")
        );
        assert_eq!(doc.get("next").and_then(Yaml::as_i64), Some(1));
    }

    #[test]
    fn literal_block_scalar_chomped() {
        let doc = parse("s: |-\n  one\n  two\n").unwrap();
        assert_eq!(doc.get("s").and_then(Yaml::as_str), Some("one\ntwo"));
    }

    #[test]
    fn folded_block_scalar() {
        let src = "msg: >\n  a long sentence\n  wrapped over lines\n\n  second paragraph\n";
        let doc = parse(src).unwrap();
        assert_eq!(
            doc.get("msg").and_then(Yaml::as_str),
            Some("a long sentence wrapped over lines\nsecond paragraph\n")
        );
        let chomped = parse("m: >-\n  a\n  b\n").unwrap();
        assert_eq!(chomped.get("m").and_then(Yaml::as_str), Some("a b"));
    }

    #[test]
    fn block_scalar_in_sequence() {
        let src = "cmds:\n  - |\n    line one\n    line two\n  - make\n";
        let doc = parse(src).unwrap();
        let cmds = doc.get("cmds").unwrap().as_seq().unwrap();
        assert_eq!(cmds[0].as_str(), Some("line one\nline two\n"));
        assert_eq!(cmds[1].as_str(), Some("make"));
    }

    #[test]
    fn block_scalar_preserves_hash_and_colons() {
        // Comments and `key:`-looking text inside a block are literal.
        let src = "s: |\n  # not a comment\n  key: value\n";
        let doc = parse(src).unwrap();
        assert_eq!(
            doc.get("s").and_then(Yaml::as_str),
            Some("# not a comment\nkey: value\n")
        );
    }

    #[test]
    fn empty_block_scalar_is_empty_string() {
        let doc = parse("s: |\nnext: 2\n").unwrap();
        assert_eq!(doc.get("s").and_then(Yaml::as_str), Some(""));
        assert_eq!(doc.get("next").and_then(Yaml::as_i64), Some(2));
    }

    #[test]
    fn empty_document_is_null() {
        assert_eq!(parse("").unwrap(), Yaml::Null);
        assert_eq!(parse("# only comments\n\n").unwrap(), Yaml::Null);
    }

    #[test]
    fn scalar_document() {
        assert_eq!(parse("42").unwrap(), Yaml::Int(42));
        assert_eq!(parse("hello world").unwrap(), Yaml::Str("hello world".into()));
    }

    #[test]
    fn nested_sequences_and_maps() {
        let src = "teams:\n  - name: a\n    size: 2\n  - name: b\n    size: 4\n";
        let doc = parse(src).unwrap();
        let teams = doc.get("teams").unwrap().as_seq().unwrap();
        assert_eq!(teams.len(), 2);
        assert_eq!(teams[0].get("name").and_then(Yaml::as_str), Some("a"));
        assert_eq!(teams[1].get("size").and_then(Yaml::as_i64), Some(4));
    }

    #[test]
    fn sequence_of_sequences() {
        let src = "-\n  - 1\n  - 2\n-\n  - 3\n";
        let doc = parse(src).unwrap();
        let outer = doc.as_seq().unwrap();
        assert_eq!(outer[0].as_seq().unwrap().len(), 2);
        assert_eq!(outer[1].as_seq().unwrap()[0], Yaml::Int(3));
    }

    #[test]
    fn dash_alone_with_nothing_deeper_is_null() {
        let doc = parse("- 1\n-\n").unwrap();
        assert_eq!(doc, Yaml::Seq(vec![Yaml::Int(1), Yaml::Null]));
    }

    #[test]
    fn key_with_no_value_is_null() {
        let doc = parse("a:\nb: 1\n").unwrap();
        assert_eq!(doc.get("a"), Some(&Yaml::Null));
        assert_eq!(doc.get("b"), Some(&Yaml::Int(1)));
    }

    #[test]
    fn flow_collections() {
        let doc = parse("nums: [1, 2, 3]\nmeta: {gpu: true, mem: 8}\nempty: []\n").unwrap();
        assert_eq!(
            doc.get("nums").unwrap(),
            &Yaml::Seq(vec![Yaml::Int(1), Yaml::Int(2), Yaml::Int(3)])
        );
        assert_eq!(doc.path(&["meta", "gpu"]).and_then(Yaml::as_bool), Some(true));
        assert_eq!(doc.get("empty").unwrap(), &Yaml::Seq(vec![]));
    }

    #[test]
    fn nested_flow() {
        let doc = parse("m: [[1, 2], {a: [3]}]\n").unwrap();
        let m = doc.get("m").unwrap().as_seq().unwrap();
        assert_eq!(m[0], Yaml::Seq(vec![Yaml::Int(1), Yaml::Int(2)]));
        assert_eq!(m[1].path(&["a"]).unwrap(), &Yaml::Seq(vec![Yaml::Int(3)]));
    }

    #[test]
    fn flow_with_quoted_strings() {
        let doc = parse("xs: ['a, b', \"c: d\"]\n").unwrap();
        assert_eq!(
            doc.get("xs").unwrap(),
            &Yaml::Seq(vec![Yaml::Str("a, b".into()), Yaml::Str("c: d".into())])
        );
    }

    #[test]
    fn duplicate_keys_rejected() {
        assert!(parse("a: 1\na: 2\n").is_err());
        assert!(parse("m: {a: 1, a: 2}\n").is_err());
    }

    #[test]
    fn bad_indentation_rejected() {
        let err = parse("a: 1\n   b: 2\n").unwrap_err();
        assert!(err.message.contains("indentation"), "got: {err}");
        assert!(parse("xs:\n  - 1\n    - 2\n").is_err());
    }

    #[test]
    fn unterminated_flow_rejected() {
        assert!(parse("xs: [1, 2\n").is_err());
        assert!(parse("m: {a: 1\n").is_err());
    }

    #[test]
    fn sequence_where_key_expected_rejected() {
        assert!(parse("a: 1\n- 2\n").is_err());
    }

    #[test]
    fn quoted_values_suppress_type_inference() {
        let doc = parse("v: \"0.1\"\nw: 0.1\n").unwrap();
        assert_eq!(doc.get("v").unwrap(), &Yaml::Str("0.1".into()));
        assert_eq!(doc.get("w").unwrap(), &Yaml::Float(0.1));
    }

    #[test]
    fn mapping_value_folding() {
        let doc = parse("cmd: nvprof --export x\n  ./prog a b\nnext: 1\n").unwrap();
        assert_eq!(doc.get("cmd").and_then(Yaml::as_str), Some("nvprof --export x ./prog a b"));
        assert_eq!(doc.get("next").and_then(Yaml::as_i64), Some(1));
    }

    #[test]
    fn colon_in_plain_value_kept() {
        let doc = parse("image: webgpu/rai:root\n").unwrap();
        assert_eq!(doc.get("image").and_then(Yaml::as_str), Some("webgpu/rai:root"));
    }

    #[test]
    fn student_variation_extra_config() {
        // An extended file a student might write: extra resources block.
        let src = "rai:\n  version: 0.2\n  image: webgpu/rai:cuda9\nresources:\n  gpus: 2\n  network: false\ncommands:\n  build:\n    - make -j8\n";
        let doc = parse(src).unwrap();
        assert_eq!(doc.path(&["resources", "gpus"]).and_then(Yaml::as_i64), Some(2));
        assert_eq!(doc.path(&["resources", "network"]).and_then(Yaml::as_bool), Some(false));
    }
}
