//! Line scanner: turns raw text into indentation-classified logical
//! lines with comments stripped, plus scalar lexing helpers shared by
//! the block and flow parsers.

use crate::error::{YamlError, YamlResult};
use crate::value::Yaml;

/// One significant source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Line {
    /// 1-based source line number (for diagnostics).
    pub number: usize,
    /// Number of leading spaces.
    pub indent: usize,
    /// Content with indentation and trailing comment removed.
    pub content: String,
}

/// Split a document into significant lines. Blank lines and whole-line
/// comments are dropped; trailing comments are stripped unless the `#`
/// appears inside a quoted span. Tabs in indentation are rejected, as in
/// real YAML.
pub fn scan(src: &str) -> YamlResult<Vec<Line>> {
    let mut out = Vec::new();
    for (i, raw) in src.lines().enumerate() {
        let number = i + 1;
        let without_indent = raw.trim_start_matches(' ');
        let indent = raw.len() - without_indent.len();
        if without_indent.starts_with('\t') {
            return Err(YamlError::new(number, "tab characters may not be used for indentation"));
        }
        let content = strip_comment(without_indent).trim_end().to_string();
        if content.is_empty() {
            continue;
        }
        if content == "---" || content == "..." {
            // Document markers: tolerated, treated as separators we skip
            // (RAI build files are single-document).
            continue;
        }
        out.push(Line {
            number,
            indent,
            content,
        });
    }
    Ok(out)
}

/// Remove a trailing `#`-comment, honouring single/double quotes.
/// A `#` only starts a comment at the beginning of the content or when
/// preceded by whitespace (so `image: webgpu/rai#root` keeps its `#`).
fn strip_comment(s: &str) -> &str {
    let bytes = s.as_bytes();
    let mut in_single = false;
    let mut in_double = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\'' if !in_double => in_single = !in_single,
            b'"' if !in_single
                // Toggle unless escaped.
                && (i == 0 || bytes[i - 1] != b'\\') => {
                    in_double = !in_double;
                }
            b'#' if !in_single && !in_double
                && (i == 0 || bytes[i - 1] == b' ' || bytes[i - 1] == b'\t') => {
                    return &s[..i];
                }
            _ => {}
        }
        i += 1;
    }
    s
}

/// Split a mapping line `key: value` at the first *separator* colon — a
/// colon followed by a space or end of content, outside quotes. Returns
/// `(key, rest)` where `rest` may be empty. Returns `None` if the line is
/// not a mapping entry (no separator colon).
pub fn split_key(content: &str) -> Option<(&str, &str)> {
    let bytes = content.as_bytes();
    let mut in_single = false;
    let mut in_double = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\'' if !in_double => in_single = !in_single,
            b'"' if !in_single && (i == 0 || bytes[i - 1] != b'\\') => in_double = !in_double,
            b':' if !in_single && !in_double => {
                if i + 1 == bytes.len() {
                    return Some((content[..i].trim_end(), ""));
                }
                if bytes[i + 1] == b' ' {
                    return Some((content[..i].trim_end(), content[i + 2..].trim_start()));
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Parse a scalar token with YAML 1.1-ish type inference.
pub fn parse_scalar(token: &str, line: usize) -> YamlResult<Yaml> {
    let t = token.trim();
    if t.is_empty() {
        return Ok(Yaml::Null);
    }
    if let Some(q) = t.strip_prefix('"') {
        return parse_double_quoted(q, line);
    }
    if let Some(q) = t.strip_prefix('\'') {
        return parse_single_quoted(q, line);
    }
    Ok(infer_plain(t))
}

/// Type inference for plain (unquoted) scalars.
pub fn infer_plain(t: &str) -> Yaml {
    match t {
        "~" | "null" | "Null" | "NULL" => return Yaml::Null,
        "true" | "True" | "TRUE" => return Yaml::Bool(true),
        "false" | "False" | "FALSE" => return Yaml::Bool(false),
        ".inf" | "+.inf" => return Yaml::Float(f64::INFINITY),
        "-.inf" => return Yaml::Float(f64::NEG_INFINITY),
        ".nan" => return Yaml::Float(f64::NAN),
        _ => {}
    }
    if let Ok(i) = t.parse::<i64>() {
        return Yaml::Int(i);
    }
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        if let Ok(i) = i64::from_str_radix(hex, 16) {
            return Yaml::Int(i);
        }
    }
    if looks_numeric(t) {
        if let Ok(f) = t.parse::<f64>() {
            return Yaml::Float(f);
        }
    }
    Yaml::Str(t.to_string())
}

/// Guard against `parse::<f64>` accepting things users mean as strings
/// (e.g. "nan", "infinity", "1e") — only digit-led decimal forms count.
fn looks_numeric(t: &str) -> bool {
    let t = t.strip_prefix(['+', '-']).unwrap_or(t);
    let mut chars = t.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_digit() || (c == '.' && matches!(chars.next(), Some(d) if d.is_ascii_digit())))
        && t.chars().all(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
}

fn parse_double_quoted(rest: &str, line: usize) -> YamlResult<Yaml> {
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                let tail: String = chars.collect();
                if !tail.trim().is_empty() {
                    return Err(YamlError::new(line, format!("trailing characters after closing quote: {tail:?}")));
                }
                return Ok(Yaml::Str(out));
            }
            '\\' => match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('r') => out.push('\r'),
                Some('0') => out.push('\0'),
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    return Err(YamlError::new(line, format!("unknown escape \\{other}")));
                }
                None => return Err(YamlError::new(line, "unterminated escape")),
            },
            other => out.push(other),
        }
    }
    Err(YamlError::new(line, "unterminated double-quoted scalar"))
}

fn parse_single_quoted(rest: &str, line: usize) -> YamlResult<Yaml> {
    let mut out = String::new();
    let mut chars = rest.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '\'' {
            if chars.peek() == Some(&'\'') {
                // '' is an escaped quote.
                out.push('\'');
                chars.next();
            } else {
                let tail: String = chars.collect();
                if !tail.trim().is_empty() {
                    return Err(YamlError::new(line, format!("trailing characters after closing quote: {tail:?}")));
                }
                return Ok(Yaml::Str(out));
            }
        } else {
            out.push(c);
        }
    }
    Err(YamlError::new(line, "unterminated single-quoted scalar"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_strips_blanks_and_comments() {
        let src = "# header\n\nrai:\n  version: 0.1  # trailing\n   \n";
        let lines = scan(src).unwrap();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].content, "rai:");
        assert_eq!(lines[0].indent, 0);
        assert_eq!(lines[1].content, "version: 0.1");
        assert_eq!(lines[1].indent, 2);
        assert_eq!(lines[1].number, 4);
    }

    #[test]
    fn scan_rejects_tab_indent() {
        assert!(scan("a:\n\tb: 1").is_err());
    }

    #[test]
    fn hash_inside_value_is_kept() {
        let lines = scan("image: webgpu/rai#root\n").unwrap();
        assert_eq!(lines[0].content, "image: webgpu/rai#root");
    }

    #[test]
    fn hash_inside_quotes_is_kept() {
        let lines = scan("msg: \"a # b\"\n").unwrap();
        assert_eq!(lines[0].content, "msg: \"a # b\"");
        let lines = scan("msg: 'a # b' # real comment\n").unwrap();
        assert_eq!(lines[0].content, "msg: 'a # b'");
    }

    #[test]
    fn document_markers_skipped() {
        let lines = scan("---\na: 1\n...\n").unwrap();
        assert_eq!(lines.len(), 1);
    }

    #[test]
    fn split_key_basic() {
        assert_eq!(split_key("version: 0.1"), Some(("version", "0.1")));
        assert_eq!(split_key("commands:"), Some(("commands", "")));
        assert_eq!(split_key("echo hello"), None);
        // URL-ish colons without a following space are not separators.
        assert_eq!(split_key("image: webgpu/rai:root"), Some(("image", "webgpu/rai:root")));
        assert_eq!(split_key("http://example.com"), None);
    }

    #[test]
    fn split_key_respects_quotes() {
        assert_eq!(split_key("'a: b': c"), Some(("'a: b'", "c")));
        assert_eq!(split_key("\"k: x\": v"), Some(("\"k: x\"", "v")));
    }

    #[test]
    fn scalar_inference() {
        assert_eq!(parse_scalar("42", 1).unwrap(), Yaml::Int(42));
        assert_eq!(parse_scalar("-7", 1).unwrap(), Yaml::Int(-7));
        assert_eq!(parse_scalar("0.1", 1).unwrap(), Yaml::Float(0.1));
        assert_eq!(parse_scalar("1e3", 1).unwrap(), Yaml::Float(1000.0));
        assert_eq!(parse_scalar("true", 1).unwrap(), Yaml::Bool(true));
        assert_eq!(parse_scalar("null", 1).unwrap(), Yaml::Null);
        assert_eq!(parse_scalar("~", 1).unwrap(), Yaml::Null);
        assert_eq!(parse_scalar("", 1).unwrap(), Yaml::Null);
        assert_eq!(parse_scalar("0x1F", 1).unwrap(), Yaml::Int(31));
        assert_eq!(parse_scalar("make -j4", 1).unwrap(), Yaml::Str("make -j4".into()));
        // Things float-parseable but not digit-led stay strings.
        assert_eq!(parse_scalar("nan", 1).unwrap(), Yaml::Str("nan".into()));
        assert_eq!(parse_scalar("infinity", 1).unwrap(), Yaml::Str("infinity".into()));
    }

    #[test]
    fn quoted_scalars() {
        assert_eq!(parse_scalar("\"12\"", 1).unwrap(), Yaml::Str("12".into()));
        assert_eq!(parse_scalar("\"a\\nb\"", 1).unwrap(), Yaml::Str("a\nb".into()));
        assert_eq!(parse_scalar("'it''s'", 1).unwrap(), Yaml::Str("it's".into()));
        assert!(parse_scalar("\"unterminated", 1).is_err());
        assert!(parse_scalar("'unterminated", 1).is_err());
        assert!(parse_scalar("\"x\" junk", 1).is_err());
        assert!(parse_scalar("\"bad \\q escape\"", 1).is_err());
    }
}
