//! Parse errors with line positions.

use std::fmt;

/// Error produced while parsing a YAML document.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct YamlError {
    /// 1-based line number the error was detected on (0 = end of input).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl YamlError {
    pub(crate) fn new(line: usize, message: impl Into<String>) -> Self {
        YamlError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for YamlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "yaml: {}", self.message)
        } else {
            write!(f, "yaml: line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for YamlError {}

/// Convenience alias.
pub type YamlResult<T> = Result<T, YamlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line() {
        let e = YamlError::new(7, "bad indent");
        assert_eq!(e.to_string(), "yaml: line 7: bad indent");
        let e0 = YamlError::new(0, "unexpected eof");
        assert_eq!(e0.to_string(), "yaml: unexpected eof");
    }
}
