//! Property-based round-trip: for any value the model can represent,
//! `parse(emit(v)) == v`.

use proptest::prelude::*;
use rai_yaml::{parse, to_string, Yaml};

/// Strings that exercise quoting edge cases without degenerating into
/// pure noise: printable ASCII plus the escapes the emitter handles.
fn arb_string() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ -~\\n\\t]{0,24}").expect("valid regex")
}

fn arb_key() -> impl Strategy<Value = String> {
    // Keys must be unique within a map; uniqueness is enforced below.
    proptest::string::string_regex("[a-zA-Z_][a-zA-Z0-9_ :.#-]{0,12}").expect("valid regex")
}

fn arb_scalar() -> impl Strategy<Value = Yaml> {
    prop_oneof![
        Just(Yaml::Null),
        any::<bool>().prop_map(Yaml::Bool),
        any::<i64>().prop_map(Yaml::Int),
        // Finite floats only: NaN breaks PartialEq-based comparison.
        prop::num::f64::NORMAL.prop_map(Yaml::Float),
        arb_string().prop_map(Yaml::Str),
    ]
}

fn arb_yaml() -> impl Strategy<Value = Yaml> {
    arb_scalar().prop_recursive(3, 48, 6, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..5).prop_map(Yaml::Seq),
            prop::collection::vec((arb_key(), inner), 0..5).prop_map(|pairs| {
                // De-duplicate keys (the parser rejects duplicates).
                let mut seen = std::collections::HashSet::new();
                let mut map = Vec::new();
                for (k, v) in pairs {
                    if seen.insert(k.clone()) {
                        map.push((k, v));
                    }
                }
                Yaml::Map(map)
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn emit_then_parse_is_identity(v in arb_yaml()) {
        let text = to_string(&v);
        let back = parse(&text)
            .unwrap_or_else(|e| panic!("emitted document failed to parse: {e}\n---\n{text}\n---"));
        prop_assert_eq!(back, v, "emitted:\n{}", text);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(s in "[ -~\\n\\t]{0,200}") {
        // Errors are fine; panics are not.
        let _ = parse(&s);
    }

    #[test]
    fn parse_is_deterministic(s in "[ -~\\n]{0,120}") {
        let a = parse(&s);
        let b = parse(&s);
        prop_assert_eq!(a, b);
    }
}
