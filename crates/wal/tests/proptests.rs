//! Property tests for the WAL record codec: encode/decode round-trips,
//! and corruption detection under arbitrary truncation and single-bit
//! flips. The invariant throughout: a damaged log yields a *subset* of
//! the written records (in order) plus non-zero damage counters —
//! corruption is never silently accepted as different content.

use proptest::prelude::*;
use rai_wal::{decode_segment, encode_record, DurabilityConfig, MemDisk, ReplayStats, Wal};
use std::sync::Arc;

fn arb_payloads() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 1..20)
}

fn encode_all(payloads: &[Vec<u8>]) -> Vec<u8> {
    let mut buf = Vec::new();
    for p in payloads {
        buf.extend_from_slice(&encode_record(p));
    }
    buf
}

fn decode_all(bytes: &[u8]) -> (Vec<Vec<u8>>, ReplayStats) {
    let mut records = Vec::new();
    let mut stats = ReplayStats::default();
    decode_segment(bytes, &mut records, &mut stats);
    (records, stats)
}

/// True when `sub` is an in-order subsequence of `full`.
fn is_subsequence(sub: &[Vec<u8>], full: &[Vec<u8>]) -> bool {
    let mut it = full.iter();
    sub.iter().all(|s| it.any(|f| f == s))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn encode_decode_round_trips(payloads in arb_payloads()) {
        let (records, stats) = decode_all(&encode_all(&payloads));
        prop_assert_eq!(records, payloads);
        prop_assert_eq!(stats.corrupt_dropped, 0);
        prop_assert_eq!(stats.torn_bytes, 0);
    }

    #[test]
    fn wal_replay_round_trips(payloads in arb_payloads(), fsync_every in 1u64..8) {
        let disk = MemDisk::new();
        let config = DurabilityConfig {
            enabled: true,
            segment_bytes: 128,
            fsync_every,
            ..DurabilityConfig::default()
        };
        let wal = Wal::open(Arc::new(disk.clone()), config);
        for p in &payloads {
            wal.append(p);
        }
        // Replay through a freshly opened handle, as recovery would.
        let replay = Wal::open(Arc::new(disk), config).replay();
        prop_assert_eq!(replay.records, payloads);
        prop_assert_eq!(replay.stats.corrupt_dropped, 0);
    }

    #[test]
    fn arbitrary_truncation_yields_clean_prefix(
        payloads in arb_payloads(),
        cut_seed in any::<u64>(),
    ) {
        let bytes = encode_all(&payloads);
        let keep = (cut_seed as usize) % (bytes.len() + 1);
        let (records, stats) = decode_all(&bytes[..keep]);
        // A truncated log replays an exact prefix of what was written.
        prop_assert!(records.len() <= payloads.len());
        prop_assert_eq!(&records[..], &payloads[..records.len()]);
        // Every surviving byte is accounted: decoded frames + torn tail.
        let consumed: u64 = records.iter().map(|r| 8 + r.len() as u64).sum();
        prop_assert_eq!(consumed + stats.torn_bytes, keep as u64);
        prop_assert_eq!(stats.corrupt_dropped, 0);
    }

    #[test]
    fn single_bit_flip_is_never_silently_accepted(
        payloads in arb_payloads(),
        flip_seed in any::<u64>(),
    ) {
        let mut bytes = encode_all(&payloads);
        let pos = (flip_seed as usize) % bytes.len();
        bytes[pos] ^= 1u8 << (flip_seed % 8);
        let (records, stats) = decode_all(&bytes);
        // Decoded records are an in-order subset of the originals —
        // the flip can only *remove* records, never invent or alter.
        prop_assert!(
            is_subsequence(&records, &payloads),
            "flip at byte {} produced content never written",
            pos
        );
        // And the damage is visible in the counters.
        if records != payloads {
            prop_assert!(stats.corrupt_dropped > 0 || stats.torn_bytes > 0);
        }
    }

    #[test]
    fn decode_never_panics_on_garbage(garbage in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode_all(&garbage);
    }
}
