//! # rai-wal — checksummed append-only write-ahead log
//!
//! Durability substrate for `rai-db` and `rai-store`: components append
//! framed logical records to a segment log and replay it after a crash
//! to reconstruct their in-memory state byte-for-byte.
//!
//! ## Record framing
//!
//! Every record is `[len: u32 LE][crc: u32 LE][payload]` where `crc` is
//! the CRC-32 (IEEE) of the length prefix concatenated with the
//! payload. Covering the length field means a bit flip in `len` cannot
//! redirect the checksum window and be silently accepted: a corrupt
//! length either fails the sanity bound ([`MAX_RECORD`]), runs past the
//! segment end (treated as a torn tail), or lands on bytes whose CRC
//! does not match.
//!
//! ## Segments, fsync batching, compaction
//!
//! Records append to numbered segments; a segment rotates once it
//! reaches `segment_bytes`. [`Wal::append`] batches `fsync` calls —
//! one per `fsync_every` records — and [`Wal::sync`] forces a batch
//! boundary at explicit durability points. [`Wal::open`] always starts
//! a *fresh* segment (max existing id + 1) so recovery never appends
//! after a possibly-torn tail.
//!
//! [`Wal::compact`] snapshots live state into new, higher-numbered
//! segments and then deletes every older segment. Replay order is by
//! segment id, so a snapshot followed by later appends replays in the
//! same order it was written. Compaction runs only at quiesced points
//! (between scenario rounds); crash injection never interleaves with
//! it.
//!
//! ## Recovery
//!
//! [`Wal::replay`] walks segments in id order. An incomplete header or
//! a length running past the segment end truncates the tail (a torn
//! write — expected on crash, counted in bytes). A failed CRC drops
//! that record, counts it, and resyncs at the claimed record boundary
//! so later intact records still replay. Replay never panics on
//! corrupt input.
//!
//! ## Backends
//!
//! [`LogBackend`] abstracts the disk: [`FileBackend`] uses real files
//! (bins, integration tests); [`MemDisk`] is a deterministic simulated
//! disk that tracks the synced prefix of each segment and can apply
//! seeded [`DiskFault`]s to the unsynced tail at a crash, which keeps
//! crash/recovery proptests byte-reproducible.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

pub use rai_faults::{DiskFault, DiskFaultProfile};

/// Sanity bound on a single record payload. A decoded length above
/// this is treated as corruption, not allocation advice.
pub const MAX_RECORD: u32 = 64 << 20;

/// Bytes of framing overhead per record (`len` + `crc`).
pub const HEADER_BYTES: u64 = 8;

const CRC_TABLE: [u32; 256] = crc32_table();

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

fn crc32_update(state: u32, bytes: &[u8]) -> u32 {
    let mut c = state;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c
}

/// CRC-32 (IEEE 802.3) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_update(0xFFFF_FFFF, bytes) ^ 0xFFFF_FFFF
}

fn record_crc(len_le: [u8; 4], payload: &[u8]) -> u32 {
    crc32_update(crc32_update(0xFFFF_FFFF, &len_le), payload) ^ 0xFFFF_FFFF
}

/// Frame one payload as `[len][crc][payload]`.
pub fn encode_record(payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() as u64 <= MAX_RECORD as u64, "record exceeds MAX_RECORD");
    let len_le = (payload.len() as u32).to_le_bytes();
    let crc = record_crc(len_le, payload);
    let mut out = Vec::with_capacity(payload.len() + HEADER_BYTES as usize);
    out.extend_from_slice(&len_le);
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// What replay recovered and what it discarded.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Records decoded with a valid CRC.
    pub replayed: u64,
    /// Records dropped for a failed CRC or an insane length field.
    pub corrupt_dropped: u64,
    /// Trailing bytes truncated as torn writes (incomplete header or a
    /// length running past the segment end).
    pub torn_bytes: u64,
}

/// Decode one segment's bytes, appending intact payloads to `records`
/// and accounting damage in `stats`. Never panics: a torn tail
/// truncates, a corrupt record is dropped and decoding resyncs at the
/// boundary its length field claimed.
pub fn decode_segment(bytes: &[u8], records: &mut Vec<Vec<u8>>, stats: &mut ReplayStats) {
    let total = bytes.len();
    let mut off = 0usize;
    while off < total {
        let rem = total - off;
        if rem < HEADER_BYTES as usize {
            stats.torn_bytes += rem as u64;
            return;
        }
        let len_le = [bytes[off], bytes[off + 1], bytes[off + 2], bytes[off + 3]];
        let len = u32::from_le_bytes(len_le);
        if len > MAX_RECORD {
            // A length no writer could have produced: corruption, not a
            // torn write. Nothing after it can be trusted to align.
            stats.corrupt_dropped += 1;
            stats.torn_bytes += (rem - HEADER_BYTES as usize) as u64;
            return;
        }
        let len = len as usize;
        if len > rem - HEADER_BYTES as usize {
            // The record runs past the segment end: a torn write (or a
            // flipped length bit — indistinguishable, same handling).
            stats.torn_bytes += rem as u64;
            return;
        }
        let crc = u32::from_le_bytes([
            bytes[off + 4],
            bytes[off + 5],
            bytes[off + 6],
            bytes[off + 7],
        ]);
        let payload = &bytes[off + HEADER_BYTES as usize..off + HEADER_BYTES as usize + len];
        if record_crc(len_le, payload) == crc {
            records.push(payload.to_vec());
            stats.replayed += 1;
        } else {
            stats.corrupt_dropped += 1;
        }
        off += HEADER_BYTES as usize + len;
    }
}

/// Knobs for the durability layer, threaded from `SystemConfig` down
/// into each component's [`Wal`]. The default — durability disabled —
/// is the preserved in-memory reference configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityConfig {
    /// Journal mutations and support crash recovery. `false` keeps the
    /// original all-in-RAM behavior (and zero WAL overhead).
    pub enabled: bool,
    /// Rotate the active segment once it reaches this many bytes.
    pub segment_bytes: u64,
    /// Fsync once per this many appended records (1 = every record).
    /// Explicit [`Wal::sync`] calls at durability points force a batch
    /// boundary early.
    pub fsync_every: u64,
    /// Never compact while the log is smaller than this.
    pub compact_min_bytes: u64,
    /// Compact when the log exceeds this multiple of the last
    /// snapshot's size.
    pub compact_factor: u64,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            enabled: false,
            segment_bytes: 256 << 10,
            fsync_every: 8,
            compact_min_bytes: 1 << 20,
            compact_factor: 4,
        }
    }
}

impl DurabilityConfig {
    /// Durability on, with default sizing.
    pub fn durable() -> Self {
        DurabilityConfig { enabled: true, ..DurabilityConfig::default() }
    }
}

/// Pluggable storage under a [`Wal`]: numbered append-only segments.
///
/// Implementations must tolerate ids they have never seen (`append`
/// creates, `read_segment`/`segment_len` of a missing id are empty/0,
/// `remove_segment`/`sync` of a missing id are no-ops).
pub trait LogBackend: Send + Sync {
    /// Existing segment ids, ascending.
    fn list_segments(&self) -> Vec<u64>;
    /// Current length of a segment in bytes (0 if absent).
    fn segment_len(&self, id: u64) -> u64;
    /// Full contents of a segment (empty if absent).
    fn read_segment(&self, id: u64) -> Vec<u8>;
    /// Append bytes to a segment, creating it if needed.
    fn append(&self, id: u64, bytes: &[u8]);
    /// Make everything appended to the segment so far durable.
    fn sync(&self, id: u64);
    /// Delete a segment.
    fn remove_segment(&self, id: u64);
}

#[derive(Default)]
struct SegmentBuf {
    data: Vec<u8>,
    /// Bytes guaranteed durable: a crash can only damage `data[synced..]`.
    synced: usize,
}

#[derive(Default)]
struct MemDiskInner {
    segments: BTreeMap<u64, SegmentBuf>,
    /// Fsync calls observed, for batching assertions in tests.
    syncs: u64,
}

/// Deterministic in-memory "disk". Tracks the synced prefix of every
/// segment so a simulated crash ([`MemDisk::crash_with`]) can damage
/// exactly the bytes a real power cut could: the unsynced tail of the
/// active segment.
#[derive(Clone, Default)]
pub struct MemDisk {
    inner: Arc<Mutex<MemDiskInner>>,
}

impl MemDisk {
    /// An empty disk.
    pub fn new() -> Self {
        MemDisk::default()
    }

    /// Total bytes across all segments.
    pub fn total_bytes(&self) -> u64 {
        self.inner.lock().segments.values().map(|s| s.data.len() as u64).sum()
    }

    /// Number of fsync calls the disk has served.
    pub fn sync_count(&self) -> u64 {
        self.inner.lock().syncs
    }

    /// Simulate a clean process kill: the OS survives, so even unsynced
    /// page-cache bytes reach the platter. The disk is unchanged.
    pub fn crash_clean(&self) {}

    /// Simulate a dirty crash: apply `profile`'s seeded faults for
    /// `crash_index` to the unsynced tail of the highest (active)
    /// segment. The synced prefix is durable by contract and is never
    /// damaged. Returns the faults applied.
    pub fn crash_with(&self, profile: &DiskFaultProfile, crash_index: u64) -> Vec<DiskFault> {
        let mut inner = self.inner.lock();
        let Some((_, seg)) = inner.segments.iter_mut().next_back() else {
            return Vec::new();
        };
        let tail_len = (seg.data.len() - seg.synced) as u64;
        let faults = profile.faults_for_crash(crash_index, tail_len);
        for &fault in &faults {
            let tail = seg.data.len() - seg.synced;
            if tail == 0 {
                break;
            }
            match fault {
                DiskFault::TornTail { drop_bytes } => {
                    let cut = (drop_bytes as usize).min(tail);
                    seg.data.truncate(seg.data.len() - cut);
                }
                DiskFault::BitFlip { offset, bit } => {
                    let idx = seg.synced + (offset % tail as u64) as usize;
                    seg.data[idx] ^= 1 << (bit & 7);
                }
                DiskFault::ShortRead { keep } => {
                    let keep = (keep as usize).min(tail);
                    seg.data.truncate(seg.synced + keep);
                }
            }
        }
        faults
    }
}

impl LogBackend for MemDisk {
    fn list_segments(&self) -> Vec<u64> {
        self.inner.lock().segments.keys().copied().collect()
    }

    fn segment_len(&self, id: u64) -> u64 {
        self.inner.lock().segments.get(&id).map_or(0, |s| s.data.len() as u64)
    }

    fn read_segment(&self, id: u64) -> Vec<u8> {
        self.inner.lock().segments.get(&id).map_or_else(Vec::new, |s| s.data.clone())
    }

    fn append(&self, id: u64, bytes: &[u8]) {
        self.inner.lock().segments.entry(id).or_default().data.extend_from_slice(bytes);
    }

    fn sync(&self, id: u64) {
        let mut inner = self.inner.lock();
        inner.syncs += 1;
        if let Some(seg) = inner.segments.get_mut(&id) {
            seg.synced = seg.data.len();
        }
    }

    fn remove_segment(&self, id: u64) {
        self.inner.lock().segments.remove(&id);
    }
}

/// Real-file backend: one `<id:016x>.wal` file per segment under a
/// directory. Used by bins and integration tests; the simulated
/// [`MemDisk`] is preferred wherever determinism matters.
pub struct FileBackend {
    dir: PathBuf,
}

impl FileBackend {
    /// Backend rooted at `dir`, which is created if missing.
    pub fn new(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(FileBackend { dir })
    }

    fn path(&self, id: u64) -> PathBuf {
        self.dir.join(format!("{id:016x}.wal"))
    }
}

impl LogBackend for FileBackend {
    fn list_segments(&self) -> Vec<u64> {
        let mut ids = Vec::new();
        if let Ok(entries) = std::fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if let Some(hex) = name.strip_suffix(".wal") {
                    if let Ok(id) = u64::from_str_radix(hex, 16) {
                        ids.push(id);
                    }
                }
            }
        }
        ids.sort_unstable();
        ids
    }

    fn segment_len(&self, id: u64) -> u64 {
        std::fs::metadata(self.path(id)).map_or(0, |m| m.len())
    }

    fn read_segment(&self, id: u64) -> Vec<u8> {
        std::fs::read(self.path(id)).unwrap_or_default()
    }

    fn append(&self, id: u64, bytes: &[u8]) {
        use std::io::Write as _;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path(id))
            .expect("wal: open segment for append");
        file.write_all(bytes).expect("wal: append to segment");
    }

    fn sync(&self, id: u64) {
        if let Ok(file) = std::fs::File::open(self.path(id)) {
            let _ = file.sync_all();
        }
    }

    fn remove_segment(&self, id: u64) {
        let _ = std::fs::remove_file(self.path(id));
    }
}

/// A view of every `stride`-th segment of an underlying backend,
/// offset by `lane`: local segment id `i` maps to physical id
/// `i * stride + lane`. Several [`Wal`]s can thereby share one physical
/// log device (one directory, one [`MemDisk`]) without their segment
/// ids colliding — `rai-store` stripes its main object log plus one
/// chunk log per arena shard over the single store log its drivers
/// provide, so sharding never changes the on-disk plumbing callers set
/// up.
///
/// Each lane is an ordinary segment log: rotation, compaction, and
/// replay of one lane never touch another lane's segments.
pub struct StripedBackend {
    inner: Arc<dyn LogBackend>,
    lane: u64,
    stride: u64,
}

impl StripedBackend {
    /// View of `inner` owning segments `lane`, `lane + stride`,
    /// `lane + 2*stride`, …
    pub fn new(inner: Arc<dyn LogBackend>, lane: u64, stride: u64) -> Self {
        assert!(stride > 0 && lane < stride, "lane must lie inside the stride");
        StripedBackend { inner, lane, stride }
    }

    fn physical(&self, id: u64) -> u64 {
        id * self.stride + self.lane
    }
}

impl LogBackend for StripedBackend {
    fn list_segments(&self) -> Vec<u64> {
        // Inner ids are ascending and the mapping is monotonic, so the
        // local ids come out ascending too.
        self.inner
            .list_segments()
            .into_iter()
            .filter(|id| id % self.stride == self.lane)
            .map(|id| id / self.stride)
            .collect()
    }

    fn segment_len(&self, id: u64) -> u64 {
        self.inner.segment_len(self.physical(id))
    }

    fn read_segment(&self, id: u64) -> Vec<u8> {
        self.inner.read_segment(self.physical(id))
    }

    fn append(&self, id: u64, bytes: &[u8]) {
        self.inner.append(self.physical(id), bytes);
    }

    fn sync(&self, id: u64) {
        self.inner.sync(self.physical(id));
    }

    fn remove_segment(&self, id: u64) {
        self.inner.remove_segment(self.physical(id));
    }
}

struct WalState {
    /// Id of the segment currently receiving appends.
    active: u64,
    active_len: u64,
    /// Records appended since the last fsync batch.
    unsynced_records: u64,
    /// Total framed bytes across all live segments.
    log_bytes: u64,
    /// Framed bytes of the last compaction snapshot (0 before the
    /// first compaction).
    snapshot_bytes: u64,
}

#[derive(Default)]
struct WalCounters {
    appends: AtomicU64,
    bytes: AtomicU64,
    fsync_batches: AtomicU64,
    replayed: AtomicU64,
    corrupt_dropped: AtomicU64,
    torn_bytes: AtomicU64,
    compactions: AtomicU64,
}

/// Point-in-time counters for telemetry and reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended.
    pub appends: u64,
    /// Framed bytes appended.
    pub bytes: u64,
    /// Fsync batches issued.
    pub fsync_batches: u64,
    /// Records recovered across all [`Wal::replay`] calls.
    pub replayed: u64,
    /// Corrupt records dropped on replay.
    pub corrupt_dropped: u64,
    /// Torn-tail bytes truncated on replay.
    pub torn_bytes: u64,
    /// Compactions performed.
    pub compactions: u64,
    /// Live segments.
    pub segments: u64,
    /// Total framed bytes in live segments.
    pub log_bytes: u64,
    /// Framed bytes of the last compaction snapshot.
    pub snapshot_bytes: u64,
}

struct WalInner {
    backend: Arc<dyn LogBackend>,
    config: DurabilityConfig,
    state: Mutex<WalState>,
    counters: WalCounters,
}

/// Cheaply cloneable handle to one component's write-ahead log. All
/// clones share the active-segment cursor and counters.
#[derive(Clone)]
pub struct Wal {
    inner: Arc<WalInner>,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.inner.state.lock();
        f.debug_struct("Wal")
            .field("active", &state.active)
            .field("log_bytes", &state.log_bytes)
            .finish_non_exhaustive()
    }
}

/// The outcome of [`Wal::replay`].
#[derive(Debug, Default)]
pub struct Replay {
    /// Intact record payloads, in append order.
    pub records: Vec<Vec<u8>>,
    /// What was recovered and what was discarded.
    pub stats: ReplayStats,
}

impl Wal {
    /// Open a log over `backend`. Appends always start a fresh segment
    /// (max existing id + 1) so recovery never writes after a
    /// possibly-torn tail.
    pub fn open(backend: Arc<dyn LogBackend>, config: DurabilityConfig) -> Self {
        let ids = backend.list_segments();
        let log_bytes = ids.iter().map(|&id| backend.segment_len(id)).sum();
        let active = ids.last().map_or(0, |&id| id + 1);
        Wal {
            inner: Arc::new(WalInner {
                backend,
                config,
                state: Mutex::new(WalState {
                    active,
                    active_len: 0,
                    unsynced_records: 0,
                    log_bytes,
                    snapshot_bytes: 0,
                }),
                counters: WalCounters::default(),
            }),
        }
    }

    /// The configuration this log runs under.
    pub fn config(&self) -> &DurabilityConfig {
        &self.inner.config
    }

    /// Append one framed record, rotating the segment and batching
    /// fsyncs per the config.
    pub fn append(&self, payload: &[u8]) {
        let framed = encode_record(payload);
        let mut state = self.inner.state.lock();
        let id = state.active;
        self.inner.backend.append(id, &framed);
        state.active_len += framed.len() as u64;
        state.log_bytes += framed.len() as u64;
        state.unsynced_records += 1;
        self.inner.counters.appends.fetch_add(1, Ordering::Relaxed);
        self.inner.counters.bytes.fetch_add(framed.len() as u64, Ordering::Relaxed);
        if state.unsynced_records >= self.inner.config.fsync_every.max(1) {
            self.sync_locked(&mut state);
        }
        if state.active_len >= self.inner.config.segment_bytes.max(1) {
            // Rotation is a durability point: seal the full segment.
            self.sync_locked(&mut state);
            state.active += 1;
            state.active_len = 0;
        }
    }

    /// Force an fsync batch boundary (a durability point: e.g. a
    /// submission intent must survive any later crash).
    pub fn sync(&self) {
        let mut state = self.inner.state.lock();
        self.sync_locked(&mut state);
    }

    fn sync_locked(&self, state: &mut WalState) {
        if state.unsynced_records == 0 {
            return;
        }
        self.inner.backend.sync(state.active);
        state.unsynced_records = 0;
        self.inner.counters.fsync_batches.fetch_add(1, Ordering::Relaxed);
    }

    /// Replay every live segment in id order, recovering intact records
    /// and accounting damage. Accumulates into the shared counters.
    pub fn replay(&self) -> Replay {
        let mut replay = Replay::default();
        for id in self.inner.backend.list_segments() {
            let bytes = self.inner.backend.read_segment(id);
            decode_segment(&bytes, &mut replay.records, &mut replay.stats);
        }
        let c = &self.inner.counters;
        c.replayed.fetch_add(replay.stats.replayed, Ordering::Relaxed);
        c.corrupt_dropped.fetch_add(replay.stats.corrupt_dropped, Ordering::Relaxed);
        c.torn_bytes.fetch_add(replay.stats.torn_bytes, Ordering::Relaxed);
        replay
    }

    /// True when the log has outgrown the last snapshot by the
    /// configured factor (and the minimum size).
    pub fn should_compact(&self) -> bool {
        let state = self.inner.state.lock();
        state.log_bytes >= self.inner.config.compact_min_bytes
            && state.log_bytes
                >= self.inner.config.compact_factor.max(1) * state.snapshot_bytes.max(1)
    }

    /// Replace the entire log with `snapshot` records: they are written
    /// (and synced) into fresh, higher-numbered segments, then every
    /// older segment is deleted. Replay order is preserved because
    /// segments replay in id order. Must run at a quiesced point — the
    /// caller guarantees no concurrent appends and no crash injection
    /// while compaction is in flight.
    pub fn compact(&self, snapshot: impl IntoIterator<Item = Vec<u8>>) {
        let mut state = self.inner.state.lock();
        let old_ids = self.inner.backend.list_segments();
        let mut id = state.active + 1;
        let mut seg_len = 0u64;
        let mut written = 0u64;
        for payload in snapshot {
            let framed = encode_record(&payload);
            if seg_len > 0 && seg_len + framed.len() as u64 > self.inner.config.segment_bytes.max(1)
            {
                self.inner.backend.sync(id);
                id += 1;
                seg_len = 0;
            }
            self.inner.backend.append(id, &framed);
            seg_len += framed.len() as u64;
            written += framed.len() as u64;
        }
        self.inner.backend.sync(id);
        for old in old_ids {
            self.inner.backend.remove_segment(old);
        }
        state.active = id + 1;
        state.active_len = 0;
        state.unsynced_records = 0;
        state.log_bytes = written;
        state.snapshot_bytes = written;
        self.inner.counters.compactions.fetch_add(1, Ordering::Relaxed);
    }

    /// Current counters plus log geometry.
    pub fn stats(&self) -> WalStats {
        let c = &self.inner.counters;
        let (segments, log_bytes, snapshot_bytes) = {
            let state = self.inner.state.lock();
            (
                self.inner.backend.list_segments().len() as u64,
                state.log_bytes,
                state.snapshot_bytes,
            )
        };
        WalStats {
            appends: c.appends.load(Ordering::Relaxed),
            bytes: c.bytes.load(Ordering::Relaxed),
            fsync_batches: c.fsync_batches.load(Ordering::Relaxed),
            replayed: c.replayed.load(Ordering::Relaxed),
            corrupt_dropped: c.corrupt_dropped.load(Ordering::Relaxed),
            torn_bytes: c.torn_bytes.load(Ordering::Relaxed),
            compactions: c.compactions.load(Ordering::Relaxed),
            segments,
            log_bytes,
            snapshot_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem_wal(config: DurabilityConfig) -> (Wal, MemDisk) {
        let disk = MemDisk::new();
        let wal = Wal::open(Arc::new(disk.clone()), config);
        (wal, disk)
    }

    #[test]
    fn append_replay_round_trip() {
        let (wal, _disk) = mem_wal(DurabilityConfig::durable());
        let payloads: Vec<Vec<u8>> = (0..100u32).map(|i| i.to_le_bytes().to_vec()).collect();
        for p in &payloads {
            wal.append(p);
        }
        let replay = wal.replay();
        assert_eq!(replay.records, payloads);
        assert_eq!(replay.stats.replayed, 100);
        assert_eq!(replay.stats.corrupt_dropped, 0);
        assert_eq!(replay.stats.torn_bytes, 0);
    }

    #[test]
    fn segments_rotate_and_reopen_starts_fresh() {
        let config = DurabilityConfig {
            enabled: true,
            segment_bytes: 64,
            fsync_every: 1,
            ..DurabilityConfig::default()
        };
        let (wal, disk) = mem_wal(config);
        for i in 0..20u64 {
            wal.append(&i.to_le_bytes());
        }
        assert!(disk.list_segments().len() > 1, "should have rotated");
        // Reopen: the new active segment is beyond every existing one.
        let reopened = Wal::open(Arc::new(disk.clone()), config);
        let before = disk.list_segments();
        reopened.append(b"post-recovery");
        let after = disk.list_segments();
        assert_eq!(after.len(), before.len() + 1);
        assert!(after.last() > before.last());
        // Replay still sees everything, in order.
        let replay = reopened.replay();
        assert_eq!(replay.records.len(), 21);
        assert_eq!(replay.records[20], b"post-recovery".to_vec());
    }

    #[test]
    fn fsync_batches_per_config() {
        let config = DurabilityConfig {
            enabled: true,
            fsync_every: 5,
            segment_bytes: 1 << 20,
            ..DurabilityConfig::default()
        };
        let (wal, disk) = mem_wal(config);
        for i in 0..10u64 {
            wal.append(&i.to_le_bytes());
        }
        assert_eq!(disk.sync_count(), 2);
        assert_eq!(wal.stats().fsync_batches, 2);
        // An explicit sync with nothing pending is a no-op.
        wal.sync();
        assert_eq!(disk.sync_count(), 2);
        wal.append(b"x");
        wal.sync();
        assert_eq!(disk.sync_count(), 3);
    }

    #[test]
    fn torn_tail_truncates_cleanly() {
        let (wal, disk) = mem_wal(DurabilityConfig::durable());
        wal.append(b"alpha");
        wal.append(b"beta");
        // Tear mid-record: chop 3 bytes off the active segment.
        let id = *disk.list_segments().last().unwrap();
        let mut bytes = disk.read_segment(id);
        bytes.truncate(bytes.len() - 3);
        disk.remove_segment(id);
        disk.append(id, &bytes);
        let replay = wal.replay();
        assert_eq!(replay.records, vec![b"alpha".to_vec()]);
        assert_eq!(replay.stats.replayed, 1);
        assert!(replay.stats.torn_bytes > 0);
    }

    #[test]
    fn bit_flip_drops_one_record_and_resyncs() {
        let (wal, disk) = mem_wal(DurabilityConfig::durable());
        wal.append(b"first");
        wal.append(b"second");
        wal.append(b"third");
        let id = *disk.list_segments().last().unwrap();
        let mut bytes = disk.read_segment(id);
        // Flip a payload bit of "second" (record 2's payload starts at
        // 8+5+8 = 21).
        bytes[21] ^= 0x10;
        disk.remove_segment(id);
        disk.append(id, &bytes);
        let replay = wal.replay();
        assert_eq!(replay.records, vec![b"first".to_vec(), b"third".to_vec()]);
        assert_eq!(replay.stats.corrupt_dropped, 1);
    }

    #[test]
    fn insane_length_stops_without_panicking() {
        let mut records = Vec::new();
        let mut stats = ReplayStats::default();
        let mut bytes = encode_record(b"ok");
        let mut bad = (MAX_RECORD + 1).to_le_bytes().to_vec();
        bad.extend_from_slice(&[0u8; 12]);
        bytes.extend_from_slice(&bad);
        decode_segment(&bytes, &mut records, &mut stats);
        assert_eq!(records, vec![b"ok".to_vec()]);
        assert_eq!(stats.corrupt_dropped, 1);
    }

    #[test]
    fn compaction_replaces_old_segments_and_preserves_order() {
        let config = DurabilityConfig {
            enabled: true,
            segment_bytes: 64,
            fsync_every: 1,
            compact_min_bytes: 1,
            compact_factor: 1,
        };
        let (wal, disk) = mem_wal(config);
        for i in 0..50u64 {
            wal.append(format!("record-{i}").as_bytes());
        }
        assert!(wal.should_compact());
        let live: Vec<Vec<u8>> = vec![b"snap-a".to_vec(), b"snap-b".to_vec()];
        wal.compact(live.clone());
        assert_eq!(wal.stats().compactions, 1);
        assert!(wal.stats().log_bytes < 100);
        // Post-compaction appends land after the snapshot in replay.
        wal.append(b"tail");
        let replay = wal.replay();
        assert_eq!(
            replay.records,
            vec![b"snap-a".to_vec(), b"snap-b".to_vec(), b"tail".to_vec()]
        );
        // Every pre-compaction segment is gone.
        assert!(disk.list_segments().len() <= 2);
    }

    #[test]
    fn crash_with_faults_damages_only_unsynced_tail() {
        let config = DurabilityConfig {
            enabled: true,
            fsync_every: 1000,
            segment_bytes: 1 << 20,
            ..DurabilityConfig::default()
        };
        let (wal, disk) = mem_wal(config);
        for i in 0..10u64 {
            wal.append(format!("durable-{i}").as_bytes());
        }
        wal.sync(); // everything so far is durable
        for i in 0..10u64 {
            wal.append(format!("volatile-{i}").as_bytes());
        }
        let profile = DiskFaultProfile::chaos(42);
        // Find a crash index that actually tears the tail.
        let crash_index = (0..100u64)
            .find(|&c| {
                profile
                    .faults_for_crash(c, 1)
                    .iter()
                    .any(|f| matches!(f, DiskFault::TornTail { .. }))
            })
            .expect("chaos profile tears some crash");
        disk.crash_with(&profile, crash_index);
        let recovered = Wal::open(Arc::new(disk.clone()), config);
        let replay = recovered.replay();
        // All synced records survive, in order; some volatile tail may
        // be gone but nothing is silently wrong.
        assert!(replay.records.len() >= 10);
        for (i, rec) in replay.records.iter().take(10).enumerate() {
            assert_eq!(rec, format!("durable-{i}").as_bytes());
        }
        assert!(replay.records.len() < 20 || replay.stats.corrupt_dropped > 0);
    }

    #[test]
    fn striped_lanes_are_independent_logs() {
        let disk = MemDisk::new();
        let inner: Arc<dyn LogBackend> = Arc::new(disk.clone());
        let config = DurabilityConfig {
            enabled: true,
            segment_bytes: 64,
            fsync_every: 1,
            compact_min_bytes: 1,
            compact_factor: 1,
        };
        let lanes: Vec<Wal> = (0..3)
            .map(|lane| Wal::open(Arc::new(StripedBackend::new(inner.clone(), lane, 3)), config))
            .collect();
        for i in 0..30u64 {
            lanes[(i % 3) as usize].append(format!("lane{}-{i}", i % 3).as_bytes());
        }
        // Each lane replays only its own records, in its own order.
        for (l, wal) in lanes.iter().enumerate() {
            let replay = wal.replay();
            assert_eq!(replay.records.len(), 10);
            for rec in &replay.records {
                assert!(rec.starts_with(format!("lane{l}").as_bytes()), "lane isolation");
            }
            assert_eq!(replay.stats.corrupt_dropped, 0);
        }
        // Physical ids interleave with the configured stride.
        for id in disk.list_segments() {
            let lane = id % 3;
            let bytes = disk.read_segment(id);
            let mut records = Vec::new();
            decode_segment(&bytes, &mut records, &mut ReplayStats::default());
            for rec in records {
                assert!(rec.starts_with(format!("lane{lane}").as_bytes()));
            }
        }
        // Compacting one lane never touches another lane's segments.
        let lane1_before = StripedBackend::new(inner.clone(), 1, 3).list_segments();
        assert!(lanes[0].should_compact());
        lanes[0].compact(vec![b"snap".to_vec()]);
        assert_eq!(StripedBackend::new(inner.clone(), 1, 3).list_segments(), lane1_before);
        let replay = lanes[0].replay();
        assert_eq!(replay.records, vec![b"snap".to_vec()]);
        // Reopening a lane starts its fresh segment past its own max.
        let reopened = Wal::open(Arc::new(StripedBackend::new(inner.clone(), 2, 3)), config);
        reopened.append(b"lane2-post");
        assert_eq!(reopened.replay().records.len(), 11);
    }

    #[test]
    fn file_backend_round_trips() {
        let dir = std::env::temp_dir().join(format!("rai-wal-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let backend = Arc::new(FileBackend::new(&dir).expect("temp dir"));
        let config = DurabilityConfig {
            enabled: true,
            segment_bytes: 64,
            fsync_every: 2,
            ..DurabilityConfig::default()
        };
        let wal = Wal::open(backend.clone(), config);
        for i in 0..20u64 {
            wal.append(format!("file-{i}").as_bytes());
        }
        wal.sync();
        let reopened = Wal::open(backend, config);
        let replay = reopened.replay();
        assert_eq!(replay.records.len(), 20);
        assert_eq!(replay.stats.corrupt_dropped, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
