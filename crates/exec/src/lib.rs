//! Deterministic work-stealing executor for RAI's payload pipeline.
//!
//! The discrete-event engine stays single-threaded on purpose — event
//! order *is* the simulation — but the byte-crunching it triggers
//! (Gear chunking, FNV digesting, LZSS batches, chunk validation) is
//! pure: output depends only on the input bytes. This crate provides
//! the pool those pure transforms run on, built from scratch because
//! the build environment has no registry access (same convention as
//! the `compat/` shims).
//!
//! Four pieces:
//!
//! - [`Executor`] — a cheaply clonable handle, either *sequential*
//!   (`parallelism <= 1`, every task runs inline on the caller; the
//!   preserved reference configuration) or a *pool* of N workers with
//!   per-worker deques plus a shared injector queue. Owners push and
//!   pop the back of their own deque (LIFO, cache-warm); thieves and
//!   the injector drain from the front (FIFO).
//! - [`Executor::scope`] — structured spawning: tasks may borrow from
//!   the caller's stack, the scope joins every spawned task before it
//!   returns (even when the closure panics), and the first task panic
//!   is re-thrown at the join point.
//! - [`Executor::par_map`] — ordered data parallelism: results come
//!   back in **input order** regardless of completion order, which is
//!   what makes offloading safe for the determinism gate
//!   (`SemesterResult::fingerprint()` must be byte-identical at every
//!   thread count; see DESIGN.md §12).
//! - [`Executor::run_jobs`] — the **job scheduling API** (DESIGN.md
//!   §15): one *claim → execute → commit* batch. The caller produces
//!   claims serially (every shared-state touch point resolved in a
//!   deterministic order), `execute` fans the pure middle of each job
//!   across the pool, and `commit` is applied back on the calling
//!   thread **in claim order**, no matter which pool worker finished
//!   first. This is what lets independent submissions run concurrently
//!   while fault draws, trace artifacts, and fingerprints stay
//!   byte-identical at every pool width.
//!
//! Threads that join a scope *help*: while waiting they pull pending
//! tasks off the pool and run them, so nested scopes make progress
//! even on a one-worker pool (and on a one-core host).
//!
//! # Examples
//!
//! Ordered data parallelism:
//!
//! ```
//! use rai_exec::Executor;
//!
//! let exec = Executor::new(4);
//! let doubled = exec.par_map((0..8).collect::<Vec<u64>>(), |x| x * 2);
//! assert_eq!(doubled, (0..8).map(|x| x * 2).collect::<Vec<_>>());
//! ```
//!
//! A claim/execute/commit batch — commits land in claim order even
//! though execution interleaves freely across the pool:
//!
//! ```
//! use rai_exec::Executor;
//!
//! let exec = Executor::new(4);
//! let mut committed = Vec::new();
//! exec.run_jobs(
//!     vec![1u64, 2, 3, 4],          // claims, in claim order
//!     |n| n * n,                    // execute: pure, concurrent
//!     |sq| committed.push(sq),      // commit: serial, claim order
//! );
//! assert_eq!(committed, vec![1, 4, 9, 16]);
//! ```

use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::cell::{Cell, UnsafeCell};
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::ops::Range;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A type-erased unit of work queued on the pool.
type Job = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    /// `(pool identity, worker index)` for pool worker threads, so a
    /// task spawning sub-tasks pushes onto its own deque instead of
    /// the shared injector.
    static CURRENT_WORKER: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
}

// ------------------------------------------------------------ Executor

/// Handle to an execution strategy: inline sequential or a
/// work-stealing pool. Clones share the same pool.
#[derive(Clone)]
pub struct Executor {
    inner: Arc<Inner>,
}

enum Inner {
    /// `parallelism <= 1`: tasks run inline on the calling thread, in
    /// spawn order. This is the preserved reference configuration the
    /// determinism gate compares against.
    Sequential(Counters),
    Pool(Pool),
}

/// Cumulative activity counters. Telemetry-only: they are never read
/// back by pipeline logic (steal/park counts depend on OS scheduling,
/// so they are *not* deterministic across runs or pool widths and must
/// stay out of fingerprints and byte-identical exports).
#[derive(Debug, Default)]
struct Counters {
    spawned: AtomicU64,
    inline_runs: AtomicU64,
    stolen: AtomicU64,
    parked: AtomicU64,
    injected: AtomicU64,
    batches: AtomicU64,
    batch_jobs: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> ExecStats {
        ExecStats {
            spawned: self.spawned.load(Ordering::Relaxed),
            inline_runs: self.inline_runs.load(Ordering::Relaxed),
            stolen: self.stolen.load(Ordering::Relaxed),
            parked: self.parked.load(Ordering::Relaxed),
            injected: self.injected.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batch_jobs: self.batch_jobs.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of an executor's cumulative activity counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Tasks handed to pool workers (scope spawns on a pool).
    pub spawned: u64,
    /// Tasks run inline on the calling thread (sequential executor, or
    /// degenerate `par_map` inputs that skip the pool).
    pub inline_runs: u64,
    /// Jobs taken from another worker's deque (or by a helping joiner).
    pub stolen: u64,
    /// Times a worker ran dry and parked on the idle condvar.
    pub parked: u64,
    /// Jobs that went through the shared injector (spawns arriving from
    /// off-pool threads).
    pub injected: u64,
    /// Claim/execute/commit batches scheduled via [`Executor::run_jobs`].
    pub batches: u64,
    /// Jobs those batches carried (batch sizes summed).
    pub batch_jobs: u64,
}

impl Default for Executor {
    fn default() -> Self {
        Executor::sequential()
    }
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("parallelism", &self.parallelism())
            .finish()
    }
}

impl Executor {
    /// An executor that runs every task inline on the caller thread.
    pub fn sequential() -> Self {
        Executor {
            inner: Arc::new(Inner::Sequential(Counters::default())),
        }
    }

    /// An executor with `parallelism` worker threads; `<= 1` yields
    /// the sequential executor (no threads spawned at all).
    pub fn new(parallelism: usize) -> Self {
        if parallelism <= 1 {
            return Executor::sequential();
        }
        Executor {
            inner: Arc::new(Inner::Pool(Pool::start(parallelism))),
        }
    }

    /// Number of threads tasks may run on (1 for sequential).
    pub fn parallelism(&self) -> usize {
        match &*self.inner {
            Inner::Sequential(_) => 1,
            Inner::Pool(p) => p.shared.deques.len(),
        }
    }

    /// True when every task runs inline on the caller thread.
    pub fn is_sequential(&self) -> bool {
        matches!(&*self.inner, Inner::Sequential(_))
    }

    /// Snapshot of the cumulative activity counters (spawn / inline /
    /// steal / park / inject). Monotonic; shared by every clone of this
    /// handle. Steal and park counts depend on thread scheduling —
    /// report them, never fingerprint them.
    pub fn stats(&self) -> ExecStats {
        self.counters().snapshot()
    }

    fn counters(&self) -> &Counters {
        match &*self.inner {
            Inner::Sequential(c) => c,
            Inner::Pool(p) => &p.shared.counters,
        }
    }

    /// Run `f` with a [`Scope`] that can spawn borrowing tasks.
    ///
    /// Every spawned task is joined before `scope` returns — including
    /// when `f` itself panics, so tasks never outlive the borrows they
    /// capture. Panics propagate: `f`'s own panic first, otherwise the
    /// first task panic, re-thrown here.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&Scope<'env, '_>) -> R,
    {
        let state = Arc::new(ScopeState::new());
        let result = {
            let scope = Scope {
                exec: self,
                state: &state,
                _env: PhantomData,
            };
            panic::catch_unwind(AssertUnwindSafe(|| f(&scope)))
        };
        // Join before looking at `result`: tasks may borrow stack data
        // that `f`'s unwinding would otherwise free under them.
        self.join_scope(&state);
        let task_panic = state.lock.lock().panic.take();
        match result {
            Err(p) => panic::resume_unwind(p),
            Ok(r) => {
                if let Some(p) = task_panic {
                    panic::resume_unwind(p);
                }
                r
            }
        }
    }

    /// Map `f` over `items`, returning results in **input order**
    /// regardless of which worker finishes first. For a pure `f` the
    /// output is byte-identical to `items.into_iter().map(f)` at any
    /// parallelism — the property the determinism gate relies on.
    pub fn par_map<T, U, F>(&self, items: Vec<T>, f: F) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        if self.is_sequential() || items.len() <= 1 {
            self.counters()
                .inline_runs
                .fetch_add(items.len() as u64, Ordering::Relaxed);
            return items.into_iter().map(f).collect();
        }
        let slots = SlotVec::new(items.len());
        self.scope(|s| {
            for (i, item) in items.into_iter().enumerate() {
                let slots = &slots;
                let f = &f;
                s.spawn(move || slots.set(i, f(item)));
            }
        });
        slots.into_vec()
    }

    /// Run one *claim → execute → commit* batch of independent jobs
    /// (the job scheduling model of DESIGN.md §15).
    ///
    /// `claims` is the batch in **claim order** — the caller produced
    /// them serially, resolving every shared-state touch point (queue
    /// pops, fault draws, cache updates) before any job executes.
    /// `execute` is the pure middle of each job: it runs on pool tasks
    /// and may finish in any order (on a sequential executor it runs
    /// inline, in claim order). `commit` runs on the calling thread,
    /// serially, in claim order — so side effects downstream of
    /// execution (uploads, database records, acks) are applied in a
    /// deterministic order no matter how the pool interleaved.
    ///
    /// For a pure `execute` the committed sequence is byte-identical
    /// to running each job start-to-finish sequentially in claim
    /// order, at any parallelism. A panic in `execute` is re-thrown
    /// here after the whole batch joined, before any commit runs.
    ///
    /// # Examples
    ///
    /// ```
    /// use rai_exec::Executor;
    ///
    /// let exec = Executor::new(4);
    /// let mut order = Vec::new();
    /// let total: u64 = exec
    ///     .run_jobs(
    ///         vec![3u64, 1, 2],
    ///         |n| n * 10,                      // concurrent
    ///         |n| { order.push(n); n }         // serial, claim order
    ///     )
    ///     .into_iter()
    ///     .sum();
    /// assert_eq!(order, vec![30, 10, 20]);
    /// assert_eq!(total, 60);
    /// ```
    pub fn run_jobs<C, T, O, E, K>(&self, claims: Vec<C>, execute: E, mut commit: K) -> Vec<O>
    where
        C: Send,
        T: Send,
        E: Fn(C) -> T + Sync,
        K: FnMut(T) -> O,
    {
        let counters = self.counters();
        counters.batches.fetch_add(1, Ordering::Relaxed);
        counters
            .batch_jobs
            .fetch_add(claims.len() as u64, Ordering::Relaxed);
        self.par_map(claims, execute)
            .into_iter()
            .map(&mut commit)
            .collect()
    }

    /// Record one claim/execute/commit batch scheduled *outside*
    /// [`Executor::run_jobs`] — a lane-partitioned commit driver runs
    /// the phases itself via [`Executor::par_map`] and
    /// [`Executor::scope`], and calls this so the batch counters stay
    /// comparable across scheduling modes.
    pub fn note_batch(&self, jobs: usize) {
        let counters = self.counters();
        counters.batches.fetch_add(1, Ordering::Relaxed);
        counters.batch_jobs.fetch_add(jobs as u64, Ordering::Relaxed);
    }

    /// Pull one pending job off the pool, if any: injector first, then
    /// steal from the front of any worker deque. Used by joining
    /// threads to help instead of blocking.
    fn try_pop_job(&self) -> Option<Job> {
        match &*self.inner {
            Inner::Sequential(_) => None,
            Inner::Pool(p) => p.shared.pop_external(),
        }
    }

    /// Block (helping) until every task of `state` has finished.
    fn join_scope(&self, state: &Arc<ScopeState>) {
        loop {
            if state.lock.lock().pending == 0 {
                return;
            }
            if let Some(job) = self.try_pop_job() {
                run_job(job);
                continue;
            }
            let mut g = state.lock.lock();
            if g.pending == 0 {
                return;
            }
            // Short timeout: a task spawned from a worker thread may
            // enqueue follow-up work onto its own deque without a
            // wakeup reaching us; re-polling bounds that race.
            state.done.wait_for(&mut g, Duration::from_millis(1));
        }
    }
}

/// Run one job, containing any panic: the scope wrapper inside the job
/// has already captured the payload for re-throw at the join point,
/// so the worker (or helping joiner) must survive the unwind.
fn run_job(job: Job) {
    let _ = panic::catch_unwind(AssertUnwindSafe(job));
}

// --------------------------------------------------------------- Scope

/// Spawning handle passed to the closure of [`Executor::scope`].
///
/// `'env` is the lifetime of borrows the spawned tasks may capture;
/// it is invariant (same trick as `std::thread::scope`) so tasks can
/// borrow both shared and mutable state safely.
pub struct Scope<'env, 'scope> {
    exec: &'scope Executor,
    state: &'scope Arc<ScopeState>,
    _env: PhantomData<&'env mut &'env ()>,
}

struct ScopeState {
    lock: Mutex<ScopeInner>,
    done: Condvar,
}

struct ScopeInner {
    pending: usize,
    panic: Option<Box<dyn Any + Send>>,
}

impl ScopeState {
    fn new() -> Self {
        ScopeState {
            lock: Mutex::new(ScopeInner {
                pending: 0,
                panic: None,
            }),
            done: Condvar::new(),
        }
    }

    /// Record a finished task, capturing the first panic payload.
    fn complete(&self, panic: Option<Box<dyn Any + Send>>) {
        let mut g = self.lock.lock();
        if let Some(p) = panic {
            if g.panic.is_none() {
                g.panic = Some(p);
            }
        }
        g.pending -= 1;
        if g.pending == 0 {
            self.done.notify_all();
        }
    }
}

impl<'env> Scope<'env, '_> {
    /// Spawn a task that may borrow from the enclosing scope.
    ///
    /// On a pool the task runs on whichever worker gets to it first;
    /// on the sequential executor it runs inline, immediately, in
    /// spawn order. A panicking task does not abort its siblings —
    /// the payload is re-thrown when the scope joins.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        match &*self.exec.inner {
            Inner::Sequential(counters) => {
                counters.inline_runs.fetch_add(1, Ordering::Relaxed);
                // Inline, but with pool-identical panic semantics:
                // capture the payload, keep running later spawns.
                if let Err(p) = panic::catch_unwind(AssertUnwindSafe(f)) {
                    let mut g = self.state.lock.lock();
                    if g.panic.is_none() {
                        g.panic = Some(p);
                    }
                }
            }
            Inner::Pool(pool) => {
                pool.shared.counters.spawned.fetch_add(1, Ordering::Relaxed);
                self.state.lock.lock().pending += 1;
                let state = Arc::clone(self.state);
                let task = move || {
                    let result = panic::catch_unwind(AssertUnwindSafe(f));
                    state.complete(result.err());
                };
                let job: Box<dyn FnOnce() + Send + 'env> = Box::new(task);
                // SAFETY: the scope joins every spawned task before it
                // returns (even when the scope closure panics), so the
                // job cannot outlive 'env despite the erased lifetime.
                let job: Job = unsafe {
                    std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(job)
                };
                pool.shared.push(job);
            }
        }
    }
}

// ---------------------------------------------------------------- Pool

struct Pool {
    shared: Arc<Shared>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

struct Shared {
    /// Queue for tasks submitted from outside the pool.
    injector: Mutex<VecDeque<Job>>,
    /// Per-worker deques: owner pushes/pops the back, thieves steal
    /// the front.
    deques: Vec<Mutex<VecDeque<Job>>>,
    /// Parks idle workers; paired with the `injector` mutex.
    idle: Condvar,
    shutdown: AtomicBool,
    counters: Counters,
}

impl Shared {
    /// Pool identity for the worker-thread thread-local.
    fn id(self: &Arc<Self>) -> usize {
        Arc::as_ptr(self) as usize
    }

    /// Enqueue a job: onto the current worker's own deque when called
    /// from inside this pool, onto the injector otherwise.
    fn push(self: &Arc<Self>, job: Job) {
        let local = CURRENT_WORKER.with(|c| c.get());
        match local {
            Some((pool_id, idx)) if pool_id == self.id() => {
                self.deques[idx].lock().push_back(job);
            }
            _ => {
                self.counters.injected.fetch_add(1, Ordering::Relaxed);
                self.injector.lock().push_back(job);
            }
        }
        self.idle.notify_one();
    }

    /// Dequeue for worker `idx`: own deque back (LIFO), then injector
    /// front, then steal the front of the other deques.
    fn pop_worker(&self, idx: usize) -> Option<Job> {
        if let Some(job) = self.deques[idx].lock().pop_back() {
            return Some(job);
        }
        if let Some(job) = self.injector.lock().pop_front() {
            return Some(job);
        }
        self.steal(idx)
    }

    /// Dequeue for a non-worker (a joining thread helping): injector
    /// front, then steal.
    fn pop_external(&self) -> Option<Job> {
        if let Some(job) = self.injector.lock().pop_front() {
            return Some(job);
        }
        self.steal(usize::MAX)
    }

    fn steal(&self, not: usize) -> Option<Job> {
        for (i, deque) in self.deques.iter().enumerate() {
            if i == not {
                continue;
            }
            if let Some(mut g) = deque.try_lock() {
                if let Some(job) = g.pop_front() {
                    self.counters.stolen.fetch_add(1, Ordering::Relaxed);
                    return Some(job);
                }
            }
        }
        None
    }

    fn worker_loop(self: Arc<Self>, idx: usize) {
        CURRENT_WORKER.with(|c| c.set(Some((self.id(), idx))));
        loop {
            if let Some(job) = self.pop_worker(idx) {
                run_job(job);
                continue;
            }
            let mut g = self.injector.lock();
            if self.shutdown.load(Ordering::Acquire) {
                return;
            }
            if !g.is_empty() {
                continue;
            }
            // Timed park: pushes onto sibling deques race with this
            // check (they notify before we sleep), so cap the nap and
            // re-scan rather than risk sleeping through work.
            self.counters.parked.fetch_add(1, Ordering::Relaxed);
            self.idle.wait_for(&mut g, Duration::from_millis(2));
        }
    }
}

impl Pool {
    fn start(parallelism: usize) -> Pool {
        let shared = Arc::new(Shared {
            injector: Mutex::new(VecDeque::new()),
            deques: (0..parallelism)
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            idle: Condvar::new(),
            shutdown: AtomicBool::new(false),
            counters: Counters::default(),
        });
        let threads = (0..parallelism)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rai-exec-{i}"))
                    .spawn(move || shared.worker_loop(i))
                    .expect("spawn pool worker")
            })
            .collect();
        Pool {
            shared,
            threads: Mutex::new(threads),
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.idle.notify_all();
        for handle in self.threads.lock().drain(..) {
            let _ = handle.join();
        }
    }
}

// ------------------------------------------------------------- helpers

/// Write-once result slots for [`Executor::par_map`]: each task fills
/// exactly one index, so concurrent writes never alias.
struct SlotVec<U> {
    slots: Vec<UnsafeCell<Option<U>>>,
}

// SAFETY: distinct tasks write distinct indices exactly once and the
// vector is only read after the scope joined every writer.
unsafe impl<U: Send> Sync for SlotVec<U> {}

impl<U> SlotVec<U> {
    fn new(n: usize) -> Self {
        SlotVec {
            slots: (0..n).map(|_| UnsafeCell::new(None)).collect(),
        }
    }

    fn set(&self, i: usize, value: U) {
        // SAFETY: index `i` is owned by a single task (see par_map);
        // no other thread reads or writes this slot until the join.
        unsafe { *self.slots[i].get() = Some(value) }
    }

    fn into_vec(self) -> Vec<U> {
        self.slots
            .into_iter()
            .map(|c| c.into_inner().expect("par_map slot filled"))
            .collect()
    }
}

/// Split `0..len` into at most `max_batches` contiguous ranges of
/// near-equal length (longer ranges first), for callers that batch
/// many tiny items into one task each — e.g. digesting 32-byte chunks,
/// where a task per chunk would cost more than the hash.
pub fn batch_ranges(len: usize, max_batches: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let batches = max_batches.max(1).min(len);
    let base = len / batches;
    let extra = len % batches;
    let mut out = Vec::with_capacity(batches);
    let mut start = 0;
    for i in 0..batches {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn sequential_runs_inline_in_spawn_order() {
        let exec = Executor::sequential();
        let order = Mutex::new(Vec::new());
        exec.scope(|s| {
            for i in 0..8 {
                let order = &order;
                s.spawn(move || order.lock().push(i));
            }
        });
        assert_eq!(*order.lock(), (0..8).collect::<Vec<_>>());
        assert_eq!(exec.parallelism(), 1);
        assert!(exec.is_sequential());
    }

    #[test]
    fn par_map_returns_input_order() {
        let exec = Executor::new(4);
        // Later items sleep less, so completion order inverts input
        // order — results must come back in input order anyway.
        let items: Vec<usize> = (0..32).collect();
        let out = exec.par_map(items, |i| {
            std::thread::sleep(Duration::from_micros(((32 - i) * 50) as u64));
            i * 2
        });
        assert_eq!(out, (0..32).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_matches_sequential_map() {
        let exec = Executor::new(8);
        let seq = Executor::sequential();
        let items: Vec<u64> = (0..1000).collect();
        let f = |x: u64| x.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (x >> 3);
        assert_eq!(exec.par_map(items.clone(), f), seq.par_map(items, f));
    }

    #[test]
    fn zero_task_scope_returns_closure_value() {
        for exec in [Executor::sequential(), Executor::new(2)] {
            let value = exec.scope(|_| 42);
            assert_eq!(value, 42);
        }
    }

    #[test]
    fn empty_par_map_yields_empty_vec() {
        let exec = Executor::new(2);
        let out: Vec<u32> = exec.par_map(Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn scope_panic_propagates() {
        for exec in [Executor::sequential(), Executor::new(2)] {
            let ran_after = AtomicUsize::new(0);
            let caught = panic::catch_unwind(AssertUnwindSafe(|| {
                exec.scope(|s| {
                    s.spawn(|| panic!("task boom"));
                    s.spawn(|| {
                        ran_after.fetch_add(1, Ordering::SeqCst);
                    });
                });
            }));
            assert!(caught.is_err(), "task panic must reach the scope caller");
            // A panicking task must not abort its siblings.
            assert_eq!(ran_after.load(Ordering::SeqCst), 1);
        }
    }

    #[test]
    fn par_map_panic_propagates() {
        let exec = Executor::new(4);
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            exec.par_map((0..16).collect::<Vec<i32>>(), |i| {
                if i == 7 {
                    panic!("item boom");
                }
                i
            })
        }));
        assert!(caught.is_err());
        // The pool survives a panicking map and keeps working.
        assert_eq!(exec.par_map(vec![1, 2, 3], |x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn closure_panic_beats_task_panic() {
        let exec = Executor::new(2);
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            exec.scope(|s| {
                s.spawn(|| panic!("task"));
                panic!("closure");
            })
        }));
        let payload = caught.unwrap_err();
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "closure");
    }

    #[test]
    fn nested_scopes_complete() {
        // A 2-worker pool with tasks that themselves fan out: the
        // joining tasks must help run queued work or this deadlocks.
        let exec = Executor::new(2);
        let total = AtomicUsize::new(0);
        exec.scope(|s| {
            for _ in 0..4 {
                let exec = &exec;
                let total = &total;
                s.spawn(move || {
                    let inner: usize = exec.par_map((0..8).collect(), |x: usize| x).iter().sum();
                    total.fetch_add(inner, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), 4 * 28);
    }

    #[test]
    fn nested_par_map_is_ordered_too() {
        let exec = Executor::new(3);
        let out = exec.par_map((0..6).collect::<Vec<usize>>(), |i| {
            exec.par_map((0..5).collect::<Vec<usize>>(), move |j| i * 10 + j)
        });
        for (i, row) in out.iter().enumerate() {
            assert_eq!(row, &(0..5).map(|j| i * 10 + j).collect::<Vec<_>>());
        }
    }

    #[test]
    fn borrowed_mutation_through_scope() {
        let exec = Executor::new(2);
        let mut counters = vec![0u64; 4];
        exec.scope(|s| {
            for (i, c) in counters.iter_mut().enumerate() {
                s.spawn(move || *c = i as u64 + 1);
            }
        });
        assert_eq!(counters, vec![1, 2, 3, 4]);
    }

    #[test]
    fn parallelism_accessor() {
        assert_eq!(Executor::new(0).parallelism(), 1);
        assert_eq!(Executor::new(1).parallelism(), 1);
        assert_eq!(Executor::new(4).parallelism(), 4);
        assert!(!Executor::new(4).is_sequential());
    }

    #[test]
    fn run_jobs_commits_in_claim_order_despite_pool_interleaving() {
        // Earlier claims sleep longer, so pool completion order is the
        // *reverse* of claim order — commits must come back in claim
        // order anyway, and they must all run on the calling thread.
        let exec = Executor::new(4);
        let caller = std::thread::current().id();
        let mut commit_order = Vec::new();
        let out = exec.run_jobs(
            (0..16usize).collect(),
            |i| {
                std::thread::sleep(Duration::from_micros(((16 - i) * 200) as u64));
                i
            },
            |i| {
                assert_eq!(std::thread::current().id(), caller);
                commit_order.push(i);
                i * 2
            },
        );
        assert_eq!(commit_order, (0..16).collect::<Vec<_>>());
        assert_eq!(out, (0..16).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn run_jobs_matches_sequential_at_any_width() {
        let f = |x: u64| x.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (x >> 7);
        let reference = {
            let mut committed = Vec::new();
            Executor::sequential().run_jobs(
                (0..64).collect::<Vec<u64>>(),
                f,
                |y| committed.push(y),
            );
            committed
        };
        for width in [2, 8] {
            let mut committed = Vec::new();
            Executor::new(width).run_jobs(
                (0..64).collect::<Vec<u64>>(),
                f,
                |y| committed.push(y),
            );
            assert_eq!(committed, reference, "commit drift at width {width}");
        }
    }

    #[test]
    fn run_jobs_execute_panic_reaches_caller_before_commits() {
        let exec = Executor::new(2);
        let committed = AtomicUsize::new(0);
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            exec.run_jobs(
                vec![0, 1, 2],
                |i| {
                    if i == 1 {
                        panic!("execute boom");
                    }
                    i
                },
                |i: i32| {
                    committed.fetch_add(1, Ordering::SeqCst);
                    i
                },
            )
        }));
        assert!(caught.is_err(), "execute panic must reach the batch caller");
        assert_eq!(committed.load(Ordering::SeqCst), 0, "no commit after a poisoned batch");
    }

    #[test]
    fn run_jobs_counts_batches() {
        let exec = Executor::new(2);
        exec.run_jobs(vec![1, 2, 3], |x: u32| x, |x| x);
        exec.run_jobs(Vec::<u32>::new(), |x| x, |x| x);
        let s = exec.stats();
        assert_eq!(s.batches, 2);
        assert_eq!(s.batch_jobs, 3);
    }

    #[test]
    fn batch_ranges_cover_everything_once() {
        for (len, batches) in [(0, 4), (3, 8), (10, 3), (100, 7), (5, 1), (7, 0)] {
            let ranges = batch_ranges(len, batches);
            let mut covered = Vec::new();
            for r in &ranges {
                covered.extend(r.clone());
            }
            assert_eq!(covered, (0..len).collect::<Vec<_>>(), "len={len} batches={batches}");
            if len > 0 {
                assert!(ranges.len() <= batches.max(1));
                let max = ranges.iter().map(|r| r.len()).max().unwrap();
                let min = ranges.iter().map(|r| r.len()).min().unwrap();
                assert!(max - min <= 1, "uneven split: {ranges:?}");
            }
        }
    }

    #[test]
    fn stats_count_spawns_and_inline_runs() {
        let seq = Executor::sequential();
        seq.scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {});
            }
        });
        let _ = seq.par_map(vec![1, 2], |x| x);
        let s = seq.stats();
        assert_eq!(s.inline_runs, 5);
        assert_eq!(s.spawned, 0);
        assert_eq!(s.stolen, 0);

        let pool = Executor::new(2);
        let _ = pool.par_map((0..64u64).collect::<Vec<_>>(), |x| x + 1);
        let s = pool.stats();
        assert_eq!(s.spawned, 64);
        // Spawns came from the (off-pool) caller thread.
        assert_eq!(s.injected, 64);
        assert_eq!(s.inline_runs, 0);
        // Steal/park counts are scheduling-dependent; clones share them.
        assert_eq!(pool.clone().stats().spawned, 64);
    }

    #[test]
    fn drop_joins_workers() {
        let exec = Executor::new(4);
        let sum: u64 = exec.par_map((0..100u64).collect(), |x| x).iter().sum();
        assert_eq!(sum, 4950);
        drop(exec); // must not hang or leak threads
    }
}
