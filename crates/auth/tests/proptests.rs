//! Property tests for authentication: MAC soundness over arbitrary
//! inputs, profile round-trips, roster round-trips.

use proptest::prelude::*;
use rai_auth::{
    hmac_sha256, sign_request, verify_request, Credentials, Roster,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn sign_verify_round_trips(
        secret in "[ -~]{1,40}",
        access in "[ -~]{1,40}",
        body in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        let sig = sign_request(&secret, &access, &body);
        prop_assert!(verify_request(&secret, &access, &body, &sig));
    }

    #[test]
    fn any_body_tamper_breaks_the_signature(
        secret in "[a-zA-Z0-9]{10,30}",
        body in prop::collection::vec(any::<u8>(), 1..100),
        flip in any::<u64>(),
    ) {
        let sig = sign_request(&secret, "AK", &body);
        let mut tampered = body.clone();
        let idx = (flip as usize) % tampered.len();
        tampered[idx] ^= 1 << (flip % 8);
        prop_assert!(!verify_request(&secret, "AK", &tampered, &sig));
    }

    #[test]
    fn different_secrets_never_collide(
        s1 in "[a-z]{8,20}",
        s2 in "[a-z]{8,20}",
        body in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        prop_assume!(s1 != s2);
        prop_assert_ne!(sign_request(&s1, "AK", &body), sign_request(&s2, "AK", &body));
    }

    #[test]
    fn hmac_incremental_key_lengths(key in prop::collection::vec(any::<u8>(), 0..200)) {
        // Keys shorter, equal to and longer than the block size all work
        // and are deterministic.
        let a = hmac_sha256(&key, b"msg");
        let b = hmac_sha256(&key, b"msg");
        prop_assert_eq!(a, b);
        prop_assert_ne!(hmac_sha256(&key, b"msg"), hmac_sha256(&key, b"other"));
    }

    #[test]
    fn profile_round_trips(
        user in "[a-zA-Z0-9_-]{1,20}",
        access in "[a-zA-Z0-9-]{1,30}",
        secret in "[a-zA-Z0-9-]{1,30}",
    ) {
        let creds = Credentials {
            user_name: user,
            access_key: access,
            secret_key: secret,
        };
        let parsed = Credentials::from_profile(&creds.to_profile()).expect("round trip");
        prop_assert_eq!(parsed, creds);
    }

    #[test]
    fn roster_round_trips(
        rows in prop::collection::vec(
            ("[A-Z][a-z]{1,8}", "[A-Z][a-z]{1,8}", "[a-z][a-z0-9]{1,10}"),
            0..20,
        )
    ) {
        // Unique user ids.
        let mut seen = std::collections::HashSet::new();
        let mut csv = String::new();
        let mut expected = 0;
        for (f, l, u) in &rows {
            if seen.insert(u.clone()) {
                csv.push_str(&format!("{f},{l},{u}\n"));
                expected += 1;
            }
        }
        let roster = Roster::parse(&csv).expect("valid roster");
        prop_assert_eq!(roster.len(), expected);
        let again = Roster::parse(&roster.to_csv()).expect("round trip");
        prop_assert_eq!(again, roster);
    }

    #[test]
    fn roster_parser_never_panics(csv in "[ -~\\n]{0,400}") {
        let _ = Roster::parse(&csv);
    }

    #[test]
    fn profile_parser_never_panics(text in "[ -~\\n]{0,400}") {
        let _ = Credentials::from_profile(&text);
    }
}
