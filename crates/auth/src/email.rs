//! The key-delivery e-mail (paper Listing 3).

use crate::keys::Credentials;
use crate::roster::RosterEntry;

/// A rendered e-mail ready for the (simulated) mailer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KeyEmail {
    /// Recipient address.
    pub to: String,
    /// Subject line.
    pub subject: String,
    /// Body, rendered from the Listing 3 template.
    pub body: String,
}

/// Render the authentication e-mail for one student, matching the
/// paper's Listing 3 (abbreviated template plus download instructions).
pub fn render_key_email(entry: &RosterEntry, creds: &Credentials, email_domain: &str) -> KeyEmail {
    let body = format!(
        "Hello {full_name},\n\
         \n\
         For the Applied Parallel Programming project,\n\
         we will not be using WebGPU. The RAI submission\n\
         requires authentication tokens to be present\n\
         in your $HOME/.rai.profile (Linux/OSX) or\n\
         %HOME%/.rai.profile (Windows) file.\n\
         \n\
         The following are your tokens:\n\
         \n\
         {profile}\
         \n\
         Download the RAI client for your platform from the project\n\
         website and place the tokens above in your profile file before\n\
         running `rai submit`.\n",
        full_name = entry.full_name(),
        profile = creds.to_profile(),
    );
    KeyEmail {
        to: entry.email(email_domain),
        subject: "Your RAI credentials for the Applied Parallel Programming project".to_string(),
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyGenerator;

    fn sample() -> (RosterEntry, Credentials) {
        let entry = RosterEntry {
            first_name: "Ada".into(),
            last_name: "Lovelace".into(),
            user_id: "alovelace".into(),
        };
        let creds = KeyGenerator::from_seed(5).generate("alovelace");
        (entry, creds)
    }

    #[test]
    fn renders_listing3_shape() {
        let (entry, creds) = sample();
        let mail = render_key_email(&entry, &creds, "illinois.edu");
        assert_eq!(mail.to, "alovelace@illinois.edu");
        assert!(mail.body.starts_with("Hello Ada Lovelace,"));
        assert!(mail.body.contains("we will not be using WebGPU"));
        assert!(mail.body.contains("$HOME/.rai.profile"));
        assert!(mail.body.contains(&format!("RAI_ACCESS_KEY='{}'", creds.access_key)));
        assert!(mail.body.contains(&format!("RAI_SECRET_KEY='{}'", creds.secret_key)));
    }

    #[test]
    fn profile_in_email_parses_back() {
        let (entry, creds) = sample();
        let mail = render_key_email(&entry, &creds, "illinois.edu");
        let parsed = Credentials::from_profile(&mail.body).unwrap();
        assert_eq!(parsed, creds);
    }
}
