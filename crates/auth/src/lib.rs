//! # rai-auth — authentication and key delivery (paper §V, §VI)
//!
//! "To prevent RAI resources from being consumed by people who are not
//! registered for the course, each student is required to have an
//! authorization key." The teaching staff generate per-student
//! access/secret key pairs from the class roster and e-mail them with a
//! templated message (paper Listing 3); the client signs requests with
//! the secret key and the worker verifies them.
//!
//! * [`keys`] — credential generation in the paper's 26-character
//!   format, plus the `.rai.profile` serialization.
//! * [`sha256`] — from-scratch SHA-256 (FIPS 180-4).
//! * [`signing`] — HMAC-SHA256 request signing and verification.
//! * [`roster`] — the `{firstname,lastname,userid}` CSV the key-mailer
//!   tool consumes.
//! * [`email`] — the Listing 3 e-mail template.
//! * [`registry`] — the server-side credential registry used by workers
//!   to check submissions.

pub mod email;
pub mod keys;
pub mod registry;
pub mod roster;
pub mod sha256;
pub mod signing;

pub use email::render_key_email;
pub use keys::{Credentials, KeyGenerator};
pub use registry::{AuthError, CredentialRegistry, CredentialSnapshot};
pub use roster::{Roster, RosterEntry, RosterError};
pub use signing::{hmac_sha256, sign_request, verify_request};
