//! The server-side credential registry: workers look up the secret for
//! an access key to verify a job's signature, and the staff tooling
//! registers/revokes keys as the roster changes.

use crate::keys::Credentials;
use crate::signing::verify_request;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Authentication failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AuthError {
    /// Access key is not registered (not in the course).
    UnknownAccessKey(String),
    /// Key exists but the signature did not verify.
    BadSignature { access_key: String },
    /// Key was revoked (dropped the course, academic-integrity hold).
    Revoked { access_key: String },
}

impl std::fmt::Display for AuthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuthError::UnknownAccessKey(k) => write!(f, "unknown access key {k:?}"),
            AuthError::BadSignature { access_key } => {
                write!(f, "bad signature for access key {access_key:?}")
            }
            AuthError::Revoked { access_key } => write!(f, "revoked access key {access_key:?}"),
        }
    }
}

impl std::error::Error for AuthError {}

struct Entry {
    creds: Credentials,
    revoked: bool,
}

/// Registry of issued credentials.
#[derive(Default)]
pub struct CredentialRegistry {
    by_access_key: HashMap<String, Entry>,
    // Bumped on every mutation. Shared with snapshot holders so they
    // can detect staleness with one atomic load, no registry lock.
    generation: Arc<AtomicU64>,
}

impl CredentialRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register newly issued credentials (replacing any previous entry
    /// for the same access key).
    pub fn register(&mut self, creds: Credentials) {
        self.by_access_key.insert(
            creds.access_key.clone(),
            Entry {
                creds,
                revoked: false,
            },
        );
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// Revoke an access key; returns whether it existed.
    pub fn revoke(&mut self, access_key: &str) -> bool {
        match self.by_access_key.get_mut(access_key) {
            Some(e) => {
                e.revoked = true;
                self.generation.fetch_add(1, Ordering::Release);
                true
            }
            None => false,
        }
    }

    /// Handle on the mutation counter. A snapshot holder compares
    /// [`CredentialSnapshot::generation`] against one atomic load of
    /// this handle to decide whether its copy is still current —
    /// steady-state credential checks then never touch the registry
    /// lock at all.
    pub fn generation_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.generation)
    }

    /// An immutable point-in-time copy for lock-free read paths.
    /// [`CredentialSnapshot::authenticate`] has exactly the semantics
    /// of [`CredentialRegistry::authenticate`] over the state at the
    /// snapshot instant.
    pub fn snapshot(&self) -> CredentialSnapshot {
        CredentialSnapshot {
            by_access_key: self
                .by_access_key
                .iter()
                .map(|(k, e)| (k.clone(), (e.creds.clone(), e.revoked)))
                .collect(),
            generation: self.generation.load(Ordering::Acquire),
        }
    }

    /// Number of registered (non-revoked) keys.
    pub fn active_count(&self) -> usize {
        self.by_access_key.values().filter(|e| !e.revoked).count()
    }

    /// The user name behind an access key, if registered and active.
    pub fn user_of(&self, access_key: &str) -> Option<&str> {
        self.by_access_key
            .get(access_key)
            .filter(|e| !e.revoked)
            .map(|e| e.creds.user_name.as_str())
    }

    /// Verify a signed request; returns the authenticated user name.
    pub fn authenticate(
        &self,
        access_key: &str,
        body: &[u8],
        signature: &str,
    ) -> Result<&str, AuthError> {
        let entry = self
            .by_access_key
            .get(access_key)
            .ok_or_else(|| AuthError::UnknownAccessKey(access_key.to_string()))?;
        if entry.revoked {
            return Err(AuthError::Revoked {
                access_key: access_key.to_string(),
            });
        }
        if !verify_request(&entry.creds.secret_key, access_key, body, signature) {
            return Err(AuthError::BadSignature {
                access_key: access_key.to_string(),
            });
        }
        Ok(&entry.creds.user_name)
    }
}

/// A frozen copy of the registry taken by
/// [`CredentialRegistry::snapshot`]. Verification runs against the
/// copy — no lock, no shared mutable state — which is what lets
/// concurrent claim lanes authenticate without contending on the
/// registry's `RwLock`.
pub struct CredentialSnapshot {
    by_access_key: HashMap<String, (Credentials, bool)>,
    generation: u64,
}

impl CredentialSnapshot {
    /// The registry generation this snapshot was taken at. Compare
    /// against [`CredentialRegistry::generation_handle`]'s current
    /// value: equal means the snapshot is current.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Verify a signed request against the snapshot; returns the
    /// authenticated user name. Same error semantics as
    /// [`CredentialRegistry::authenticate`].
    pub fn authenticate(
        &self,
        access_key: &str,
        body: &[u8],
        signature: &str,
    ) -> Result<&str, AuthError> {
        let (creds, revoked) = self
            .by_access_key
            .get(access_key)
            .ok_or_else(|| AuthError::UnknownAccessKey(access_key.to_string()))?;
        if *revoked {
            return Err(AuthError::Revoked {
                access_key: access_key.to_string(),
            });
        }
        if !verify_request(&creds.secret_key, access_key, body, signature) {
            return Err(AuthError::BadSignature {
                access_key: access_key.to_string(),
            });
        }
        Ok(&creds.user_name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyGenerator;
    use crate::signing::sign_request;

    fn setup() -> (CredentialRegistry, Credentials) {
        let mut reg = CredentialRegistry::new();
        let creds = KeyGenerator::from_seed(11).generate("team-x");
        reg.register(creds.clone());
        (reg, creds)
    }

    #[test]
    fn authenticate_valid_request() {
        let (reg, creds) = setup();
        let sig = sign_request(&creds.secret_key, &creds.access_key, b"payload");
        assert_eq!(
            reg.authenticate(&creds.access_key, b"payload", &sig).unwrap(),
            "team-x"
        );
    }

    #[test]
    fn unknown_key_rejected() {
        let (reg, creds) = setup();
        let sig = sign_request(&creds.secret_key, "ghost", b"p");
        assert!(matches!(
            reg.authenticate("ghost", b"p", &sig),
            Err(AuthError::UnknownAccessKey(_))
        ));
    }

    #[test]
    fn tampered_body_rejected() {
        let (reg, creds) = setup();
        let sig = sign_request(&creds.secret_key, &creds.access_key, b"payload");
        assert!(matches!(
            reg.authenticate(&creds.access_key, b"other", &sig),
            Err(AuthError::BadSignature { .. })
        ));
    }

    #[test]
    fn revocation() {
        let (mut reg, creds) = setup();
        assert_eq!(reg.active_count(), 1);
        assert!(reg.revoke(&creds.access_key));
        assert!(!reg.revoke("ghost"));
        assert_eq!(reg.active_count(), 0);
        assert_eq!(reg.user_of(&creds.access_key), None);
        let sig = sign_request(&creds.secret_key, &creds.access_key, b"p");
        assert!(matches!(
            reg.authenticate(&creds.access_key, b"p", &sig),
            Err(AuthError::Revoked { .. })
        ));
    }

    #[test]
    fn reregister_clears_revocation() {
        let (mut reg, creds) = setup();
        reg.revoke(&creds.access_key);
        reg.register(creds.clone());
        assert_eq!(reg.user_of(&creds.access_key), Some("team-x"));
    }

    #[test]
    fn snapshot_matches_registry_and_tracks_generation() {
        let (mut reg, creds) = setup();
        let handle = reg.generation_handle();
        let snap = reg.snapshot();
        assert_eq!(snap.generation(), handle.load(std::sync::atomic::Ordering::Acquire));
        let sig = sign_request(&creds.secret_key, &creds.access_key, b"payload");
        assert_eq!(
            snap.authenticate(&creds.access_key, b"payload", &sig).unwrap(),
            "team-x"
        );
        assert!(matches!(
            snap.authenticate("ghost", b"p", &sig),
            Err(AuthError::UnknownAccessKey(_))
        ));
        // A mutation advances the handle past the snapshot: holders
        // must rebuild, and the rebuilt copy sees the revocation.
        reg.revoke(&creds.access_key);
        assert_ne!(snap.generation(), handle.load(std::sync::atomic::Ordering::Acquire));
        let snap2 = reg.snapshot();
        assert!(matches!(
            snap2.authenticate(&creds.access_key, b"payload", &sig),
            Err(AuthError::Revoked { .. })
        ));
    }
}
