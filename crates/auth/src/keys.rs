//! Credential generation and `.rai.profile` serialization.
//!
//! The paper's Listing 3 shows the delivered form:
//!
//! ```text
//! RAI_USER_NAME='myusername'
//! RAI_ACCESS_KEY='BsqJuFUI2ZtK4g1aLXf-OjmML6'
//! RAI_SECRET_KEY='tU08PuKhtR9qozBNn33RcH7p5A'
//! ```

use rand::distributions::Distribution;
use rand::Rng;
use rand::SeedableRng;

/// Alphabet used for keys: URL-safe alphanumerics plus `-`, matching the
/// shape of the keys in the paper.
const KEY_ALPHABET: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-";
/// Key length from Listing 3.
pub const KEY_LEN: usize = 26;

/// A student's (or team's) credential triple.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Credentials {
    /// `RAI_USER_NAME`.
    pub user_name: String,
    /// `RAI_ACCESS_KEY` — public identifier sent with every request.
    pub access_key: String,
    /// `RAI_SECRET_KEY` — signing key, never sent on the wire.
    pub secret_key: String,
}

impl Credentials {
    /// Render as the `$HOME/.rai.profile` file contents.
    pub fn to_profile(&self) -> String {
        format!(
            "RAI_USER_NAME='{}'\nRAI_ACCESS_KEY='{}'\nRAI_SECRET_KEY='{}'\n",
            self.user_name, self.access_key, self.secret_key
        )
    }

    /// Parse a `.rai.profile` file (quoted `KEY='value'` lines; unknown
    /// lines are ignored, as students do edit these files).
    pub fn from_profile(text: &str) -> Option<Credentials> {
        let mut user = None;
        let mut access = None;
        let mut secret = None;
        for line in text.lines() {
            let line = line.trim();
            let Some((k, v)) = line.split_once('=') else {
                continue;
            };
            let v = v.trim().trim_matches('\'').trim_matches('"').to_string();
            match k.trim() {
                "RAI_USER_NAME" => user = Some(v),
                "RAI_ACCESS_KEY" => access = Some(v),
                "RAI_SECRET_KEY" => secret = Some(v),
                _ => {}
            }
        }
        Some(Credentials {
            user_name: user?,
            access_key: access?,
            secret_key: secret?,
        })
    }
}

/// Deterministic (seedable) key generator used by the staff tooling.
pub struct KeyGenerator {
    rng: rand::rngs::StdRng,
}

impl KeyGenerator {
    /// Seeded generator — deterministic for tests and reproducible runs.
    pub fn from_seed(seed: u64) -> Self {
        KeyGenerator {
            rng: rand::rngs::StdRng::seed_from_u64(seed),
        }
    }

    /// OS-entropy generator for real use.
    pub fn from_entropy() -> Self {
        KeyGenerator {
            rng: rand::rngs::StdRng::from_entropy(),
        }
    }

    fn key(&mut self) -> String {
        let dist = rand::distributions::Uniform::new(0, KEY_ALPHABET.len());
        (0..KEY_LEN)
            .map(|_| KEY_ALPHABET[dist.sample(&mut self.rng)] as char)
            .collect()
    }

    /// Generate a credential triple for `user_name`.
    pub fn generate(&mut self, user_name: &str) -> Credentials {
        Credentials {
            user_name: user_name.to_string(),
            access_key: self.key(),
            secret_key: self.key(),
        }
    }

    /// Raw random bytes (for nonces / job ids).
    pub fn nonce(&mut self) -> u64 {
        self.rng.gen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn keys_have_paper_shape() {
        let mut g = KeyGenerator::from_seed(1);
        let c = g.generate("student1");
        assert_eq!(c.access_key.len(), KEY_LEN);
        assert_eq!(c.secret_key.len(), KEY_LEN);
        assert!(c
            .access_key
            .bytes()
            .all(|b| KEY_ALPHABET.contains(&b)));
        assert_ne!(c.access_key, c.secret_key);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = KeyGenerator::from_seed(42).generate("x");
        let b = KeyGenerator::from_seed(42).generate("x");
        assert_eq!(a, b);
        let c = KeyGenerator::from_seed(43).generate("x");
        assert_ne!(a, c);
    }

    #[test]
    fn no_collisions_across_class() {
        // 176 students, 2 keys each: all distinct.
        let mut g = KeyGenerator::from_seed(7);
        let mut seen = HashSet::new();
        for i in 0..176 {
            let c = g.generate(&format!("student{i}"));
            assert!(seen.insert(c.access_key));
            assert!(seen.insert(c.secret_key));
        }
    }

    #[test]
    fn profile_round_trip() {
        let c = KeyGenerator::from_seed(9).generate("myusername");
        let text = c.to_profile();
        assert!(text.contains("RAI_USER_NAME='myusername'"));
        let back = Credentials::from_profile(&text).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn profile_parse_tolerates_noise_and_double_quotes() {
        let text = "# my profile\nexport PATH=/bin\nRAI_USER_NAME=\"u\"\nRAI_ACCESS_KEY='a'\nRAI_SECRET_KEY='s'\n";
        let c = Credentials::from_profile(text).unwrap();
        assert_eq!(c.user_name, "u");
        assert_eq!(c.access_key, "a");
    }

    #[test]
    fn profile_parse_missing_field_fails() {
        assert!(Credentials::from_profile("RAI_USER_NAME='u'\n").is_none());
    }
}
