//! HMAC-SHA256 request signing (RFC 2104 over [`crate::sha256`]).
//!
//! The RAI client authenticates each job message by signing a canonical
//! request string with `RAI_SECRET_KEY`; workers verify against the
//! registry before running anything.

use crate::sha256::{hex, sha256, Sha256};

const BLOCK: usize = 64;

/// HMAC-SHA256 of `message` under `key`.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    let mut key_block = [0u8; BLOCK];
    if key.len() > BLOCK {
        key_block[..32].copy_from_slice(&sha256(key));
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad).update(message);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(&opad).update(&inner_digest);
    outer.finalize()
}

/// Sign a canonical request `access_key \n body-hash` with the secret;
/// returns a lowercase hex signature.
pub fn sign_request(secret_key: &str, access_key: &str, body: &[u8]) -> String {
    let canonical = canonical_request(access_key, body);
    hex(&hmac_sha256(secret_key.as_bytes(), canonical.as_bytes()))
}

/// Verify a signature produced by [`sign_request`]. Constant-time
/// comparison over the hex strings.
pub fn verify_request(secret_key: &str, access_key: &str, body: &[u8], signature: &str) -> bool {
    let expected = sign_request(secret_key, access_key, body);
    constant_time_eq(expected.as_bytes(), signature.as_bytes())
}

fn canonical_request(access_key: &str, body: &[u8]) -> String {
    format!("rai-v1\n{access_key}\n{}", hex(&sha256(body)))
}

fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc4231_test_case_1() {
        // RFC 4231 HMAC-SHA256 test case 1.
        let key = [0x0bu8; 20];
        let mac = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_test_case_2() {
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_long_key() {
        // Test case 6: 131-byte key (forces the hash-the-key path).
        let key = [0xaau8; 131];
        let mac = hmac_sha256(&key, b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(
            hex(&mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn sign_verify_round_trip() {
        let sig = sign_request("tU08PuKhtR9qozBNn33RcH7p5A", "BsqJuFUI2ZtK4g1aLXf-OjmML6", b"job body");
        assert!(verify_request(
            "tU08PuKhtR9qozBNn33RcH7p5A",
            "BsqJuFUI2ZtK4g1aLXf-OjmML6",
            b"job body",
            &sig
        ));
        // Wrong secret, wrong body, wrong access key, truncated sig: all fail.
        assert!(!verify_request("wrong", "BsqJuFUI2ZtK4g1aLXf-OjmML6", b"job body", &sig));
        assert!(!verify_request("tU08PuKhtR9qozBNn33RcH7p5A", "BsqJuFUI2ZtK4g1aLXf-OjmML6", b"tampered", &sig));
        assert!(!verify_request("tU08PuKhtR9qozBNn33RcH7p5A", "other-key", b"job body", &sig));
        assert!(!verify_request("tU08PuKhtR9qozBNn33RcH7p5A", "BsqJuFUI2ZtK4g1aLXf-OjmML6", b"job body", &sig[..10]));
    }

    #[test]
    fn signature_is_hex64() {
        let sig = sign_request("s", "a", b"");
        assert_eq!(sig.len(), 64);
        assert!(sig.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
