//! Class-roster parsing. "The tool takes as input the class roster, a
//! comma separated file of the form `{firstname,lastname,userid}`"
//! (paper §VI).

/// One roster row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RosterEntry {
    /// Student's first name.
    pub first_name: String,
    /// Student's last name.
    pub last_name: String,
    /// Unique user id (e-mail local part at UIUC).
    pub user_id: String,
}

impl RosterEntry {
    /// `FirstName LastName` as used in the e-mail salutation.
    pub fn full_name(&self) -> String {
        format!("{} {}", self.first_name, self.last_name)
    }

    /// Delivery address (`userid@illinois.edu`-style).
    pub fn email(&self, domain: &str) -> String {
        format!("{}@{}", self.user_id, domain)
    }
}

/// A parsed class roster.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Roster {
    /// Entries in file order.
    pub entries: Vec<RosterEntry>,
}

/// Roster parse error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RosterError {
    /// A line did not have exactly three fields.
    BadLine { line: usize, content: String },
    /// Two rows shared a user id.
    DuplicateUserId { line: usize, user_id: String },
    /// A field was empty.
    EmptyField { line: usize, field: &'static str },
}

impl std::fmt::Display for RosterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RosterError::BadLine { line, content } => {
                write!(f, "roster line {line}: expected 3 comma-separated fields, got {content:?}")
            }
            RosterError::DuplicateUserId { line, user_id } => {
                write!(f, "roster line {line}: duplicate user id {user_id:?}")
            }
            RosterError::EmptyField { line, field } => {
                write!(f, "roster line {line}: empty {field}")
            }
        }
    }
}

impl std::error::Error for RosterError {}

impl Roster {
    /// Parse CSV text. Blank lines and `#` comments are skipped; an
    /// optional `firstname,lastname,userid` header row is skipped too.
    pub fn parse(csv: &str) -> Result<Roster, RosterError> {
        let mut entries = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for (i, raw) in csv.lines().enumerate() {
            let line_no = i + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if i == 0 && line.to_ascii_lowercase().replace(' ', "") == "firstname,lastname,userid" {
                continue;
            }
            let fields: Vec<&str> = line.split(',').map(str::trim).collect();
            if fields.len() != 3 {
                return Err(RosterError::BadLine {
                    line: line_no,
                    content: raw.to_string(),
                });
            }
            for (field, name) in fields.iter().zip(["firstname", "lastname", "userid"]) {
                if field.is_empty() {
                    return Err(RosterError::EmptyField {
                        line: line_no,
                        field: name,
                    });
                }
            }
            if !seen.insert(fields[2].to_string()) {
                return Err(RosterError::DuplicateUserId {
                    line: line_no,
                    user_id: fields[2].to_string(),
                });
            }
            entries.push(RosterEntry {
                first_name: fields[0].to_string(),
                last_name: fields[1].to_string(),
                user_id: fields[2].to_string(),
            });
        }
        Ok(Roster { entries })
    }

    /// Number of students.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the roster is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Render back to CSV (header included).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("firstname,lastname,userid\n");
        for e in &self.entries {
            out.push_str(&format!("{},{},{}\n", e.first_name, e.last_name, e.user_id));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "firstname,lastname,userid\nAda,Lovelace,alovelace\nAlan,Turing,aturing\n";

    #[test]
    fn parses_with_header() {
        let r = Roster::parse(SAMPLE).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.entries[0].full_name(), "Ada Lovelace");
        assert_eq!(r.entries[1].email("illinois.edu"), "aturing@illinois.edu");
    }

    #[test]
    fn parses_without_header() {
        let r = Roster::parse("Ada,Lovelace,alovelace\n").unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn skips_blanks_and_comments() {
        let r = Roster::parse("# class of 2016\n\nAda,Lovelace,alovelace\n\n").unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn rejects_bad_lines() {
        assert!(matches!(
            Roster::parse("Ada,Lovelace\n"),
            Err(RosterError::BadLine { line: 1, .. })
        ));
        assert!(matches!(
            Roster::parse("Ada,,alovelace\n"),
            Err(RosterError::EmptyField { field: "lastname", .. })
        ));
        assert!(matches!(
            Roster::parse("A,B,x\nC,D,x\n"),
            Err(RosterError::DuplicateUserId { line: 2, .. })
        ));
    }

    #[test]
    fn csv_round_trip() {
        let r = Roster::parse(SAMPLE).unwrap();
        let again = Roster::parse(&r.to_csv()).unwrap();
        assert_eq!(r, again);
    }
}
