//! The elastic worker pool.

use crate::instance::{Instance, InstanceId, InstanceState, InstanceType};
use parking_lot::Mutex;
use rai_sim::VirtualClock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Pool statistics snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Instances still provisioning.
    pub provisioning: usize,
    /// Instances accepting work.
    pub running: usize,
    /// Instances terminated (ever), including failures.
    pub terminated: usize,
    /// Instances that died rather than being scaled in (subset of
    /// `terminated`).
    pub failed: usize,
    /// Cumulative billed cost in cents (terminated + live so far).
    pub cost_cents: u64,
}

/// A shared handle to the elastic pool.
#[derive(Clone)]
pub struct WorkerPool {
    inner: Arc<Mutex<PoolInner>>,
    clock: VirtualClock,
}

struct PoolInner {
    instances: BTreeMap<InstanceId, Instance>,
    next_id: u64,
}

impl WorkerPool {
    /// An empty pool reading time from `clock`.
    pub fn new(clock: VirtualClock) -> Self {
        WorkerPool {
            inner: Arc::new(Mutex::new(PoolInner {
                instances: BTreeMap::new(),
                next_id: 1,
            })),
            clock,
        }
    }

    /// Launch `n` instances of a type; they become ready after the
    /// type's provisioning latency. Returns their ids.
    pub fn launch(&self, itype: &'static InstanceType, n: usize) -> Vec<InstanceId> {
        let now = self.clock.now();
        let mut inner = self.inner.lock();
        (0..n)
            .map(|_| {
                let id = InstanceId(inner.next_id);
                inner.next_id += 1;
                inner.instances.insert(
                    id,
                    Instance {
                        id,
                        itype,
                        launched_at: now,
                        ready_at: now + itype.provision_latency,
                        terminated_at: None,
                        failed: false,
                    },
                );
                id
            })
            .collect()
    }

    /// Terminate an instance; returns `false` if unknown or already
    /// terminated.
    pub fn terminate(&self, id: InstanceId) -> bool {
        let now = self.clock.now();
        let mut inner = self.inner.lock();
        match inner.instances.get_mut(&id) {
            Some(inst) if inst.terminated_at.is_none() => {
                inst.terminated_at = Some(now);
                true
            }
            _ => false,
        }
    }

    /// Kill an instance abruptly (spot reclaim, hardware death —
    /// chaos-scenario instance death). Billing stops like a terminate,
    /// but the instance is recorded as failed. Returns `false` if
    /// unknown or already down.
    pub fn fail(&self, id: InstanceId) -> bool {
        let now = self.clock.now();
        let mut inner = self.inner.lock();
        match inner.instances.get_mut(&id) {
            Some(inst) if inst.terminated_at.is_none() => {
                inst.terminated_at = Some(now);
                inst.failed = true;
                true
            }
            _ => false,
        }
    }

    /// Terminate `n` running instances (oldest first); returns how many
    /// actually stopped. Used by scale-in.
    pub fn terminate_n(&self, n: usize) -> usize {
        let now = self.clock.now();
        let mut inner = self.inner.lock();
        let ids: Vec<InstanceId> = inner
            .instances
            .values()
            .filter(|i| i.state(now) != InstanceState::Terminated)
            .map(|i| i.id)
            .take(n)
            .collect();
        for id in &ids {
            if let Some(inst) = inner.instances.get_mut(id) {
                inst.terminated_at = Some(now);
            }
        }
        ids.len()
    }

    /// Ids of instances currently ready for work.
    pub fn ready_instances(&self) -> Vec<InstanceId> {
        let now = self.clock.now();
        self.inner
            .lock()
            .instances
            .values()
            .filter(|i| i.state(now) == InstanceState::Running)
            .map(|i| i.id)
            .collect()
    }

    /// Look up an instance snapshot.
    pub fn get(&self, id: InstanceId) -> Option<Instance> {
        self.inner.lock().instances.get(&id).cloned()
    }

    /// Count of non-terminated instances (provisioning + running).
    pub fn live_count(&self) -> usize {
        let now = self.clock.now();
        self.inner
            .lock()
            .instances
            .values()
            .filter(|i| i.state(now) != InstanceState::Terminated)
            .count()
    }

    /// Statistics at the current clock time.
    pub fn stats(&self) -> PoolStats {
        let now = self.clock.now();
        let inner = self.inner.lock();
        let mut s = PoolStats::default();
        for i in inner.instances.values() {
            match i.state(now) {
                InstanceState::Provisioning => s.provisioning += 1,
                InstanceState::Running => s.running += 1,
                InstanceState::Terminated => {
                    s.terminated += 1;
                    if i.failed {
                        s.failed += 1;
                    }
                }
            }
            s.cost_cents += i.cost_cents(now);
        }
        s
    }

    /// The clock the pool reads.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rai_sim::SimDuration;

    #[test]
    fn launch_becomes_ready_after_latency() {
        let clock = VirtualClock::new();
        let pool = WorkerPool::new(clock.clone());
        let ids = pool.launch(InstanceType::p2(), 3);
        assert_eq!(ids.len(), 3);
        assert_eq!(pool.ready_instances().len(), 0);
        assert_eq!(pool.stats().provisioning, 3);
        clock.advance(SimDuration::from_mins(5));
        assert_eq!(pool.ready_instances().len(), 3);
        assert_eq!(pool.stats().running, 3);
    }

    #[test]
    fn terminate_and_idempotence() {
        let clock = VirtualClock::new();
        let pool = WorkerPool::new(clock.clone());
        let ids = pool.launch(InstanceType::g2(), 2);
        clock.advance(SimDuration::from_mins(10));
        assert!(pool.terminate(ids[0]));
        assert!(!pool.terminate(ids[0]), "double terminate is a no-op");
        assert!(!pool.terminate(InstanceId(999)));
        assert_eq!(pool.live_count(), 1);
        assert_eq!(pool.stats().terminated, 1);
    }

    #[test]
    fn fail_marks_instance_dead_and_stops_billing() {
        let clock = VirtualClock::new();
        let pool = WorkerPool::new(clock.clone());
        let ids = pool.launch(InstanceType::p2(), 2);
        clock.advance(SimDuration::from_mins(10));
        assert!(pool.fail(ids[1]));
        assert!(!pool.fail(ids[1]), "double fail is a no-op");
        assert_eq!(pool.ready_instances(), vec![ids[0]]);
        let s = pool.stats();
        assert_eq!(s.terminated, 1);
        assert_eq!(s.failed, 1);
        let cost_at_death = s.cost_cents;
        clock.advance(SimDuration::from_hours(5));
        let s2 = pool.stats();
        assert_eq!(s2.failed, 1);
        assert!(s2.cost_cents - cost_at_death < 5 * 90 * 2, "dead instance stopped billing");
        assert!(pool.get(ids[1]).unwrap().failed);
        assert!(!pool.get(ids[0]).unwrap().failed);
    }

    #[test]
    fn terminate_n_scales_in() {
        let clock = VirtualClock::new();
        let pool = WorkerPool::new(clock.clone());
        pool.launch(InstanceType::p2(), 5);
        clock.advance(SimDuration::from_mins(10));
        assert_eq!(pool.terminate_n(3), 3);
        assert_eq!(pool.live_count(), 2);
        assert_eq!(pool.terminate_n(10), 2, "only what exists");
    }

    #[test]
    fn cost_accrues_per_instance_hour() {
        let clock = VirtualClock::new();
        let pool = WorkerPool::new(clock.clone());
        pool.launch(InstanceType::p2(), 10); // $0.90/hr each
        clock.advance(SimDuration::from_hours(2));
        // 10 instances × 2 hours × 90¢.
        assert_eq!(pool.stats().cost_cents, 10 * 2 * 90);
        pool.terminate_n(10);
        clock.advance(SimDuration::from_days(1));
        assert_eq!(pool.stats().cost_cents, 10 * 2 * 90, "billing stops at terminate");
    }

    #[test]
    fn paper_fleet_cost_sanity() {
        // Section VII: 20–30 P2 instances during the last week. A week of
        // 30 P2s ≈ 30 × 168 h × $0.90 ≈ $4,536.
        let clock = VirtualClock::new();
        let pool = WorkerPool::new(clock.clone());
        pool.launch(InstanceType::p2(), 30);
        clock.advance(SimDuration::WEEK);
        let dollars = pool.stats().cost_cents as f64 / 100.0;
        assert!((4_500.0..4_600.0).contains(&dollars), "got ${dollars}");
    }
}
