//! Scaling policies: the reactive queue-depth autoscaler used in the
//! elasticity experiments, and the explicit phase schedule the staff
//! actually ran during the semester (paper §VII "Resource Usage").

use crate::instance::InstanceType;
use rai_sim::{SimDuration, SimTime};

/// Decision from a scaling policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScaleAction {
    /// Launch this many instances.
    Out(usize),
    /// Terminate this many instances.
    In(usize),
    /// Do nothing.
    Hold,
}

/// Reactive policy: keep queue depth per ready worker near a target,
/// with bounds and a cooldown to avoid thrashing.
#[derive(Clone, Debug)]
pub struct ReactiveAutoscaler {
    /// Never fewer than this many live instances.
    pub min_instances: usize,
    /// Never more than this many live instances.
    pub max_instances: usize,
    /// Desired queued jobs per ready worker.
    pub target_depth_per_worker: f64,
    /// Minimum time between scaling actions.
    pub cooldown: SimDuration,
    last_action: Option<SimTime>,
}

impl ReactiveAutoscaler {
    /// A policy bounded to the paper's observed fleet range (up to ~30
    /// single-job P2 instances).
    pub fn paper_bounds() -> Self {
        ReactiveAutoscaler {
            min_instances: 1,
            max_instances: 30,
            target_depth_per_worker: 2.0,
            cooldown: SimDuration::from_mins(10),
            last_action: None,
        }
    }

    /// Custom policy.
    pub fn new(min: usize, max: usize, target_depth_per_worker: f64, cooldown: SimDuration) -> Self {
        ReactiveAutoscaler {
            min_instances: min,
            max_instances: max,
            target_depth_per_worker,
            cooldown,
            last_action: None,
        }
    }

    /// Decide given current state. `live` counts provisioning + running
    /// (capacity already paid for), `queue_depth` is ready jobs waiting.
    pub fn decide(&mut self, now: SimTime, queue_depth: usize, live: usize) -> ScaleAction {
        if let Some(last) = self.last_action {
            if now.duration_since(last) < self.cooldown {
                return ScaleAction::Hold;
            }
        }
        let live_f = live.max(1) as f64;
        let per_worker = queue_depth as f64 / live_f;
        let action = if live < self.min_instances {
            ScaleAction::Out(self.min_instances - live)
        } else if per_worker > self.target_depth_per_worker && live < self.max_instances {
            // Grow toward the depth target, capped.
            let desired =
                ((queue_depth as f64 / self.target_depth_per_worker).ceil() as usize).clamp(live + 1, self.max_instances);
            ScaleAction::Out(desired - live)
        } else if queue_depth == 0 && live > self.min_instances && per_worker == 0.0 {
            ScaleAction::In(1) // gentle scale-in, one at a time
        } else {
            ScaleAction::Hold
        };
        if action != ScaleAction::Hold {
            self.last_action = Some(now);
        }
        action
    }
}

/// One phase of the semester's explicit provisioning plan.
#[derive(Clone, Debug)]
pub struct Phase {
    /// Phase begins at this offset from the project start.
    pub starts_at: SimTime,
    /// Instance type to run.
    pub itype: &'static InstanceType,
    /// Fleet size.
    pub fleet: usize,
    /// Concurrent jobs each worker accepts (paper: multiple early, one
    /// during the benchmarking weeks).
    pub jobs_per_worker: usize,
    /// Human-readable label.
    pub label: &'static str,
}

/// The semester schedule from §VII.
#[derive(Clone, Debug)]
pub struct PhaseSchedule {
    /// Phases in chronological order.
    pub phases: Vec<Phase>,
}

impl PhaseSchedule {
    /// The paper's plan over a 5-week project:
    /// * weeks 1–2 — a few cheap G2 (K40) workers, single job each
    ///   (serial baseline jobs are long; consistency matters);
    /// * weeks 3–4 — 10 P2 (K80) workers, multiple jobs in flight;
    /// * week 5 — 25 P2 workers, one job at a time for stable timing.
    pub fn paper_semester() -> Self {
        PhaseSchedule {
            phases: vec![
                Phase {
                    starts_at: SimTime::ZERO,
                    itype: InstanceType::g2(),
                    fleet: 4,
                    jobs_per_worker: 1,
                    label: "baseline exploration (G2/K40)",
                },
                Phase {
                    starts_at: SimTime::ZERO + SimDuration::from_days(14),
                    itype: InstanceType::p2(),
                    fleet: 10,
                    jobs_per_worker: 4,
                    label: "optimization (10x P2/K80, multi-job)",
                },
                Phase {
                    starts_at: SimTime::ZERO + SimDuration::from_days(28),
                    itype: InstanceType::p2(),
                    fleet: 25,
                    jobs_per_worker: 1,
                    label: "benchmarking week (25x P2/K80, single-job)",
                },
            ],
        }
    }

    /// The phase in force at `now` (none before the first phase).
    pub fn phase_at(&self, now: SimTime) -> Option<&Phase> {
        self.phases.iter().rev().find(|p| now >= p.starts_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_out_under_backlog() {
        let mut a = ReactiveAutoscaler::new(1, 30, 2.0, SimDuration::from_mins(5));
        let t = SimTime::from_secs(0);
        match a.decide(t, 40, 5) {
            ScaleAction::Out(n) => assert!(n >= 1 && 5 + n <= 30, "n={n}"),
            other => panic!("expected Out, got {other:?}"),
        }
    }

    #[test]
    fn respects_max() {
        let mut a = ReactiveAutoscaler::new(1, 10, 1.0, SimDuration::ZERO);
        match a.decide(SimTime::ZERO, 1000, 10) {
            ScaleAction::Hold => {}
            other => panic!("at max, expected Hold, got {other:?}"),
        }
    }

    #[test]
    fn cooldown_prevents_thrash() {
        let mut a = ReactiveAutoscaler::new(1, 30, 2.0, SimDuration::from_mins(10));
        assert!(matches!(a.decide(SimTime::ZERO, 50, 2), ScaleAction::Out(_)));
        // One minute later, still backlogged: held by cooldown.
        assert_eq!(
            a.decide(SimTime::ZERO + SimDuration::from_mins(1), 80, 2),
            ScaleAction::Hold
        );
        // After cooldown: acts again.
        assert!(matches!(
            a.decide(SimTime::ZERO + SimDuration::from_mins(11), 80, 2),
            ScaleAction::Out(_)
        ));
    }

    #[test]
    fn scales_in_when_idle() {
        let mut a = ReactiveAutoscaler::new(2, 30, 2.0, SimDuration::ZERO);
        assert_eq!(a.decide(SimTime::ZERO, 0, 10), ScaleAction::In(1));
        // Never below min.
        assert_eq!(a.decide(SimTime::from_secs(60), 0, 2), ScaleAction::Hold);
    }

    #[test]
    fn grows_to_min() {
        let mut a = ReactiveAutoscaler::new(5, 30, 2.0, SimDuration::ZERO);
        assert_eq!(a.decide(SimTime::ZERO, 0, 1), ScaleAction::Out(4));
    }

    #[test]
    fn paper_schedule_phases() {
        let s = PhaseSchedule::paper_semester();
        assert!(s.phase_at(SimTime::ZERO).unwrap().label.contains("G2"));
        let mid = SimTime::ZERO + SimDuration::from_days(20);
        let p = s.phase_at(mid).unwrap();
        assert_eq!(p.fleet, 10);
        assert_eq!(p.jobs_per_worker, 4);
        let last = SimTime::ZERO + SimDuration::from_days(30);
        let p = s.phase_at(last).unwrap();
        assert_eq!(p.fleet, 25);
        assert_eq!(p.jobs_per_worker, 1, "single-job for timing accuracy");
    }
}
