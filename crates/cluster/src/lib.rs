//! # rai-cluster — elastic worker infrastructure (paper §IV, §VII)
//!
//! The paper's deployment moved through three provisioning phases:
//! cheap AWS G2 instances while students ran the serial baseline, ~10
//! P2 (K80) instances with multiple in-flight jobs mid-project, and
//! 20–30 single-job P2 instances during the benchmark-sensitive final
//! week — "students worked in bursts, which required RAI to be elastic
//! to remain reliable and cost-efficient."
//!
//! * [`instance`] — the instance-type catalogue (GPU model, hourly
//!   price, boot latency) and individual instance lifecycle;
//! * [`pool`] — the elastic pool: launch/terminate, readiness after
//!   provisioning latency, EC2-style rounded-up instance-hour billing;
//! * [`autoscaler`] — a reactive queue-depth policy plus the paper's
//!   explicit phase schedule.

pub mod autoscaler;
pub mod instance;
pub mod pool;

pub use autoscaler::{PhaseSchedule, ReactiveAutoscaler, ScaleAction};
pub use instance::{Instance, InstanceId, InstanceState, InstanceType};
pub use pool::{PoolStats, WorkerPool};
