//! Instance types and lifecycle.

use rai_sim::{SimDuration, SimTime};

/// Unique id of a launched instance.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct InstanceId(pub u64);

impl std::fmt::Display for InstanceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "i-{:08x}", self.0)
    }
}

/// An AWS-style instance type.
#[derive(Clone, Debug, PartialEq)]
pub struct InstanceType {
    /// API name, e.g. `p2.xlarge`.
    pub name: &'static str,
    /// GPU model string (as the paper describes the fleet).
    pub gpu_model: &'static str,
    /// GPUs per instance.
    pub gpus: u32,
    /// Hourly price in USD cents.
    pub hourly_cents: u64,
    /// Boot + agent-start latency before the worker accepts jobs.
    pub provision_latency: SimDuration,
    /// Relative GPU throughput (1.0 = K80 baseline); used to scale
    /// simulated job runtimes per hardware generation.
    pub gpu_speed: f64,
}

impl InstanceType {
    /// The early-project instance: "AWS G2 instances with NVIDIA Tesla
    /// K40 GPUs. These instances are cheaper…" (paper §VII).
    pub const fn g2() -> &'static InstanceType {
        &G2
    }

    /// The main fleet: "AWS P2 instances with NVIDIA Tesla K80 GPUs".
    pub const fn p2() -> &'static InstanceType {
        &P2
    }

    /// A bigger P2 used in capacity experiments.
    pub const fn p2_8x() -> &'static InstanceType {
        &P2_8X
    }
}

static G2: InstanceType = InstanceType {
    name: "g2.2xlarge",
    gpu_model: "NVIDIA Tesla K40",
    gpus: 1,
    hourly_cents: 65,
    provision_latency: SimDuration::from_millis(3 * 60_000),
    gpu_speed: 0.6,
};

static P2: InstanceType = InstanceType {
    name: "p2.xlarge",
    gpu_model: "NVIDIA Tesla K80",
    gpus: 1,
    hourly_cents: 90,
    provision_latency: SimDuration::from_millis(4 * 60_000),
    gpu_speed: 1.0,
};

static P2_8X: InstanceType = InstanceType {
    name: "p2.8xlarge",
    gpu_model: "NVIDIA Tesla K80",
    gpus: 8,
    hourly_cents: 720,
    provision_latency: SimDuration::from_millis(4 * 60_000),
    gpu_speed: 1.0,
};

/// Instance lifecycle state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InstanceState {
    /// Booting; not yet accepting jobs.
    Provisioning,
    /// Accepting jobs.
    Running,
    /// Terminated; billing stopped.
    Terminated,
}

/// A launched instance.
#[derive(Clone, Debug)]
pub struct Instance {
    /// Id.
    pub id: InstanceId,
    /// Type.
    pub itype: &'static InstanceType,
    /// Launch request time.
    pub launched_at: SimTime,
    /// When it becomes/became ready.
    pub ready_at: SimTime,
    /// Termination time, if terminated.
    pub terminated_at: Option<SimTime>,
    /// Whether termination was a failure (spot reclaim, hardware
    /// death) rather than a planned scale-in.
    pub failed: bool,
}

impl Instance {
    /// State at time `now`.
    pub fn state(&self, now: SimTime) -> InstanceState {
        if self.terminated_at.is_some_and(|t| now >= t) {
            InstanceState::Terminated
        } else if now >= self.ready_at {
            InstanceState::Running
        } else {
            InstanceState::Provisioning
        }
    }

    /// Billable cost in cents up to `now` (EC2-classic semantics: whole
    /// hours, rounded up, from launch to termination).
    pub fn cost_cents(&self, now: SimTime) -> u64 {
        let end = self.terminated_at.map_or(now, |t| t.min(now));
        if end <= self.launched_at {
            return 0;
        }
        let hours = end.duration_since(self.launched_at).as_millis() as f64 / 3_600_000.0;
        (hours.ceil() as u64).max(1) * self.itype.hourly_cents
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_matches_paper() {
        assert_eq!(InstanceType::g2().gpu_model, "NVIDIA Tesla K40");
        assert_eq!(InstanceType::p2().gpu_model, "NVIDIA Tesla K80");
        assert!(InstanceType::g2().hourly_cents < InstanceType::p2().hourly_cents);
        assert_eq!(InstanceType::p2_8x().gpus, 8);
    }

    fn launched_at(t: SimTime) -> Instance {
        Instance {
            id: InstanceId(1),
            itype: InstanceType::p2(),
            launched_at: t,
            ready_at: t + InstanceType::p2().provision_latency,
            terminated_at: None,
            failed: false,
        }
    }

    #[test]
    fn state_transitions() {
        let t0 = SimTime::from_secs(100);
        let mut inst = launched_at(t0);
        assert_eq!(inst.state(t0), InstanceState::Provisioning);
        assert_eq!(inst.state(t0 + SimDuration::from_mins(10)), InstanceState::Running);
        inst.terminated_at = Some(t0 + SimDuration::from_hours(2));
        assert_eq!(inst.state(t0 + SimDuration::from_hours(3)), InstanceState::Terminated);
        assert_eq!(inst.state(t0 + SimDuration::from_mins(30)), InstanceState::Running);
    }

    #[test]
    fn billing_rounds_up_hours() {
        let t0 = SimTime::ZERO;
        let mut inst = launched_at(t0);
        // 10 minutes in: still one whole hour billed.
        assert_eq!(inst.cost_cents(t0 + SimDuration::from_mins(10)), 90);
        // 1h30 in: two hours.
        assert_eq!(inst.cost_cents(t0 + SimDuration::from_mins(90)), 180);
        // Terminated at 2h: cost frozen afterwards.
        inst.terminated_at = Some(t0 + SimDuration::from_hours(2));
        assert_eq!(inst.cost_cents(t0 + SimDuration::from_days(5)), 180);
    }

    #[test]
    fn display_id() {
        assert_eq!(InstanceId(255).to_string(), "i-000000ff");
    }
}
