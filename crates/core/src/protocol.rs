//! The wire protocol: job requests and log-stream messages exchanged
//! over the broker (paper §V "Message Broker Operations").
//!
//! Job requests are serialized as YAML (the same in-repo parser the
//! build spec uses). Log messages are plain text with a small set of
//! control frames; the worker forwards container stdout/stderr as `out`
//! / `err` frames and finishes with the `End` message the client waits
//! for.

use rai_yaml::{parse, to_string, Yaml};

/// Well-known queue routes.
pub mod routes {
    /// Topic clients publish job requests to.
    pub const TASK_TOPIC: &str = "rai";
    /// Channel all workers share on the task topic.
    pub const TASK_CHANNEL: &str = "tasks";

    /// Per-job ephemeral log topic (`log_${job_id}`).
    pub fn log_topic(job_id: u64) -> String {
        format!("log_{job_id:08x}")
    }

    /// The single channel on a log topic.
    pub const LOG_CHANNEL: &str = "#ch";
}

/// Submission kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobKind {
    /// Development run (`rai`), uses the student's build file.
    Run,
    /// Final submission (`rai submit`), enforced build file + ranking.
    Submit,
}

/// A job request as published on `rai/tasks`.
#[derive(Clone, Debug, PartialEq)]
pub struct JobRequest {
    /// Client-chosen unique job id.
    pub job_id: u64,
    /// Submitting user's access key.
    pub access_key: String,
    /// HMAC signature over the canonical request.
    pub signature: String,
    /// Team name (ranking key).
    pub team: String,
    /// Where the packed project was uploaded (bucket, key).
    pub upload_bucket: String,
    /// Object key of the uploaded archive.
    pub upload_key: String,
    /// The raw `rai-build.yml` text (embedded in the job message).
    pub build_yml: String,
    /// Run vs final submission.
    pub kind: JobKind,
}

impl JobRequest {
    /// The byte string that gets signed: everything except the
    /// signature itself.
    pub fn signing_payload(&self) -> Vec<u8> {
        format!(
            "{}\n{}\n{}\n{}\n{}\n{}\n{}",
            self.job_id,
            self.access_key,
            self.team,
            self.upload_bucket,
            self.upload_key,
            match self.kind {
                JobKind::Run => "run",
                JobKind::Submit => "submit",
            },
            self.build_yml,
        )
        .into_bytes()
    }

    /// Serialize for the broker.
    pub fn encode(&self) -> String {
        let doc = Yaml::Map(vec![
            ("job_id".into(), Yaml::Int(self.job_id as i64)),
            ("access_key".into(), Yaml::Str(self.access_key.clone())),
            ("signature".into(), Yaml::Str(self.signature.clone())),
            ("team".into(), Yaml::Str(self.team.clone())),
            ("upload_bucket".into(), Yaml::Str(self.upload_bucket.clone())),
            ("upload_key".into(), Yaml::Str(self.upload_key.clone())),
            (
                "kind".into(),
                Yaml::Str(
                    match self.kind {
                        JobKind::Run => "run",
                        JobKind::Submit => "submit",
                    }
                    .to_string(),
                ),
            ),
            ("build_yml".into(), Yaml::Str(self.build_yml.clone())),
        ]);
        to_string(&doc)
    }

    /// Deserialize from the broker; `None` for malformed messages (the
    /// worker drops them rather than crashing).
    pub fn decode(text: &str) -> Option<JobRequest> {
        let doc = parse(text).ok()?;
        let s = |k: &str| doc.get(k)?.as_str().map(str::to_string);
        Some(JobRequest {
            job_id: doc.get("job_id")?.as_i64()? as u64,
            access_key: s("access_key")?,
            signature: s("signature")?,
            team: s("team")?,
            upload_bucket: s("upload_bucket")?,
            upload_key: s("upload_key")?,
            build_yml: s("build_yml")?,
            kind: match doc.get("kind")?.as_str()? {
                "submit" => JobKind::Submit,
                "run" => JobKind::Run,
                _ => return None,
            },
        })
    }
}

/// Frames published on the per-job log topic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LogFrame {
    /// Container stdout line.
    Out(String),
    /// Container stderr line.
    Err(String),
    /// Worker status note (queue position, image pull, upload).
    Status(String),
    /// URL of the uploaded `/build` archive.
    BuildUrl(String),
    /// Terminal frame: job finished with this success flag.
    End { success: bool },
}

impl LogFrame {
    /// Serialize as a single line.
    pub fn encode(&self) -> String {
        match self {
            LogFrame::Out(s) => format!("out {s}"),
            LogFrame::Err(s) => format!("err {s}"),
            LogFrame::Status(s) => format!("sts {s}"),
            LogFrame::BuildUrl(s) => format!("url {s}"),
            LogFrame::End { success } => format!("end {}", if *success { "ok" } else { "fail" }),
        }
    }

    /// Parse a frame line; unknown prefixes decode as stdout (forward
    /// compatibility with older clients, as the paper's two-branch
    /// release flow requires).
    pub fn decode(line: &str) -> LogFrame {
        match line.split_once(' ') {
            Some(("out", rest)) => LogFrame::Out(rest.to_string()),
            Some(("err", rest)) => LogFrame::Err(rest.to_string()),
            Some(("sts", rest)) => LogFrame::Status(rest.to_string()),
            Some(("url", rest)) => LogFrame::BuildUrl(rest.to_string()),
            Some(("end", rest)) => LogFrame::End {
                success: rest == "ok",
            },
            _ => LogFrame::Out(line.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> JobRequest {
        JobRequest {
            job_id: 0xDEAD,
            access_key: "BsqJuFUI2ZtK4g1aLXf-OjmML6".into(),
            signature: "ab12".into(),
            team: "gpu gophers".into(),
            upload_bucket: "rai-uploads".into(),
            upload_key: "gpu-gophers/0000dead.tar.bz2".into(),
            build_yml: crate::spec::DEFAULT_BUILD_YML.into(),
            kind: JobKind::Submit,
        }
    }

    #[test]
    fn job_request_round_trips() {
        let r = sample();
        let text = r.encode();
        let back = JobRequest::decode(&text).unwrap();
        assert_eq!(back, r);
        // The embedded multi-line build file survived.
        assert!(back.build_yml.contains("cmake /src"));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(JobRequest::decode("not yaml: [").is_none());
        assert!(JobRequest::decode("a: 1\n").is_none());
        let mut r = sample().encode();
        r = r.replace("kind: submit", "kind: explode");
        assert!(JobRequest::decode(&r).is_none());
    }

    #[test]
    fn signing_payload_excludes_signature() {
        let mut r = sample();
        let p1 = r.signing_payload();
        r.signature = "different".into();
        assert_eq!(p1, r.signing_payload());
        r.team = "other".into();
        assert_ne!(p1, r.signing_payload());
    }

    #[test]
    fn log_frames_round_trip() {
        for f in [
            LogFrame::Out("Building project".into()),
            LogFrame::Err("warning: unused".into()),
            LogFrame::Status("queued behind 3 jobs".into()),
            LogFrame::BuildUrl("rai-builds/abc.tar.bz2".into()),
            LogFrame::End { success: true },
            LogFrame::End { success: false },
        ] {
            assert_eq!(LogFrame::decode(&f.encode()), f);
        }
    }

    #[test]
    fn unknown_frame_is_treated_as_output() {
        assert_eq!(
            LogFrame::decode("v2-fancy-frame payload"),
            LogFrame::Out("v2-fancy-frame payload".into())
        );
    }

    #[test]
    fn log_topic_naming() {
        assert_eq!(routes::log_topic(0xBEEF), "log_0000beef");
    }
}
