//! Client subcommands beyond job submission (paper §VI: "RAI offers
//! instructors and students a set of utilities that can be used to
//! interact with and query the system"). These render the textual
//! output the command-line client prints.

use crate::ranking::RankingBoard;
use rai_db::{doc, Database, FindOptions, Value};

/// `rai rankings` — the leaderboard as `team` sees it (own team named,
/// others anonymized).
pub fn rankings(board: &RankingBoard, team: &str) -> String {
    let view = board.view_for(team);
    if view.is_empty() {
        return "no final submissions recorded yet\n".to_string();
    }
    let mut out = format!("{:<6} {:<18} {:>10}\n", "rank", "team", "runtime");
    for row in view {
        out.push_str(&format!(
            "{:<6} {:<18} {:>9.3}s{}\n",
            format!("#{}", row.rank),
            row.display_name,
            row.runtime_secs,
            if row.is_self { "  <- you" } else { "" }
        ));
    }
    out
}

/// One row of `rai history`.
#[derive(Clone, Debug, PartialEq)]
pub struct HistoryEntry {
    /// Job id.
    pub job_id: u64,
    /// `run` or `submit`.
    pub kind: String,
    /// Whether it succeeded.
    pub success: bool,
    /// Student-visible runtime, if a program ran.
    pub internal_secs: Option<f64>,
    /// Worker that executed it.
    pub worker: String,
}

/// Query a team's submission history from the metadata database,
/// newest first.
pub fn history(db: &Database, team: &str, limit: usize) -> Vec<HistoryEntry> {
    db.collection("submissions")
        .read()
        .find_with(
            &doc! { "team" => team },
            &FindOptions::sort_desc("job_id").limit(limit),
        )
        .into_iter()
        .filter_map(|d| {
            Some(HistoryEntry {
                job_id: d.get("job_id")?.as_i64()? as u64,
                kind: d.get("kind")?.as_str()?.to_string(),
                success: d.get("success")?.as_bool()?,
                internal_secs: match d.get("internal_secs") {
                    Some(Value::Null) | None => None,
                    Some(v) => v.as_f64(),
                },
                worker: d.get("worker")?.as_str()?.to_string(),
            })
        })
        .collect()
}

/// `rai history` — rendered.
pub fn history_text(db: &Database, team: &str, limit: usize) -> String {
    let rows = history(db, team, limit);
    if rows.is_empty() {
        return format!("no submissions for team {team:?}\n");
    }
    let mut out = format!(
        "{:<12} {:<8} {:<6} {:>10} {:<12}\n",
        "job", "kind", "ok", "runtime", "worker"
    );
    for r in rows {
        out.push_str(&format!(
            "{:<12} {:<8} {:<6} {:>10} {:<12}\n",
            format!("{:08x}", r.job_id),
            r.kind,
            r.success,
            r.internal_secs
                .map(|s| format!("{s:.3}s"))
                .unwrap_or_else(|| "-".to_string()),
            r.worker
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ProjectDir;
    use crate::system::{RaiSystem, SystemConfig};

    fn populated() -> RaiSystem {
        let mut sys = RaiSystem::new(SystemConfig {
            rate_limit: None,
            ..Default::default()
        });
        let a = sys.register_team("alpha", &[]);
        let b = sys.register_team("beta", &[]);
        sys.submit(&a, &ProjectDir::sample_cuda_project()).unwrap();
        sys.submit_final(&a, &ProjectDir::cuda_project_with_perf(500.0, 0.9, 512).with_final_artifacts())
            .unwrap();
        sys.submit_final(&b, &ProjectDir::cuda_project_with_perf(900.0, 0.9, 512).with_final_artifacts())
            .unwrap();
        sys
    }

    #[test]
    fn rankings_output_shape() {
        let sys = populated();
        let text = rankings(&sys.rankings(), "beta");
        assert!(text.contains("#1"));
        assert!(text.contains("anonymous-"), "other team anonymized:\n{text}");
        assert!(text.contains("beta"));
        assert!(text.contains("<- you"));
        // Empty board message.
        let empty = RankingBoard::new(rai_db::Database::new());
        assert!(rankings(&empty, "x").contains("no final submissions"));
    }

    #[test]
    fn history_newest_first_with_limit() {
        let sys = populated();
        let rows = history(sys.db(), "alpha", 10);
        assert_eq!(rows.len(), 2);
        assert!(rows[0].job_id > rows[1].job_id, "newest first");
        assert_eq!(rows[0].kind, "submit");
        assert_eq!(rows[1].kind, "run");
        assert!(rows.iter().all(|r| r.success));
        assert_eq!(history(sys.db(), "alpha", 1).len(), 1);
        assert!(history(sys.db(), "nobody", 5).is_empty());
    }

    #[test]
    fn history_text_renders() {
        let sys = populated();
        let text = history_text(sys.db(), "alpha", 10);
        assert!(text.contains("submit"));
        assert!(text.contains("worker-00"));
        assert!(history_text(sys.db(), "ghost", 5).contains("no submissions"));
    }
}
