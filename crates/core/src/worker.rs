//! The RAI worker (paper §V "Worker Operations").
//!
//! A worker ① subscribes to the `rai` task channel, ② parses and
//! authenticates incoming job messages, ③ starts a sandboxed container
//! from the whitelisted base image (pulling it on first use), ④
//! downloads the client's project archive and mounts it at `/src` with
//! `/build` as the working directory, ⑤ executes the build commands,
//! forwarding stdout/stderr to the job's log topic, and ⑥ uploads the
//! `/build` directory to the file server, publishes its URL, destroys
//! the container and sends `End`.
//!
//! "The worker can be configured to have multiple jobs in flight" —
//! the `max_in_flight` knob; contention noise from co-scheduled jobs is
//! what made the staff switch to single-job workers for the benchmark
//! weeks (reproduced by the concurrency ablation).

use crate::client::BUILD_BUCKET;
use crate::protocol::{routes, JobKind, JobRequest, LogFrame};
use crate::spec::BuildSpec;
use rai_archive::{pack, unpack};
use rai_auth::CredentialRegistry;
use rai_broker::{Broker, Subscription};
use rai_db::{doc, Database, Value};
use rai_sandbox::{Container, ContainerStatus, ImageRegistry, ResourceLimits};
use rai_sim::SimDuration;
use rai_telemetry::{names, stage, Telemetry};
use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::sync::Arc;

/// Worker configuration ("these limits can be changed using the RAI
/// worker configuration file").
#[derive(Clone, Debug)]
pub struct WorkerConfig {
    /// Identifier recorded with each submission (e.g. `p2-worker-07`).
    pub worker_id: String,
    /// Concurrent jobs accepted (1 during benchmarking weeks).
    pub max_in_flight: usize,
    /// Relative GPU throughput of this host (K80 = 1.0, K40 ≈ 0.6).
    pub gpu_speed: f64,
    /// Container resource limits.
    pub limits: ResourceLimits,
    /// Seed for this worker's contention-noise RNG.
    pub noise_seed: u64,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        WorkerConfig {
            worker_id: "worker-0".to_string(),
            max_in_flight: 1,
            gpu_speed: 1.0,
            limits: ResourceLimits::default(),
            noise_seed: 0,
        }
    }
}

/// What processing one job produced (consumed by the discrete-event
/// driver to advance virtual time).
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// Job id.
    pub job_id: u64,
    /// Team that submitted.
    pub team: String,
    /// Run or final submission.
    pub kind: JobKind,
    /// Whether the build+run succeeded.
    pub success: bool,
    /// Total simulated time the job occupied the worker (pull +
    /// transfers + container execution).
    pub service_time: SimDuration,
    /// The measured program runtime (internal timer), if a program ran.
    pub measured_secs: Option<f64>,
}

/// The worker agent.
pub struct Worker {
    config: WorkerConfig,
    broker: Broker,
    store: rai_store::ObjectStore,
    db: Database,
    registry: Arc<RwLock<CredentialRegistry>>,
    images: Arc<ImageRegistry>,
    subscription: Subscription,
    cached_images: HashSet<String>,
    active_jobs: usize,
    rng: StdRng,
    telemetry: Option<Telemetry>,
}

impl Worker {
    /// Create a worker and subscribe it to `rai/tasks`.
    pub fn new(
        config: WorkerConfig,
        broker: Broker,
        store: rai_store::ObjectStore,
        db: Database,
        registry: Arc<RwLock<CredentialRegistry>>,
        images: Arc<ImageRegistry>,
    ) -> Self {
        let subscription = broker.subscribe(routes::TASK_TOPIC, routes::TASK_CHANNEL);
        let rng = StdRng::seed_from_u64(config.noise_seed);
        Worker {
            config,
            broker,
            store,
            db,
            registry,
            images,
            subscription,
            cached_images: HashSet::new(),
            active_jobs: 0,
            rng,
            telemetry: None,
        }
    }

    /// Attach a telemetry handle; stage timings, job traces, and the
    /// active-jobs gauge are recorded through it from then on.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = Some(telemetry);
    }

    /// This worker's id.
    pub fn id(&self) -> &str {
        &self.config.worker_id
    }

    /// Jobs currently being executed (used by the in-flight constraint).
    pub fn active_jobs(&self) -> usize {
        self.active_jobs
    }

    /// Contention-noise multiplier for the current load: a single job
    /// measures cleanly; co-scheduled jobs add up to ~12% noise each
    /// (PCIe/host contention on a shared K80 host).
    fn contention_dilation(&mut self, co_scheduled: usize) -> f64 {
        if co_scheduled == 0 {
            1.0
        } else {
            let per_job: f64 = self.rng.gen_range(0.02..0.12);
            1.0 + per_job * co_scheduled as f64
        }
    }

    /// Pop and fully process one task message. Returns `None` when the
    /// queue is empty or this worker is at its in-flight limit (the
    /// message is left for / requeued to other workers).
    pub fn step(&mut self) -> Option<JobOutcome> {
        if self.active_jobs >= self.config.max_in_flight {
            return None;
        }
        loop {
            let msg = self.subscription.try_recv()?;
            // ② Parse the message; malformed messages are dropped
            // (acked) — they can never become valid — and the worker
            // moves on to the next queued job.
            let Some(request) = JobRequest::decode(&msg.body_str()) else {
                self.subscription.ack(msg.id);
                continue;
            };
            self.active_jobs += 1;
            self.set_active_gauge();
            let outcome = self.process(&request);
            self.active_jobs -= 1;
            self.set_active_gauge();
            self.subscription.ack(msg.id);
            return Some(outcome);
        }
    }

    fn set_active_gauge(&self) {
        if let Some(t) = &self.telemetry {
            t.gauge(names::WORKER_ACTIVE_JOBS, &[("worker", &self.config.worker_id)])
                .set(self.active_jobs as f64);
        }
    }

    /// Count a finished job and record its end-to-end service time.
    fn note_outcome(&self, request: &JobRequest, outcome: &str, service_time: SimDuration) {
        if let Some(t) = &self.telemetry {
            let kind = match request.kind {
                JobKind::Run => "run",
                JobKind::Submit => "submit",
            };
            t.counter(names::JOBS_TOTAL, &[("kind", kind), ("outcome", outcome)]).inc();
            t.histogram(names::JOB_TOTAL_SECONDS, &[], 0.0, 30.0, 40)
                .record(service_time.as_secs_f64());
        }
    }

    /// Record a lifecycle stage at `started + elapsed` and its duration
    /// since the previous stage boundary in the per-stage histogram.
    fn note_stage(
        &self,
        request: &JobRequest,
        stage_name: &'static str,
        started: rai_sim::SimTime,
        elapsed: SimDuration,
        stage_secs: f64,
    ) {
        if let Some(t) = &self.telemetry {
            t.trace_stage_at(request.job_id, stage_name, started + elapsed);
            t.histogram(names::JOB_STAGE_SECONDS, &[("stage", stage_name)], 0.0, 5.0, 24)
                .record(stage_secs);
        }
    }

    /// Process an already-accepted request (also used directly by the
    /// discrete-event driver, which manages queueing itself).
    pub fn process(&mut self, request: &JobRequest) -> JobOutcome {
        let co = self.active_jobs.saturating_sub(1);
        self.process_with_coscheduled(request, co)
    }

    /// Process a request while `co_scheduled` other jobs share this
    /// host — the lever behind the paper's "the worker accepts only one
    /// task at a time – this makes the performance timing more accurate
    /// and repeatable" (measured by the concurrency ablation).
    pub fn process_with_coscheduled(&mut self, request: &JobRequest, co_scheduled: usize) -> JobOutcome {
        let log_topic = routes::log_topic(request.job_id);
        // All stage timestamps are `started + accumulated service time`:
        // the driver advances the shared clock only after the outcome,
        // so stamping the logical time keeps per-job traces monotone.
        let started = self.store.clock().now();
        if let Some(t) = &self.telemetry {
            t.trace_stage_at(request.job_id, stage::DEQUEUED, started);
        }
        // Bytes of log traffic this job generates (the paper reports
        // 25 GB of logs and metadata across the semester).
        let log_bytes = std::cell::Cell::new(0u64);
        let publish = |broker: &Broker, frame: LogFrame| {
            let encoded = frame.encode();
            log_bytes.set(log_bytes.get() + encoded.len() as u64);
            // Log publishing is best-effort: a full log topic must not
            // take the worker down.
            let _ = broker.publish_ephemeral(&log_topic, encoded);
        };

        publish(
            &self.broker,
            LogFrame::Status(format!("job accepted by {}", self.config.worker_id)),
        );
        let mut service_time = SimDuration::ZERO;
        let fail = |broker: &Broker, reason: String, service_time: SimDuration| {
            publish(broker, LogFrame::Err(reason.clone()));
            publish(broker, LogFrame::End { success: false });
            JobOutcome {
                job_id: request.job_id,
                team: request.team.clone(),
                kind: request.kind,
                success: false,
                service_time,
                measured_secs: None,
            }
        };

        // ② Check the credentials.
        let auth = self.registry.read().authenticate(
            &request.access_key,
            &request.signing_payload(),
            &request.signature,
        ).map(str::to_string);
        let user = match auth {
            Ok(u) => u,
            Err(e) => {
                let out = fail(&self.broker, format!("authentication failed: {e}"), service_time);
                self.record_submission(request, "auth-rejected", None, SimDuration::ZERO, false, log_bytes.get());
                self.note_outcome(request, "auth-rejected", service_time);
                return out;
            }
        };

        // Parse the build file embedded in the job message.
        let spec = match BuildSpec::parse(&request.build_yml) {
            Ok(s) => s,
            Err(e) => {
                let out = fail(&self.broker, e.to_string(), service_time);
                self.record_submission(request, &user, None, SimDuration::ZERO, false, log_bytes.get());
                self.note_outcome(request, "bad-spec", service_time);
                return out;
            }
        };

        // ③ Resolve the image (whitelist) and pull if not cached.
        let image = match self.images.resolve(&spec.image) {
            Ok(img) => img.clone(),
            Err(e) => {
                let out = fail(&self.broker, e.to_string(), service_time);
                self.record_submission(request, &user, None, SimDuration::ZERO, false, log_bytes.get());
                self.note_outcome(request, "image-rejected", service_time);
                return out;
            }
        };
        if !self.cached_images.contains(&image.name) {
            publish(
                &self.broker,
                LogFrame::Status(format!("pulling image {}...", image.name)),
            );
            service_time += self.images.pull_latency(&image.name);
            self.cached_images.insert(image.name.clone());
            if let Some(t) = &self.telemetry {
                t.counter(names::SANDBOX_IMAGE_PULLS_TOTAL, &[]).inc();
            }
        }

        // ④ Download the project archive and mount it.
        let project = match self
            .store
            .get(&request.upload_bucket, &request.upload_key)
            .map_err(|e| e.to_string())
            .and_then(|obj| unpack(&obj.data).map_err(|e| e.to_string()))
        {
            Ok(tree) => tree,
            Err(e) => {
                let out = fail(&self.broker, format!("failed to fetch project: {e}"), service_time);
                self.record_submission(request, &user, None, SimDuration::ZERO, false, log_bytes.get());
                self.note_outcome(request, "fetch-failed", service_time);
                return out;
            }
        };
        // Transfer latency: 100 MB/s from the file server.
        let before_fetch = service_time;
        service_time += SimDuration::from_millis(project.total_size() / (100 * 1024) + 1);
        self.note_stage(
            request,
            stage::FETCHED,
            started,
            service_time,
            (service_time - before_fetch).as_secs_f64(),
        );

        let mut limits = self.config.limits;
        if let Some(gpus) = spec.gpus {
            // The spec may *lower* the GPU count (future machine
            // requirements); it cannot exceed what the worker offers.
            limits.gpus = limits.gpus.min(gpus);
        }
        let mut container = Container::create(&image, limits);
        container.mount("/src", &project);
        container.set_gpu_speed(self.config.gpu_speed);
        let dilation = self.contention_dilation(co_scheduled);
        container.set_time_dilation(dilation);

        // ⑤ Execute the build commands, forwarding output.
        container.run_script(spec.build.iter().map(String::as_str));
        let report = container.destroy();
        for line in &report.log {
            publish(
                &self.broker,
                match line.stream {
                    rai_sandbox::LogStream::Stdout => LogFrame::Out(line.text.clone()),
                    rai_sandbox::LogStream::Stderr => LogFrame::Err(line.text.clone()),
                },
            );
        }
        self.note_stage(request, stage::BUILT, started, service_time, 0.0);
        service_time += report.elapsed;
        self.note_stage(request, stage::RAN, started, service_time, report.elapsed.as_secs_f64());
        if let Some(t) = &self.telemetry {
            t.histogram(names::SANDBOX_RUN_SECONDS, &[], 0.0, 5.0, 24)
                .record(report.elapsed.as_secs_f64());
            if matches!(report.status, ContainerStatus::Killed(_)) {
                t.counter(names::SANDBOX_LIMIT_KILLS_TOTAL, &[]).inc();
            }
        }

        // ⑥ Upload /build and send the URL + End.
        let build_bundle = pack(&report.build_dir);
        let build_key = format!("{}/{:08x}-build.tar.bz2", request.team.replace(' ', "-"), request.job_id);
        let uploaded = self
            .store
            .put(
                BUILD_BUCKET,
                &build_key,
                build_bundle.bytes,
                [
                    ("team".to_string(), request.team.clone()),
                    (
                        "kind".to_string(),
                        match request.kind {
                            JobKind::Run => "run".to_string(),
                            JobKind::Submit => "final".to_string(),
                        },
                    ),
                    ("source".to_string(), request.upload_key.clone()),
                ],
            )
            .is_ok();
        if uploaded {
            // A presigned URL (valid 7 days) so the student downloads
            // the archive without holding file-server credentials.
            let expires = self.store.clock().now() + SimDuration::from_days(7);
            publish(
                &self.broker,
                LogFrame::BuildUrl(self.store.presign(BUILD_BUCKET, &build_key, expires)),
            );
        }
        let before_upload = service_time;
        service_time += SimDuration::from_millis(build_bundle.uncompressed_len / (100 * 1024) + 1);
        self.note_stage(
            request,
            stage::UPLOADED,
            started,
            service_time,
            (service_time - before_upload).as_secs_f64(),
        );

        let success = report.success();
        let measured = report.internal_timer_secs();
        publish(&self.broker, LogFrame::End { success });

        // ⑦ Record the submission metadata.
        self.record_submission(request, &user, measured, report.elapsed, success, log_bytes.get());
        if request.kind == JobKind::Submit && success {
            self.record_ranking(request, measured, report.elapsed, &build_key);
        }
        if let Some(t) = &self.telemetry {
            t.trace_stage_at(request.job_id, stage::GRADED, started + service_time);
            let span = t.span("worker.job").label("worker", &self.config.worker_id);
            span.finish_at(started + service_time);
        }
        self.note_outcome(request, if success { "ok" } else { "failed" }, service_time);

        JobOutcome {
            job_id: request.job_id,
            team: request.team.clone(),
            kind: request.kind,
            success,
            service_time,
            measured_secs: measured,
        }
    }

    /// Submission metadata — "execution times, run-times, and logs …
    /// useful for grading or any other coursework auditing process."
    #[allow(clippy::too_many_arguments)]
    fn record_submission(
        &self,
        request: &JobRequest,
        user: &str,
        measured_secs: Option<f64>,
        wall: SimDuration,
        success: bool,
        log_bytes: u64,
    ) {
        self.db.collection("submissions").write().insert_one(doc! {
            "job_id" => request.job_id,
            "team" => request.team.as_str(),
            "user" => user,
            "kind" => match request.kind { JobKind::Run => "run", JobKind::Submit => "submit" },
            "success" => success,
            "internal_secs" => measured_secs.map(Value::from).unwrap_or(Value::Null),
            "wall_secs" => wall.as_secs_f64(),
            "worker" => self.config.worker_id.as_str(),
            "upload_key" => request.upload_key.as_str(),
            "log_bytes" => log_bytes,
        });
    }

    /// Final-submission ranking — "the timing results are recorded onto
    /// the ranking database, and overwrites existing timing records.
    /// Both the results from the internal timer and the output from
    /// /usr/bin/time are recorded with only the internal timer visible
    /// to students."
    fn record_ranking(
        &self,
        request: &JobRequest,
        measured_secs: Option<f64>,
        wall: SimDuration,
        build_key: &str,
    ) {
        let Some(secs) = measured_secs else { return };
        self.db.collection("rankings").write().update_one(
            &doc! { "team" => request.team.as_str() },
            &doc! { "$set" => doc!{
                "runtime_secs" => secs,
                "time_cmd_secs" => wall.as_secs_f64(),
                "job_id" => request.job_id,
                "build_key" => build_key,
            } },
            true,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{ProjectDir, RaiClient, SubmitMode};
    use rai_auth::KeyGenerator;
    use rai_sim::VirtualClock;
    use rai_store::{LifecycleRule, ObjectStore};
    use std::sync::atomic::AtomicU64;
    use std::time::Duration;

    struct Rig {
        broker: Broker,
        store: ObjectStore,
        db: Database,
        registry: Arc<RwLock<CredentialRegistry>>,
        images: Arc<ImageRegistry>,
        next_id: Arc<AtomicU64>,
    }

    fn rig() -> Rig {
        let store = ObjectStore::new(VirtualClock::new());
        store
            .create_bucket(crate::client::UPLOAD_BUCKET, LifecycleRule::one_month_after_last_use())
            .unwrap();
        store
            .create_bucket(BUILD_BUCKET, LifecycleRule::Keep)
            .unwrap();
        Rig {
            broker: Broker::default(),
            store,
            db: Database::new(),
            registry: Arc::new(RwLock::new(CredentialRegistry::new())),
            images: Arc::new(ImageRegistry::course_default()),
            next_id: Arc::new(AtomicU64::new(1)),
        }
    }

    fn client_and_worker(rig: &Rig, team: &str) -> (RaiClient, Worker) {
        let creds = KeyGenerator::from_seed(99).generate(team);
        rig.registry.write().register(creds.clone());
        let client = RaiClient::new(
            creds,
            team,
            rig.broker.clone(),
            rig.store.clone(),
            rig.next_id.clone(),
        );
        let worker = Worker::new(
            WorkerConfig::default(),
            rig.broker.clone(),
            rig.store.clone(),
            rig.db.clone(),
            rig.registry.clone(),
            rig.images.clone(),
        );
        (client, worker)
    }

    #[test]
    fn end_to_end_run_submission() {
        let rig = rig();
        let (client, mut worker) = client_and_worker(&rig, "gpu-gophers");
        let pending = client
            .begin_submit(&ProjectDir::sample_cuda_project(), SubmitMode::Run)
            .unwrap();
        let outcome = worker.step().expect("worker should pick up the job");
        assert!(outcome.success);
        let receipt = pending.wait(Duration::from_millis(500)).unwrap();
        assert!(receipt.success);
        assert!(receipt.log.iter().any(|l| l.contains("Building project")));
        assert!(receipt.log.iter().any(|l| l.contains("Built target ece408")));
        assert!(receipt.build_url.is_some());
        assert!(receipt.internal_timer_secs.is_some());
        // Submission recorded in the database.
        let subs = rig.db.collection("submissions");
        assert_eq!(subs.read().len(), 1);
        // Run (not submit): no ranking entry.
        assert_eq!(rig.db.collection("rankings").read().len(), 0);
    }

    #[test]
    fn end_to_end_final_submission_records_ranking() {
        let rig = rig();
        let (client, mut worker) = client_and_worker(&rig, "gpu-gophers");
        let project = ProjectDir::sample_cuda_project().with_final_artifacts();
        let pending = client.begin_submit(&project, SubmitMode::Submit).unwrap();
        worker.step().unwrap();
        let receipt = pending.wait(Duration::from_millis(500)).unwrap();
        assert!(receipt.success, "log: {:#?}", receipt.log);
        // Enforced Listing 2: full dataset + submission_code copy.
        assert!(receipt.log.iter().any(|l| l.contains("Submitting project")));
        // ~505ms for the 470ms spec.
        let secs = receipt.internal_timer_secs.unwrap();
        assert!((0.4..0.7).contains(&secs), "got {secs}");
        let rankings = rig.db.collection("rankings");
        let row = rankings.read().find_one(&doc! { "team" => "gpu-gophers" }).unwrap();
        assert!(row.get("runtime_secs").unwrap().as_f64().unwrap() > 0.0);
        assert!(row.get("time_cmd_secs").unwrap().as_f64().is_some());
        // The /build archive includes the submitted source snapshot.
        let build_url = receipt.build_url.unwrap();
        let obj = rig.store.get_presigned(&build_url).unwrap();
        let tree = unpack(&obj.data).unwrap();
        assert!(tree.contains("submission_code/main.cu"));
    }

    #[test]
    fn ranking_overwritten_by_later_submission() {
        let rig = rig();
        let (client, mut worker) = client_and_worker(&rig, "team-a");
        for _ in 0..2 {
            let project = ProjectDir::sample_cuda_project().with_final_artifacts();
            let pending = client.begin_submit(&project, SubmitMode::Submit).unwrap();
            worker.step().unwrap();
            pending.wait(Duration::from_millis(500)).unwrap();
        }
        assert_eq!(rig.db.collection("rankings").read().len(), 1, "one row per team");
        assert_eq!(rig.db.collection("submissions").read().len(), 2);
    }

    #[test]
    fn unauthenticated_job_rejected() {
        let rig = rig();
        // Client whose creds were never registered server-side.
        let creds = KeyGenerator::from_seed(123).generate("intruder");
        let client = RaiClient::new(
            creds,
            "intruder",
            rig.broker.clone(),
            rig.store.clone(),
            rig.next_id.clone(),
        );
        let mut worker = Worker::new(
            WorkerConfig::default(),
            rig.broker.clone(),
            rig.store.clone(),
            rig.db.clone(),
            rig.registry.clone(),
            rig.images.clone(),
        );
        let pending = client
            .begin_submit(&ProjectDir::sample_cuda_project(), SubmitMode::Run)
            .unwrap();
        let outcome = worker.step().unwrap();
        assert!(!outcome.success);
        let receipt = pending.wait(Duration::from_millis(500)).unwrap();
        assert!(!receipt.success);
        assert!(receipt
            .log
            .iter()
            .any(|l| l.contains("authentication failed")));
    }

    #[test]
    fn non_whitelisted_image_rejected() {
        let rig = rig();
        let (client, mut worker) = client_and_worker(&rig, "sneaky");
        let mut project = ProjectDir::sample_cuda_project();
        project
            .tree
            .insert(
                "rai-build.yml",
                &b"rai:\n  version: 0.1\n  image: malicious/miner:latest\ncommands:\n  build:\n    - echo mining\n"[..],
            )
            .unwrap();
        let pending = client.begin_submit(&project, SubmitMode::Run).unwrap();
        let outcome = worker.step().unwrap();
        assert!(!outcome.success);
        let receipt = pending.wait(Duration::from_millis(500)).unwrap();
        assert!(receipt.log.iter().any(|l| l.contains("not whitelisted")));
    }

    #[test]
    fn build_failure_reported_to_client() {
        let rig = rig();
        let (client, mut worker) = client_and_worker(&rig, "team-broken");
        let mut project = ProjectDir::sample_cuda_project();
        project
            .tree
            .insert("main.cu", &b"RAI_SYNTAX_ERROR\n"[..])
            .unwrap();
        let pending = client.begin_submit(&project, SubmitMode::Run).unwrap();
        let outcome = worker.step().unwrap();
        assert!(!outcome.success);
        let receipt = pending.wait(Duration::from_millis(500)).unwrap();
        assert!(!receipt.success);
        assert!(receipt.log.iter().any(|l| l.contains("error:")));
    }

    #[test]
    fn image_pull_charged_once() {
        let rig = rig();
        let (client, mut worker) = client_and_worker(&rig, "team-a");
        let p1 = client
            .begin_submit(&ProjectDir::sample_cuda_project(), SubmitMode::Run)
            .unwrap();
        let first = worker.step().unwrap();
        p1.wait(Duration::from_millis(500)).unwrap();
        let p2 = client
            .begin_submit(&ProjectDir::sample_cuda_project(), SubmitMode::Run)
            .unwrap();
        let second = worker.step().unwrap();
        p2.wait(Duration::from_millis(500)).unwrap();
        // First job pays the multi-GB image pull; the second doesn't.
        assert!(first.service_time > second.service_time + SimDuration::from_secs(20));
    }

    #[test]
    fn worker_step_on_empty_queue_is_none() {
        let rig = rig();
        let (_client, mut worker) = client_and_worker(&rig, "team-a");
        assert!(worker.step().is_none());
    }

    #[test]
    fn malformed_message_dropped() {
        let rig = rig();
        let (_client, mut worker) = client_and_worker(&rig, "team-a");
        rig.broker
            .publish(routes::TASK_TOPIC, &b"totally not a job"[..])
            .unwrap();
        assert!(worker.step().is_none());
        // Message was acked, not requeued.
        let stats = rig.broker.topic_stats(routes::TASK_TOPIC).unwrap();
        assert_eq!(stats.depth, 0);
        assert_eq!(stats.in_flight, 0);
    }
}
