//! The RAI worker (paper §V "Worker Operations").
//!
//! A worker ① subscribes to the `rai` task channel, ② parses and
//! authenticates incoming job messages, ③ starts a sandboxed container
//! from the whitelisted base image (pulling it on first use), ④
//! downloads the client's project archive and mounts it at `/src` with
//! `/build` as the working directory, ⑤ executes the build commands,
//! forwarding stdout/stderr to the job's log topic, and ⑥ uploads the
//! `/build` directory to the file server, publishes its URL, destroys
//! the container and sends `End`.
//!
//! "The worker can be configured to have multiple jobs in flight" —
//! the `max_in_flight` knob; contention noise from co-scheduled jobs is
//! what made the staff switch to single-job workers for the benchmark
//! weeks (reproduced by the concurrency ablation).
//!
//! ## Failure model
//!
//! Processing is at-least-once: a job message is acked only after its
//! terminal database record lands. Transient store/db faults are
//! absorbed by a bounded [`RetryPolicy`] whose backoff accrues into the
//! job's simulated service time. An injected crash or stall
//! ([`FaultInjector::crash_decision`]) aborts processing *without*
//! acking, so the broker redelivers; side effects are idempotent (the
//! `/build` upload overwrites the same key, the submission row is an
//! upsert keyed on `job_id`), so redelivered work records exactly once.

use crate::client::BUILD_BUCKET;
use crate::delta::{DeltaUploader, PreparedUpload};
use crate::protocol::{routes, JobKind, JobRequest, LogFrame};
use crate::spec::BuildSpec;
use rai_archive::{restore, write_container, FileTree};
use rai_auth::{CredentialRegistry, CredentialSnapshot};
use rai_broker::{Broker, MessageId, Subscription};
use rai_db::{doc, Database, DbError, Value};
use rai_faults::{CrashKind, CrashPoint, FaultInjector, RetryPolicy};
use rai_sandbox::{Container, ContainerStatus, Image, ImageRegistry, ResourceLimits};
use rai_sim::{SimDuration, SimTime};
use rai_telemetry::{component, names, stage, Telemetry};
use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::Cell;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Worker configuration ("these limits can be changed using the RAI
/// worker configuration file").
#[derive(Clone, Debug)]
pub struct WorkerConfig {
    /// Identifier recorded with each submission (e.g. `p2-worker-07`).
    pub worker_id: String,
    /// Concurrent jobs accepted (1 during benchmarking weeks).
    pub max_in_flight: usize,
    /// Relative GPU throughput of this host (K80 = 1.0, K40 ≈ 0.6).
    pub gpu_speed: f64,
    /// Container resource limits.
    pub limits: ResourceLimits,
    /// Seed for this worker's contention-noise RNG.
    pub noise_seed: u64,
    /// Retry policy wrapping worker↔store and worker↔db operations.
    pub retry: RetryPolicy,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        WorkerConfig {
            worker_id: "worker-0".to_string(),
            max_in_flight: 1,
            gpu_speed: 1.0,
            limits: ResourceLimits::default(),
            noise_seed: 0,
            retry: RetryPolicy::default(),
        }
    }
}

/// What processing one job produced (consumed by the discrete-event
/// driver to advance virtual time).
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// Job id.
    pub job_id: u64,
    /// Team that submitted.
    pub team: String,
    /// Run or final submission.
    pub kind: JobKind,
    /// Whether the build+run succeeded.
    pub success: bool,
    /// Total simulated time the job occupied the worker (pull +
    /// transfers + container execution + retry backoff).
    pub service_time: SimDuration,
    /// The measured program runtime (internal timer), if a program ran.
    pub measured_secs: Option<f64>,
}

/// An injected mid-job failure: the worker died (or froze) while
/// holding an unacked message.
#[derive(Clone, Debug)]
pub struct CrashReport {
    /// Job being processed when the fault hit.
    pub job_id: u64,
    /// Team that submitted it.
    pub team: String,
    /// Pipeline point where the fault landed.
    pub point: CrashPoint,
    /// Death vs freeze (a freeze holds its claim until the broker's
    /// message timeout reclaims it).
    pub kind: CrashKind,
    /// Simulated time burnt before the fault hit (the driver still
    /// advances the clock by this much).
    pub wasted: SimDuration,
}

/// What one scheduling step of the worker produced.
#[derive(Clone, Debug)]
pub enum StepEvent {
    /// Queue empty or at the in-flight limit.
    Idle,
    /// A job ran to a terminal state and its message was acked.
    Done(JobOutcome),
    /// The worker crashed or stalled mid-job; the message was *not*
    /// acked. After a crash, call [`Worker::crash_recover`]; after a
    /// stall, the claim times out via `Broker::reclaim_expired`.
    Crashed(CrashReport),
}

/// Clamp a broker delivery-attempt number into the span tree's `u32`
/// attempt tag (attempt 0 is reserved for the client submit subtree).
fn attempt_no(attempt: u64) -> u32 {
    u32::try_from(attempt.max(1)).unwrap_or(u32::MAX)
}

/// A task message popped from the broker but not yet claimed: the
/// output of the serial, order-defining half of the claim phase
/// (DESIGN.md §17).
///
/// The pop half — `try_recv_batch`, message decode, malformed-ack,
/// in-flight accounting — is what fixes the round's job composition
/// and claim order, so it always runs serially in worker order. The
/// rest of the claim (auth, spec parse, image pull, project fetch) is
/// per-worker work against thread-safe services, which is what lets
/// [`Worker::claim_popped`] run on concurrent claim lanes.
pub struct PoppedTask {
    msg_id: MessageId,
    request: JobRequest,
    attempt: u64,
    co_scheduled: usize,
}

impl PoppedTask {
    /// Id of the popped job (claim lanes key on its log topic).
    pub fn job_id(&self) -> u64 {
        self.request.job_id
    }
}

/// A job claimed from the broker with its claim-phase work done.
///
/// The claim phase (DESIGN.md §15) runs everything that touches shared
/// services or per-worker state — message pop, parse, auth, build-spec
/// parse, image whitelist + pull accounting, and the project fetch from
/// the store — so it must run serially on the event loop. What remains
/// is pure: a `ClaimedJob` owns every input the build+run needs
/// (project tree, image, limits, dilation, pre-drawn crash decisions),
/// which is why [`Worker::execute`] can take it by value onto a pool
/// task without touching the worker at all.
///
/// The one sanctioned relaxation is the claim-lane scheduler
/// (DESIGN.md §17): the *pop* half stays serial, while the claim tail
/// ([`Worker::claim_popped`]) may run on concurrent lanes when no
/// fault injector is attached, because each lane owns its workers
/// exclusively and every shared service it touches is thread-safe and
/// order-insensitive there.
pub struct ClaimedJob {
    /// Broker message backing this claim (`None` when driven directly
    /// via [`Worker::run_job`], which manages queueing itself).
    msg_id: Option<MessageId>,
    request: JobRequest,
    attempt: u64,
    /// Claim-time clock: every stage span of this attempt is stamped
    /// `started + accumulated service time`.
    started: SimTime,
    /// Service time accrued during the claim phase (pull + fetch
    /// backoff + transfer).
    service_time: SimDuration,
    /// Log-frame bytes published during the claim phase.
    log_bytes: u64,
    plan: ClaimPlan,
}

impl ClaimedJob {
    /// Id of the claimed job.
    pub fn job_id(&self) -> u64 {
        self.request.job_id
    }
}

/// How the claim phase resolved.
// One plan exists per in-flight claim (bounded by the fleet size), so
// the `Run` variant's size costs nothing worth an indirection.
#[allow(clippy::large_enum_variant)]
enum ClaimPlan {
    /// Rejected before a container could start (auth, spec, image, or
    /// fetch failure); commit records the terminal row and acks.
    Reject {
        user: String,
        outcome: &'static str,
    },
    /// An injected crash/stall landed during the claim phase.
    Crashed { kind: CrashKind, point: CrashPoint },
    /// Everything the sandbox run needs, self-contained.
    Run {
        user: String,
        spec: BuildSpec,
        image: Image,
        project: FileTree,
        limits: ResourceLimits,
        gpu_speed: f64,
        dilation: f64,
        /// Crash decisions are pure functions of (seed, job, attempt,
        /// point), so they are drawn at claim time; the execute phase
        /// then needs no access to the injector.
        crash_build: Option<CrashKind>,
        crash_upload: Option<CrashKind>,
    },
}

/// A lifecycle span observed on a pool task, replayed through
/// telemetry at commit so trace insertion stays in claim order.
struct StagedSpan {
    stage: &'static str,
    component: &'static str,
    from: SimDuration,
    to: SimDuration,
}

/// Sandbox facts recorded once the commit phase reaches telemetry.
struct RunFacts {
    elapsed: SimDuration,
    limit_killed: bool,
}

/// A claim after its execute phase: the container ran (or the claim
/// carried a rejection/crash through untouched) and every side effect
/// is buffered, waiting for [`Worker::commit`] to apply it in claim
/// order.
pub struct ExecutedJob {
    msg_id: Option<MessageId>,
    request: JobRequest,
    attempt: u64,
    started: SimTime,
    service_time: SimDuration,
    log_bytes: u64,
    /// Stdout/stderr frames from the container, unpublished: log
    /// publishing is faultable, so frames must hit the broker in
    /// deterministic claim order.
    frames: Vec<LogFrame>,
    /// BUILT/RAN spans observed on the pool task.
    spans: Vec<StagedSpan>,
    run_facts: Option<RunFacts>,
    outcome: ExecOutcome,
}

impl ExecutedJob {
    /// Id of the executed job.
    pub fn job_id(&self) -> u64 {
        self.request.job_id
    }

    /// The submitting team.
    pub fn team(&self) -> &str {
        &self.request.team
    }

    /// Chunk digests the commit phase will try to upload (empty for
    /// rejected or crashed jobs). Lane schedulers use these to detect
    /// same-round dedup overlap — see
    /// [`crate::delta::PreparedUpload::chunk_digests`].
    pub fn upload_digests(&self) -> Vec<u64> {
        match &self.outcome {
            ExecOutcome::Built { prepared, .. } => prepared.chunk_digests().collect(),
            _ => Vec::new(),
        }
    }

    /// Whether the commit phase will write a leaderboard row. Two
    /// ranking upserts for the same team are last-writer-wins, so a
    /// lane scheduler must not let them race.
    pub fn writes_ranking(&self) -> bool {
        matches!(
            &self.outcome,
            ExecOutcome::Built { success: true, measured: Some(_), .. }
        ) && self.request.kind == JobKind::Submit
    }
}

/// How the execute phase resolved.
enum ExecOutcome {
    Reject {
        user: String,
        outcome: &'static str,
    },
    Crashed { kind: CrashKind, point: CrashPoint },
    Built {
        user: String,
        prepared: PreparedUpload,
        container_len: u64,
        build_key: String,
        success: bool,
        measured: Option<f64>,
        elapsed: SimDuration,
    },
}

/// The worker agent.
pub struct Worker {
    config: WorkerConfig,
    broker: Broker,
    store: rai_store::ObjectStore,
    db: Database,
    registry: Arc<RwLock<CredentialRegistry>>,
    images: Arc<ImageRegistry>,
    subscription: Subscription,
    cached_images: HashSet<String>,
    active_jobs: usize,
    rng: StdRng,
    telemetry: Option<Telemetry>,
    injector: Option<FaultInjector>,
    /// Delta uploader for `/build` outputs; its digest cache persists
    /// across jobs, so near-identical build trees (the overwhelmingly
    /// common case for resubmissions) upload almost nothing.
    delta: DeltaUploader,
    /// Read-only credential snapshot for claim-phase auth. Steady
    /// state, authentication costs one atomic generation load and zero
    /// registry locks; the snapshot rebuilds (one registry read lock)
    /// only after a register/revoke bumps the generation.
    auth_snapshot: Option<CredentialSnapshot>,
    /// The registry's mutation counter, shared without a lock.
    auth_generation: Arc<AtomicU64>,
}

impl Worker {
    /// Create a worker and subscribe it to `rai/tasks`.
    pub fn new(
        config: WorkerConfig,
        broker: Broker,
        store: rai_store::ObjectStore,
        db: Database,
        registry: Arc<RwLock<CredentialRegistry>>,
        images: Arc<ImageRegistry>,
    ) -> Self {
        let subscription = broker.subscribe(routes::TASK_TOPIC, routes::TASK_CHANNEL);
        let rng = StdRng::seed_from_u64(config.noise_seed);
        let auth_generation = registry.read().generation_handle();
        Worker {
            config,
            broker,
            store,
            db,
            registry,
            images,
            subscription,
            cached_images: HashSet::new(),
            active_jobs: 0,
            rng,
            telemetry: None,
            injector: None,
            delta: DeltaUploader::new(),
            auth_snapshot: None,
            auth_generation,
        }
    }

    /// Attach a telemetry handle; stage timings, job traces, and the
    /// active-jobs gauge are recorded through it from then on.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = Some(telemetry);
    }

    /// Attach a fault injector; crash/stall decisions consult it per
    /// job attempt from then on.
    pub fn set_fault_injector(&mut self, injector: FaultInjector) {
        self.injector = Some(injector);
    }

    /// Route this worker's `/build` chunking + digesting onto `exec`.
    /// Call before traffic flows: the replacement uploader starts with
    /// an empty digest cache (as at worker boot), and uploads are
    /// byte-identical at any parallelism (DESIGN.md §12).
    pub fn set_executor(&mut self, exec: rai_exec::Executor) {
        self.delta = DeltaUploader::with_executor(exec);
    }

    /// This worker's id.
    pub fn id(&self) -> &str {
        &self.config.worker_id
    }

    /// Jobs currently being executed (used by the in-flight constraint).
    pub fn active_jobs(&self) -> usize {
        self.active_jobs
    }

    /// Contention-noise multiplier for the current load: a single job
    /// measures cleanly; co-scheduled jobs add up to ~12% noise each
    /// (PCIe/host contention on a shared K80 host).
    fn contention_dilation(&mut self, co_scheduled: usize) -> f64 {
        if co_scheduled == 0 {
            1.0
        } else {
            let per_job: f64 = self.rng.gen_range(0.02..0.12);
            1.0 + per_job * co_scheduled as f64
        }
    }

    /// Pop and fully process one task message. Returns `None` when the
    /// queue is empty, this worker is at its in-flight limit, or the
    /// job crashed mid-flight (in which case the worker restarts
    /// immediately and the message redelivers). Fault-aware drivers
    /// should use [`Worker::try_step`] instead.
    pub fn step(&mut self) -> Option<JobOutcome> {
        match self.try_step() {
            StepEvent::Idle => None,
            StepEvent::Done(outcome) => Some(outcome),
            StepEvent::Crashed(_) => {
                self.crash_recover();
                None
            }
        }
    }

    /// Pop one task message and run it, reporting crashes instead of
    /// hiding them. A crashed job's message is left unacked: a `Crash`
    /// releases it when [`Worker::crash_recover`] drops the old
    /// subscription; a `Stall` holds it until the broker's message
    /// timeout (`reclaim_expired`) fires.
    ///
    /// Equivalent to claim → execute → commit back to back; batch
    /// drivers call the three phases separately so independent jobs'
    /// execute phases overlap on a pool (DESIGN.md §15).
    pub fn try_step(&mut self) -> StepEvent {
        match self.claim() {
            None => StepEvent::Idle,
            Some(claimed) => {
                let executed = Worker::execute(claimed);
                self.commit(executed)
            }
        }
    }

    /// Claim one task message from the broker and run its claim phase.
    /// Returns `None` when the queue is empty or this worker is at its
    /// in-flight limit. The claim counts against `active_jobs` until
    /// [`Worker::commit`] (or [`Worker::crash_recover`]) releases it.
    pub fn claim(&mut self) -> Option<ClaimedJob> {
        self.pop_task().map(|p| self.claim_popped(p))
    }

    /// The serial half of [`Worker::claim`]: pop one task message and
    /// run its order-defining bookkeeping (decode, malformed-ack,
    /// redelivery counting, in-flight accounting) without touching
    /// auth, images, or the store. Returns `None` when the queue is
    /// empty or this worker is at its in-flight limit.
    ///
    /// Claim-lane drivers (DESIGN.md §17) pop every worker serially —
    /// fixing the round's composition and claim order — then fan the
    /// popped tasks across lanes for [`Worker::claim_popped`].
    pub fn pop_task(&mut self) -> Option<PoppedTask> {
        loop {
            if self.active_jobs >= self.config.max_in_flight {
                return None;
            }
            let msg = self.subscription.try_recv_batch(1).pop()?;
            let Some(request) = JobRequest::decode(&msg.body_str()) else {
                if let Some(t) = &self.telemetry {
                    t.counter(names::JOBS_MALFORMED_TOTAL, &[]).inc();
                }
                rai_telemetry::log!(
                    warn,
                    "worker {}: dropping malformed task message {} ({} bytes)",
                    self.config.worker_id,
                    msg.id,
                    msg.body.len()
                );
                // Batch-ack so a settled topic leaves the broker's
                // dirty list in the same call (one-pass cleanup).
                self.subscription.ack_batch(&[msg.id]);
                continue;
            };
            let attempt = u64::from(msg.attempts.max(1));
            if attempt > 1 {
                if let Some(t) = &self.telemetry {
                    t.counter(names::REDELIVERIES_TOTAL, &[]).inc();
                }
            }
            self.active_jobs += 1;
            self.set_active_gauge();
            let co_scheduled = self.active_jobs.saturating_sub(1);
            return Some(PoppedTask {
                msg_id: msg.id,
                request,
                attempt,
                co_scheduled,
            });
        }
    }

    /// The claim tail for an already-popped task: auth, build-spec
    /// parse, image resolve/pull, and the project fetch. Everything it
    /// touches is either worker-exclusive state or a thread-safe
    /// shared service, so lanes holding distinct `&mut Worker`s may
    /// run it concurrently (DESIGN.md §17); results are identical to
    /// the serial schedule because each claim's inputs are independent
    /// of its neighbours'.
    pub fn claim_popped(&mut self, popped: PoppedTask) -> ClaimedJob {
        let PoppedTask { msg_id, request, attempt, co_scheduled } = popped;
        self.claim_request(&request, attempt, co_scheduled, Some(msg_id))
    }

    /// Claim up to `max` task messages in one broker round trip
    /// (`Subscription::try_recv_batch`), bounded by the remaining
    /// in-flight budget, and run each claim phase in queue order.
    ///
    /// Malformed messages are dropped (batch-acked) — they can never
    /// become valid — and do not count against `max`. Claims beyond the
    /// first are flagged co-scheduled, reproducing the contention noise
    /// the paper saw on multi-job workers; the deterministic drivers
    /// keep `max_in_flight` at 1, so their claims always measure clean.
    pub fn claim_batch(&mut self, max: usize) -> Vec<ClaimedJob> {
        let mut claims = Vec::new();
        while claims.len() < max {
            let Some(popped) = self.pop_task() else { break };
            claims.push(self.claim_popped(popped));
        }
        claims
    }

    /// Restart after a crash: a fresh subscription claims a new
    /// subscriber id, and dropping the old one releases its unacked
    /// claims back to the queue (or to the dead-letter topic once over
    /// the broker's attempt cap).
    pub fn crash_recover(&mut self) {
        let fresh = self.broker.subscribe(routes::TASK_TOPIC, routes::TASK_CHANNEL);
        drop(std::mem::replace(&mut self.subscription, fresh));
        self.active_jobs = 0;
        self.set_active_gauge();
    }

    fn set_active_gauge(&self) {
        if let Some(t) = &self.telemetry {
            t.gauge(names::WORKER_ACTIVE_JOBS, &[("worker", &self.config.worker_id)])
                .set(self.active_jobs as f64);
        }
    }

    /// Count a finished job and record its end-to-end service time.
    fn note_outcome(&self, request: &JobRequest, outcome: &str, service_time: SimDuration) {
        if let Some(t) = &self.telemetry {
            let kind = match request.kind {
                JobKind::Run => "run",
                JobKind::Submit => "submit",
            };
            t.counter(names::JOBS_TOTAL, &[("kind", kind), ("outcome", outcome)]).inc();
            t.histogram(names::JOB_TOTAL_SECONDS, &[], 0.0, 30.0, 40)
                .record(service_time.as_secs_f64());
        }
    }

    /// Count the extra attempts a retried operation burnt.
    fn note_retries(&self, op: &'static str, attempts: u32) {
        if attempts > 1 {
            if let Some(t) = &self.telemetry {
                t.counter(names::RETRIES_TOTAL, &[("op", op)])
                    .add(u64::from(attempts - 1));
            }
        }
    }

    /// Record a lifecycle stage as a causal span `[started + from,
    /// started + to]` under this delivery attempt's subtree, and its
    /// duration in the per-stage histogram. A zero-width span
    /// (`from == to`) marks an instantaneous lifecycle event.
    #[allow(clippy::too_many_arguments)]
    fn note_stage(
        &self,
        request: &JobRequest,
        attempt: u32,
        stage_name: &'static str,
        comp: &'static str,
        started: rai_sim::SimTime,
        from: SimDuration,
        to: SimDuration,
    ) {
        if let Some(t) = &self.telemetry {
            t.trace_span(request.job_id, attempt, stage_name, comp, started + from, started + to);
            t.histogram(names::JOB_STAGE_SECONDS, &[("stage", stage_name)], 0.0, 5.0, 24)
                .record((to.saturating_sub(from)).as_secs_f64());
        }
    }

    /// Seed for one operation's retry jitter, stable across runs.
    fn op_seed(&self, job_id: u64, attempt: u64, op: u64) -> u64 {
        self.config.noise_seed
            ^ job_id.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ attempt.rotate_left(32)
            ^ op.wrapping_mul(0xD1B5_4A32_D192_ED03)
    }

    /// The injector's crash/stall decision for `point`, if any. Pure in
    /// (seed, job, attempt, point) — drawing it early at claim time
    /// yields the same decision the sequential pipeline drew in place.
    fn crash_decision_at(
        &self,
        request: &JobRequest,
        attempt: u64,
        point: CrashPoint,
    ) -> Option<CrashKind> {
        self.injector
            .as_ref()
            .and_then(|inj| inj.crash_decision(request.job_id, attempt, point))
    }

    /// Consult the injector (if any) for a crash/stall at `point`.
    fn crash_check(
        &self,
        request: &JobRequest,
        attempt: u64,
        point: CrashPoint,
        wasted: SimDuration,
    ) -> Result<(), CrashReport> {
        let Some(inj) = &self.injector else { return Ok(()) };
        match inj.crash_decision(request.job_id, attempt, point) {
            Some(kind) => Err(CrashReport {
                job_id: request.job_id,
                team: request.team.clone(),
                point,
                kind,
                wasted,
            }),
            None => Ok(()),
        }
    }

    /// The crash report for a database record that would not persist
    /// even after retries: the worker gives up without acking so the
    /// message redelivers to a (hopefully healthier) attempt.
    fn db_crash(&self, request: &JobRequest, wasted: SimDuration) -> CrashReport {
        CrashReport {
            job_id: request.job_id,
            team: request.team.clone(),
            point: CrashPoint::Record,
            kind: CrashKind::Crash,
            wasted,
        }
    }

    /// Process an already-accepted request (also used directly by the
    /// discrete-event driver, which manages queueing itself).
    pub fn process(&mut self, request: &JobRequest) -> JobOutcome {
        let co = self.active_jobs.saturating_sub(1);
        self.process_with_coscheduled(request, co)
    }

    /// Process a request while `co_scheduled` other jobs share this
    /// host — the lever behind the paper's "the worker accepts only one
    /// task at a time – this makes the performance timing more accurate
    /// and repeatable" (measured by the concurrency ablation). Crashes
    /// are folded into a failed outcome; fault-aware drivers use
    /// [`Worker::run_job`].
    pub fn process_with_coscheduled(&mut self, request: &JobRequest, co_scheduled: usize) -> JobOutcome {
        match self.run_job(request, 1, co_scheduled) {
            Ok(outcome) => outcome,
            Err(report) => JobOutcome {
                job_id: report.job_id,
                team: report.team,
                kind: request.kind,
                success: false,
                service_time: report.wasted,
                measured_secs: None,
            },
        }
    }

    /// Run delivery `attempt` of a request end to end. `Ok` means the
    /// job reached a terminal state *and* its database record
    /// persisted; `Err` means an injected crash/stall (or a db record
    /// that outlasted its retries) aborted processing and the message
    /// must not be acked.
    pub fn run_job(
        &mut self,
        request: &JobRequest,
        attempt: u64,
        co_scheduled: usize,
    ) -> Result<JobOutcome, CrashReport> {
        let claimed = self.claim_request(request, attempt, co_scheduled, None);
        let executed = Worker::execute(claimed);
        self.commit_job(executed)
    }

    /// Run the claim phase of a request: everything up to (and
    /// including) the project fetch, serially against shared services.
    fn claim_request(
        &mut self,
        request: &JobRequest,
        attempt: u64,
        co_scheduled: usize,
        msg_id: Option<MessageId>,
    ) -> ClaimedJob {
        let log_topic = routes::log_topic(request.job_id);
        let attempt_no = attempt_no(attempt);
        // All stage timestamps are `started + accumulated service time`:
        // the driver advances the shared clock only after the batch
        // commits, so stamping the logical time keeps per-job traces
        // monotone (and identical at every pool width).
        let started = self.store.clock().now();
        if let Some(t) = &self.telemetry {
            // Delivery from the broker opens this attempt's subtree.
            t.trace_span(request.job_id, attempt_no, stage::DEQUEUED, component::BROKER, started, started);
        }
        // Bytes of log traffic this job generates (the paper reports
        // 25 GB of logs and metadata across the semester).
        let log_bytes = Cell::new(0u64);
        let publish = |broker: &Broker, frame: LogFrame| {
            let encoded = frame.encode();
            log_bytes.set(log_bytes.get() + encoded.len() as u64);
            // Log publishing is best-effort: a full log topic must not
            // take the worker down.
            let _ = broker.publish_ephemeral(&log_topic, encoded);
        };
        let reject = |broker: &Broker, reason: String| {
            publish(broker, LogFrame::Err(reason));
            publish(broker, LogFrame::End { success: false });
        };

        publish(
            &self.broker,
            LogFrame::Status(format!("job accepted by {}", self.config.worker_id)),
        );
        let mut service_time = SimDuration::ZERO;
        macro_rules! claimed {
            ($plan:expr) => {
                ClaimedJob {
                    msg_id,
                    request: request.clone(),
                    attempt,
                    started,
                    service_time,
                    log_bytes: log_bytes.get(),
                    plan: $plan,
                }
            };
        }

        // ② Check the credentials — against the worker's read-only
        // snapshot, not the registry lock. One atomic load detects
        // staleness; the snapshot rebuilds only after a register or
        // revoke, so steady-state claims (and every concurrent claim
        // lane) authenticate without contending on the registry at
        // all. `CredentialSnapshot::authenticate` has exactly the
        // registry's semantics, so outcomes are byte-identical.
        let current_generation = self.auth_generation.load(Ordering::Acquire);
        if self.auth_snapshot.as_ref().map(CredentialSnapshot::generation)
            != Some(current_generation)
        {
            self.auth_snapshot = Some(self.registry.read().snapshot());
        }
        let auth = self
            .auth_snapshot
            .as_ref()
            .expect("snapshot just refreshed")
            .authenticate(
                &request.access_key,
                &request.signing_payload(),
                &request.signature,
            )
            .map(str::to_string);
        let user = match auth {
            Ok(u) => u,
            Err(e) => {
                reject(&self.broker, format!("authentication failed: {e}"));
                // The recorded row carries the rejection in place of a
                // user name — there is no authenticated user to name.
                return claimed!(ClaimPlan::Reject {
                    user: "auth-rejected".to_string(),
                    outcome: "auth-rejected",
                });
            }
        };

        // Parse the build file embedded in the job message.
        let spec = match BuildSpec::parse(&request.build_yml) {
            Ok(s) => s,
            Err(e) => {
                reject(&self.broker, e.to_string());
                return claimed!(ClaimPlan::Reject { user, outcome: "bad-spec" });
            }
        };

        // ③ Resolve the image (whitelist) and pull if not cached.
        let image = match self.images.resolve(&spec.image) {
            Ok(img) => img.clone(),
            Err(e) => {
                reject(&self.broker, e.to_string());
                return claimed!(ClaimPlan::Reject { user, outcome: "image-rejected" });
            }
        };
        if !self.cached_images.contains(&image.name) {
            publish(
                &self.broker,
                LogFrame::Status(format!("pulling image {}...", image.name)),
            );
            let before_pull = service_time;
            service_time += self.images.pull_latency(&image.name);
            self.cached_images.insert(image.name.clone());
            self.note_stage(
                request,
                attempt_no,
                stage::PULLED,
                component::SANDBOX,
                started,
                before_pull,
                service_time,
            );
            if let Some(t) = &self.telemetry {
                t.counter(names::SANDBOX_IMAGE_PULLS_TOTAL, &[]).inc();
            }
        }

        // ④ Download the project archive and mount it.
        if let Some(kind) = self.crash_decision_at(request, attempt, CrashPoint::Fetch) {
            return claimed!(ClaimPlan::Crashed { kind, point: CrashPoint::Fetch });
        }
        let before_fetch = service_time;
        let fetched = self.config.retry.run(
            self.op_seed(request.job_id, attempt, 1),
            |_| self.store.get(&request.upload_bucket, &request.upload_key),
        );
        self.note_retries("store_get", fetched.attempts);
        service_time += fetched.backoff;
        let project = match fetched
            .result
            .map_err(|e| e.to_string())
            .and_then(|obj| restore(&obj.data).map_err(|e| e.to_string()))
        {
            Ok(tree) => tree,
            Err(e) => {
                reject(&self.broker, format!("failed to fetch project: {e}"));
                return claimed!(ClaimPlan::Reject { user, outcome: "fetch-failed" });
            }
        };
        // Transfer latency: 100 MB/s from the file server. The span
        // covers backoff + transfer — everything the store fetch cost.
        service_time += SimDuration::from_millis(project.total_size() / (100 * 1024) + 1);
        self.note_stage(
            request,
            attempt_no,
            stage::FETCHED,
            component::STORE,
            started,
            before_fetch,
            service_time,
        );

        let mut limits = self.config.limits;
        if let Some(gpus) = spec.gpus {
            // The spec may *lower* the GPU count (future machine
            // requirements); it cannot exceed what the worker offers.
            limits.gpus = limits.gpus.min(gpus);
        }
        let dilation = self.contention_dilation(co_scheduled);
        let crash_build = self.crash_decision_at(request, attempt, CrashPoint::Build);
        let crash_upload = self.crash_decision_at(request, attempt, CrashPoint::Upload);
        claimed!(ClaimPlan::Run {
            user,
            spec,
            image,
            project,
            limits,
            gpu_speed: self.config.gpu_speed,
            dilation,
            crash_build,
            crash_upload,
        })
    }

    /// Run a claimed job's execute phase: the sandboxed build + run
    /// and upload preparation (⑤ and the pure half of ⑥).
    ///
    /// This is an associated function on purpose — it consumes the
    /// claim by value and touches neither the worker nor any shared
    /// service, so independent claims execute concurrently on pool
    /// tasks (`rai_exec::Executor::run_jobs`) with results that are
    /// byte-identical at any width. Every side effect (log frames,
    /// stage spans, the upload) is buffered into the returned
    /// [`ExecutedJob`] for [`Worker::commit`] to apply in claim order.
    pub fn execute(claimed: ClaimedJob) -> ExecutedJob {
        let ClaimedJob {
            msg_id,
            request,
            attempt,
            started,
            mut service_time,
            log_bytes,
            plan,
        } = claimed;
        let mut frames = Vec::new();
        let mut spans = Vec::new();
        let mut run_facts = None;
        let outcome = match plan {
            ClaimPlan::Reject { user, outcome } => ExecOutcome::Reject { user, outcome },
            ClaimPlan::Crashed { kind, point } => ExecOutcome::Crashed { kind, point },
            ClaimPlan::Run {
                user,
                spec,
                image,
                project,
                limits,
                gpu_speed,
                dilation,
                crash_build,
                crash_upload,
            } => 'run: {
                if let Some(kind) = crash_build {
                    break 'run ExecOutcome::Crashed { kind, point: CrashPoint::Build };
                }
                let mut container = Container::create(&image, limits);
                container.mount("/src", &project);
                container.set_gpu_speed(gpu_speed);
                container.set_time_dilation(dilation);

                // ⑤ Execute the build commands, buffering output.
                container.run_script(spec.build.iter().map(String::as_str));
                let report = container.destroy();
                for line in &report.log {
                    frames.push(match line.stream {
                        rai_sandbox::LogStream::Stdout => LogFrame::Out(line.text.clone()),
                        rai_sandbox::LogStream::Stderr => LogFrame::Err(line.text.clone()),
                    });
                }
                spans.push(StagedSpan {
                    stage: stage::BUILT,
                    component: component::SANDBOX,
                    from: service_time,
                    to: service_time,
                });
                let before_run = service_time;
                service_time += report.elapsed;
                spans.push(StagedSpan {
                    stage: stage::RAN,
                    component: component::SANDBOX,
                    from: before_run,
                    to: service_time,
                });
                run_facts = Some(RunFacts {
                    elapsed: report.elapsed,
                    limit_killed: matches!(report.status, ContainerStatus::Killed(_)),
                });

                if let Some(kind) = crash_upload {
                    break 'run ExecOutcome::Crashed { kind, point: CrashPoint::Upload };
                }
                // The pure half of ⑥: archive /build and chunk it.
                // The store conversation happens at commit.
                let build_container = write_container(&report.build_dir);
                let build_key = format!(
                    "{}/{:08x}-build.tar.bz2",
                    request.team.replace(' ', "-"),
                    request.job_id
                );
                ExecOutcome::Built {
                    user,
                    container_len: build_container.len() as u64,
                    prepared: PreparedUpload::prepare(&build_container),
                    build_key,
                    success: report.success(),
                    measured: report.internal_timer_secs(),
                    elapsed: report.elapsed,
                }
            }
        };
        ExecutedJob {
            msg_id,
            request,
            attempt,
            started,
            service_time,
            log_bytes,
            frames,
            spans,
            run_facts,
            outcome,
        }
    }

    /// Apply an executed job's buffered effects and seal it: flush log
    /// frames, replay spans, commit the upload and database records,
    /// then ack the message (terminal) or report the crash (unacked).
    /// Batch schedulers must call this in claim order — it is the only
    /// phase that talks to broker/store/db, so commit order *is* the
    /// fault-draw order. The one sanctioned exception is the sharded
    /// commit-lane scheduler (DESIGN.md §16): with no fault injector
    /// attached, commits whose jobs share no chunk digest and no
    /// ranking team commute, so lanes keyed by `job_id % lanes` may
    /// run concurrently while each lane preserves claim order.
    pub fn commit(&mut self, executed: ExecutedJob) -> StepEvent {
        let msg_id = executed.msg_id;
        let result = self.commit_job(executed);
        if msg_id.is_some() {
            self.active_jobs = self.active_jobs.saturating_sub(1);
            self.set_active_gauge();
        }
        match result {
            Ok(outcome) => {
                if let Some(id) = msg_id {
                    self.subscription.ack(id);
                }
                StepEvent::Done(outcome)
            }
            Err(report) => {
                if msg_id.is_some() {
                    if let Some(t) = &self.telemetry {
                        t.counter(names::WORKER_CRASHES_TOTAL, &[("kind", report.kind.label())])
                            .inc();
                    }
                }
                StepEvent::Crashed(report)
            }
        }
    }

    /// Commit an executed job without touching message or in-flight
    /// accounting (shared by [`Worker::commit`] and [`Worker::run_job`]).
    fn commit_job(&mut self, executed: ExecutedJob) -> Result<JobOutcome, CrashReport> {
        let attempt = executed.attempt;
        let started = executed.started;
        let job_id = executed.request.job_id;
        let result = self.commit_apply(executed);
        if let Err(report) = &result {
            // Close the attempt's subtree with a zero-width crash
            // marker so the trace shows where the wasted work ended —
            // the next delivery opens a sibling attempt subtree.
            if let Some(t) = &self.telemetry {
                let at = started + report.wasted;
                t.trace_span(job_id, attempt_no(attempt), stage::CRASHED, component::FAULT, at, at);
            }
        }
        result
    }

    fn commit_apply(&mut self, executed: ExecutedJob) -> Result<JobOutcome, CrashReport> {
        let ExecutedJob {
            msg_id: _,
            request,
            attempt,
            started,
            mut service_time,
            log_bytes,
            frames,
            spans,
            run_facts,
            outcome,
        } = executed;
        let attempt_no = attempt_no(attempt);
        let log_topic = routes::log_topic(request.job_id);
        let log_bytes = Cell::new(log_bytes);
        let publish = |broker: &Broker, frame: LogFrame| {
            let encoded = frame.encode();
            log_bytes.set(log_bytes.get() + encoded.len() as u64);
            let _ = broker.publish_ephemeral(&log_topic, encoded);
        };
        // Flush the execute phase's buffered effects first, preserving
        // the per-job order of the sequential pipeline: stdout/stderr
        // frames (publishing is faultable — the draw stream must not
        // depend on pool interleaving), then spans, then sandbox
        // metrics.
        for frame in frames {
            publish(&self.broker, frame);
        }
        for s in &spans {
            self.note_stage(&request, attempt_no, s.stage, s.component, started, s.from, s.to);
        }
        if let Some(facts) = &run_facts {
            if let Some(t) = &self.telemetry {
                t.histogram(names::SANDBOX_RUN_SECONDS, &[], 0.0, 5.0, 24)
                    .record(facts.elapsed.as_secs_f64());
                if facts.limit_killed {
                    t.counter(names::SANDBOX_LIMIT_KILLS_TOTAL, &[]).inc();
                }
            }
        }

        match outcome {
            ExecOutcome::Crashed { kind, point } => Err(CrashReport {
                job_id: request.job_id,
                team: request.team.clone(),
                point,
                kind,
                wasted: service_time,
            }),
            ExecOutcome::Reject { user, outcome } => {
                let backoff = self
                    .record_submission(&request, &user, None, SimDuration::ZERO, false, log_bytes.get())
                    .map_err(|_| self.db_crash(&request, service_time))?;
                let total = service_time + backoff;
                self.note_stage(&request, attempt_no, stage::RECORDED, component::DB, started, service_time, total);
                self.note_outcome(&request, outcome, total);
                Ok(JobOutcome {
                    job_id: request.job_id,
                    team: request.team.clone(),
                    kind: request.kind,
                    success: false,
                    service_time: total,
                    measured_secs: None,
                })
            }
            ExecOutcome::Built {
                user,
                prepared,
                container_len,
                build_key,
                success,
                measured,
                elapsed,
            } => {
                // ⑥ Commit the upload and send the URL + End. The key
                // is a pure function of (team, job_id): a redelivered
                // attempt overwrites its own previous upload instead of
                // duplicating it.
                let before_upload = service_time;
                let upload = self.config.retry.run(
                    self.op_seed(request.job_id, attempt, 2),
                    |_| {
                        self.delta.upload_prepared(
                            &self.store,
                            BUILD_BUCKET,
                            &build_key,
                            &prepared,
                            [
                                ("team".to_string(), request.team.clone()),
                                (
                                    "kind".to_string(),
                                    match request.kind {
                                        JobKind::Run => "run".to_string(),
                                        JobKind::Submit => "final".to_string(),
                                    },
                                ),
                                ("source".to_string(), request.upload_key.clone()),
                            ],
                        )
                    },
                );
                self.note_retries("store_put", upload.attempts);
                service_time += upload.backoff;
                if upload.result.is_ok() {
                    // A presigned URL (valid 7 days) so the student
                    // downloads the archive without holding file-server
                    // credentials.
                    let expires = self.store.clock().now() + SimDuration::from_days(7);
                    publish(
                        &self.broker,
                        LogFrame::BuildUrl(self.store.presign(BUILD_BUCKET, &build_key, expires)),
                    );
                }
                // Transfer time is charged on the bytes that actually
                // crossed the wire: a delta upload of a near-identical
                // build tree is a few manifest-sized writes, not a
                // whole re-archive. The span covers backoff + transfer,
                // mirroring the fetch span.
                let wire_bytes = match &upload.result {
                    Ok(receipt) => receipt.wire_bytes(),
                    Err(_) => container_len,
                };
                service_time += SimDuration::from_millis(wire_bytes / (100 * 1024) + 1);
                self.note_stage(
                    &request,
                    attempt_no,
                    stage::UPLOADED,
                    component::STORE,
                    started,
                    before_upload,
                    service_time,
                );
                publish(&self.broker, LogFrame::End { success });

                // ⑦ Record the submission metadata. Failure to persist
                // is a crash: the message stays unacked and redelivers.
                let before_record = service_time;
                let mut backoff = self
                    .record_submission(&request, &user, measured, elapsed, success, log_bytes.get())
                    .map_err(|_| self.db_crash(&request, service_time))?;
                if request.kind == JobKind::Submit && success {
                    backoff += self
                        .record_ranking(&request, measured, elapsed, &build_key)
                        .map_err(|_| self.db_crash(&request, service_time))?;
                }
                service_time += backoff;
                self.note_stage(
                    &request,
                    attempt_no,
                    stage::RECORDED,
                    component::DB,
                    started,
                    before_record,
                    service_time,
                );
                self.crash_check(&request, attempt, CrashPoint::Ack, service_time)?;
                if let Some(t) = &self.telemetry {
                    t.trace_span(
                        request.job_id,
                        attempt_no,
                        stage::GRADED,
                        component::WORKER,
                        started + service_time,
                        started + service_time,
                    );
                    let span = t.span("worker.job").label("worker", &self.config.worker_id);
                    span.finish_at(started + service_time);
                }
                self.note_outcome(&request, if success { "ok" } else { "failed" }, service_time);

                Ok(JobOutcome {
                    job_id: request.job_id,
                    team: request.team.clone(),
                    kind: request.kind,
                    success,
                    service_time,
                    measured_secs: measured,
                })
            }
        }
    }

    /// Submission metadata — "execution times, run-times, and logs …
    /// useful for grading or any other coursework auditing process."
    /// Upserts keyed on `job_id` so a redelivered attempt overwrites
    /// its own row rather than double-counting the submission. Returns
    /// the retry backoff to fold into the job's service time.
    #[allow(clippy::too_many_arguments)]
    fn record_submission(
        &self,
        request: &JobRequest,
        user: &str,
        measured_secs: Option<f64>,
        wall: SimDuration,
        success: bool,
        log_bytes: u64,
    ) -> Result<SimDuration, DbError> {
        let guarded = self.config.retry.run(
            self.op_seed(request.job_id, 0, 3),
            |_| self.db.guard("record_submission"),
        );
        self.note_retries("db_record", guarded.attempts);
        guarded.result?;
        self.db.collection("submissions").write().update_one(
            &doc! { "job_id" => request.job_id },
            &doc! { "$set" => doc!{
                "team" => request.team.as_str(),
                "user" => user,
                "kind" => match request.kind { JobKind::Run => "run", JobKind::Submit => "submit" },
                "success" => success,
                "internal_secs" => measured_secs.map(Value::from).unwrap_or(Value::Null),
                "wall_secs" => wall.as_secs_f64(),
                "worker" => self.config.worker_id.as_str(),
                "upload_key" => request.upload_key.as_str(),
                "log_bytes" => log_bytes,
            } },
            true,
        );
        Ok(guarded.backoff)
    }

    /// Final-submission ranking — "the timing results are recorded onto
    /// the ranking database, and overwrites existing timing records.
    /// Both the results from the internal timer and the output from
    /// /usr/bin/time are recorded with only the internal timer visible
    /// to students."
    fn record_ranking(
        &self,
        request: &JobRequest,
        measured_secs: Option<f64>,
        wall: SimDuration,
        build_key: &str,
    ) -> Result<SimDuration, DbError> {
        let Some(secs) = measured_secs else { return Ok(SimDuration::ZERO) };
        let guarded = self.config.retry.run(
            self.op_seed(request.job_id, 0, 4),
            |_| self.db.guard("record_ranking"),
        );
        self.note_retries("db_record", guarded.attempts);
        guarded.result?;
        self.db.collection("rankings").write().update_one(
            &doc! { "team" => request.team.as_str() },
            &doc! { "$set" => doc!{
                "runtime_secs" => secs,
                "time_cmd_secs" => wall.as_secs_f64(),
                "job_id" => request.job_id,
                "build_key" => build_key,
            } },
            true,
        );
        Ok(guarded.backoff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{ProjectDir, RaiClient, SubmitMode};
    use rai_auth::KeyGenerator;
    use rai_faults::FaultPlan;
    use rai_sim::VirtualClock;
    use rai_store::{LifecycleRule, ObjectStore};
    use std::sync::atomic::AtomicU64;
    use std::time::Duration;

    struct Rig {
        broker: Broker,
        store: ObjectStore,
        db: Database,
        registry: Arc<RwLock<CredentialRegistry>>,
        images: Arc<ImageRegistry>,
        next_id: Arc<AtomicU64>,
    }

    fn rig() -> Rig {
        let store = ObjectStore::new(VirtualClock::new());
        store
            .create_bucket(crate::client::UPLOAD_BUCKET, LifecycleRule::one_month_after_last_use())
            .unwrap();
        store
            .create_bucket(BUILD_BUCKET, LifecycleRule::Keep)
            .unwrap();
        Rig {
            broker: Broker::default(),
            store,
            db: Database::new(),
            registry: Arc::new(RwLock::new(CredentialRegistry::new())),
            images: Arc::new(ImageRegistry::course_default()),
            next_id: Arc::new(AtomicU64::new(1)),
        }
    }

    fn client_and_worker(rig: &Rig, team: &str) -> (RaiClient, Worker) {
        let creds = KeyGenerator::from_seed(99).generate(team);
        rig.registry.write().register(creds.clone());
        let client = RaiClient::new(
            creds,
            team,
            rig.broker.clone(),
            rig.store.clone(),
            rig.next_id.clone(),
        );
        let worker = Worker::new(
            WorkerConfig::default(),
            rig.broker.clone(),
            rig.store.clone(),
            rig.db.clone(),
            rig.registry.clone(),
            rig.images.clone(),
        );
        (client, worker)
    }

    #[test]
    fn end_to_end_run_submission() {
        let rig = rig();
        let (client, mut worker) = client_and_worker(&rig, "gpu-gophers");
        let pending = client
            .begin_submit(&ProjectDir::sample_cuda_project(), SubmitMode::Run)
            .unwrap();
        let outcome = worker.step().expect("worker should pick up the job");
        assert!(outcome.success);
        let receipt = pending.wait(Duration::from_millis(500)).unwrap();
        assert!(receipt.success);
        assert!(receipt.log.iter().any(|l| l.contains("Building project")));
        assert!(receipt.log.iter().any(|l| l.contains("Built target ece408")));
        assert!(receipt.build_url.is_some());
        assert!(receipt.internal_timer_secs.is_some());
        // Submission recorded in the database.
        let subs = rig.db.collection("submissions");
        assert_eq!(subs.read().len(), 1);
        // Run (not submit): no ranking entry.
        assert_eq!(rig.db.collection("rankings").read().len(), 0);
    }

    #[test]
    fn end_to_end_final_submission_records_ranking() {
        let rig = rig();
        let (client, mut worker) = client_and_worker(&rig, "gpu-gophers");
        let project = ProjectDir::sample_cuda_project().with_final_artifacts();
        let pending = client.begin_submit(&project, SubmitMode::Submit).unwrap();
        worker.step().unwrap();
        let receipt = pending.wait(Duration::from_millis(500)).unwrap();
        assert!(receipt.success, "log: {:#?}", receipt.log);
        // Enforced Listing 2: full dataset + submission_code copy.
        assert!(receipt.log.iter().any(|l| l.contains("Submitting project")));
        // ~505ms for the 470ms spec.
        let secs = receipt.internal_timer_secs.unwrap();
        assert!((0.4..0.7).contains(&secs), "got {secs}");
        let rankings = rig.db.collection("rankings");
        let row = rankings.read().find_one(&doc! { "team" => "gpu-gophers" }).unwrap();
        assert!(row.get("runtime_secs").unwrap().as_f64().unwrap() > 0.0);
        assert!(row.get("time_cmd_secs").unwrap().as_f64().is_some());
        // The /build archive includes the submitted source snapshot.
        let build_url = receipt.build_url.unwrap();
        let obj = rig.store.get_presigned(&build_url).unwrap();
        let tree = restore(&obj.data).unwrap();
        assert!(tree.contains("submission_code/main.cu"));
    }

    #[test]
    fn ranking_overwritten_by_later_submission() {
        let rig = rig();
        let (client, mut worker) = client_and_worker(&rig, "team-a");
        for _ in 0..2 {
            let project = ProjectDir::sample_cuda_project().with_final_artifacts();
            let pending = client.begin_submit(&project, SubmitMode::Submit).unwrap();
            worker.step().unwrap();
            pending.wait(Duration::from_millis(500)).unwrap();
        }
        assert_eq!(rig.db.collection("rankings").read().len(), 1, "one row per team");
        assert_eq!(rig.db.collection("submissions").read().len(), 2);
    }

    #[test]
    fn unauthenticated_job_rejected() {
        let rig = rig();
        // Client whose creds were never registered server-side.
        let creds = KeyGenerator::from_seed(123).generate("intruder");
        let client = RaiClient::new(
            creds,
            "intruder",
            rig.broker.clone(),
            rig.store.clone(),
            rig.next_id.clone(),
        );
        let mut worker = Worker::new(
            WorkerConfig::default(),
            rig.broker.clone(),
            rig.store.clone(),
            rig.db.clone(),
            rig.registry.clone(),
            rig.images.clone(),
        );
        let pending = client
            .begin_submit(&ProjectDir::sample_cuda_project(), SubmitMode::Run)
            .unwrap();
        let outcome = worker.step().unwrap();
        assert!(!outcome.success);
        let receipt = pending.wait(Duration::from_millis(500)).unwrap();
        assert!(!receipt.success);
        assert!(receipt
            .log
            .iter()
            .any(|l| l.contains("authentication failed")));
    }

    #[test]
    fn non_whitelisted_image_rejected() {
        let rig = rig();
        let (client, mut worker) = client_and_worker(&rig, "sneaky");
        let mut project = ProjectDir::sample_cuda_project();
        project
            .tree
            .insert(
                "rai-build.yml",
                &b"rai:\n  version: 0.1\n  image: malicious/miner:latest\ncommands:\n  build:\n    - echo mining\n"[..],
            )
            .unwrap();
        let pending = client.begin_submit(&project, SubmitMode::Run).unwrap();
        let outcome = worker.step().unwrap();
        assert!(!outcome.success);
        let receipt = pending.wait(Duration::from_millis(500)).unwrap();
        assert!(receipt.log.iter().any(|l| l.contains("not whitelisted")));
    }

    #[test]
    fn build_failure_reported_to_client() {
        let rig = rig();
        let (client, mut worker) = client_and_worker(&rig, "team-broken");
        let mut project = ProjectDir::sample_cuda_project();
        project
            .tree
            .insert("main.cu", &b"RAI_SYNTAX_ERROR\n"[..])
            .unwrap();
        let pending = client.begin_submit(&project, SubmitMode::Run).unwrap();
        let outcome = worker.step().unwrap();
        assert!(!outcome.success);
        let receipt = pending.wait(Duration::from_millis(500)).unwrap();
        assert!(!receipt.success);
        assert!(receipt.log.iter().any(|l| l.contains("error:")));
    }

    #[test]
    fn image_pull_charged_once() {
        let rig = rig();
        let (client, mut worker) = client_and_worker(&rig, "team-a");
        let p1 = client
            .begin_submit(&ProjectDir::sample_cuda_project(), SubmitMode::Run)
            .unwrap();
        let first = worker.step().unwrap();
        p1.wait(Duration::from_millis(500)).unwrap();
        let p2 = client
            .begin_submit(&ProjectDir::sample_cuda_project(), SubmitMode::Run)
            .unwrap();
        let second = worker.step().unwrap();
        p2.wait(Duration::from_millis(500)).unwrap();
        // First job pays the multi-GB image pull; the second doesn't.
        assert!(first.service_time > second.service_time + SimDuration::from_secs(20));
    }

    #[test]
    fn worker_step_on_empty_queue_is_none() {
        let rig = rig();
        let (_client, mut worker) = client_and_worker(&rig, "team-a");
        assert!(worker.step().is_none());
    }

    #[test]
    fn malformed_message_dropped_and_counted() {
        let rig = rig();
        let (_client, mut worker) = client_and_worker(&rig, "team-a");
        let telemetry = Telemetry::new(rig.store.clock().clone());
        worker.set_telemetry(telemetry.clone());
        rig.broker
            .publish(routes::TASK_TOPIC, &b"totally not a job"[..])
            .unwrap();
        assert!(worker.step().is_none());
        // Message was acked, not requeued.
        let stats = rig.broker.topic_stats(routes::TASK_TOPIC).unwrap();
        assert_eq!(stats.depth, 0);
        assert_eq!(stats.in_flight, 0);
        assert_eq!(
            telemetry.snapshot().counter_total(names::JOBS_MALFORMED_TOTAL),
            1,
            "malformed message counted"
        );
    }

    #[test]
    fn transient_store_fault_retried_within_job() {
        let rig = rig();
        let (client, mut worker) = client_and_worker(&rig, "team-a");
        let telemetry = Telemetry::new(rig.store.clock().clone());
        worker.set_telemetry(telemetry.clone());
        let pending = client
            .begin_submit(&ProjectDir::sample_cuda_project(), SubmitMode::Run)
            .unwrap();
        // One store fault after the client's upload: the worker's fetch
        // hits it and retries.
        rig.store.inject_faults(1);
        let outcome = worker.step().expect("job still completes");
        assert!(outcome.success);
        pending.wait(Duration::from_millis(500)).unwrap();
        let retried = telemetry.snapshot().counter_total(names::RETRIES_TOTAL);
        assert!(retried >= 1, "fetch retry counted, got {retried}");
    }

    #[test]
    fn crash_after_record_redelivers_and_records_exactly_once() {
        // Find a seed where job 1 dies at the Ack point on attempt 1
        // (after its upload + db record landed) and survives attempt 2
        // — the idempotency stress case.
        let plan_for = |seed: u64| FaultPlan {
            worker_crash: 0.35,
            ..FaultPlan::none(seed)
        };
        let all_points = [CrashPoint::Fetch, CrashPoint::Build, CrashPoint::Upload, CrashPoint::Ack];
        let seed = (0..2_000u64)
            .find(|&s| {
                let inj = FaultInjector::new(plan_for(s));
                matches!(inj.crash_decision(1, 1, CrashPoint::Ack), Some(CrashKind::Crash))
                    && all_points.iter().all(|&p| inj.crash_decision(1, 2, p).is_none())
            })
            .expect("some seed crashes job 1 at Ack on attempt 1 only");

        let rig = rig();
        let (client, mut worker) = client_and_worker(&rig, "team-a");
        worker.set_fault_injector(FaultInjector::new(plan_for(seed)));
        let project = ProjectDir::sample_cuda_project().with_final_artifacts();
        let pending = client.begin_submit(&project, SubmitMode::Submit).unwrap();

        let StepEvent::Crashed(report) = worker.try_step() else {
            panic!("attempt 1 should crash");
        };
        assert_eq!(report.point, CrashPoint::Ack);
        // Side effects of attempt 1 already landed...
        assert_eq!(rig.db.collection("submissions").read().len(), 1);
        assert_eq!(rig.db.collection("rankings").read().len(), 1);

        // ...the restart releases the claim and attempt 2 reprocesses.
        worker.crash_recover();
        let StepEvent::Done(outcome) = worker.try_step() else {
            panic!("attempt 2 should complete");
        };
        assert!(outcome.success);
        pending.wait(Duration::from_millis(500)).unwrap();

        // Exactly one terminal row per job / per team, no duplicates.
        assert_eq!(rig.db.collection("submissions").read().len(), 1);
        assert_eq!(rig.db.collection("rankings").read().len(), 1);
        let row = rig
            .db
            .collection("submissions")
            .read()
            .find_one(&doc! { "job_id" => 1 })
            .unwrap();
        assert_eq!(row.get("success"), Some(&Value::Bool(true)));
        // Queue fully drained: nothing lost, nothing stuck in flight.
        let stats = rig.broker.topic_stats(routes::TASK_TOPIC).unwrap();
        assert_eq!((stats.depth, stats.in_flight), (0, 0));
    }

    #[test]
    fn poison_job_crashes_every_attempt_until_dead_lettered() {
        let mut plan = FaultPlan::none(7);
        plan.poison_every = Some(1); // every job is poison
        let mut rig = rig();
        rig.broker = Broker::new(rai_broker::BrokerConfig {
            max_attempts: 3,
            ..Default::default()
        });
        let (client, mut worker) = client_and_worker(&rig, "team-a");
        worker.set_fault_injector(FaultInjector::new(plan));
        let dead = rig.broker.subscribe(
            &rai_broker::dead_letter_topic(routes::TASK_TOPIC, routes::TASK_CHANNEL),
            "audit",
        );
        client
            .begin_submit(&ProjectDir::sample_cuda_project(), SubmitMode::Run)
            .unwrap();
        for _ in 0..3 {
            match worker.try_step() {
                StepEvent::Crashed(r) => {
                    assert_eq!(r.point, CrashPoint::Build);
                    worker.crash_recover();
                }
                other => panic!("poison job should crash every attempt, got {other:?}"),
            }
        }
        // Attempt cap reached: the message moved to the dead-letter
        // topic instead of the ready queue.
        assert!(worker.step().is_none(), "queue is empty for the worker");
        let msg = dead.try_recv().expect("poison job dead-lettered");
        assert!(JobRequest::decode(&msg.body_str()).is_some());
        dead.ack(msg.id);
        assert_eq!(rig.db.collection("submissions").read().len(), 0, "never reached a record");
    }
}
