//! The RAI client (paper §V "Client Execution").
//!
//! The client performs the paper's eight steps: ① check the project
//! directory and its `rai-build.yml` (falling back to the Listing 1
//! default), ② verify credentials, ③ compress the directory to
//! `.tar.bz2` and upload it to the file server, ④ push a job request
//! onto the queue, ⑤ subscribe to the `log_${job_id}` topic, ⑥ print
//! messages until `End`, ⑦ (submissions) let the server record
//! execution time and team, ⑧ exit on `End`.

use crate::delta::DeltaUploader;
use crate::protocol::{routes, JobKind, JobRequest, LogFrame};
use crate::spec::{BuildSpec, SpecError, DEFAULT_BUILD_YML, FINAL_SUBMISSION_YML};
use rai_archive::{write_container, FileTree};
use rai_auth::{sign_request, Credentials};
use rai_broker::{Broker, PublishError, RecvError, Subscription};
use rai_db::{doc, Database};
use rai_store::{ObjectStore, StoreError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Bucket the client uploads packed projects to.
pub const UPLOAD_BUCKET: &str = "rai-uploads";
/// Bounded attempts the client makes against a transiently unavailable
/// file server or broker before surfacing the error to the student.
const CLIENT_RETRY_ATTEMPTS: u32 = 4;
/// Bucket workers upload `/build` outputs to.
pub const BUILD_BUCKET: &str = "rai-builds";

/// Development run vs final submission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitMode {
    /// `rai` — regular development job.
    Run,
    /// `rai submit` — final submission (enforced build file, required
    /// files, ranking record).
    Submit,
}

/// A student project directory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProjectDir {
    /// The files.
    pub tree: FileTree,
}

impl ProjectDir {
    /// Wrap an existing tree.
    pub fn new(tree: FileTree) -> Self {
        ProjectDir { tree }
    }

    /// The project's `rai-build.yml`, if present.
    pub fn build_yml(&self) -> Option<String> {
        self.tree
            .get("rai-build.yml")
            .map(|b| String::from_utf8_lossy(b).into_owned())
    }

    /// A plausible CUDA project with the given performance directive —
    /// the knob the workload models turn per team.
    pub fn cuda_project_with_perf(full_ms: f64, accuracy: f64, mem_mb: u64) -> Self {
        let main_cu = format!(
            "// ECE408 final project — convolutional forward pass\n\
             // rai:perf mode=gpu full_ms={full_ms} acc={accuracy} mem_mb={mem_mb}\n\
             #include <cmath>\n\
             __global__ void conv_forward_kernel(float* y, const float* x, const float* k) {{\n\
                 const int i = blockIdx.x * blockDim.x + threadIdx.x;\n\
                 y[i] = x[i] * k[0];\n\
             }}\n\
             int main(int argc, char** argv) {{ return 0; }}\n"
        );
        let tree = FileTree::new()
            .with("rai-build.yml", DEFAULT_BUILD_YML.as_bytes().to_vec())
            .with(
                "CMakeLists.txt",
                &b"cmake_minimum_required(VERSION 3.0)\nproject(ece408)\nadd_executable(ece408 main.cu)\n"[..],
            )
            .with("main.cu", main_cu.into_bytes());
        ProjectDir { tree }
    }

    /// The quickstart sample: a healthy GPU implementation.
    pub fn sample_cuda_project() -> Self {
        Self::cuda_project_with_perf(470.0, 0.93, 2048)
    }

    /// The provided serial baseline (~30 minutes on the full dataset).
    pub fn baseline_cpu_project() -> Self {
        let tree = FileTree::new()
            .with("rai-build.yml", DEFAULT_BUILD_YML.as_bytes().to_vec())
            .with(
                "CMakeLists.txt",
                &b"cmake_minimum_required(VERSION 3.0)\nadd_executable(ece408 main.cpp)\n"[..],
            )
            .with(
                "main.cpp",
                &b"// provided serial CPU baseline (no perf directive)\nint main() { return 0; }\n"[..],
            );
        ProjectDir { tree }
    }

    /// Switch the project's build file to benchmark on the *full*
    /// dataset — what students do "in the last week of the course …
    /// performing benchmarks and sensitive profiling" (§VII), and what
    /// makes early serial-baseline runs take ~30 minutes.
    pub fn with_full_dataset_build(mut self) -> Self {
        let yml = self
            .build_yml()
            .unwrap_or_else(|| DEFAULT_BUILD_YML.to_string())
            .replace("test10.hdf5", "testfull.hdf5");
        self.tree
            .insert("rai-build.yml", yml.into_bytes())
            .expect("static path");
        self
    }

    /// Add the final-submission artifacts (USAGE and report.pdf).
    pub fn with_final_artifacts(mut self) -> Self {
        self.tree
            .insert(
                "USAGE",
                &b"Run `rai -p . submit`; profile results referenced in report section 3.\n"[..],
            )
            .expect("static path");
        self.tree
            .insert("report.pdf", &b"%PDF-1.4\n% 8-page project report\n"[..])
            .expect("static path");
        self
    }
}

/// Submit-time failures.
#[derive(Clone, Debug, PartialEq)]
pub enum SubmitError {
    /// Project tree was empty.
    EmptyProject,
    /// The build file failed to parse/validate.
    Spec(SpecError),
    /// A required final-submission file is absent.
    MissingRequiredFile(&'static str),
    /// Per-user rate limit hit.
    RateLimited {
        /// Seconds until the next attempt is allowed.
        retry_after_secs: u64,
    },
    /// File-server upload failed.
    Upload(String),
    /// Queue publish failed (back-pressure).
    Publish(String),
    /// No `End` frame arrived in time.
    Timeout,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::EmptyProject => write!(f, "project directory is empty"),
            SubmitError::Spec(e) => write!(f, "{e}"),
            SubmitError::MissingRequiredFile(name) => {
                write!(f, "final submission requires {name} in the project directory")
            }
            SubmitError::RateLimited { retry_after_secs } => {
                write!(f, "rate limited: retry in {retry_after_secs}s")
            }
            SubmitError::Upload(e) => write!(f, "upload failed: {e}"),
            SubmitError::Publish(e) => write!(f, "queue publish failed: {e}"),
            SubmitError::Timeout => write!(f, "timed out waiting for job completion"),
        }
    }
}

impl std::error::Error for SubmitError {}

impl From<SpecError> for SubmitError {
    fn from(e: SpecError) -> Self {
        SubmitError::Spec(e)
    }
}

impl From<StoreError> for SubmitError {
    fn from(e: StoreError) -> Self {
        SubmitError::Upload(e.to_string())
    }
}

impl From<PublishError> for SubmitError {
    fn from(e: PublishError) -> Self {
        SubmitError::Publish(e.to_string())
    }
}

/// Completed-job receipt, assembled from the log stream.
#[derive(Clone, Debug)]
pub struct SubmitReceipt {
    /// Job id.
    pub job_id: u64,
    /// Whether the job succeeded end-to-end.
    pub success: bool,
    /// Rendered log lines, in order (what the student saw).
    pub log: Vec<String>,
    /// Key of the uploaded `/build` archive on the file server.
    pub build_url: Option<String>,
    /// The program's self-reported runtime (the student-visible timer).
    pub internal_timer_secs: Option<f64>,
}

/// A job in flight: hold it and drain frames until `End`.
pub struct PendingJob {
    /// Job id.
    pub job_id: u64,
    subscription: Subscription,
}

impl PendingJob {
    /// Drain frames until `End` or `timeout` of wall-clock inactivity.
    pub fn wait(self, timeout: Duration) -> Result<SubmitReceipt, SubmitError> {
        let mut log = Vec::new();
        let mut build_url = None;
        let mut internal = None;
        loop {
            let msg = match self.subscription.recv_timeout(timeout) {
                Ok(m) => m,
                Err(RecvError::Timeout) | Err(RecvError::Closed) => return Err(SubmitError::Timeout),
            };
            self.subscription.ack(msg.id);
            match LogFrame::decode(&msg.body_str()) {
                LogFrame::Out(line) => {
                    if let Some(rest) = line.split("elapsed = ").nth(1) {
                        if let Some(v) = rest.split_whitespace().next() {
                            internal = v.parse().ok().or(internal);
                        }
                    }
                    log.push(line);
                }
                LogFrame::Err(line) => log.push(format!("[stderr] {line}")),
                LogFrame::Status(line) => log.push(format!("[rai] {line}")),
                LogFrame::BuildUrl(url) => build_url = Some(url),
                LogFrame::End { success } => {
                    return Ok(SubmitReceipt {
                        job_id: self.job_id,
                        success,
                        log,
                        build_url,
                        internal_timer_secs: internal,
                    })
                }
            }
        }
    }
}

/// The student-side client.
pub struct RaiClient {
    creds: Credentials,
    team: String,
    broker: Broker,
    store: ObjectStore,
    next_job_id: Arc<AtomicU64>,
    /// Delta uploader with this client's per-project-dir digest cache.
    delta: DeltaUploader,
    /// Durable deployments journal a submission intent here before
    /// publishing, so a crash between "accepted" and "queued" is
    /// recoverable (DESIGN.md §14).
    intents: Option<Database>,
}

impl RaiClient {
    /// A client for `creds`, submitting on behalf of `team`.
    pub fn new(
        creds: Credentials,
        team: &str,
        broker: Broker,
        store: ObjectStore,
        next_job_id: Arc<AtomicU64>,
    ) -> Self {
        RaiClient {
            creds,
            team: team.to_string(),
            broker,
            store,
            next_job_id,
            delta: DeltaUploader::new(),
            intents: None,
        }
    }

    /// Journal submission intents to `db`'s `intents` collection (and
    /// through its write-ahead log) before publishing. Only meaningful
    /// when `db` has a WAL attached.
    pub fn with_intent_ledger(mut self, db: Database) -> Self {
        self.intents = Some(db);
        self
    }

    /// Route this client's chunking + digesting onto `exec`. Uploads
    /// stay byte-identical at any parallelism (DESIGN.md §12); the
    /// fresh uploader's empty digest cache matches `new`'s.
    pub fn with_executor(mut self, exec: rai_exec::Executor) -> Self {
        self.delta = DeltaUploader::with_executor(exec);
        self
    }

    /// The credentials in use.
    pub fn credentials(&self) -> &Credentials {
        &self.creds
    }

    /// The team this client submits for.
    pub fn team(&self) -> &str {
        &self.team
    }

    /// Resolve the effective build file for a submission: students'
    /// files for runs; the enforced Listing 2 file for final
    /// submissions; the Listing 1 default when no file exists.
    pub fn effective_build_yml(project: &ProjectDir, mode: SubmitMode) -> Result<String, SubmitError> {
        let text = match mode {
            SubmitMode::Submit => FINAL_SUBMISSION_YML.to_string(),
            SubmitMode::Run => project
                .build_yml()
                .unwrap_or_else(|| DEFAULT_BUILD_YML.to_string()),
        };
        // Validate before shipping: cheap client-side feedback.
        BuildSpec::parse(&text)?;
        Ok(text)
    }

    /// Steps ①–⑤: package, upload, enqueue, subscribe. Returns the
    /// pending job to wait on.
    pub fn begin_submit(&self, project: &ProjectDir, mode: SubmitMode) -> Result<PendingJob, SubmitError> {
        // ① Project and build-file checks.
        if project.tree.is_empty() {
            return Err(SubmitError::EmptyProject);
        }
        if mode == SubmitMode::Submit {
            // "The submission required the presence of the USAGE … and
            // report.pdf" (paper §V).
            for required in ["USAGE", "report.pdf"] {
                if !project.tree.contains(required) {
                    return Err(SubmitError::MissingRequiredFile(match required {
                        "USAGE" => "USAGE",
                        _ => "report.pdf",
                    }));
                }
            }
        }
        let build_yml = Self::effective_build_yml(project, mode)?;

        // ② Credential sanity (full verification happens worker-side).
        debug_assert!(!self.creds.access_key.is_empty() && !self.creds.secret_key.is_empty());

        // ③ Package and delta-upload the project directory: the tree
        // is serialized to the archive container and shipped as a
        // chunk manifest, so a resubmission uploads only the chunks
        // the file server does not already hold (DESIGN.md §10).
        let job_id = self.next_job_id.fetch_add(1, Ordering::Relaxed);
        let container = write_container(&project.tree);
        let upload_key = format!("{}/{job_id:08x}.tar.bz2", self.team.replace(' ', "-"));
        // A transient file-server outage surfaces to the student as a
        // long upload, not a failed submission: retry a few times
        // before giving up.
        let mut attempts = 0;
        loop {
            attempts += 1;
            match self.delta.upload(
                &self.store,
                UPLOAD_BUCKET,
                &upload_key,
                &container,
                [
                    ("team".to_string(), self.team.clone()),
                    (
                        "kind".to_string(),
                        match mode {
                            SubmitMode::Run => "run".to_string(),
                            SubmitMode::Submit => "final".to_string(),
                        },
                    ),
                ],
            ) {
                Ok(_) => break,
                Err(StoreError::Unavailable) if attempts < CLIENT_RETRY_ATTEMPTS => continue,
                Err(e) => return Err(e.into()),
            }
        }

        // ④ Create and push the signed job request.
        let mut request = JobRequest {
            job_id,
            access_key: self.creds.access_key.clone(),
            signature: String::new(),
            team: self.team.clone(),
            upload_bucket: UPLOAD_BUCKET.to_string(),
            upload_key,
            build_yml,
            kind: match mode {
                SubmitMode::Run => JobKind::Run,
                SubmitMode::Submit => JobKind::Submit,
            },
        };
        request.signature = sign_request(
            &self.creds.secret_key,
            &self.creds.access_key,
            &request.signing_payload(),
        );
        let encoded = request.encode();

        // Durability point: journal the accepted submission *before*
        // publishing and force it to stable storage. If the process
        // dies with the request queued (or about to be), recovery
        // finds the intent, sees no terminal submissions row, and
        // re-publishes — zero lost submissions (DESIGN.md §14).
        if let Some(db) = &self.intents {
            db.collection("intents").write().insert_one(doc! {
                "job_id" => job_id as i64,
                "team" => self.team.as_str(),
                "state" => "pending",
                "req" => encoded.as_str(),
            });
            db.sync_wal();
        }
        let mut attempts = 0;
        let published = loop {
            attempts += 1;
            match self.broker.publish(routes::TASK_TOPIC, encoded.clone()) {
                Ok(_) => break Ok(()),
                Err(PublishError::Unavailable { .. }) if attempts < CLIENT_RETRY_ATTEMPTS => {
                    continue
                }
                Err(e) => break Err(e),
            }
        };
        if let Some(db) = &self.intents {
            // "rejected" intents surfaced an error to the student and
            // are never re-published; "published" ones are in the
            // at-least-once pipeline.
            let state = if published.is_ok() { "published" } else { "rejected" };
            db.collection("intents").write().update_one(
                &doc! { "job_id" => job_id as i64 },
                &doc! { "$set" => doc! { "state" => state } },
                false,
            );
        }
        published?;

        // ⑤ Subscribe to the ephemeral log topic. (The topic backlog
        // holds any frames the worker emitted before we got here.)
        let subscription = self
            .broker
            .subscribe_ephemeral(&routes::log_topic(job_id), routes::LOG_CHANNEL);
        Ok(PendingJob {
            job_id,
            subscription,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_build_yml_per_mode() {
        let p = ProjectDir::sample_cuda_project();
        let run = RaiClient::effective_build_yml(&p, SubmitMode::Run).unwrap();
        assert!(run.contains("test10.hdf5"), "dev runs use the student's file");
        let fin = RaiClient::effective_build_yml(&p, SubmitMode::Submit).unwrap();
        assert!(fin.contains("testfull.hdf5"), "finals use the enforced file");
        assert!(fin.contains("submission_code"));
    }

    #[test]
    fn default_used_when_no_build_file() {
        let mut p = ProjectDir::sample_cuda_project();
        p.tree.remove("rai-build.yml");
        let run = RaiClient::effective_build_yml(&p, SubmitMode::Run).unwrap();
        assert_eq!(run, DEFAULT_BUILD_YML);
    }

    #[test]
    fn invalid_student_build_file_rejected_client_side() {
        let mut p = ProjectDir::sample_cuda_project();
        p.tree
            .insert("rai-build.yml", &b"rai:\n  version: 99.0\n  image: x\ncommands:\n  build:\n    - make\n"[..])
            .unwrap();
        assert!(matches!(
            RaiClient::effective_build_yml(&p, SubmitMode::Run),
            Err(SubmitError::Spec(SpecError::UnsupportedVersion(_)))
        ));
        // Final submissions ignore the student's (broken) file entirely.
        assert!(RaiClient::effective_build_yml(&p, SubmitMode::Submit).is_ok());
    }

    #[test]
    fn final_artifacts_helper() {
        let p = ProjectDir::sample_cuda_project().with_final_artifacts();
        assert!(p.tree.contains("USAGE"));
        assert!(p.tree.contains("report.pdf"));
    }

    #[test]
    fn sample_projects_have_expected_shape() {
        let gpu = ProjectDir::sample_cuda_project();
        assert!(gpu.build_yml().unwrap().contains("webgpu/rai:root"));
        assert!(gpu.tree.contains("CMakeLists.txt"));
        let cpu = ProjectDir::baseline_cpu_project();
        let src = cpu.tree.get("main.cpp").unwrap();
        assert!(!String::from_utf8_lossy(src).contains("rai:perf"));
    }
}
