//! Competition ranking (paper §VI "Competition Ranking").
//!
//! "To encourage competition, teams were able to see their ranking
//! using RAI. The students could also see other teams' anonymized
//! runtimes." Fig. 2 is the histogram of the top-30 teams' final
//! runtimes in 0.1-second bins.

use rai_db::{doc, Database, FindOptions};
use rai_telemetry::Histogram;

/// One row of the leaderboard as shown to a student.
#[derive(Clone, Debug, PartialEq)]
pub struct RankEntry {
    /// 1-based rank.
    pub rank: usize,
    /// Display name: the real team name for the viewer's own team,
    /// a stable anonymous alias for everyone else.
    pub display_name: String,
    /// Student-visible (internal-timer) runtime in seconds.
    pub runtime_secs: f64,
    /// Whether this row is the viewing team.
    pub is_self: bool,
}

/// Read-side ranking utilities over the `rankings` collection.
#[derive(Clone)]
pub struct RankingBoard {
    db: Database,
}

impl RankingBoard {
    /// A board over `db`.
    pub fn new(db: Database) -> Self {
        RankingBoard { db }
    }

    /// Full standings: `(team, runtime_secs)` fastest-first.
    pub fn standings(&self) -> Vec<(String, f64)> {
        self.db
            .collection("rankings")
            .read()
            .find_with(&doc! {}, &FindOptions::sort_asc("runtime_secs"))
            .into_iter()
            .filter_map(|d| {
                Some((
                    d.get("team")?.as_str()?.to_string(),
                    d.get("runtime_secs")?.as_f64()?,
                ))
            })
            .collect()
    }

    /// Stable anonymous alias for a team (what other teams see).
    pub fn alias(team: &str) -> String {
        // FNV-1a over the name; stable across sessions.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in team.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mixed = (h ^ (h >> 16) ^ (h >> 32) ^ (h >> 48)) as u16;
        format!("anonymous-{mixed:04x}")
    }

    /// The leaderboard as team `viewer` sees it.
    pub fn view_for(&self, viewer: &str) -> Vec<RankEntry> {
        self.standings()
            .into_iter()
            .enumerate()
            .map(|(i, (team, runtime_secs))| {
                let is_self = team == viewer;
                RankEntry {
                    rank: i + 1,
                    display_name: if is_self { team } else { Self::alias(&team) },
                    runtime_secs,
                    is_self,
                }
            })
            .collect()
    }

    /// The viewer's own rank (1-based), if they have a final submission.
    pub fn rank_of(&self, team: &str) -> Option<usize> {
        self.standings()
            .iter()
            .position(|(t, _)| t == team)
            .map(|i| i + 1)
    }

    /// Fig. 2: histogram of the top `n` teams' runtimes with `bin_width`
    /// second bins (the paper uses n=30, 0.1 s).
    pub fn top_n_histogram(&self, n: usize, bin_width: f64, nbins: usize) -> Histogram {
        let mut h = Histogram::new(0.0, bin_width, nbins);
        for (_, runtime) in self.standings().into_iter().take(n) {
            h.record(runtime);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rai_db::Value;

    fn board_with(teams: &[(&str, f64)]) -> RankingBoard {
        let db = Database::new();
        {
            let coll = db.collection("rankings");
            let mut w = coll.write();
            for (team, rt) in teams {
                w.insert_one(doc! { "team" => *team, "runtime_secs" => *rt, "time_cmd_secs" => rt * 1.02 });
            }
        }
        RankingBoard::new(db)
    }

    #[test]
    fn standings_sorted_ascending() {
        let b = board_with(&[("slow", 2.0), ("fast", 0.4), ("mid", 1.0)]);
        let s = b.standings();
        assert_eq!(
            s.iter().map(|(t, _)| t.as_str()).collect::<Vec<_>>(),
            vec!["fast", "mid", "slow"]
        );
    }

    #[test]
    fn anonymized_view_reveals_only_self() {
        let b = board_with(&[("us", 1.0), ("them", 0.5)]);
        let view = b.view_for("us");
        assert_eq!(view.len(), 2);
        assert_eq!(view[0].display_name, RankingBoard::alias("them"));
        assert!(!view[0].is_self);
        assert_eq!(view[1].display_name, "us");
        assert!(view[1].is_self);
        assert_eq!(view[1].rank, 2);
    }

    #[test]
    fn alias_is_stable_and_distinct() {
        assert_eq!(RankingBoard::alias("x"), RankingBoard::alias("x"));
        assert_ne!(RankingBoard::alias("x"), RankingBoard::alias("y"));
        assert!(RankingBoard::alias("x").starts_with("anonymous-"));
    }

    #[test]
    fn rank_of() {
        let b = board_with(&[("a", 1.0), ("b", 0.5)]);
        assert_eq!(b.rank_of("b"), Some(1));
        assert_eq!(b.rank_of("a"), Some(2));
        assert_eq!(b.rank_of("ghost"), None);
    }

    #[test]
    fn figure2_histogram_bins() {
        // 5 teams between 0.4 and 0.5s, like the paper's example bin.
        let teams: Vec<(String, f64)> = (0..5)
            .map(|i| (format!("t{i}"), 0.41 + i as f64 * 0.015))
            .chain([("straggler".to_string(), 120.0)])
            .collect();
        let refs: Vec<(&str, f64)> = teams.iter().map(|(t, r)| (t.as_str(), *r)).collect();
        let b = board_with(&refs);
        let h = b.top_n_histogram(30, 0.1, 30);
        assert_eq!(h.bin(4), 5, "five teams in [0.4, 0.5)");
        assert_eq!(h.overflow(), 1, "the 2-minute straggler");
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn ranking_rows_keep_instructor_only_time() {
        let b = board_with(&[("a", 1.0)]);
        let row = b
            .db
            .collection("rankings")
            .read()
            .find_one(&doc! { "team" => "a" })
            .unwrap();
        assert!(matches!(row.get("time_cmd_secs"), Some(Value::Float(_))));
    }
}
