//! # rai-core — the RAI project-submission system
//!
//! The paper's primary contribution, assembled from the substrate
//! crates: an interactive submission pipeline in which a **client**
//! packages a student project, uploads it to the **file server**,
//! enqueues a job on the **message broker**, and streams logs back while
//! a **worker** runs the build inside a **sandboxed container** and
//! records metadata in the **database**.
//!
//! Modules, mapped to the paper:
//!
//! * [`spec`] — `rai-build.yml` (§V "Execution Specification",
//!   Listings 1 & 2);
//! * [`protocol`] — the job message format exchanged over the broker
//!   (§V "Message Broker Operations");
//! * [`client`] — the student-side client, steps ①–⑧ (§V "Client
//!   Execution");
//! * [`ratelimit`] — "each student can only submit a job every 30
//!   seconds" (§V "Container Execution");
//! * [`worker`] — the worker agent, steps ①–⑥ (§V "Worker
//!   Operations"), including multi-job in-flight configuration;
//! * [`ranking`] — the competition ranking with anonymized views (§VI
//!   "Competition Ranking");
//! * [`grading`] — instructor utilities: required-file checks, bulk
//!   download, re-run-and-take-minimum, grade reports (§VI, §VII
//!   "Project Grading");
//! * [`delivery`] — the cross-compiled client delivery matrix (§VII
//!   "RAI Client Delivery", Fig. 3);
//! * [`compare`] — the qualitative feature model behind Table I;
//! * [`interactive`] — instructor-gated interactive sessions, the
//!   paper's §VIII future work, implemented;
//! * [`delta`] — the client side of the store's delta-upload protocol
//!   ([`DeltaUploader`]), shared by [`client`] and [`worker`] so
//!   resubmissions ship only new chunks (DESIGN.md §10);
//! * [`system`] — [`system::RaiSystem`], a whole in-process deployment.

pub mod audit;
pub mod cli;
pub mod client;
pub mod commands;
pub mod compare;
pub mod delta;
pub mod delivery;
pub mod grading;
pub mod interactive;
pub mod protocol;
pub mod ranking;
pub mod ratelimit;
pub mod spec;
pub mod system;
pub mod worker;

pub use client::{PendingJob, ProjectDir, RaiClient, SubmitError, SubmitMode, SubmitReceipt};
pub use delta::{DeltaReceipt, DeltaUploader, PreparedUpload};
pub use ranking::{RankEntry, RankingBoard};
pub use spec::{BuildSpec, SpecError};
pub use system::{RaiSystem, RecoveryReport, SystemConfig};
pub use worker::{ClaimedJob, CrashReport, ExecutedJob, JobOutcome, StepEvent, Worker, WorkerConfig};
