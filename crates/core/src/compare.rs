//! The qualitative feature model behind Table I (paper §III).
//!
//! "Existing programming and submission systems currently used do not
//! afford the reconfigurability, isolation, scalability, accessibility,
//! and uniformity needed for large open-ended programming exercises."

use std::fmt;

/// The five dimensions of Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dimension {
    /// Can students reconfigure the environment (toolchains, build
    /// systems, profilers)?
    Configurability,
    /// Are student workloads isolated from each other?
    Isolation,
    /// Does the system scale to thousands of concurrent users?
    Scalability,
    /// Can remote (MOOC) students reach it with esoteric hardware?
    Accessibility,
    /// Is evaluation uniform across submissions?
    TestingUniformity,
}

/// All dimensions, in the paper's column order.
pub const DIMENSIONS: [Dimension; 5] = [
    Dimension::Configurability,
    Dimension::Isolation,
    Dimension::Scalability,
    Dimension::Accessibility,
    Dimension::TestingUniformity,
];

impl Dimension {
    /// Column header.
    pub fn label(self) -> &'static str {
        match self {
            Dimension::Configurability => "Configurability",
            Dimension::Isolation => "Isolation",
            Dimension::Scalability => "Scalability",
            Dimension::Accessibility => "Accessibility",
            Dimension::TestingUniformity => "Testing Uniformity",
        }
    }
}

/// A row of Table I.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SystemProfile {
    /// System name.
    pub name: &'static str,
    /// Feature support, aligned with [`DIMENSIONS`].
    pub features: [bool; 5],
    /// One-line rationale, from the paper's §III discussion.
    pub rationale: &'static str,
}

impl SystemProfile {
    /// Whether the system supports a dimension.
    pub fn supports(&self, d: Dimension) -> bool {
        let idx = DIMENSIONS.iter().position(|&x| x == d).expect("d is in DIMENSIONS");
        self.features[idx]
    }
}

/// Table I, row for row.
pub fn table1() -> Vec<SystemProfile> {
    vec![
        SystemProfile {
            name: "Student-Provided",
            features: [true, true, true, false, false],
            rationale: "students' own machines: fully flexible but 70% lacked a CUDA GPU, and environments diverge",
        },
        SystemProfile {
            name: "Torque/PBS",
            features: [true, true, true, true, false],
            rationale: "batch cluster queues oversubscribe near deadlines and leave evaluation uniformity to course staff",
        },
        SystemProfile {
            name: "WebGPU",
            features: [false, true, true, true, true],
            rationale: "web IDE for weekly labs; hides system configuration and advanced profiling/debugging tools",
        },
        SystemProfile {
            name: "Jenkins",
            features: [true, true, true, false, true],
            rationale: "CI servers run per-commit builds but are not student-facing and cannot run GPU/FPGA code",
        },
        SystemProfile {
            name: "QwikLabs",
            features: [false, true, true, true, false],
            rationale: "hosted lab sandboxes: accessible and isolated but fixed-configuration, no uniform grading hooks",
        },
        SystemProfile {
            name: "RAI",
            features: [true, true, true, true, true],
            rationale: "whitelisted containers give full configurability; broker+elastic workers scale; enforced final build file gives uniformity",
        },
    ]
}

/// Render the comparison as the paper's check/cross matrix.
pub fn render_table1() -> String {
    let rows = table1();
    let mut out = String::new();
    out.push_str(&format!("{:<18}", "System"));
    for d in DIMENSIONS {
        out.push_str(&format!(" {:<19}", d.label()));
    }
    out.push('\n');
    for row in &rows {
        out.push_str(&format!("{:<18}", row.name));
        for (i, _) in DIMENSIONS.iter().enumerate() {
            out.push_str(&format!(
                " {:<19}",
                if row.features[i] { "yes" } else { "no" }
            ));
        }
        out.push('\n');
    }
    out
}

impl fmt::Display for SystemProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.rationale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_rai_supports_everything() {
        let rows = table1();
        let full: Vec<&str> = rows
            .iter()
            .filter(|r| r.features.iter().all(|&f| f))
            .map(|r| r.name)
            .collect();
        assert_eq!(full, vec!["RAI"]);
    }

    #[test]
    fn matches_paper_cells() {
        let rows = table1();
        let get = |name: &str| rows.iter().find(|r| r.name == name).unwrap().clone();
        // Spot-check the ✓/✗ cells of Table I.
        assert!(!get("Student-Provided").supports(Dimension::Accessibility));
        assert!(!get("Student-Provided").supports(Dimension::TestingUniformity));
        assert!(get("Torque/PBS").supports(Dimension::Accessibility));
        assert!(!get("Torque/PBS").supports(Dimension::TestingUniformity));
        assert!(!get("WebGPU").supports(Dimension::Configurability));
        assert!(get("WebGPU").supports(Dimension::TestingUniformity));
        assert!(!get("Jenkins").supports(Dimension::Accessibility));
        assert!(!get("QwikLabs").supports(Dimension::Configurability));
        assert!(!get("QwikLabs").supports(Dimension::TestingUniformity));
    }

    #[test]
    fn render_has_all_rows_and_columns() {
        let t = render_table1();
        assert_eq!(t.lines().count(), 7, "header + six systems");
        for name in ["Student-Provided", "Torque/PBS", "WebGPU", "Jenkins", "QwikLabs", "RAI"] {
            assert!(t.contains(name));
        }
        for d in DIMENSIONS {
            assert!(t.contains(d.label()));
        }
    }
}
