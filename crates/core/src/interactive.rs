//! Interactive sessions — the paper's future work, implemented.
//!
//! §VIII: "Future work of RAI includes allowing instructors to
//! configure interactive sessions to enable more debugging and
//! profiling tools." An interactive session keeps one container alive
//! across commands (instead of one container per job), optionally with
//! the restrictions relaxed (network, longer lifetime) — which is why
//! sessions are gated on instructor authorization.

use crate::spec::BuildSpec;
use rai_archive::FileTree;
use rai_sandbox::{Container, ContainerStatus, ImageRegistry, LogLine, ResourceLimits};
use rai_sim::SimDuration;
use std::collections::HashSet;
use std::sync::Arc;

/// Session configuration.
#[derive(Clone, Debug)]
pub struct SessionConfig {
    /// Base image (whitelist still applies).
    pub image: String,
    /// Enable network inside the container (instructors only).
    pub network: bool,
    /// Idle timeout: the session closes if no command arrives for this
    /// long (virtual time budget between commands).
    pub idle_timeout: SimDuration,
    /// Total lifetime cap (longer than the 1-hour job cap).
    pub max_lifetime: SimDuration,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            image: "webgpu/rai:root".to_string(),
            network: false,
            idle_timeout: SimDuration::from_mins(30),
            max_lifetime: SimDuration::from_hours(8),
        }
    }
}

/// Why a session could not be opened.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SessionError {
    /// Caller is not an authorized instructor.
    NotAuthorized,
    /// Image rejected by the whitelist.
    Image(String),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::NotAuthorized => {
                write!(f, "interactive sessions require instructor authorization")
            }
            SessionError::Image(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SessionError {}

/// Output of one interactive command.
#[derive(Clone, Debug)]
pub struct ExecOutput {
    /// Exit code.
    pub exit_code: i32,
    /// Lines produced by this command only.
    pub lines: Vec<LogLine>,
    /// Virtual time the command consumed.
    pub duration: SimDuration,
}

/// A live interactive session.
pub struct InteractiveSession {
    container: Container,
    transcript: Vec<(String, i32)>,
    log_watermark: usize,
    closed: bool,
}

/// Grants and opens sessions. Holds the set of instructor access keys.
#[derive(Clone, Default)]
pub struct SessionBroker {
    instructors: HashSet<String>,
    images: Arc<ImageRegistry>,
}

impl SessionBroker {
    /// A broker over an image registry.
    pub fn new(images: Arc<ImageRegistry>) -> Self {
        SessionBroker {
            instructors: HashSet::new(),
            images,
        }
    }

    /// Authorize an access key for interactive sessions.
    pub fn grant(&mut self, access_key: &str) {
        self.instructors.insert(access_key.to_string());
    }

    /// Revoke instructor authorization.
    pub fn revoke(&mut self, access_key: &str) -> bool {
        self.instructors.remove(access_key)
    }

    /// Whether a key may open sessions.
    pub fn is_instructor(&self, access_key: &str) -> bool {
        self.instructors.contains(access_key)
    }

    /// Open a session: whitelist-checked image, one persistent
    /// container, `/src` mounted from `project`.
    pub fn open(
        &self,
        access_key: &str,
        project: &FileTree,
        config: &SessionConfig,
    ) -> Result<InteractiveSession, SessionError> {
        if config.network && !self.is_instructor(access_key) {
            return Err(SessionError::NotAuthorized);
        }
        // Students may open plain (no-network) sessions only if granted;
        // the default policy is instructor-only entirely.
        if !self.is_instructor(access_key) {
            return Err(SessionError::NotAuthorized);
        }
        let image = self
            .images
            .resolve(&config.image)
            .map_err(|e| SessionError::Image(e.to_string()))?;
        let limits = ResourceLimits::default()
            .with_network(config.network)
            .with_max_lifetime(config.max_lifetime);
        let mut container = Container::create(image, limits);
        container.mount("/src", project);
        Ok(InteractiveSession {
            container,
            transcript: Vec::new(),
            log_watermark: 0,
            closed: false,
        })
    }
}

impl InteractiveSession {
    /// Execute one command in the persistent container. State (files
    /// under `/build`, the generated Makefile, compiled binaries)
    /// persists across calls — the property batch jobs lack.
    pub fn exec(&mut self, cmd: &str) -> ExecOutput {
        if self.closed {
            return ExecOutput {
                exit_code: 130,
                lines: vec![],
                duration: SimDuration::ZERO,
            };
        }
        let result = self.container.run_command(cmd);
        self.transcript.push((cmd.to_string(), result.exit_code));
        // Snapshot only the lines this command appended.
        let report_so_far = self.container_log();
        let lines = report_so_far[self.log_watermark..].to_vec();
        self.log_watermark = report_so_far.len();
        if matches!(self.container.status(), ContainerStatus::Killed(_)) {
            self.closed = true;
        }
        ExecOutput {
            exit_code: result.exit_code,
            lines,
            duration: result.duration,
        }
    }

    fn container_log(&self) -> Vec<LogLine> {
        // Container exposes its log only via destroy(); mirror by
        // cloning here through a cheap accessor.
        self.container.log_snapshot()
    }

    /// The command/exit-code transcript (audit trail).
    pub fn transcript(&self) -> &[(String, i32)] {
        &self.transcript
    }

    /// Whether the session has been closed (explicitly or by a kill).
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Total virtual time consumed.
    pub fn elapsed(&self) -> SimDuration {
        self.container.elapsed()
    }

    /// Close the session, returning the `/build` directory (uploaded to
    /// the file server by the caller, like a job's output).
    pub fn close(mut self) -> FileTree {
        self.closed = true;
        let report = self.container.destroy();
        report.build_dir
    }

    /// Convenience: run a whole build spec (e.g. re-run a student's
    /// submission interactively to debug it).
    pub fn run_spec(&mut self, spec: &BuildSpec) -> Vec<ExecOutput> {
        let mut outputs = Vec::new();
        for cmd in &spec.build {
            let out = self.exec(cmd);
            let failed = out.exit_code != 0;
            outputs.push(out);
            if failed {
                break;
            }
        }
        outputs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ProjectDir;

    fn broker_with_instructor() -> (SessionBroker, &'static str) {
        let mut b = SessionBroker::new(Arc::new(ImageRegistry::course_default()));
        b.grant("prof-key");
        (b, "prof-key")
    }

    #[test]
    fn students_cannot_open_sessions() {
        let (broker, _) = broker_with_instructor();
        match broker.open("student-key", &FileTree::new(), &SessionConfig::default()) {
            Err(e) => assert_eq!(e, SessionError::NotAuthorized),
            Ok(_) => panic!("students must not open sessions"),
        }
    }

    #[test]
    fn state_persists_across_commands() {
        let (broker, key) = broker_with_instructor();
        let project = ProjectDir::sample_cuda_project();
        let mut session = broker.open(key, &project.tree, &SessionConfig::default()).unwrap();
        assert_eq!(session.exec("cmake /src").exit_code, 0);
        // `make` sees the Makefile cmake generated earlier — persistent state.
        assert_eq!(session.exec("make").exit_code, 0);
        let run = session.exec("./ece408 /data/test10.hdf5 /data/model.hdf5");
        assert_eq!(run.exit_code, 0);
        assert!(run.lines.iter().any(|l| l.text.contains("elapsed =")));
        // Each exec reports only its own lines.
        assert!(!run.lines.iter().any(|l| l.text.contains("Configuring")));
        let build = session.close();
        assert!(build.contains("ece408"));
    }

    #[test]
    fn network_session_enables_debug_tools() {
        let (broker, key) = broker_with_instructor();
        let config = SessionConfig {
            network: true,
            ..Default::default()
        };
        let mut session = broker.open(key, &FileTree::new(), &config).unwrap();
        assert_eq!(session.exec("curl http://tooling.example/profiler").exit_code, 0);
    }

    #[test]
    fn network_requires_instructor_even_if_granted_later_revoked() {
        let (mut broker, key) = broker_with_instructor();
        assert!(broker.revoke(key));
        assert!(!broker.is_instructor(key));
        match broker.open(key, &FileTree::new(), &SessionConfig::default()) {
            Err(e) => assert_eq!(e, SessionError::NotAuthorized),
            Ok(_) => panic!("revoked key must not open sessions"),
        }
    }

    #[test]
    fn whitelist_still_applies() {
        let (broker, key) = broker_with_instructor();
        let config = SessionConfig {
            image: "malicious/miner:latest".to_string(),
            ..Default::default()
        };
        assert!(matches!(
            broker.open(key, &FileTree::new(), &config),
            Err(SessionError::Image(_))
        ));
    }

    #[test]
    fn session_dies_on_lifetime_and_refuses_more() {
        let (broker, key) = broker_with_instructor();
        let config = SessionConfig {
            max_lifetime: SimDuration::from_mins(1),
            ..Default::default()
        };
        let mut session = broker.open(key, &FileTree::new(), &config).unwrap();
        let out = session.exec("sleep 120");
        assert_eq!(out.exit_code, 137);
        assert!(session.is_closed());
        assert_eq!(session.exec("echo zombie").exit_code, 130);
    }

    #[test]
    fn transcript_records_everything() {
        let (broker, key) = broker_with_instructor();
        let mut session = broker
            .open(key, &ProjectDir::sample_cuda_project().tree, &SessionConfig::default())
            .unwrap();
        session.exec("echo hi");
        session.exec("frobnicate");
        assert_eq!(
            session.transcript(),
            &[("echo hi".to_string(), 0), ("frobnicate".to_string(), 127)]
        );
    }

    #[test]
    fn run_spec_replays_a_submission() {
        let (broker, key) = broker_with_instructor();
        let project = ProjectDir::sample_cuda_project();
        let mut session = broker.open(key, &project.tree, &SessionConfig::default()).unwrap();
        let outputs = session.run_spec(&BuildSpec::default_spec());
        assert_eq!(outputs.len(), 5, "all Listing 1 steps ran");
        assert!(outputs.iter().all(|o| o.exit_code == 0));
    }
}
